"""The supervised executor: batch evaluation that survives its workers.

:class:`SupervisedExecutor` runs batches of candidate availability
solves either **in-process** (supervised serial, ``jobs=1``) or across
a **worker pool** (``jobs>1``) owned by a
:class:`~repro.parallel.supervisor.PoolSupervisor`.  Either way it
upholds the same contract:

* an engine exception, garbage result, worker crash, or wall-clock
  timeout costs the *candidate* a bounded retry (with jittered
  backoff, reusing :mod:`repro.resilience.policy`), never the search;
* a candidate that keeps failing is handed to the
  :class:`~repro.parallel.quarantine.PoisonQuarantine` and skipped --
  recorded as an ``AVD402`` diagnostic, not raised as an error;
* results are returned through :func:`repro.parallel.merge.merge_results`
  in submission order, so downstream consumers are order-independent
  of worker scheduling.

Crash attribution.  When a worker dies, ``ProcessPoolExecutor``
invalidates the whole pool and cannot say *which* task was to blame.
Blaming every in-flight task would eventually quarantine innocent
candidates, so the executor keeps two counters per task: ``faults``
(precisely attributed -- isolated crashes, timeouts, worker-reported
errors) drives quarantine, while ``suspicion`` (shared blame from
pool-wide crashes) only *escalates*: a task suspected
``isolate_after`` times is re-run **alone** in the pool, where a crash
is unambiguous.  Innocent candidates always clear themselves in
isolation; poison candidates are convicted there and quarantined.

Worker-side faults injected by a
:class:`~repro.resilience.WorkerFaultPlan` (chaos tests) take the same
paths as real crashes: ``os._exit`` in the middle of a task, or a
sleep that outlives the task timeout.
"""

from __future__ import annotations

import os
import pickle
import random
import signal
import time
from concurrent.futures import FIRST_COMPLETED, Future, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..errors import SearchError
from ..obs import current as _obs_current
from ..obs import observing as _obs_observing
from ..resilience.chaos import WorkerFaultPlan
from ..resilience.events import (QUARANTINE, TASK_TIMEOUT, WORKER_CRASH,
                                 DegradationLog)
from ..resilience.policy import (POOL_BACKOFF, FallbackPolicy,
                                 RetrySchedule)
from .merge import merge_results
from .quarantine import PoisonQuarantine
from .supervisor import PoolSupervisor


@dataclass(frozen=True)
class ParallelPolicy:
    """Knobs for the supervised evaluation runtime.

    ``task_retries`` bounds attributed faults per candidate before
    quarantine (so a candidate gets ``task_retries + 1`` chances).
    ``task_timeout`` is the per-candidate wall-clock budget in seconds
    (None disables it); in the pool it is enforced by killing the
    worker, in-process it is cooperative (the overrun is detected
    after the solve and treated as a fault).  ``isolate_after`` is the
    shared-blame threshold that sends a suspect candidate to an
    isolated run.  ``max_pool_restarts`` bounds pool restarts per
    batch before degrading to serial.  ``backoff`` supplies the
    jittered retry/restart delays
    (:meth:`repro.resilience.FallbackPolicy.backoff_delay`).
    """

    task_retries: int = 2
    task_timeout: Optional[float] = None
    isolate_after: int = 2
    max_pool_restarts: int = 50
    poll_interval: float = 0.02
    startup_timeout: float = 60.0
    validate_results: bool = True
    backoff: FallbackPolicy = POOL_BACKOFF

    def __post_init__(self) -> None:
        if self.task_retries < 0:
            raise SearchError("task_retries cannot be negative")
        if self.task_timeout is not None and self.task_timeout <= 0:
            raise SearchError("task_timeout must be positive or None")
        if self.isolate_after < 1:
            raise SearchError("isolate_after must be >= 1")
        if self.max_pool_restarts < 0:
            raise SearchError("max_pool_restarts cannot be negative")
        if self.poll_interval <= 0:
            raise SearchError("poll_interval must be positive")
        if self.startup_timeout <= 0:
            raise SearchError("startup_timeout must be positive")


# ----------------------------------------------------------------------
# Worker-side code.  Module-level so every start method can import it;
# the engine and fault plan arrive via the pool initializer (inherited
# for free under fork, pickled under spawn).
# ----------------------------------------------------------------------

_WORKER_ENGINE: Any = None
_WORKER_PLAN: Optional[WorkerFaultPlan] = None


def _init_worker(engine_blob: bytes,
                 plan: Optional[WorkerFaultPlan]) -> None:
    # Shed signal handlers inherited under fork: the CLI maps SIGTERM
    # to KeyboardInterrupt for checkpoint flushing, but a worker that
    # raises mid-``call_queue.get()`` can die holding the shared queue
    # lock and deadlock its siblings (and the parent's shutdown).
    # Workers must die plainly on SIGTERM and leave Ctrl-C (delivered
    # group-wide by the terminal) to the parent's coordinated unwind.
    try:
        signal.signal(signal.SIGTERM, signal.SIG_DFL)
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ValueError, OSError):        # non-main thread / exotic host
        pass
    global _WORKER_ENGINE, _WORKER_PLAN
    _WORKER_ENGINE = pickle.loads(engine_blob)
    _WORKER_PLAN = plan


def _ping() -> str:
    return "pong"


def _evaluate_candidate(task_id: int, submission: int, model: Any,
                        trace: bool = False) -> Tuple[Any, ...]:
    """Evaluate one tier model; never raises across the pipe.

    Engine exceptions come back as ``("error", detail)`` so they stay
    attributable to the candidate instead of poisoning the pool
    protocol.  Injected process faults (chaos) bypass that, which is
    the point: they exercise the crash/hang supervision paths.

    When the parent is tracing (``trace=True``) the solve runs under a
    temporary in-worker observer; the spans it records travel back as
    serialized dicts in a fourth payload slot, and the parent
    re-parents them under its batch span (see
    :meth:`ParallelEvaluationRuntime.evaluate_batch`).  Untraced runs
    keep the legacy 3-tuple payload.
    """
    if _WORKER_PLAN is not None:
        action = _WORKER_PLAN.decide(task_id, submission)
        if action == "crash":
            os._exit(3)
        elif action == "hang":
            time.sleep(_WORKER_PLAN.hang_seconds)
    if not trace:
        try:
            result = _WORKER_ENGINE.evaluate_tier(model)
            return (task_id, "ok", float(result.unavailability))
        except Exception as exc:
            return (task_id, "error",
                    "%s: %s" % (type(exc).__name__, exc))
    with _obs_observing() as worker_obs:
        try:
            result = _WORKER_ENGINE.evaluate_tier(model)
            payload: Tuple[Any, ...] = (task_id, "ok",
                                        float(result.unavailability))
        except Exception as exc:
            payload = (task_id, "error",
                       "%s: %s" % (type(exc).__name__, exc))
    return payload + (worker_obs.tracer.to_dicts(),)


def _evaluate_chunk(task_ids: List[int], submissions: List[int],
                    models: List[Any]) -> List[Tuple[Any, ...]]:
    """Evaluate a shape-grouped chunk through the vectorized solver.

    Returns one ``(task_id, "ok", value)`` / ``(task_id, "error",
    detail)`` payload per member, in submission order; like
    :func:`_evaluate_candidate`, never raises across the pipe.  Chaos
    faults are consulted per member *before* solving, so a poison
    member injected by a :class:`~repro.resilience.WorkerFaultPlan`
    still crashes or hangs the worker exactly as it would alone -- the
    parent cannot attribute the crash within the chunk, so members are
    re-run under suspicion until isolation convicts the poison one.
    """
    if _WORKER_PLAN is not None:
        for task_id, submission in zip(task_ids, submissions):
            action = _WORKER_PLAN.decide(task_id, submission)
            if action == "crash":
                os._exit(3)
            elif action == "hang":
                time.sleep(_WORKER_PLAN.hang_seconds)
    from ..batch import batch_target, solve_outcomes
    target = batch_target(_WORKER_ENGINE)
    if target is None:
        # Engine replaced/wrapped since the parent checked (or a test
        # forced chunking): scalar per member, same payloads.
        return [_evaluate_candidate(task_id, submission, model)
                for task_id, submission, model
                in zip(task_ids, submissions, models)]
    try:
        outcomes = solve_outcomes(target, models)
    except Exception as exc:
        detail = "%s: %s" % (type(exc).__name__, exc)
        return [(task_id, "error", detail) for task_id in task_ids]
    payloads: List[Tuple[Any, ...]] = []
    for task_id, outcome in zip(task_ids, outcomes):
        if isinstance(outcome, Exception):
            payloads.append((task_id, "error", "%s: %s"
                             % (type(outcome).__name__, outcome)))
        else:
            payloads.append((task_id, "ok",
                             float(outcome.unavailability)))
    return payloads


# ----------------------------------------------------------------------
# Parent-side supervision.
# ----------------------------------------------------------------------

class _TaskState:
    """Parent-side bookkeeping for one submitted candidate."""

    __slots__ = ("task_id", "key", "model", "tier", "submissions",
                 "faults", "suspicion")

    def __init__(self, task_id: int, key: tuple, model: Any):
        self.task_id = task_id
        self.key = key
        self.model = model
        self.tier = getattr(model, "name", "")
        #: Times the task was handed to a worker (any outcome).
        self.submissions = 0
        #: Precisely attributed faults (drive quarantine).
        self.faults = 0
        #: Shared blame from unattributable pool crashes (drives
        #: isolation, never quarantine).
        self.suspicion = 0


class SupervisedExecutor:
    """Evaluates candidate batches under supervision (see module doc)."""

    def __init__(self, engine: Any, jobs: int = 1,
                 policy: Optional[ParallelPolicy] = None,
                 worker_plan: Optional[WorkerFaultPlan] = None,
                 log: Optional[DegradationLog] = None,
                 quarantine: Optional[PoisonQuarantine] = None,
                 seed: int = 1,
                 pool_factory: Any = None,
                 cancel_check: Any = None):
        if jobs < 1:
            raise SearchError("jobs must be >= 1, got %d" % jobs)
        self.engine = engine
        self.jobs = jobs
        #: Optional zero-arg callable invoked between candidate
        #: evaluations; raising from it aborts the batch/search
        #: cooperatively (the serving layer's drain/deadline hook).
        #: It runs *outside* the *fault-supervision* try blocks, so
        #: whatever it raises propagates instead of counting against
        #: any candidate.
        self.cancel_check = cancel_check
        self.policy = policy if policy is not None else ParallelPolicy()
        self.log = log if log is not None else DegradationLog()
        self.quarantine = (quarantine if quarantine is not None
                           else PoisonQuarantine())
        self._rng = random.Random(seed)
        self._backoff = RetrySchedule(self.policy.backoff, rng=self._rng)
        self._task_counter = 0
        #: ``(task_id, [span dict, ...])`` pairs from traced workers,
        #: accumulated per batch and drained by the runtime facade.
        self._worker_spans: List[Tuple[int, List[dict]]] = []
        #: Counters for tests/benchmarks: pool breaks, timeouts, etc.
        self.counters: Dict[str, int] = {}
        self.supervisor: Optional[PoolSupervisor] = None
        if jobs > 1:
            self.supervisor = PoolSupervisor(
                jobs=jobs, initializer=_init_worker,
                initargs=(pickle.dumps(engine), worker_plan),
                ping=_ping, log=self.log, backoff=self.policy.backoff,
                max_restarts_per_batch=self.policy.max_pool_restarts,
                startup_timeout=self.policy.startup_timeout, seed=seed,
                pool_factory=pool_factory)

    # ------------------------------------------------------------------

    @property
    def parallel(self) -> bool:
        """True while batches may actually fan out across processes."""
        return (self.supervisor is not None
                and not self.supervisor.degraded)

    def close(self) -> None:
        if self.supervisor is not None:
            self.supervisor.close()

    def _count(self, kind: str) -> None:
        self.counters[kind] = self.counters.get(kind, 0) + 1

    def drain_worker_spans(self) -> List[dict]:
        """Spans shipped back by traced workers, in submission order.

        Flattened and sorted by task id (not completion order), so the
        re-parented trace is deterministic regardless of worker
        scheduling.  Clears the per-batch accumulator.
        """
        self._worker_spans.sort(key=lambda pair: pair[0])
        flat = [span for _, spans in self._worker_spans
                for span in spans]
        self._worker_spans = []
        return flat

    # ------------------------------------------------------------------
    # Batch evaluation (jobs > 1; falls back inline when the pool dies).
    # ------------------------------------------------------------------

    def run_batch(self, tasks: Sequence[Tuple[tuple, Any]],
                  grouper: Any = None) -> List[Tuple[tuple, float]]:
        """Evaluate ``[(key, model), ...]``; deterministic merge out.

        Quarantined candidates are absent from the result; the caller
        treats absence via :attr:`quarantine`.

        ``grouper`` (optional, ``model -> hashable``) turns on chunked
        dispatch: tasks sharing a group key are submitted to one worker
        as a single chunk, which the worker solves through the
        vectorized batch core (:mod:`repro.batch`) instead of N scalar
        solves.  Values are bit-identical either way.  Suspect tasks
        still run isolated (scalar), and traced runs stay unchunked so
        per-candidate spans keep their exact shape.
        """
        states: List[_TaskState] = []
        for key, model in tasks:
            state = _TaskState(self._task_counter, key, model)
            self._task_counter += 1
            states.append(state)
        results: Dict[int, float] = {}
        pending: Dict[int, _TaskState] = {s.task_id: s for s in states}
        self._worker_spans = []
        if self.supervisor is not None:
            self.supervisor.begin_batch()
        while pending:
            if self.cancel_check is not None:
                self.cancel_check()
            pool = (self.supervisor.pool()
                    if self.supervisor is not None else None)
            if pool is None:
                self._run_inline(pending, results)
                break
            group = self._next_group(pending)
            self._run_group(pool, group, pending, results,
                            grouper=grouper)
        return merge_results(states, results)

    def _next_group(self, pending: Dict[int, _TaskState]) \
            -> List[_TaskState]:
        """Suspects run alone (precise blame); everyone else together."""
        ordered = sorted(pending.values(), key=lambda s: s.task_id)
        suspects = [state for state in ordered
                    if state.suspicion >= self.policy.isolate_after]
        if suspects:
            return [suspects[0]]
        return ordered

    @staticmethod
    def _shape_chunks(group: List[_TaskState],
                      grouper: Any) -> List[List[_TaskState]]:
        """Partition a group by shape key, preserving task order."""
        buckets: Dict[Any, List[_TaskState]] = {}
        order: List[Any] = []
        for state in group:
            key = grouper(state.model)
            if key not in buckets:
                buckets[key] = []
                order.append(key)
            buckets[key].append(state)
        return [buckets[key] for key in order]

    def _run_group(self, pool: Any, group: List[_TaskState],
                   pending: Dict[int, _TaskState],
                   results: Dict[int, float],
                   grouper: Any = None) -> None:
        futures: Dict[Future, List[_TaskState]] = {}
        trace = _obs_current().enabled
        if grouper is not None and not trace and len(group) > 1:
            chunks = self._shape_chunks(group, grouper)
        else:
            chunks = [[state] for state in group]
        try:
            for chunk in chunks:
                for state in chunk:
                    state.submissions += 1
                if len(chunk) == 1:
                    state = chunk[0]
                    future = pool.submit(
                        _evaluate_candidate, state.task_id,
                        state.submissions, state.model, trace)
                else:
                    future = pool.submit(
                        _evaluate_chunk,
                        [state.task_id for state in chunk],
                        [state.submissions for state in chunk],
                        [state.model for state in chunk])
                futures[future] = chunk
        except BaseException:
            # submit() itself only fails when the pool is already
            # broken or shut down; treat it like a wholesale crash.
            self._pool_crashed(futures, group, pending)
            return
        self._collect(futures, group, pending, results)

    def _collect(self, futures: Dict[Future, List[_TaskState]],
                 group: List[_TaskState],
                 pending: Dict[int, _TaskState],
                 results: Dict[int, float]) -> None:
        timeout = self.policy.task_timeout
        running_since: Dict[int, float] = {}
        while futures:
            done, _ = wait(set(futures),
                           timeout=(self.policy.poll_interval
                                    if timeout is not None else None),
                           return_when=FIRST_COMPLETED)
            for future in done:
                chunk = futures.pop(future)
                try:
                    payload = future.result()
                except BrokenProcessPool:
                    self._pool_crashed(futures, group, pending)
                    return
                except Exception as exc:
                    detail = ("dispatch failed: %s: %s"
                              % (type(exc).__name__, exc))
                    if len(chunk) == 1:
                        # The pool machinery failed for this task alone
                        # (e.g. the model did not pickle); attributable.
                        self._attributed_fault(chunk[0], pending, detail)
                    else:
                        # Which member broke the chunk is unknowable
                        # here; suspicion (not faults) so innocents
                        # clear themselves on the isolated re-run.
                        self._count("chunk-dispatch-failed")
                        for state in chunk:
                            state.suspicion += 1
                    continue
                payloads = (payload if isinstance(payload, list)
                            else [payload])
                for state, member_payload in zip(chunk, payloads):
                    self._settle(state, member_payload, pending, results)
            if timeout is not None and futures:
                now = time.monotonic()
                overdue = []
                for future, chunk in futures.items():
                    if not future.running():
                        continue
                    started = running_since.setdefault(
                        chunk[0].task_id, now)
                    # A chunk gets one task budget per member.
                    if now - started > timeout * len(chunk):
                        overdue.append((future, chunk))
                if overdue:
                    self._tasks_hung(overdue, futures, pending)
                    return

    def _settle(self, state: _TaskState, payload: Any,
                pending: Dict[int, _TaskState],
                results: Dict[int, float]) -> None:
        task_id, status, value = payload[0], payload[1], payload[2]
        spans = payload[3] if len(payload) > 3 else None
        if status == "ok":
            reason = self._garbage_reason(value)
            if reason is None:
                # Success clears shared blame: the candidate has
                # proven itself innocent of earlier pool crashes.
                state.suspicion = 0
                results[state.task_id] = value
                del pending[state.task_id]
                # Only the settling attempt's spans are kept, so the
                # trace stays deterministic under retries.
                if spans:
                    self._worker_spans.append((state.task_id, spans))
                return
            self._count("garbage")
            self._attributed_fault(state, pending, reason)
            return
        self._count("worker-error")
        self._attributed_fault(state, pending, str(value))

    def _garbage_reason(self, value: Any) -> Optional[str]:
        if not self.policy.validate_results:
            return None
        if not isinstance(value, (int, float)):
            return ("worker returned non-numeric unavailability %r"
                    % (value,))
        if value != value:  # NaN
            return "worker returned NaN unavailability"
        if not -1e-12 <= value <= 1.0 + 1e-12:
            return ("worker returned unavailability %r outside [0, 1]"
                    % (value,))
        return None

    # -- fault paths ----------------------------------------------------

    def _pool_crashed(self, futures: Dict[Future, List[_TaskState]],
                      group: List[_TaskState],
                      pending: Dict[int, _TaskState]) -> None:
        """A worker died and took the pool with it."""
        self._count("pool-break")
        survivors = [state for state in group
                     if state.task_id in pending]
        if len(group) == 1:
            # Isolated run: the crash is unambiguously this task's.
            state = group[0]
            self.log.add(WORKER_CRASH, tier=state.tier,
                         detail="worker died evaluating isolated "
                                "candidate (submission %d)"
                         % state.submissions,
                         attempt=state.faults + 1)
            self._attributed_fault(state, pending,
                                   "worker process crashed",
                                   logged=True)
        else:
            self.log.add(WORKER_CRASH,
                         detail="worker died with %d candidate(s) in "
                                "flight; re-running them under "
                                "suspicion" % len(survivors))
            for state in survivors:
                state.suspicion += 1
        futures.clear()
        if self.supervisor is not None:
            self.supervisor.restart("worker crash")

    def _tasks_hung(self, overdue: List[Tuple[Future, List[_TaskState]]],
                    futures: Dict[Future, List[_TaskState]],
                    pending: Dict[int, _TaskState]) -> None:
        """Overdue tasks: the pool is killed to reclaim the stuck
        workers, and innocents in flight are just re-run.  A lone task
        owns its overrun (attributable fault); within a chunk the
        culprit is unknowable, so every member is merely suspected and
        isolation convicts the real one."""
        for _, chunk in overdue:
            if len(chunk) == 1:
                state = chunk[0]
                self._count("task-timeout")
                self.log.add(TASK_TIMEOUT, tier=state.tier,
                             detail="candidate exceeded task timeout "
                                    "%.3fs (submission %d)"
                             % (self.policy.task_timeout,
                                state.submissions),
                             attempt=state.faults + 1)
                self._attributed_fault(state, pending,
                                       "evaluation hung past the task "
                                       "timeout", logged=True)
            else:
                self._count("chunk-timeout")
                self.log.add(TASK_TIMEOUT,
                             detail="batched chunk of %d exceeded its "
                                    "%.3fs budget; re-running members "
                                    "under suspicion"
                             % (len(chunk),
                                self.policy.task_timeout * len(chunk)))
                for state in chunk:
                    state.suspicion += 1
        futures.clear()
        if self.supervisor is not None:
            self.supervisor.restart("task timeout")

    def _attributed_fault(self, state: _TaskState,
                          pending: Dict[int, _TaskState], detail: str,
                          logged: bool = False) -> None:
        """One precisely attributed fault; quarantine when exhausted."""
        state.faults += 1
        if state.faults > self.policy.task_retries:
            self.quarantine.add(state.key, tier=state.tier,
                                attempts=state.faults, reason=detail)
            self.log.add(QUARANTINE, tier=state.tier,
                         detail="quarantined after %d fault(s): %s"
                         % (state.faults, detail),
                         attempt=state.faults)
            pending.pop(state.task_id, None)
            return
        self._backoff.pause(state.faults)

    # ------------------------------------------------------------------
    # In-process evaluation (jobs == 1, and the degraded-pool path).
    # ------------------------------------------------------------------

    def _run_inline(self, pending: Dict[int, _TaskState],
                    results: Dict[int, float]) -> None:
        for state in sorted(pending.values(), key=lambda s: s.task_id):
            value = self.evaluate_inline(state.key, state.model)
            if value is not None:
                results[state.task_id] = value
        pending.clear()

    def evaluate_inline(self, key: tuple, model: Any) -> Optional[float]:
        """One candidate, in-process, under the same supervision.

        Returns the unavailability, or None when the candidate ends up
        quarantined.  The timeout here is cooperative: a solve cannot
        be preempted in-process, so an overrun is detected after the
        fact and the (late) result discarded as a fault.
        """
        if key in self.quarantine:
            return None
        tier = getattr(model, "name", "")
        faults = 0
        while True:
            if self.cancel_check is not None:
                self.cancel_check()
            detail = None
            started = (time.monotonic()
                       if self.policy.task_timeout is not None else 0.0)
            try:
                value = float(self.engine.evaluate_tier(model)
                              .unavailability)
            except Exception as exc:
                detail = "%s: %s" % (type(exc).__name__, exc)
            else:
                if self.policy.task_timeout is not None:
                    elapsed = time.monotonic() - started
                    if elapsed > self.policy.task_timeout:
                        self._count("task-timeout")
                        detail = ("evaluation took %.3fs (task timeout "
                                  "%.3fs)" % (elapsed,
                                              self.policy.task_timeout))
                        self.log.add(TASK_TIMEOUT, tier=tier,
                                     detail=detail, attempt=faults + 1)
                if detail is None:
                    detail = self._garbage_reason(value)
                    if detail is not None:
                        self._count("garbage")
                if detail is None:
                    return value
            faults += 1
            if faults > self.policy.task_retries:
                self.quarantine.add(key, tier=tier, attempts=faults,
                                    reason=detail)
                self.log.add(QUARANTINE, tier=tier,
                             detail="quarantined after %d fault(s): %s"
                             % (faults, detail), attempt=faults)
                return None
            self._backoff.pause(faults)


__all__ = ["ParallelPolicy", "SupervisedExecutor"]
