"""Poison-candidate quarantine.

A *poison candidate* is a ``(resource, n, m, s, mechanism)`` structure
whose evaluation repeatedly crashes or hangs a worker process (or, in
supervised serial mode, repeatedly fails in-process).  Left alone, one
such candidate would kill the whole design search; the supervised
runtime instead *quarantines* it after its retry budget is exhausted:
the candidate is recorded here, skipped by the search from then on,
and surfaced as an ``AVD402`` diagnostic in
:meth:`repro.core.DesignOutcome.summary` so the degradation is never
silent.

Quarantining a candidate removes one point from the explored design
space, so a quarantined run may (rarely) return a costlier design than
a clean run -- the diagnostics make that auditable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Tuple

from ..lint import Diagnostic


@dataclass(frozen=True)
class QuarantinedCandidate:
    """One structure the runtime refuses to evaluate again."""

    #: The search's structure key (what the availability cache is
    #: keyed by); uniquely identifies the candidate within a search.
    key: tuple
    #: Tier the candidate belongs to, when known.
    tier: str
    #: Attributed faults before quarantine (crashes, hangs, errors).
    attempts: int
    #: Human-readable cause of the final fault.
    reason: str

    def describe(self) -> str:
        text = "candidate quarantined after %d fault(s)" % self.attempts
        if self.reason:
            text += ": %s" % self.reason
        return text

    def to_diagnostic(self) -> Diagnostic:
        context = "tier %r" % self.tier if self.tier else ""
        return Diagnostic.new("AVD402", self.describe(), context=context)


class PoisonQuarantine:
    """The set of quarantined candidates, in quarantine order."""

    def __init__(self) -> None:
        self._records: Dict[tuple, QuarantinedCandidate] = {}

    def add(self, key: tuple, tier: str = "", attempts: int = 0,
            reason: str = "") -> QuarantinedCandidate:
        """Quarantine ``key``; idempotent (first record wins)."""
        record = self._records.get(key)
        if record is None:
            record = QuarantinedCandidate(key, tier, attempts, reason)
            self._records[key] = record
        return record

    def __contains__(self, key: tuple) -> bool:
        return key in self._records

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[QuarantinedCandidate]:
        return iter(self._records.values())

    @property
    def keys(self) -> Tuple[tuple, ...]:
        return tuple(self._records)

    def to_diagnostics(self) -> List[Diagnostic]:
        """Every record as an ``AVD402`` diagnostic, quarantine order."""
        return [record.to_diagnostic() for record in self]


__all__ = ["PoisonQuarantine", "QuarantinedCandidate"]
