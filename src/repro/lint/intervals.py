"""Interval (range) arithmetic for the expression static analyzer.

An :class:`Interval` is a closed range ``[lo, hi]`` over the extended
reals.  The analyzer folds each expression over intervals instead of
numbers; the transfer functions here are *conservative*: the interval
returned always contains every value the expression can actually take
when its variables range over their declared domains.  Conservatism is
what makes the analyzer sound -- if it proves a denominator's interval
excludes zero, no runtime environment drawn from the domain can divide
by zero (property-tested in ``tests/properties/test_lint_props.py``).

Whenever an endpoint computation degenerates (NaN from ``inf - inf``,
an overflowing corner), the result widens to :data:`TOP` rather than
guessing.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

_INF = math.inf


@dataclass(frozen=True)
class Interval:
    """A closed range ``[lo, hi]``; ``lo <= hi`` always holds."""

    lo: float
    hi: float

    def __post_init__(self) -> None:
        if math.isnan(self.lo) or math.isnan(self.hi) or self.lo > self.hi:
            # Degenerate construction widens to TOP instead of erroring:
            # analysis must never crash on weird arithmetic.
            object.__setattr__(self, "lo", -_INF)
            object.__setattr__(self, "hi", _INF)

    # -- constructors ---------------------------------------------------

    @classmethod
    def point(cls, value: float) -> "Interval":
        return cls(value, value)

    @classmethod
    def of(cls, *values: float) -> "Interval":
        return cls(min(values), max(values))

    # -- predicates -----------------------------------------------------

    @property
    def is_point(self) -> bool:
        return self.lo == self.hi

    def contains(self, value: float) -> bool:
        return self.lo <= value <= self.hi

    @property
    def contains_zero(self) -> bool:
        return self.lo <= 0.0 <= self.hi

    @property
    def is_zero(self) -> bool:
        return self.lo == 0.0 and self.hi == 0.0

    @property
    def strictly_positive(self) -> bool:
        return self.lo > 0.0

    @property
    def strictly_negative(self) -> bool:
        return self.hi < 0.0

    @property
    def definitely_true(self) -> bool:
        """Every value in the interval is truthy (nonzero)."""
        return not self.contains_zero

    @property
    def definitely_false(self) -> bool:
        """Every value in the interval is falsy (the interval is {0})."""
        return self.is_zero

    # -- set operations -------------------------------------------------

    def intersect(self, other: "Interval") -> Optional["Interval"]:
        lo = max(self.lo, other.lo)
        hi = min(self.hi, other.hi)
        if lo > hi:
            return None
        return Interval(lo, hi)

    def hull(self, other: "Interval") -> "Interval":
        return Interval(min(self.lo, other.lo), max(self.hi, other.hi))

    def __repr__(self) -> str:
        return "[%g, %g]" % (self.lo, self.hi)


TOP = Interval(-_INF, _INF)
TRUE = Interval.point(1.0)
FALSE = Interval.point(0.0)
BOOL = Interval(0.0, 1.0)


def from_corners(values: Iterable[float]) -> Interval:
    """Bound an operation by its corner evaluations; NaN widens to TOP."""
    collected = list(values)
    if not collected or any(math.isnan(v) for v in collected):
        return TOP
    return Interval(min(collected), max(collected))


# -- arithmetic transfer functions -------------------------------------


def add(a: Interval, b: Interval) -> Interval:
    return from_corners((a.lo + b.lo, a.hi + b.hi))


def sub(a: Interval, b: Interval) -> Interval:
    return from_corners((a.lo - b.hi, a.hi - b.lo))


def neg(a: Interval) -> Interval:
    return Interval(-a.hi, -a.lo)


def mul(a: Interval, b: Interval) -> Interval:
    return from_corners((_mul(a.lo, b.lo), _mul(a.lo, b.hi),
                         _mul(a.hi, b.lo), _mul(a.hi, b.hi)))


def _mul(x: float, y: float) -> float:
    # 0 * inf is NaN in IEEE, but for bound purposes the limit is 0:
    # any finite sample of the zero factor makes the product 0.
    if x == 0.0 or y == 0.0:
        return 0.0
    return x * y


def divide(a: Interval, b: Interval) -> Interval:
    """Bounds of ``a / b``.  Callers must separately flag division by
    zero when ``b.contains_zero``; the bounds here are only meaningful
    for the subset of ``b`` that is nonzero."""
    if b.contains_zero:
        # The quotient is unbounded as the denominator nears zero.
        return TOP
    return from_corners((a.lo / b.lo, a.lo / b.hi,
                         a.hi / b.lo, a.hi / b.hi))


def power(base: Interval, exponent: Interval) -> "PowerResult":
    """Bounds of ``base ^ exponent`` plus a runtime-error verdict.

    The verdict is ``None`` (provably safe), ``"possible"``, or
    ``"always"`` -- the evaluator raises for ``0 ^ negative`` and for
    ``negative ^ fractional`` (complex result), and overflows for huge
    corners.
    """
    exp_int = _point_integer(exponent)
    if exp_int is not None:
        return _power_integer(base, exp_int)
    if base.lo > 0.0:
        verdict = None
        corners = []
        for b in (base.lo, base.hi):
            for e in (exponent.lo, exponent.hi):
                try:
                    corners.append(float(b ** e))
                except OverflowError:
                    verdict = "possible"
        if verdict is not None:
            return PowerResult(TOP, verdict)
        # x^y is monotone in each argument for x > 0, so the corner
        # evaluations bound the whole box.
        return PowerResult(from_corners(corners), None)
    if base.hi < 0.0 and exponent.is_point and math.isfinite(exponent.lo):
        # Certain negative base, certain (finite) fractional exponent.
        return PowerResult(TOP, "always")
    # Base may be non-positive and the exponent is not a known integer:
    # a fractional power of a negative (or a negative power of zero)
    # may be reachable.
    return PowerResult(TOP, "possible")


@dataclass(frozen=True)
class PowerResult:
    """Bounds plus runtime-error verdict for :func:`power`."""

    interval: Interval
    error: Optional[str]  # None | "possible" | "always"


def _point_integer(interval: Interval) -> Optional[int]:
    if interval.is_point and math.isfinite(interval.lo) \
            and float(interval.lo).is_integer():
        return int(interval.lo)
    return None


def _power_integer(base: Interval, k: int) -> PowerResult:
    if k < 0 and base.contains_zero:
        verdict = "always" if base.is_zero else "possible"
        return PowerResult(TOP, verdict)
    corners = []
    try:
        corners.extend((float(base.lo ** k), float(base.hi ** k)))
    except (OverflowError, ZeroDivisionError):
        return PowerResult(TOP, "possible")
    if k > 0 and k % 2 == 0 and base.contains_zero:
        corners.append(0.0)
    return PowerResult(from_corners(corners), None)


# -- comparisons and boolean logic -------------------------------------


def compare(op: str, a: Interval, b: Interval) -> Interval:
    """Interval of a comparison: TRUE / FALSE when decided, else BOOL."""
    if op == "<":
        if a.hi < b.lo:
            return TRUE
        if a.lo >= b.hi:
            return FALSE
    elif op == "<=":
        if a.hi <= b.lo:
            return TRUE
        if a.lo > b.hi:
            return FALSE
    elif op == ">":
        if a.lo > b.hi:
            return TRUE
        if a.hi <= b.lo:
            return FALSE
    elif op == ">=":
        if a.lo >= b.hi:
            return TRUE
        if a.hi < b.lo:
            return FALSE
    elif op == "==":
        if a.is_point and b.is_point and a.lo == b.lo:
            return TRUE
        if a.intersect(b) is None:
            return FALSE
    elif op == "!=":
        if a.intersect(b) is None:
            return TRUE
        if a.is_point and b.is_point and a.lo == b.lo:
            return FALSE
    return BOOL


def envelope(values: Sequence[Interval]) -> Interval:
    """Smallest interval containing all of ``values``."""
    result = values[0]
    for value in values[1:]:
        result = result.hull(value)
    return result
