"""Static analysis and diagnostics for Aved models and expressions.

The lint subsystem finds specification problems *before* a design
search runs: dangling references, implausible failure models, and --
via interval analysis over the expression ASTs -- runtime errors that
some environment in the declared variable domains could trigger
(division by zero, ``log``/``sqrt`` domain violations, dead branches).

Entry points:

* :func:`analyze_expression` -- interval static analysis of one
  expression against declared variable domains;
* :func:`lint_pair` / :func:`lint_infrastructure` -- structured model
  checks, layering on :mod:`repro.model.validation`;
* :class:`LintReport` -- aggregation plus text/JSON rendering, used by
  the ``repro lint`` CLI subcommand.

Every finding carries a stable ``AVDnnn`` code from :data:`CODES`;
``docs/LINTING.md`` is the user-facing catalog.
"""

from .canonical import (CANONICAL_VERSION, canonical_form, canonical_json,
                        canonical_key, combo_key, design_canonical_key)
from .codes import CODES, RUNTIME_ERROR_CODES, default_severity, title
from .diagnostics import Diagnostic, LintReport, Severity, Span
from .expr_analyzer import (ExpressionAnalysis, analyze_expression,
                            analyze_overhead, analyze_performance)
from .intervals import Interval
from .model_analyzer import lint_infrastructure, lint_pair
from .space import (GroupCertificate, PruningCertificate, SpaceReport,
                    analyze_space, build_pruning_certificate)

__all__ = [
    "CODES",
    "RUNTIME_ERROR_CODES",
    "default_severity",
    "title",
    "Diagnostic",
    "LintReport",
    "Severity",
    "Span",
    "ExpressionAnalysis",
    "analyze_expression",
    "analyze_overhead",
    "analyze_performance",
    "Interval",
    "lint_infrastructure",
    "lint_pair",
    "CANONICAL_VERSION",
    "canonical_form",
    "canonical_json",
    "canonical_key",
    "combo_key",
    "design_canonical_key",
    "GroupCertificate",
    "PruningCertificate",
    "SpaceReport",
    "analyze_space",
    "build_pruning_certificate",
]
