"""Canonical tier keys: content-addressed hashes of availability models.

The search space massively shares structure: at a fixed ``(resource,
n, m, s)`` skeleton, every *performance-only* mechanism setting, every
spelling of the same duration, and -- for spare-less tiers -- every
spare activation prefix generates the **same** numeric availability
model.  This module normalizes a
:class:`~repro.availability.TierAvailabilityModel` into a plain-data
*canonical form* (unit canonicalization, parameter ordering, dropping
operational-mode attributes that no engine consults) and hashes it
into a stable, content-addressed **canonical key**.

Soundness contract (verified by the differential suite in
``tests/properties/test_space_props.py``)::

    canonical_key(model_a) == canonical_key(model_b)
        =>  every engine produces bit-identical TierResult objects
            (serialized-JSON-equal) for model_a and model_b

The key is deliberately *incomplete* (different keys may still yield
equal availability); completeness is not needed for its consumers.
Keys are byte-stable across processes and ``PYTHONHASHSEED`` values:
the encoding uses sorted-key JSON over :func:`repro.units
.canonical_scalar` fragments (floats via :meth:`float.hex`), never the
builtin ``hash`` and never ``dict`` iteration order.

This is the cache-key API ROADMAP item 1 (memoized evaluation core)
keys on: :func:`canonical_key` for a generated model,
:func:`design_canonical_key` for a tier design, and
:func:`combo_key` for a mechanism-configuration tuple (used by the
dominance certificates in :mod:`repro.lint.space`).
"""

from __future__ import annotations

import hashlib
import json
from typing import TYPE_CHECKING, Optional, Sequence

from ..availability.model import TierAvailabilityModel
from ..model import MechanismConfig

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (lint <- core)
    from ..core.design import TierDesign
    from ..core.evaluation import DesignEvaluator

#: Version tag baked into every canonical form.  Bump it whenever the
#: canonical encoding changes so persisted caches keyed on old hashes
#: can never alias new ones.
CANONICAL_VERSION = 1


def canonical_json(fragment: object) -> str:
    """Deterministically serialize a canonical fragment.

    ``sort_keys`` plus compact separators make the encoding a pure
    function of the fragment's *content*; fragments themselves carry no
    raw floats (scalars are pre-encoded by
    :func:`repro.units.canonical_scalar`), so the output is
    byte-identical across processes, platforms, and hash seeds.
    """
    return json.dumps(fragment, sort_keys=True, separators=(",", ":"),
                      ensure_ascii=True)


def canonical_form(model: TierAvailabilityModel) -> dict:
    """The normalized plain-data form of a tier availability model."""
    form = model.canonical_form()
    form["v"] = CANONICAL_VERSION
    return form


def canonical_key(model: TierAvailabilityModel) -> str:
    """Content-addressed key of a tier availability model.

    Equal keys guarantee bit-identical tier results under every
    engine; see the module docstring for the precise contract.
    """
    text = canonical_json(canonical_form(model))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def design_canonical_key(evaluator: "DesignEvaluator",
                         tier_design: "TierDesign",
                         load: Optional[float] = None) -> str:
    """Canonical key of the model a tier design generates.

    This is the design-level entry point: performance-only mechanism
    settings, duration spellings, and (for spare-less designs) the
    spare activation prefix all collapse, because none of them reach
    the generated :class:`~repro.availability.TierAvailabilityModel`'s
    canonical form.  ``load`` is required for dynamically sized tiers
    (it determines ``m``) and ignored for static ones.
    """
    model: TierAvailabilityModel = evaluator.tier_model(tier_design, load)
    return canonical_key(model)


def combo_key(configs: Sequence[MechanismConfig]) -> str:
    """Content-addressed key of a mechanism-configuration tuple.

    Configuration order is normalized (sorted by mechanism name, as
    :class:`~repro.core.design.TierDesign` does), so a combo's key does
    not depend on enumeration order.  Dominance certificates use these
    keys to align the prover's combos with the search's.
    """
    fragments = [config.canonical_fragment()
                 for config in sorted(configs,
                                      key=lambda config: config.name)]
    text = canonical_json({"v": CANONICAL_VERSION, "combo": fragments})
    return hashlib.sha256(text.encode("utf-8")).hexdigest()
