"""Static analysis of the declared candidate space -- before any solve.

The design search (paper section 4.1) enumerates, per tier and
resource option, every (active/spare split) x (spare activation
prefix) x (structural mechanism combo).  Everything this module
derives about that space is *static*: no availability engine is ever
invoked.  Three artifacts come out:

* **Equivalence classes** -- how many of the enumerated structures are
  availability-distinct, via the content-addressed canonical keys of
  :mod:`repro.lint.canonical` (the cache-key machinery of ROADMAP
  item 1);
* **Dominance certificates** -- provable partial orders between
  mechanism combos (:class:`PruningCertificate`), consumed by
  :class:`repro.core.search.TierSearch` to skip provably-infeasible
  candidates (``--prune-dominated``);
* **A feasibility report** -- exact cardinality, empty or provably
  unreachable regions given the requirements, redundant dimensions,
  and contradictory fixed settings, as ``AVD5xx`` diagnostics
  (``repro lint --space``).

Dominance lemma (documented in ``docs/STATIC_ANALYSIS.md``, verified
by the property suite): with ``(n, m, s)``, every MTBF, and -- when
``s > 0`` -- every mode's failover regime held fixed, steady-state
tier unavailability under the deterministic engines (Markov, analytic)
is nondecreasing in each mode's MTTR.  Hence a combo whose per-mode
MTTR vector is pointwise minimal ("probe", e.g. a platinum maintenance
contract) lower-bounds the downtime of every combo it dominates: if
even the probe misses the downtime target, the dominated combos are
infeasible without being evaluated.  The regime condition guards the
paper's failover-rule discontinuity (``mttr > failover_time`` flips
the model structure), and certificates are only applied by the search
when the active engine is deterministic.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import (TYPE_CHECKING, Callable, Dict, List, Mapping, Optional,
                    Sequence, Tuple)

from ..availability import FailureModeEntry
from ..errors import EvaluationError, SearchError
from ..model import (FailureMode, InfrastructureModel, MechanismConfig,
                     ResourceOption, ResourceType, ServiceModel)
from ..units import MINUTES_PER_YEAR, Duration
from .canonical import canonical_key, combo_key
from .diagnostics import Diagnostic, LintReport

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (core -> lint)
    from ..core.evaluation import DesignEvaluator
    from ..core.search import SearchLimits

#: Lemma identifiers recorded in certificates and AVD506 provenance.
LEMMA_IN_PLACE = "mttr-monotone/in-place"
LEMMA_SPARES = "mttr-monotone/fixed-failover-regime"


# ---------------------------------------------------------------------------
# Certificates
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class GroupCertificate:
    """Provable dominance inside one enumeration group.

    A *group* is the contiguous run of structural mechanism combos the
    search enumerates at one fixed (active/spare split, spare prefix);
    its dominance structure depends only on whether spares exist
    (``spares``) and, when they do, on the activation ``prefix`` -- not
    on the split itself.  ``combo_keys`` content-addresses the combos
    in enumeration order (:func:`repro.lint.canonical.combo_key`), so a
    consumer can verify it is applying the certificate to the
    enumeration it was derived for.  ``least_index`` is the probe --
    the combo whose per-mode MTTR vector is pointwise <= every combo
    in ``dominated``.
    """

    resource: str
    prefix: Tuple[str, ...]
    spares: bool
    combo_keys: Tuple[str, ...]
    least_index: int
    dominated: Tuple[int, ...]
    lemma: str


@dataclass(frozen=True)
class PruningCertificate:
    """All dominance certificates for one (tier, resource option).

    ``groups`` is keyed by ``(spares, prefix)``; spare-less groups all
    share the key ``(False, ())`` because without spares neither the
    prefix nor the failover times reach the availability model (see
    :meth:`repro.availability.FailureModeEntry.canonical_fragment`).
    """

    tier: str
    resource: str
    combo_keys: Tuple[str, ...]
    groups: Mapping[Tuple[bool, Tuple[str, ...]], GroupCertificate]

    @property
    def combo_count(self) -> int:
        return len(self.combo_keys)

    def group_for(self, spares: bool,
                  prefix: Tuple[str, ...]) -> Optional[GroupCertificate]:
        return self.groups.get((spares, prefix if spares else ()))

    def dominated_total(self) -> int:
        return sum(len(group.dominated) for group in self.groups.values())


def _mttr_resolver(combo: Sequence[MechanismConfig]) \
        -> Callable[[FailureMode], Duration]:
    by_name = {config.name: config for config in combo}

    def resolve(failure: FailureMode) -> Duration:
        name = failure.mttr_mechanism
        if name is None:
            assert isinstance(failure.mttr, Duration)
            return failure.mttr
        config = by_name.get(name)
        if config is None:
            raise SearchError(
                "dominance prover: combo lacks structural mechanism %r"
                % name)
        return config.duration_attribute("mttr")

    return resolve


def _combo_entries(evaluator: "DesignEvaluator", resource: ResourceType,
                   prefix: Tuple[str, ...],
                   combo: Sequence[MechanismConfig]) \
        -> List[FailureModeEntry]:
    """The mode entries a design with this combo/prefix would generate.

    Delegates to the same
    :meth:`repro.core.evaluation.DesignEvaluator.failure_mode_entries`
    the tier-model generator uses, so prover and search derive
    MTTR/failover vectors from identical arithmetic.
    """
    spare_modes = resource.modes_for_prefix(prefix)
    entries = evaluator.failure_mode_entries(resource, spare_modes,
                                             _mttr_resolver(combo))
    return list(entries)


def _dominates(a: Sequence[FailureModeEntry], b: Sequence[FailureModeEntry],
               spares: bool) -> bool:
    """Is combo ``a`` provably no worse than ``b`` (same group)?"""
    for mode_a, mode_b in zip(a, b):
        if mode_a.mttr > mode_b.mttr:
            return False
        if spares and mode_a.uses_failover != mode_b.uses_failover:
            return False
    return True


def _group_certificate(resource: str, prefix: Tuple[str, ...], spares: bool,
                       combo_keys: Tuple[str, ...],
                       vectors: Sequence[Sequence[FailureModeEntry]]) \
        -> Optional[GroupCertificate]:
    """Pick the probe dominating the most combos; None if none dominates."""
    best_index = -1
    best_dominated: Tuple[int, ...] = ()
    for index, vector in enumerate(vectors):
        dominated = tuple(
            other for other, other_vector in enumerate(vectors)
            if other != index and _dominates(vector, other_vector, spares))
        if len(dominated) > len(best_dominated):
            best_index = index
            best_dominated = dominated
    if best_index < 0:
        return None
    return GroupCertificate(
        resource=resource, prefix=prefix, spares=spares,
        combo_keys=combo_keys, least_index=best_index,
        dominated=best_dominated,
        lemma=LEMMA_SPARES if spares else LEMMA_IN_PLACE)


def build_pruning_certificate(
        evaluator: "DesignEvaluator", tier_name: str,
        option: ResourceOption,
        combos: Sequence[Tuple[MechanismConfig, ...]],
        spare_prefixes: Sequence[Tuple[str, ...]]) \
        -> Optional[PruningCertificate]:
    """Prove dominance relations for one tier option, statically.

    ``combos`` and ``spare_prefixes`` must come from the consuming
    search's own enumeration (they honor its ``fixed_settings`` and
    ``spare_policy``); the certificate's ``combo_keys`` let the search
    double-check that alignment.  Returns None when the combo
    dimension is trivial or nothing is provably dominated.
    """
    if len(combos) < 2:
        return None
    resource = evaluator.infrastructure.resource(option.resource)
    combo_keys = tuple(combo_key(combo) for combo in combos)

    groups: Dict[Tuple[bool, Tuple[str, ...]], GroupCertificate] = {}
    plain_vectors = [_combo_entries(evaluator, resource, (), combo)
                     for combo in combos]
    certificate = _group_certificate(option.resource, (), False,
                                     combo_keys, plain_vectors)
    if certificate is not None:
        groups[(False, ())] = certificate
    for prefix in spare_prefixes:
        vectors = [_combo_entries(evaluator, resource, prefix, combo)
                   for combo in combos]
        certificate = _group_certificate(option.resource, prefix, True,
                                         combo_keys, vectors)
        if certificate is not None:
            groups[(True, prefix)] = certificate
    if not groups:
        return None
    return PruningCertificate(tier=tier_name, resource=option.resource,
                              combo_keys=combo_keys, groups=groups)


# ---------------------------------------------------------------------------
# Space feasibility analysis
# ---------------------------------------------------------------------------


@dataclass
class OptionSpaceSummary:
    """Static facts about one tier option's slice of the space."""

    tier: str
    resource: str
    n_min: Optional[int]
    structures: int
    combos: int
    #: Distinct canonical availability models; None when the tier's
    #: sizing is dynamic and no load was supplied.
    equivalence_classes: Optional[int]
    #: Structures covered by a dominance certificate (provably no
    #: better than their group's probe).
    dominance_covered: int
    certificate: Optional[PruningCertificate]

    def to_dict(self) -> Dict[str, object]:
        groups = 0
        if self.certificate is not None:
            groups = len(self.certificate.groups)
        return {"resource": self.resource, "n_min": self.n_min,
                "structures": self.structures, "combos": self.combos,
                "equivalence_classes": self.equivalence_classes,
                "dominance_covered": self.dominance_covered,
                "certificate_groups": groups}


@dataclass
class TierSpaceSummary:
    """Static facts about one tier's slice of the space."""

    tier: str
    options: List[OptionSpaceSummary]

    @property
    def structures(self) -> int:
        return sum(option.structures for option in self.options)

    @property
    def dominance_covered(self) -> int:
        return sum(option.dominance_covered for option in self.options)

    def equivalence_classes(self) -> Optional[int]:
        total = 0
        for option in self.options:
            if option.equivalence_classes is None:
                return None
            total += option.equivalence_classes
        return total

    def to_dict(self) -> Dict[str, object]:
        return {"tier": self.tier, "structures": self.structures,
                "equivalence_classes": self.equivalence_classes(),
                "dominance_covered": self.dominance_covered,
                "options": [option.to_dict() for option in self.options]}


class SpaceReport:
    """Outcome of :func:`analyze_space`: diagnostics + structured data."""

    def __init__(self, report: LintReport,
                 tiers: List[TierSpaceSummary],
                 load: Optional[float],
                 max_downtime: Optional[Duration]):
        self.report = report
        self.tiers = tiers
        self.load = load
        self.max_downtime = max_downtime

    @property
    def structures(self) -> int:
        return sum(tier.structures for tier in self.tiers)

    @property
    def dominance_covered(self) -> int:
        return sum(tier.dominance_covered for tier in self.tiers)

    def certificates(self) -> Dict[str, Dict[str, PruningCertificate]]:
        """tier -> resource -> certificate, for search consumption."""
        result: Dict[str, Dict[str, PruningCertificate]] = {}
        for tier in self.tiers:
            for option in tier.options:
                if option.certificate is not None:
                    result.setdefault(tier.tier, {})[option.resource] = \
                        option.certificate
        return result

    def exit_code(self, strict: bool = False) -> int:
        return self.report.exit_code(strict=strict)

    def to_dict(self) -> Dict[str, object]:
        return {
            "load": self.load,
            "max_downtime_minutes": (self.max_downtime.as_minutes
                                     if self.max_downtime is not None
                                     else None),
            "structures": self.structures,
            "dominance_covered": self.dominance_covered,
            "tiers": [tier.to_dict() for tier in self.tiers],
        }

    def to_text(self) -> str:
        lines = ["candidate space: %d structures across %d tier(s)"
                 % (self.structures, len(self.tiers))]
        for tier in self.tiers:
            classes = tier.equivalence_classes()
            detail = "%d structures" % tier.structures
            if classes is not None:
                detail += ", %d availability-distinct" % classes
            if tier.dominance_covered:
                detail += ", %d dominance-covered" % tier.dominance_covered
            lines.append("  tier %s: %s" % (tier.tier, detail))
            for option in tier.options:
                lines.append("    option %s: n_min=%s, %d structures, "
                             "%d combos"
                             % (option.resource, option.n_min,
                                option.structures, option.combos))
        return "\n".join(lines)


def _per_resource_availability_upper_bound(
        vectors: Sequence[Sequence[FailureModeEntry]]) -> float:
    """Best-case steady availability of ONE resource, over all combos.

    In-place repair makes a resource an alternating renewal process per
    mode: availability = prod_i mtbf_i / (mtbf_i + mttr_i), which is
    nonincreasing in each MTTR -- so taking each mode's minimal MTTR
    over the combo dimension upper-bounds every combo's availability.
    """
    if not vectors:
        return 1.0
    mode_count = len(vectors[0])
    best = 1.0
    for index in range(mode_count):
        min_mttr = min(vector[index].mttr.as_hours for vector in vectors)
        mtbf = vectors[0][index].mtbf.as_hours
        best *= mtbf / (mtbf + min_mttr)
    return best


def _zero_redundancy_downtime_floor(
        vectors: Sequence[Sequence[FailureModeEntry]], n_min: int) -> float:
    """Provable min/year downtime of every (n=m=n_min, s=0) candidate.

    With zero slack and zero spares the tier is down whenever any of
    its ``n_min`` independent resources is down, so unavailability
    >= 1 - a^n for the per-resource availability upper bound ``a``
    (exact for the binomial/analytic in-place form with unlimited
    repair staff -- the evaluator default).
    """
    a = _per_resource_availability_upper_bound(vectors)
    return (1.0 - a ** n_min) * MINUTES_PER_YEAR


def analyze_space(infrastructure: InfrastructureModel,
                  service: ServiceModel,
                  limits: Optional["SearchLimits"] = None,
                  load: Optional[float] = None,
                  max_downtime: Optional[Duration] = None) -> SpaceReport:
    """Statically analyze the candidate space of a model pair.

    Emits the AVD500-series diagnostics (cardinality, empty and
    provably unreachable regions, redundant dimensions, equivalence
    classes, dominance coverage, contradictory fixed settings) and
    returns the structured :class:`SpaceReport`.  No availability
    engine runs; everything here is closed-form over the declared
    models.  ``load``/``max_downtime`` condition the emptiness and
    reachability checks; without them only structural facts are
    reported.
    """
    # Imported lazily: repro.core imports repro.lint at module level.
    from ..core.evaluation import DesignEvaluator
    from ..core.search import SearchLimits, TierSearch

    search_limits = limits if limits is not None else SearchLimits()
    evaluator = DesignEvaluator(infrastructure, service)
    # The search instance supplies the authoritative enumeration; its
    # engine is never invoked (we only use the static machinery, which
    # is why reaching into its protected helpers is deliberate: the
    # analyzer must see the exact candidate stream the search will).
    search = TierSearch(evaluator, search_limits)
    report = LintReport()
    tiers: List[TierSpaceSummary] = []
    target_minutes = (max_downtime.as_minutes
                      if max_downtime is not None else None)

    for tier in service.tiers:
        options: List[OptionSpaceSummary] = []
        for option in tier.options:
            context = "tier %r option %r" % (tier.name, option.resource)
            if load is not None:
                n_min = option.min_active_for(load)
            else:
                counts = option.active_counts()
                n_min = min(counts) if counts else None
            if n_min is None:
                options.append(OptionSpaceSummary(
                    tier.name, option.resource, None, 0, 0, None, 0, None))
                continue

            structural, _ = evaluator.required_mechanisms(
                tier.name, option.resource)
            try:
                combos = search._mechanism_combos(structural)
            except SearchError as error:
                report.add(Diagnostic.new(
                    "AVD507", str(error), context=context))
                options.append(OptionSpaceSummary(
                    tier.name, option.resource, n_min, 0, 0, None, 0, None))
                continue

            structures = []
            for extra in range(search_limits.max_redundancy + 1):
                structures.extend(search._structures_for_total(
                    tier.name, option, structural, n_min, n_min + extra))

            certificate = build_pruning_certificate(
                evaluator, tier.name, option, combos,
                search._spare_prefixes(option.resource, 1))

            covered = 0
            if certificate is not None and combos:
                for start in range(0, len(structures), len(combos)):
                    first = structures[start]
                    group = certificate.group_for(
                        first.n_spare > 0, first.spare_active_prefix)
                    if group is not None:
                        covered += len(group.dominated)

            classes: Optional[int] = None
            try:
                keys = {canonical_key(evaluator.tier_model(design, load))
                        for design in structures}
                classes = len(keys)
            except EvaluationError:
                classes = None  # dynamic sizing without a load

            _redundant_dimension_check(report, context, combos,
                                       evaluator, option)
            if (target_minutes is not None and structures
                    and math.isfinite(target_minutes)):
                vectors = [_combo_entries(
                    evaluator,
                    infrastructure.resource(option.resource), (), combo)
                    for combo in combos]
                floor = _zero_redundancy_downtime_floor(vectors, n_min)
                if floor > target_minutes:
                    report.add(Diagnostic.new(
                        "AVD502",
                        "zero-redundancy region is provably infeasible: "
                        "every (n=%d, s=0) candidate has >= %.1f min/yr "
                        "downtime (target %.1f); redundancy is required"
                        % (n_min, floor, target_minutes),
                        context=context))

            options.append(OptionSpaceSummary(
                tier.name, option.resource, n_min, len(structures),
                len(combos), classes, covered, certificate))

        summary = TierSpaceSummary(tier.name, options)
        tiers.append(summary)
        tier_context = "tier %r" % tier.name
        if summary.structures == 0:
            message = "candidate space is empty within the search limits"
            if load is not None:
                message += " for load %g" % load
            report.add(Diagnostic.new("AVD501", message,
                                      context=tier_context))
            continue
        report.add(Diagnostic.new(
            "AVD500",
            "%d candidate structures across %d option(s) (exact count "
            "within max_redundancy=%d)"
            % (summary.structures, len(options),
               search_limits.max_redundancy),
            context=tier_context))
        classes = summary.equivalence_classes()
        if classes is not None:
            report.add(Diagnostic.new(
                "AVD504",
                "%d structures collapse into %d availability-distinct "
                "canonical classes (%.0f%% redundant solves avoidable "
                "by a keyed cache)"
                % (summary.structures, classes,
                   100.0 * (1.0 - classes / summary.structures)),
                context=tier_context))
        if summary.dominance_covered:
            report.add(Diagnostic.new(
                "AVD505",
                "dominance certificates cover %d of %d structures "
                "(%.0f%%): provably no better than their group's probe"
                % (summary.dominance_covered, summary.structures,
                   100.0 * summary.dominance_covered / summary.structures),
                context=tier_context))

    return SpaceReport(report, tiers, load, max_downtime)


def _redundant_dimension_check(report: LintReport, context: str,
                               combos: Sequence[Tuple[MechanismConfig, ...]],
                               evaluator: "DesignEvaluator",
                               option: ResourceOption) -> None:
    """AVD503: structural combos whose availability effect is identical.

    Two combos are availability-equivalent *everywhere* iff their
    per-mode MTTR vectors agree: MTBF, failover times, and spare
    susceptibility never depend on the combo, so equal MTTR vectors
    yield bit-identical models at every (split, prefix).
    """
    if len(combos) < 2:
        return
    resource = evaluator.infrastructure.resource(option.resource)
    signatures: Dict[Tuple[object, ...], List[int]] = {}
    for index, combo in enumerate(combos):
        entries = _combo_entries(evaluator, resource, (), combo)
        signature = tuple(float(entry.mttr.as_seconds).hex()
                          for entry in entries)
        signatures.setdefault(signature, []).append(index)
    for members in signatures.values():
        if len(members) < 2:
            continue
        names = ", ".join(
            " + ".join(config.describe() for config in combos[index])
            or "(no mechanisms)"
            for index in members)
        report.add(Diagnostic.new(
            "AVD503",
            "mechanism dimension is redundant: configurations {%s} "
            "generate identical availability models" % names,
            context=context))
