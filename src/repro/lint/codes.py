"""The diagnostic-code catalog for :mod:`repro.lint`.

Codes are stable identifiers CI can gate on: ``AVD0xx`` are general
loader failures, ``AVD1xx`` come from the expression static analyzer,
``AVD2xx`` from the model analyzer, ``AVD3xx`` from the resilience
runtime (:mod:`repro.resilience` degradation reporting), and
``AVD4xx`` from the supervised parallel runtime
(:mod:`repro.parallel`) -- the 3xx/4xx families are emitted at
*evaluation* time, not by the static pass.  Each code has a default
severity; individual diagnostics may tighten it (e.g. an overhead
expression that is *always* below 1.0 upgrades AVD111 to an error).

``docs/LINTING.md`` documents every code with examples; the registry
here is the single source of truth for code -> (severity, title).
"""

from __future__ import annotations

from typing import Dict, NamedTuple

from .diagnostics import Severity


class CodeInfo(NamedTuple):
    """Registry entry for one diagnostic code."""

    severity: Severity
    title: str


#: All known diagnostic codes with their default severity and title.
CODES: Dict[str, CodeInfo] = {
    # -- general / loader ------------------------------------------------
    "AVD001": CodeInfo(Severity.ERROR, "specification parse error"),
    "AVD002": CodeInfo(Severity.ERROR, "model construction error"),
    # -- expression analyzer ---------------------------------------------
    "AVD100": CodeInfo(Severity.ERROR, "expression syntax error"),
    "AVD101": CodeInfo(Severity.ERROR, "unbound variable"),
    "AVD102": CodeInfo(Severity.WARNING, "declared variable unused"),
    "AVD103": CodeInfo(Severity.ERROR, "unknown function or bad arity"),
    "AVD104": CodeInfo(Severity.ERROR, "division by zero"),
    "AVD105": CodeInfo(Severity.WARNING, "possible division by zero"),
    "AVD106": CodeInfo(Severity.ERROR, "function domain error"),
    "AVD107": CodeInfo(Severity.WARNING, "possible function domain error"),
    "AVD108": CodeInfo(Severity.WARNING, "unreachable conditional branch"),
    "AVD109": CodeInfo(Severity.WARNING,
                       "performance not monotone in resource count"),
    "AVD110": CodeInfo(Severity.WARNING,
                       "performance non-positive on declared domain"),
    "AVD111": CodeInfo(Severity.WARNING,
                       "overhead factor below 1.0 (slowdown < 100%)"),
    # -- model analyzer --------------------------------------------------
    "AVD201": CodeInfo(Severity.ERROR, "unknown resource type"),
    "AVD202": CodeInfo(Severity.ERROR, "unknown mechanism"),
    "AVD203": CodeInfo(Severity.ERROR,
                       "component defers to unknown mechanism"),
    "AVD204": CodeInfo(Severity.ERROR,
                       "mechanism does not provide deferred attribute"),
    "AVD205": CodeInfo(Severity.ERROR,
                       "component instance cap below tier minimum"),
    "AVD206": CodeInfo(Severity.WARNING, "MTTR not below MTBF"),
    "AVD207": CodeInfo(Severity.ERROR, "tier has no feasible option"),
    "AVD208": CodeInfo(Severity.WARNING,
                       "name shared across model namespaces"),
    "AVD209": CodeInfo(Severity.WARNING,
                       "mechanism range inconsistent with failure model"),
    "AVD210": CodeInfo(Severity.INFO, "infrastructure element unused"),
    "AVD211": CodeInfo(Severity.ERROR,
                       "overhead missing expression for allowed category"),
    "AVD212": CodeInfo(Severity.INFO,
                       "overhead expression for undeclared category"),
    "AVD213": CodeInfo(Severity.WARNING,
                       "nActive exceeds tabulated sample range"),
    # -- resilience runtime (degradation reporting) ----------------------
    "AVD301": CodeInfo(Severity.WARNING,
                       "availability engine fallback"),
    "AVD302": CodeInfo(Severity.WARNING,
                       "engine circuit breaker opened"),
    "AVD303": CodeInfo(Severity.INFO,
                       "transient engine fault recovered by retry"),
    "AVD304": CodeInfo(Severity.WARNING,
                       "engine call exceeded its timeout"),
    "AVD305": CodeInfo(Severity.WARNING,
                       "engine returned a non-finite or out-of-range "
                       "result"),
    "AVD306": CodeInfo(Severity.ERROR,
                       "evaluation deadline budget exhausted"),
    "AVD307": CodeInfo(Severity.INFO,
                       "engine circuit breaker closed after probe"),
    "AVD308": CodeInfo(Severity.INFO,
                       "search resumed from checkpoint"),
    "AVD309": CodeInfo(Severity.WARNING,
                       "checkpoint save failed; search continuing "
                       "without persistence"),
    # -- parallel runtime (supervised multi-process evaluation) ----------
    "AVD401": CodeInfo(Severity.WARNING,
                       "worker pool unavailable; degraded to serial "
                       "evaluation"),
    "AVD402": CodeInfo(Severity.WARNING,
                       "poison candidate quarantined after repeated "
                       "worker failures"),
    "AVD403": CodeInfo(Severity.WARNING,
                       "worker process crashed during candidate "
                       "evaluation"),
    "AVD404": CodeInfo(Severity.WARNING,
                       "candidate evaluation exceeded its wall-clock "
                       "timeout"),
    "AVD405": CodeInfo(Severity.INFO,
                       "worker pool restarted"),
    # -- candidate-space analyzer (repro.lint.space) ----------------------
    "AVD500": CodeInfo(Severity.INFO,
                       "candidate space cardinality"),
    "AVD501": CodeInfo(Severity.ERROR,
                       "candidate space is empty"),
    "AVD502": CodeInfo(Severity.WARNING,
                       "region provably infeasible for the requirement"),
    "AVD503": CodeInfo(Severity.WARNING,
                       "redundant search dimension"),
    "AVD504": CodeInfo(Severity.INFO,
                       "canonical equivalence classes"),
    "AVD505": CodeInfo(Severity.INFO,
                       "dominance certificate coverage"),
    "AVD506": CodeInfo(Severity.INFO,
                       "candidates pruned by dominance certificate"),
    "AVD507": CodeInfo(Severity.ERROR,
                       "contradictory search-space constraints"),
    # -- tier-evaluation store (repro.cache) ------------------------------
    "AVD601": CodeInfo(Severity.WARNING,
                       "corrupt cache entry detected and quarantined"),
    "AVD602": CodeInfo(Severity.WARNING,
                       "cache write failed; entry not persisted"),
    "AVD603": CodeInfo(Severity.WARNING,
                       "cache degraded to off after repeated storage "
                       "faults"),
    "AVD604": CodeInfo(Severity.ERROR,
                       "cache verification mismatch; store quarantined"),
    "AVD605": CodeInfo(Severity.INFO,
                       "stale-version cache entry ignored"),
    # -- continuous redesign watcher (repro.watch) ------------------------
    "AVD701": CodeInfo(Severity.WARNING,
                       "malformed telemetry record quarantined"),
    "AVD702": CodeInfo(Severity.WARNING,
                       "conflicting duplicate telemetry record "
                       "quarantined"),
    "AVD703": CodeInfo(Severity.INFO,
                       "telemetry sequence gap detected"),
    "AVD704": CodeInfo(Severity.INFO,
                       "telemetry clock skew tolerated"),
    "AVD705": CodeInfo(Severity.INFO,
                       "observed parameters contradict the design spec; "
                       "redesign triggered"),
    "AVD706": CodeInfo(Severity.INFO,
                       "incremental re-search warm-started from "
                       "checkpoint"),
    "AVD707": CodeInfo(Severity.WARNING,
                       "drifted spec invalidated the checkpoint; cold "
                       "re-search"),
    "AVD708": CodeInfo(Severity.INFO,
                       "watch journal replayed; interrupted redesign "
                       "resumed"),
    "AVD709": CodeInfo(Severity.WARNING,
                       "watch journal append failed; watcher continuing "
                       "without durability"),
    # -- vectorized batch solves (repro.batch) ----------------------------
    "AVD801": CodeInfo(Severity.INFO,
                       "engine does not support vectorized batch "
                       "solves; searching on the scalar path"),
    "AVD802": CodeInfo(Severity.WARNING,
                       "stacked solve hit a singular system; group "
                       "members re-solved on the scalar path"),
    "AVD803": CodeInfo(Severity.INFO,
                       "chain not representable by a batched template; "
                       "re-solved on the scalar path"),
    # -- sharded requirement-space map builder (repro.grid) ---------------
    "AVD901": CodeInfo(Severity.WARNING,
                       "grid shard attempt failed; lease reassigned "
                       "with backoff"),
    "AVD902": CodeInfo(Severity.WARNING,
                       "grid shard isolated; cells re-run "
                       "individually to attribute the fault"),
    "AVD903": CodeInfo(Severity.WARNING,
                       "poison grid cell convicted and excluded from "
                       "the map"),
    "AVD904": CodeInfo(Severity.INFO,
                       "grid build resumed from journal; finished "
                       "shards reused"),
    "AVD905": CodeInfo(Severity.WARNING,
                       "grid journal append failed; build continuing "
                       "without durability"),
    "AVD906": CodeInfo(Severity.WARNING,
                       "abandoned grid shard lease reclaimed"),
    "AVD907": CodeInfo(Severity.INFO,
                       "requirement-space map served with partial "
                       "coverage"),
}

#: Codes whose presence means the expression *may* raise at evaluation
#: time.  An expression analysis with none of these proves the absence
#: of runtime errors on the declared domain (the soundness contract the
#: property tests in ``tests/properties/test_lint_props.py`` check).
RUNTIME_ERROR_CODES = frozenset({
    "AVD100", "AVD101", "AVD103", "AVD104", "AVD105", "AVD106", "AVD107",
})


def default_severity(code: str) -> Severity:
    """Default severity for ``code`` (ERROR for unknown codes)."""
    info = CODES.get(code)
    return info.severity if info is not None else Severity.ERROR


def title(code: str) -> str:
    """Human-readable title for ``code``."""
    info = CODES.get(code)
    return info.title if info is not None else "unknown diagnostic"
