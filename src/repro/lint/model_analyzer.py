"""Model-level lint checks: structure, ranges, and embedded expressions.

:func:`lint_pair` is the entry point behind ``repro lint``: it layers
advisory analysis on top of the gating checks
:func:`repro.model.validation.collect_diagnostics` already performs.
The extra passes are

* exhaustive deferred-attribute checking (every ``AVD203``/``AVD204``
  in the infrastructure, not just the first),
* physical-plausibility warnings: MTTR not below MTBF (``AVD206``),
  also across every setting of an MTTR-supplying mechanism
  (``AVD209``),
* structural hygiene: names shared across component/mechanism/resource
  namespaces (``AVD208``), tiers whose every option is broken
  (``AVD207``), infrastructure elements the service never uses
  (``AVD210``),
* overhead wiring: a categorical overhead must cover every allowed
  category setting (``AVD211``; ``AVD212`` for unreachable extras) and
  tabulated performance must cover the nActive range (``AVD213``),
* static analysis of every embedded ``performance``/``mperformance``
  expression via :mod:`repro.lint.expr_analyzer`, with ``n`` bound to
  the option's nActive range and ``cpi`` to the mechanism's checkpoint
  intervals.

Models parsed from spec text carry a ``source_lines`` provenance map
(``"tier:web"`` -> line number); diagnostics pick their spans from it
when present, so findings point back into the document.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..model.component import ComponentType, FailureMode
from ..model.infrastructure import InfrastructureModel
from ..model.mechanism import (AvailabilityMechanism, ConstantEffect,
                               Effect, ParameterEffect, TableEffect)
from ..model.perf import (CategoricalOverhead, ConstantPerformance,
                          ExpressionPerformance, TabulatedPerformance)
from ..model.service import (MechanismUse, ResourceOption,
                             ServiceModel)
from ..model.validation import collect_diagnostics
from ..units import Duration
from .diagnostics import Diagnostic, LintReport, Span
from .expr_analyzer import analyze_overhead, analyze_performance


def lint_pair(infrastructure: InfrastructureModel,
              service: ServiceModel) -> LintReport:
    """Full lint of a service/infrastructure pairing."""
    report = LintReport()
    report.extend(collect_diagnostics(infrastructure, service,
                                      include_infrastructure=False))
    report.extend(lint_infrastructure(infrastructure))
    report.extend(_service_structure(infrastructure, service))
    report.extend(_usage(infrastructure, service))
    report.extend(_expressions(infrastructure, service))
    return report


def lint_infrastructure(
        infrastructure: InfrastructureModel) -> List[Diagnostic]:
    """Infrastructure-only checks (shared by every service pairing)."""
    diagnostics: List[Diagnostic] = []
    mechanisms = {mech.name: mech for mech in infrastructure.mechanisms}

    for component in infrastructure.components:
        span = _span(infrastructure, "component:%s" % component.name)
        context = "component %r" % component.name
        for mode in component.failure_modes:
            diagnostics.extend(_check_deferred(
                mode.mttr_mechanism, "mttr", mechanisms, context, span))
            diagnostics.extend(_check_repair_times(
                component, mode, mechanisms, context, span))
        diagnostics.extend(_check_deferred(
            component.loss_window_mechanism, "loss_window", mechanisms,
            context, span))

    diagnostics.extend(_shared_names(infrastructure))
    return diagnostics


# -- infrastructure checks ----------------------------------------------


def _check_deferred(name: Optional[str], attribute: str,
                    mechanisms: Dict[str, AvailabilityMechanism],
                    context: str, span: Optional[Span]) -> List[Diagnostic]:
    if name is None:
        return []
    if name not in mechanisms:
        return [Diagnostic.new(
            "AVD203", "defers %s to unknown mechanism %r"
            % (attribute, name), span=span, context=context)]
    if not mechanisms[name].provides(attribute):
        return [Diagnostic.new(
            "AVD204", "mechanism %r does not provide %s"
            % (name, attribute), span=span, context=context)]
    return []


def _check_repair_times(component: ComponentType, mode: FailureMode,
                        mechanisms: Dict[str, AvailabilityMechanism],
                        context: str,
                        span: Optional[Span]) -> List[Diagnostic]:
    """AVD206 / AVD209: repair must conclude well within the MTBF, for
    concrete MTTRs and for every setting of an MTTR mechanism."""
    diagnostics: List[Diagnostic] = []
    mtbf = mode.mtbf.as_seconds
    if isinstance(mode.mttr, Duration):
        repair = (mode.mttr + mode.detect_time).as_seconds
        if repair >= mtbf:
            diagnostics.append(Diagnostic.new(
                "AVD206",
                "failure %r: repair time %s (incl. detection) is not "
                "below MTBF %s; the component would be down more than up"
                % (mode.name, (mode.mttr + mode.detect_time).format(),
                   mode.mtbf.format()), span=span, context=context))
        return diagnostics

    mechanism = mechanisms.get(mode.mttr_mechanism or "")
    if mechanism is None or not mechanism.provides("mttr"):
        return diagnostics  # AVD203/AVD204 already cover this
    for value in _effect_values(mechanism.effects["mttr"], mechanism):
        duration = _as_duration(value)
        if duration is None:
            continue
        if (duration + mode.detect_time).as_seconds >= mtbf:
            diagnostics.append(Diagnostic.new(
                "AVD209",
                "failure %r: mechanism %r can set MTTR %s, which is not "
                "below MTBF %s" % (mode.name, mechanism.name,
                                   duration.format(), mode.mtbf.format()),
                span=span, context=context))
            break  # one witness per (mode, mechanism) is enough
    return diagnostics


def _effect_values(effect: Effect,
                   mechanism: AvailabilityMechanism) -> List[object]:
    """Every value an effect can resolve to across parameter settings."""
    if isinstance(effect, ConstantEffect):
        return [effect.value]
    if isinstance(effect, TableEffect):
        return [value for _, value in effect.table]
    if isinstance(effect, ParameterEffect):
        try:
            return list(mechanism.parameter(effect.parameter).values.values())
        except Exception:
            return []
    return []


def _as_duration(value: object) -> Optional[Duration]:
    if isinstance(value, Duration):
        return value
    if isinstance(value, str):
        try:
            return Duration.parse(value)
        except Exception:
            return None
    return None


def _shared_names(
        infrastructure: InfrastructureModel) -> List[Diagnostic]:
    namespaces = {
        "component": {c.name for c in infrastructure.components},
        "mechanism": {m.name for m in infrastructure.mechanisms},
        "resource": {r.name for r in infrastructure.resources},
    }
    diagnostics = []
    kinds = sorted(namespaces)
    for i, first in enumerate(kinds):
        for second in kinds[i + 1:]:
            for name in sorted(namespaces[first] & namespaces[second]):
                diagnostics.append(Diagnostic.new(
                    "AVD208",
                    "name %r is both a %s and a %s; spec references may "
                    "resolve to the wrong one" % (name, first, second)))
    return diagnostics


# -- service structure --------------------------------------------------


def _service_structure(infrastructure: InfrastructureModel,
                       service: ServiceModel) -> List[Diagnostic]:
    """AVD207: a tier where every option is structurally broken can
    never be designed, whatever the requirements."""
    diagnostics = []
    for tier in service.tiers:
        if all(_option_is_broken(infrastructure, option)
               for option in tier.options):
            diagnostics.append(Diagnostic.new(
                "AVD207",
                "no structurally feasible resource option remains "
                "(every option has gating problems)",
                span=_span(service, "tier:%s" % tier.name),
                context="tier %r" % tier.name))
    return diagnostics


def _option_is_broken(infrastructure: InfrastructureModel,
                      option: ResourceOption) -> bool:
    if not infrastructure.has_resource(option.resource):
        return True
    resource = infrastructure.resource(option.resource)
    min_needed = min(option.active_counts())
    for slot in resource.slots:
        component = infrastructure.component(slot.component)
        if component.max_instances is not None \
                and component.max_instances < min_needed:
            return True
    return False


def _usage(infrastructure: InfrastructureModel,
           service: ServiceModel) -> List[Diagnostic]:
    """AVD210: infrastructure elements this service pairing never uses.

    Informational: a shared repository legitimately holds blocks for
    other services (paper section 2), but an unused element in a
    single-service spec is usually a typo.
    """
    diagnostics = []
    used_resources = {option.resource
                      for tier in service.tiers
                      for option in tier.options}
    used_mechanisms = {use.mechanism
                       for tier in service.tiers
                       for option in tier.options
                       for use in option.mechanisms}
    used_components = set()
    for name in used_resources:
        if infrastructure.has_resource(name):
            resource = infrastructure.resource(name)
            used_components.update(slot.component for slot in resource.slots)
    for component in infrastructure.components:
        if component.name in used_components:
            used_mechanisms.update(component.mechanism_references())

    for resource in infrastructure.resources:
        if resource.name not in used_resources:
            diagnostics.append(Diagnostic.new(
                "AVD210", "resource type %r is not used by service %r"
                % (resource.name, service.name),
                span=_span(infrastructure, "resource:%s" % resource.name)))
    for mechanism in infrastructure.mechanisms:
        if mechanism.name not in used_mechanisms:
            diagnostics.append(Diagnostic.new(
                "AVD210", "mechanism %r is not used by service %r"
                % (mechanism.name, service.name),
                span=_span(infrastructure,
                           "mechanism:%s" % mechanism.name)))
    for component in infrastructure.components:
        if component.name not in used_components:
            diagnostics.append(Diagnostic.new(
                "AVD210", "component type %r is not used by service %r"
                % (component.name, service.name),
                span=_span(infrastructure,
                           "component:%s" % component.name)))
    return diagnostics


# -- embedded expressions -----------------------------------------------


def _expressions(infrastructure: InfrastructureModel,
                 service: ServiceModel) -> List[Diagnostic]:
    diagnostics: List[Diagnostic] = []
    for tier in service.tiers:
        for option in tier.options:
            diagnostics.extend(_option_expressions(
                infrastructure, service, tier.name, option))
    return diagnostics


def _option_expressions(infrastructure: InfrastructureModel,
                        service: ServiceModel, tier_name: str,
                        option: ResourceOption) -> List[Diagnostic]:
    diagnostics: List[Diagnostic] = []
    context = "tier %r option %r" % (tier_name, option.resource)
    key = "%s/%s" % (tier_name, option.resource)
    line = _line(service, "option:" + key, "tier:%s" % tier_name)
    perf_line = _line(service, "performance:" + key, "option:" + key,
                      "tier:%s" % tier_name)
    counts = option.active_counts()

    performance = option.performance
    if isinstance(performance, ExpressionPerformance):
        diagnostics.extend(analyze_performance(
            performance.expression, counts,
            context="%s performance" % context, line=perf_line))
    elif isinstance(performance, TabulatedPerformance):
        sampled = performance.sampled_counts
        outside = [count for count in counts
                   if count < sampled[0] or count > sampled[-1]]
        if outside:
            diagnostics.append(Diagnostic.new(
                "AVD213",
                "nActive allows %s but throughput is only sampled for "
                "[%d, %d]; those counts fail at evaluation time"
                % (outside, sampled[0], sampled[-1]),
                span=Span(line=perf_line), context=context))
    elif isinstance(performance, ConstantPerformance):
        if performance.capacity <= 0.0:
            diagnostics.append(Diagnostic.new(
                "AVD110", "constant throughput is %g; the tier can never "
                "meet a positive load" % performance.capacity,
                span=Span(line=perf_line), context=context))

    for use in option.mechanisms:
        overhead_line = _line(
            service, "mperformance:%s/%s" % (key, use.mechanism),
            "option:" + key)
        diagnostics.extend(_overhead_expressions(
            infrastructure, use, counts, context, overhead_line))
    return diagnostics


def _overhead_expressions(infrastructure: InfrastructureModel,
                          use: MechanismUse,
                          counts: Sequence[int], context: str,
                          line: int) -> List[Diagnostic]:
    overhead = use.overhead
    if not isinstance(overhead, CategoricalOverhead):
        return []
    if not infrastructure.has_mechanism(use.mechanism):
        return []  # AVD202 already reported; nothing to bind cpi against
    mechanism = infrastructure.mechanism(use.mechanism)
    diagnostics: List[Diagnostic] = []
    span = Span(line=line)
    context = "%s mechanism %r" % (context, use.mechanism)

    categories = _parameter_values(mechanism, overhead.category_param)
    if categories is None:
        diagnostics.append(Diagnostic.new(
            "AVD211",
            "overhead is keyed by parameter %r but mechanism %r has no "
            "such parameter" % (overhead.category_param, mechanism.name),
            span=span, context=context))
    else:
        for category in categories:
            if category not in overhead.expressions:
                diagnostics.append(Diagnostic.new(
                    "AVD211",
                    "no overhead expression for %s=%r, an allowed setting"
                    % (overhead.category_param, category),
                    span=span, context=context))
        for key in sorted(overhead.expressions):
            if key not in categories:
                diagnostics.append(Diagnostic.new(
                    "AVD212",
                    "overhead expression for %s=%r can never be selected "
                    "(allowed settings: %s)"
                    % (overhead.category_param, key, sorted(categories)),
                    span=span, context=context))

    cpi_values = _interval_minutes(mechanism, overhead.interval_param)
    for key in sorted(overhead.expressions):
        expression = overhead.expressions[key]
        needs_cpi = overhead.interval_var in expression.variables
        if needs_cpi and cpi_values is None:
            diagnostics.append(Diagnostic.new(
                "AVD211",
                "overhead for %s=%r uses %r but mechanism %r has no "
                "parameter %r to bind it"
                % (overhead.category_param, key, overhead.interval_var,
                   mechanism.name, overhead.interval_param),
                span=span, context=context))
            continue
        diagnostics.extend(analyze_overhead(
            expression, counts, cpi_values if needs_cpi else None,
            context="%s overhead for %s=%r"
            % (context, overhead.category_param, key), line=line))
    return diagnostics


def _parameter_values(mechanism: AvailabilityMechanism,
                      name: str) -> Optional[List[object]]:
    for parameter in mechanism.parameters:
        if parameter.name == name:
            return list(parameter.values.values())
    return None


def _interval_minutes(mechanism: AvailabilityMechanism,
                      name: str) -> Optional[List[float]]:
    values = _parameter_values(mechanism, name)
    if values is None:
        return None
    minutes = []
    for value in values:
        duration = _as_duration(value)
        if duration is not None:
            minutes.append(duration.as_minutes)
    return minutes or None


# -- provenance ---------------------------------------------------------


def _line(model: object, *keys: str) -> int:
    """Line number from a model's ``source_lines`` provenance, if any."""
    lines = getattr(model, "source_lines", None) or {}
    for key in keys:
        line = lines.get(key)
        if line is not None:
            return line
    return -1


def _span(model: object, key: str) -> Optional[Span]:
    line = _line(model, key)
    return Span(line=line) if line >= 0 else None
