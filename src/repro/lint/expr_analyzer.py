"""Static analysis of expressions over interval (range) domains.

:func:`analyze_expression` walks an expression AST with every variable
bound to an :class:`~repro.lint.intervals.Interval` of its declared
domain and reports, without evaluating anything at runtime:

* unbound variables (``AVD101``) and required-but-unused variables
  (``AVD102``), unknown functions and arity violations (``AVD103``);
* reachable division by zero, proved (``AVD104``) or possible
  (``AVD105``), and ``log``/``sqrt``/power-domain errors, proved
  (``AVD106``) or possible (``AVD107``);
* conditional branches that can never be taken because their guard is
  decided by the variable domains (``AVD108``) -- the static mirror of
  the constant folding in :mod:`repro.expr.optimizer`.

The analysis is *sound* for runtime errors: when it reports none of the
:data:`~repro.lint.codes.RUNTIME_ERROR_CODES`, no environment drawn
from the declared domains can make the evaluator raise.  Guards of the
form ``variable <op> constant`` narrow the variable's interval inside
each branch, so Table 1's piecewise overheads analyze precisely.

:func:`analyze_performance` and :func:`analyze_overhead` add the
domain-specific checks for the two expression sites the models use:
monotonicity/positivity of ``performance`` functions (``AVD109``,
``AVD110``) and the >= 100% invariant of ``mperformance`` slowdown
factors (``AVD111``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import (Dict, List, Mapping, Optional, Sequence, Set,
                    Tuple, Union)

from ..errors import ExpressionError
from ..expr.ast_nodes import (Binary, Call, Conditional, Node, Number,
                              Unary, Variable, free_variables)
from ..expr.evaluator import Expression, evaluate
from ..expr.functions import BUILTIN_FUNCTIONS, FUNCTION_ARITY
from ..expr.parser import parse
from ..expr.printer import to_source
from . import intervals as iv
from .codes import RUNTIME_ERROR_CODES
from .diagnostics import Diagnostic, Severity, Span
from .intervals import BOOL, FALSE, TOP, TRUE, Interval

_COMPARISONS = {"<", "<=", ">", ">=", "==", "!="}

#: Accepted forms for one variable's domain.
DomainLike = Union[Interval, float, int, Sequence[float]]

#: An AST node's source extent: (start, end) offsets, or unknown.
SpanPair = Optional[Tuple[int, int]]

#: math.exp overflows above this; used by the exp/``^`` transfers.
_EXP_OVERFLOW = 709.0


@dataclass
class ExpressionAnalysis:
    """Everything the analyzer learned about one expression."""

    source: str
    diagnostics: List[Diagnostic] = field(default_factory=list)
    result: Interval = TOP

    @property
    def provably_safe(self) -> bool:
        """True when no environment drawn from the declared domains can
        make evaluation raise :class:`~repro.errors.ExpressionError`."""
        return all(d.code not in RUNTIME_ERROR_CODES
                   for d in self.diagnostics)


def as_interval(domain: DomainLike) -> Interval:
    """Normalize a domain spec (interval, number, or samples) to an
    :class:`Interval`."""
    if isinstance(domain, Interval):
        return domain
    if isinstance(domain, (int, float)):
        return Interval.point(float(domain))
    values = [float(v) for v in domain]
    if not values:
        return TOP
    return Interval(min(values), max(values))


def analyze_expression(expression: Union[str, Node, Expression],
                       env: Optional[Mapping[str, DomainLike]] = None,
                       *, context: str = "",
                       require_used: Sequence[str] = (),
                       line: int = -1) -> ExpressionAnalysis:
    """Statically analyze ``expression`` with variables in ``env`` domains.

    ``env`` maps each documented variable of the expression site to its
    domain; variables outside ``env`` are unbound (``AVD101``).
    ``require_used`` lists variables the site expects the expression to
    actually depend on (``AVD102`` when absent).  ``line`` locates the
    expression inside a spec document, when known.
    """
    source, node, analysis = _prepare(expression, line, context)
    if node is None:
        return analysis
    domains = {name: as_interval(domain)
               for name, domain in (env or {}).items()}
    walker = _Walker(source, line, context)
    analysis.result = walker.visit(node, domains)
    analysis.diagnostics.extend(walker.diagnostics)

    free = free_variables(node)
    for name in require_used:
        if name not in free:
            analysis.diagnostics.append(_diag(
                "AVD102", "expression does not depend on %r" % name,
                source, node.span, line, context))
    return analysis


def _prepare(expression: Union[str, Node, Expression], line: int,
             context: str
             ) -> Tuple[str, Optional[Node], ExpressionAnalysis]:
    """Resolve the input form to ``(source, node, analysis)``; on a parse
    failure the node is None and the analysis already carries AVD100."""
    if isinstance(expression, Expression):
        expression = expression.source
    if isinstance(expression, str):
        source = expression
        analysis = ExpressionAnalysis(source)
        try:
            # Re-parse rather than reuse a compiled AST: constant folding
            # would hide unreachable branches from the analyzer.
            node = parse(source)
        except ExpressionError as exc:
            span = None
            if exc.position >= 0:
                span = Span(line=line, start=exc.position,
                            end=exc.position + 1, source=source)
            analysis.diagnostics.append(Diagnostic.new(
                "AVD100", str(exc), span=span, context=context))
            return source, None, analysis
        return source, node, analysis
    node = expression
    source = to_source(node)
    return source, node, ExpressionAnalysis(source)


def _diag(code: str, message: str, source: str, span: SpanPair,
          line: int,
          context: str, severity: Optional[Severity] = None) -> Diagnostic:
    start, end = span if span is not None else (-1, -1)
    return Diagnostic.new(code, message,
                          span=Span(line=line, start=start, end=end,
                                    source=source),
                          context=context, severity=severity)


class _Walker:
    """The interval walker; collects diagnostics as it folds the AST."""

    def __init__(self, source: str, line: int, context: str):
        self.source = source
        self.line = line
        self.context = context
        self.diagnostics: List[Diagnostic] = []
        self._reported: Set[tuple] = set()

    # -- reporting ------------------------------------------------------

    def report(self, code: str, message: str, span: SpanPair,
               severity: Optional[Severity] = None) -> None:
        key = (code, message, span)
        if key in self._reported:
            return
        self._reported.add(key)
        self.diagnostics.append(_diag(code, message, self.source, span,
                                      self.line, self.context, severity))

    # -- dispatch -------------------------------------------------------

    def visit(self, node: Node, env: Dict[str, Interval]) -> Interval:
        if isinstance(node, Number):
            return Interval.point(node.value)
        if isinstance(node, Variable):
            return self._visit_variable(node, env)
        if isinstance(node, Unary):
            return self._visit_unary(node, env)
        if isinstance(node, Binary):
            return self._visit_binary(node, env)
        if isinstance(node, Conditional):
            return self._visit_conditional(node, env)
        if isinstance(node, Call):
            return self._visit_call(node, env)
        return TOP

    def _visit_variable(self, node: Variable,
                        env: Dict[str, Interval]) -> Interval:
        try:
            return env[node.name]
        except KeyError:
            self.report("AVD101",
                        "unbound variable %r (environment provides %s)"
                        % (node.name, sorted(env) or "nothing"), node.span)
            return TOP

    def _visit_unary(self, node: Unary,
                     env: Dict[str, Interval]) -> Interval:
        operand = self.visit(node.operand, env)
        if node.op == "-":
            return iv.neg(operand)
        if node.op == "not":
            return _invert(_truthiness(operand))
        return TOP

    def _visit_binary(self, node: Binary,
                      env: Dict[str, Interval]) -> Interval:
        op = node.op
        if op in ("and", "or"):
            return self._visit_boolean(node, env)
        left = self.visit(node.left, env)
        right = self.visit(node.right, env)
        if op == "+":
            return iv.add(left, right)
        if op == "-":
            return iv.sub(left, right)
        if op == "*":
            return iv.mul(left, right)
        if op == "/":
            return self._visit_division(node, left, right)
        if op == "^":
            outcome = iv.power(left, right)
            if outcome.error == "always":
                self.report("AVD106",
                            "power %s always fails (base %s, exponent %s)"
                            % (_excerpt(self.source, node.span),
                               left, right), node.span)
            elif outcome.error == "possible":
                self.report("AVD107",
                            "power %s can fail (base %s, exponent %s)"
                            % (_excerpt(self.source, node.span),
                               left, right), node.span)
            return outcome.interval
        if op in _COMPARISONS:
            return iv.compare(op, left, right)
        return TOP

    def _visit_division(self, node: Binary, left: Interval,
                        right: Interval) -> Interval:
        if right.is_zero:
            self.report("AVD104",
                        "division by zero: denominator %s is always 0"
                        % _excerpt(self.source, node.right.span), node.span)
            return TOP
        if right.contains_zero:
            self.report("AVD105",
                        "possible division by zero: denominator %s ranges "
                        "over %s" % (_excerpt(self.source, node.right.span),
                                     right), node.span)
            return TOP
        return iv.divide(left, right)

    def _visit_boolean(self, node: Binary,
                       env: Dict[str, Interval]) -> Interval:
        left = _truthiness(self.visit(node.left, env))
        if node.op == "and":
            if left.definitely_false:
                return FALSE  # right never evaluated
            right = _truthiness(self.visit(node.right, env))
            if left.definitely_true:
                return right
            if right.definitely_false:
                return FALSE
            return BOOL
        # "or"
        if left.definitely_true:
            return TRUE  # right never evaluated
        right = _truthiness(self.visit(node.right, env))
        if left.definitely_false:
            return right
        if right.definitely_true:
            return TRUE
        return BOOL

    def _visit_conditional(self, node: Conditional,
                           env: Dict[str, Interval]) -> Interval:
        condition = _truthiness(self.visit(node.condition, env))
        if condition.definitely_true:
            self.report("AVD108",
                        "branch %s is unreachable: condition %s is always "
                        "true on the declared domain"
                        % (_excerpt(self.source, node.if_false.span),
                           _excerpt(self.source, node.condition.span)),
                        node.if_false.span)
            return self.visit(node.if_true, env)
        if condition.definitely_false:
            self.report("AVD108",
                        "branch %s is unreachable: condition %s is always "
                        "false on the declared domain"
                        % (_excerpt(self.source, node.if_true.span),
                           _excerpt(self.source, node.condition.span)),
                        node.if_true.span)
            return self.visit(node.if_false, env)
        results = []
        true_env = _refine(env, node.condition, take_true=True)
        if true_env is not None:
            results.append(self.visit(node.if_true, true_env))
        false_env = _refine(env, node.condition, take_true=False)
        if false_env is not None:
            results.append(self.visit(node.if_false, false_env))
        if not results:
            return TOP
        return iv.envelope(results)

    # -- calls ----------------------------------------------------------

    def _visit_call(self, node: Call, env: Dict[str, Interval]) -> Interval:
        name = node.name
        if name not in BUILTIN_FUNCTIONS:
            self.report("AVD103", "unknown function %r" % name, node.span)
            return TOP
        low, high = FUNCTION_ARITY[name]
        count = len(node.args)
        if count < low or (high is not None and count > high):
            self.report("AVD103",
                        "function %r takes %s args, got %d"
                        % (name,
                           low if high == low
                           else "%d..%s" % (low, high or "n"), count),
                        node.span)
            return TOP
        args = [self.visit(arg, env) for arg in node.args]
        return self._transfer(node, name, args)

    def _transfer(self, node: Call, name: str,
                  args: List[Interval]) -> Interval:
        span = node.span
        if name == "max":
            return Interval(max(a.lo for a in args), max(a.hi for a in args))
        if name == "min":
            return Interval(min(a.lo for a in args), min(a.hi for a in args))
        if name == "abs":
            return _abs_interval(args[0])
        if name in ("floor", "ceil"):
            return self._integral(name, args[0], span)
        if name == "round":
            return self._round(node, args, span)
        if name == "exp":
            return self._exp(args[0], span)
        if name in ("log", "log2", "log10"):
            return self._log(name, args, span)
        if name == "sqrt":
            return self._sqrt(args[0], span)
        if name == "pow":
            return self._pow(args, span)
        if name == "clamp":
            return self._clamp(args, span)
        return TOP

    def _integral(self, name: str, value: Interval, span: SpanPair) -> Interval:
        if not (math.isfinite(value.lo) and math.isfinite(value.hi)):
            # floor/ceil/round raise OverflowError on infinite input,
            # and an unbounded argument may overflow to inf at runtime.
            self.report("AVD107",
                        "argument of %s() is unbounded and may overflow"
                        % name, span)
            return TOP
        fn = math.floor if name == "floor" else math.ceil
        return Interval(float(fn(value.lo)), float(fn(value.hi)))

    def _round(self, node: Call, args: List[Interval], span: SpanPair) -> Interval:
        value = args[0]
        if not (math.isfinite(value.lo) and math.isfinite(value.hi)):
            self.report("AVD107",
                        "argument of round() is unbounded and may overflow",
                        span)
            return TOP
        if len(args) == 1:
            return Interval(float(round(value.lo)), float(round(value.hi)))
        ndigits = args[1]
        if not (ndigits.is_point and float(ndigits.lo).is_integer()):
            self.report("AVD107",
                        "round() digit count is not a fixed integer", span)
        magnitude = 2.0 * max(abs(value.lo), abs(value.hi))
        return Interval(-magnitude, magnitude)

    def _exp(self, value: Interval, span: SpanPair) -> Interval:
        if value.hi > _EXP_OVERFLOW:
            self.report("AVD107",
                        "exp() argument reaches %s and can overflow"
                        % value, span)
            return Interval(0.0, math.inf)
        lo = math.exp(value.lo) if math.isfinite(value.lo) else 0.0
        return Interval(lo, math.exp(value.hi))

    def _log(self, name: str, args: List[Interval], span: SpanPair) -> Interval:
        value = args[0]
        if value.hi <= 0.0:
            self.report("AVD106",
                        "%s() argument %s is never positive"
                        % (name, value), span)
            return TOP
        if value.lo <= 0.0:
            self.report("AVD107",
                        "%s() argument %s can be non-positive"
                        % (name, value), span)
        if name == "log" and len(args) == 2:
            base = args[1]
            if base.hi <= 0.0 or (base.is_point and base.lo == 1.0):
                self.report("AVD106",
                            "log() base %s is never valid" % base, span)
                return TOP
            if base.lo <= 0.0 or base.contains(1.0):
                self.report("AVD107",
                            "log() base %s can be invalid (non-positive "
                            "or 1)" % base, span)
            return TOP
        fn = {"log": math.log, "log2": math.log2, "log10": math.log10}[name]
        lo = fn(value.lo) if value.lo > 0.0 else -math.inf
        hi = fn(value.hi) if math.isfinite(value.hi) else math.inf
        return Interval(lo, hi)

    def _sqrt(self, value: Interval, span: SpanPair) -> Interval:
        if value.hi < 0.0:
            self.report("AVD106",
                        "sqrt() argument %s is always negative" % value,
                        span)
            return TOP
        if value.lo < 0.0:
            self.report("AVD107",
                        "sqrt() argument %s can be negative" % value, span)
        lo = math.sqrt(max(value.lo, 0.0))
        hi = math.sqrt(value.hi) if math.isfinite(value.hi) else math.inf
        return Interval(lo, hi)

    def _pow(self, args: List[Interval], span: SpanPair) -> Interval:
        outcome = iv.power(args[0], args[1])
        if outcome.error == "always":
            self.report("AVD106",
                        "pow(%s, %s) always fails" % (args[0], args[1]),
                        span)
        elif outcome.error == "possible":
            self.report("AVD107",
                        "pow(%s, %s) can fail" % (args[0], args[1]), span)
        return outcome.interval

    def _clamp(self, args: List[Interval], span: SpanPair) -> Interval:
        value, low, high = args
        if low.lo > high.hi:
            self.report("AVD106",
                        "clamp() bounds are always inverted (low %s > "
                        "high %s)" % (low, high), span)
            return TOP
        if low.hi > high.lo:
            self.report("AVD107",
                        "clamp() bounds can be inverted (low %s, high %s)"
                        % (low, high), span)
        return Interval(max(value.lo, low.lo), min(max(value.hi, low.hi),
                                                   high.hi))


# -- helpers ------------------------------------------------------------


def _abs_interval(value: Interval) -> Interval:
    if value.lo >= 0.0:
        return value
    if value.hi <= 0.0:
        return iv.neg(value)
    return Interval(0.0, max(-value.lo, value.hi))


def _truthiness(value: Interval) -> Interval:
    if value.definitely_true:
        return TRUE
    if value.definitely_false:
        return FALSE
    return BOOL


def _invert(truth: Interval) -> Interval:
    if truth.definitely_true:
        return FALSE
    if truth.definitely_false:
        return TRUE
    return BOOL


def _excerpt(source: str, span: SpanPair) -> str:
    if span is not None and 0 <= span[0] < span[1] <= len(source):
        return repr(source[span[0]:span[1]])
    return "<expr>"


def _constant(node: Node) -> Optional[float]:
    """The value of a literal (possibly negated) node, else None."""
    if isinstance(node, Number):
        return node.value
    if isinstance(node, Unary) and node.op == "-":
        inner = _constant(node.operand)
        return None if inner is None else -inner
    return None


def _refine(env: Dict[str, Interval], condition: Node,
            take_true: bool) -> Optional[Dict[str, Interval]]:
    """Narrow variable domains under a branch guard.

    Handles ``variable <op> constant`` (either order), ``not``, and
    conjunction/disjunction where one side decides.  Returns None when
    the refinement proves the branch infeasible.  The refined intervals
    over-approximate the guard's solution set, preserving soundness.
    """
    if isinstance(condition, Unary) and condition.op == "not":
        return _refine(env, condition.operand, not take_true)
    if isinstance(condition, Binary):
        if condition.op == "and" and take_true:
            env = _refine(env, condition.left, True)
            if env is None:
                return None
            return _refine(env, condition.right, True)
        if condition.op == "or" and not take_true:
            env = _refine(env, condition.left, False)
            if env is None:
                return None
            return _refine(env, condition.right, False)
        if condition.op in _COMPARISONS:
            return _refine_comparison(env, condition, take_true)
    return env


#: Negation of each comparison operator, for false-branch refinement.
_NEGATED = {"<": ">=", "<=": ">", ">": "<=", ">=": "<",
            "==": "!=", "!=": "=="}

#: Mirror of each operator when its operands are swapped.
_MIRRORED = {"<": ">", "<=": ">=", ">": "<", ">=": "<=",
             "==": "==", "!=": "!="}


def _refine_comparison(env: Dict[str, Interval], condition: Binary,
                       take_true: bool) -> Optional[Dict[str, Interval]]:
    op = condition.op
    if isinstance(condition.left, Variable):
        name, bound = condition.left.name, _constant(condition.right)
    elif isinstance(condition.right, Variable):
        name, bound = condition.right.name, _constant(condition.left)
        op = _MIRRORED[op]
    else:
        return env
    if bound is None or name not in env:
        return env
    if not take_true:
        op = _NEGATED[op]
    current = env[name]
    narrowed = _narrow(current, op, bound)
    if narrowed is None:
        return None
    if narrowed == current:
        return env
    refined = dict(env)
    refined[name] = narrowed
    return refined


def _narrow(interval: Interval, op: str, bound: float) -> Optional[Interval]:
    """Intersect ``interval`` with a closed over-approximation of
    ``{x : x <op> bound}``; None when empty."""
    if op in ("<", "<="):
        return interval.intersect(Interval(-math.inf, bound))
    if op in (">", ">="):
        return interval.intersect(Interval(bound, math.inf))
    if op == "==":
        return interval.intersect(Interval.point(bound))
    return interval  # "!=" removes a single point: nothing to narrow


# -- site-specific analyses ---------------------------------------------


def _subsample(values: Sequence, cap: int) -> List:
    """At most ``cap`` values, always keeping the first and last."""
    if len(values) <= cap:
        return list(values)
    step = max(1, len(values) // (cap - 1))
    picked = list(values[::step])
    if picked[-1] != values[-1]:
        picked.append(values[-1])
    return picked


def analyze_performance(expression: Union[str, Node, Expression],
                        counts: Sequence[int], *, context: str = "",
                        line: int = -1,
                        sample_cap: int = 33) -> List[Diagnostic]:
    """Lint a ``performance`` expression over its declared ``nActive``
    counts: runtime-safety (interval analysis) plus monotonicity
    (``AVD109``) and positivity (``AVD110``) sampling."""
    counts = sorted(counts)
    analysis = analyze_expression(
        expression, {"n": Interval(float(counts[0]), float(counts[-1]))},
        context=context, require_used=("n",), line=line)
    diagnostics = list(analysis.diagnostics)
    source = analysis.source

    previous = None
    monotone_reported = positive_reported = False
    for count in _subsample(counts, sample_cap):
        try:
            value = evaluate(parse(source), {"n": float(count)})
        except ExpressionError:
            continue  # reachable-error diagnostics already cover this
        if not positive_reported and value <= 0.0:
            diagnostics.append(Diagnostic.new(
                "AVD110",
                "throughput is %g at n=%d; performance should be positive "
                "on the declared domain" % (value, count),
                span=Span(line=line, source=source), context=context))
            positive_reported = True
        if not monotone_reported and previous is not None \
                and value < previous[1] - 1e-9:
            diagnostics.append(Diagnostic.new(
                "AVD109",
                "throughput decreases from %g at n=%d to %g at n=%d; "
                "adding resources should not lose capacity"
                % (previous[1], previous[0], value, count),
                span=Span(line=line, source=source), context=context))
            monotone_reported = True
        previous = (count, value)
    return diagnostics


def analyze_overhead(expression: Union[str, Node, Expression],
                     counts: Sequence[int],
                     cpi_values: Optional[Sequence[float]] = None, *,
                     context: str = "", line: int = -1,
                     sample_cap: int = 16) -> List[Diagnostic]:
    """Lint an ``mperformance`` expression: runtime safety plus the
    slowdown >= 100% invariant (``AVD111``) the evaluator enforces."""
    counts = sorted(counts)
    env: Dict[str, DomainLike] = {
        "n": Interval(float(counts[0]), float(counts[-1]))}
    if cpi_values:
        env["cpi"] = Interval(float(min(cpi_values)),
                              float(max(cpi_values)))
    analysis = analyze_expression(expression, env, context=context,
                                  line=line)
    diagnostics = list(analysis.diagnostics)
    source = analysis.source

    if analysis.result.hi < 1.0 - 1e-9:
        diagnostics.append(Diagnostic.new(
            "AVD111",
            "slowdown factor is always %s, below 1.0; every evaluation "
            "would be rejected" % analysis.result,
            span=Span(line=line, source=source), context=context,
            severity=Severity.ERROR))
        return diagnostics

    node = parse(source)
    for cpi in _subsample(list(cpi_values or [None]), sample_cap):
        for count in _subsample(counts, sample_cap):
            point_env = {"n": float(count)}
            if cpi is not None:
                point_env["cpi"] = float(cpi)
            try:
                factor = evaluate(node, point_env)
            except ExpressionError:
                continue
            if factor < 1.0 - 1e-9:
                at = "n=%d" % count
                if cpi is not None:
                    at += ", cpi=%g" % cpi
                diagnostics.append(Diagnostic.new(
                    "AVD111",
                    "slowdown factor %.4g < 1 at %s; mperformance must "
                    "be >= 100%%" % (factor, at),
                    span=Span(line=line, source=source), context=context))
                return diagnostics
    return diagnostics
