"""Diagnostics core: severities, source spans, diagnostics, reports.

A :class:`Diagnostic` is one finding of the static-analysis pass: a
stable code (``AVD104``), a severity, a message, an optional source
:class:`Span`, and an optional *context* naming the model element it
concerns (``"tier 'web' option 'rA' performance"``).  A
:class:`LintReport` aggregates diagnostics and renders them as text for
humans or JSON for CI; JSON output round-trips through
:meth:`LintReport.from_json`.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Tuple


class Severity(enum.Enum):
    """How bad a diagnostic is: gate (error) vs. advice (warning, info)."""

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class Span:
    """Where in the source a diagnostic points.

    ``line`` is the 1-based line of a spec document (-1 when unknown);
    ``start``/``end`` are 0-based character offsets into ``source``
    (an expression string), -1 when unknown.  Either half may be absent:
    a model-level finding has only a line, an expression finding inside
    an embedded model has only offsets.
    """

    line: int = -1
    start: int = -1
    end: int = -1
    source: str = ""

    def describe(self) -> str:
        parts: List[str] = []
        if self.line >= 0:
            parts.append("line %d" % self.line)
        if self.start >= 0:
            parts.append("col %d-%d" % (self.start + 1, max(self.end, self.start + 1)))
        if self.source:
            excerpt = self.source
            if 0 <= self.start < self.end <= len(self.source):
                excerpt = self.source[self.start:self.end]
            parts.append("in %r" % excerpt)
        return ", ".join(parts)

    def to_dict(self) -> Dict[str, object]:
        return {"line": self.line, "start": self.start, "end": self.end,
                "source": self.source}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "Span":
        return cls(line=int(data.get("line", -1)),
                   start=int(data.get("start", -1)),
                   end=int(data.get("end", -1)),
                   source=str(data.get("source", "")))


@dataclass(frozen=True)
class Diagnostic:
    """One static-analysis finding with a stable, machine-checkable code."""

    code: str
    severity: Severity
    message: str
    span: Optional[Span] = None
    context: str = ""

    @classmethod
    def new(cls, code: str, message: str, span: Optional[Span] = None,
            context: str = "",
            severity: Optional[Severity] = None) -> "Diagnostic":
        """Build a diagnostic, defaulting severity from the code registry."""
        from .codes import default_severity
        return cls(code, severity if severity is not None
                   else default_severity(code), message, span, context)

    def legacy_text(self) -> str:
        """The pre-lint string form (``context: message``), kept stable
        for :func:`repro.model.validation.collect_problems`."""
        if self.context:
            return "%s: %s" % (self.context, self.message)
        return self.message

    def format(self) -> str:
        """One-line human-readable rendering."""
        text = "%s %s: %s" % (self.code, self.severity, self.legacy_text())
        if self.span is not None:
            located = self.span.describe()
            if located:
                text += " [%s]" % located
        return text

    def to_dict(self) -> Dict[str, object]:
        data: Dict[str, object] = {
            "code": self.code,
            "severity": self.severity.value,
            "message": self.message,
            "context": self.context,
        }
        if self.span is not None:
            data["span"] = self.span.to_dict()
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "Diagnostic":
        span_data = data.get("span")
        return cls(code=str(data["code"]),
                   severity=Severity(str(data["severity"])),
                   message=str(data["message"]),
                   span=Span.from_dict(span_data)  # type: ignore[arg-type]
                   if isinstance(span_data, dict) else None,
                   context=str(data.get("context", "")))


class LintReport:
    """An ordered collection of diagnostics with renderers and exit codes."""

    def __init__(self, diagnostics: Iterable[Diagnostic] = ()):
        self.diagnostics: List[Diagnostic] = list(diagnostics)

    # -- aggregation ----------------------------------------------------

    def add(self, diagnostic: Diagnostic) -> None:
        self.diagnostics.append(diagnostic)

    def extend(self, diagnostics: Iterable[Diagnostic]) -> None:
        self.diagnostics.extend(diagnostics)

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.diagnostics)

    def __len__(self) -> int:
        return len(self.diagnostics)

    def by_severity(self, severity: Severity) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is severity]

    @property
    def errors(self) -> List[Diagnostic]:
        return self.by_severity(Severity.ERROR)

    @property
    def warnings(self) -> List[Diagnostic]:
        return self.by_severity(Severity.WARNING)

    @property
    def infos(self) -> List[Diagnostic]:
        return self.by_severity(Severity.INFO)

    @property
    def has_errors(self) -> bool:
        return bool(self.errors)

    def counts(self) -> Tuple[int, int, int]:
        """(errors, warnings, infos)."""
        return (len(self.errors), len(self.warnings), len(self.infos))

    def exit_code(self, strict: bool = False) -> int:
        """Process exit code: 1 when gating findings exist, else 0."""
        if self.has_errors:
            return 1
        if strict and self.warnings:
            return 1
        return 0

    # -- rendering ------------------------------------------------------

    def summary(self) -> str:
        errors, warnings, infos = self.counts()
        return ("%d error(s), %d warning(s), %d info(s)"
                % (errors, warnings, infos))

    def to_text(self) -> str:
        """Human-readable multi-line rendering (errors first)."""
        if not self.diagnostics:
            return "ok: no problems found"
        order = {Severity.ERROR: 0, Severity.WARNING: 1, Severity.INFO: 2}
        ordered = sorted(self.diagnostics,
                         key=lambda d: (order[d.severity], d.code))
        lines = [diagnostic.format() for diagnostic in ordered]
        lines.append(self.summary())
        return "\n".join(lines)

    def to_json(self, indent: Optional[int] = 2) -> str:
        """Machine-readable rendering; parses back via :meth:`from_json`."""
        errors, warnings, infos = self.counts()
        payload = {
            "diagnostics": [d.to_dict() for d in self.diagnostics],
            "summary": {"errors": errors, "warnings": warnings,
                        "infos": infos},
        }
        return json.dumps(payload, indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "LintReport":
        payload = json.loads(text)
        return cls(Diagnostic.from_dict(item)
                   for item in payload["diagnostics"])

    def __repr__(self) -> str:
        return "LintReport(%s)" % self.summary()
