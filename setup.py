"""Packaging for the Aved reproduction.

Classic setup.py metadata (no pyproject [build-system]) is deliberate:
this project targets offline environments, and PEP 517 build isolation
would try to download setuptools/wheel from an index on every
``pip install -e .``.  Without a pyproject.toml, pip takes the legacy
editable path, which works entirely offline.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=("Aved: automated system design for availability "
                 "(reproduction of Janakiraman, Santos & Turner, "
                 "DSN 2004)"),
    long_description=open("README.md").read(),
    long_description_content_type="text/markdown",
    python_requires=">=3.9",
    install_requires=["numpy", "scipy"],
    extras_require={"test": ["pytest", "pytest-benchmark", "hypothesis"]},
    package_dir={"": "src"},
    packages=find_packages(where="src"),
)
