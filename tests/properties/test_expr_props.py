"""Property-based tests for the expression language."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.expr import Expression, parse

values = st.floats(min_value=-1e6, max_value=1e6,
                   allow_nan=False, allow_infinity=False)
positives = st.floats(min_value=1e-3, max_value=1e6, allow_nan=False)

names = st.sampled_from(["a", "b", "c", "n", "cpi", "x"])


@st.composite
def arithmetic_sources(draw, depth=0):
    """Generate random well-formed arithmetic expressions over a, b."""
    if depth >= 3 or draw(st.booleans()):
        choice = draw(st.integers(min_value=0, max_value=2))
        if choice == 0:
            return "%.6g" % draw(st.floats(min_value=-100, max_value=100,
                                           allow_nan=False))
        return draw(st.sampled_from(["a", "b"]))
    left = draw(arithmetic_sources(depth=depth + 1))
    right = draw(arithmetic_sources(depth=depth + 1))
    op = draw(st.sampled_from(["+", "-", "*"]))
    return "(%s %s %s)" % (left, op, right)


class TestParserProperties:
    @given(arithmetic_sources())
    @settings(max_examples=200)
    def test_generated_expressions_parse(self, source):
        parse(source)

    @given(arithmetic_sources(), values, values)
    @settings(max_examples=200)
    def test_evaluation_matches_python(self, source, a, b):
        ours = Expression(source)(a=a, b=b)
        theirs = eval(source, {"__builtins__": {}}, {"a": a, "b": b})
        assert math.isclose(ours, float(theirs), rel_tol=1e-9,
                            abs_tol=1e-9)

    @given(values, values)
    def test_max_min_consistent(self, a, b):
        assert Expression("max(a,b)")(a=a, b=b) == max(a, b)
        assert Expression("min(a,b)")(a=a, b=b) == min(a, b)

    @given(values)
    def test_double_negation_identity(self, a):
        assert Expression("--a")(a=a) == a

    @given(values, values)
    def test_comparison_trichotomy(self, a, b):
        lt = Expression("a < b")(a=a, b=b)
        eq = Expression("a == b")(a=a, b=b)
        gt = Expression("a > b")(a=a, b=b)
        assert lt + eq + gt == 1.0

    @given(values, values, values)
    def test_ternary_equivalence(self, a, b, c):
        via_ternary = Expression("a < b ? b : c")(a=a, b=b, c=c)
        via_python = b if a < b else c
        assert via_ternary == via_python

    @given(positives, st.integers(min_value=1, max_value=1000))
    def test_table1_overhead_always_at_least_one(self, cpi, n):
        source = "n < 30 ? max(10/cpi, 100%) : max(n/(3*cpi), 100%)"
        assert Expression(source)(n=n, cpi=cpi) >= 1.0

    @given(st.integers(min_value=1, max_value=1000))
    def test_table1_performance_positive_increasing(self, n):
        perf = Expression("(10*n)/(1+0.004*n)")
        assert perf(n=n) > 0
        assert perf(n=n + 1) > perf(n=n)
