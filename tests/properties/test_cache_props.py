"""Property-based tests for the tier-evaluation store's invariants.

Two properties carry the cache's correctness story:

* **round-trip exactness** -- any solve the store accepts comes back
  serialized-identical in canonical form (floats included, because
  canonical JSON float repr round-trips the underlying double); and
* **total corruption detection** -- *any* single-byte change to an
  entry file (flip, insert, delete, truncate) is detected on read and
  the entry is never served.  The digest header covers the raw stored
  bytes, so this holds by construction, and hypothesis hunts for the
  counterexamples a parse/re-serialize checksum would allow.
"""

import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.availability import (FailureModeEntry, MarkovEngine,
                                TierAvailabilityModel)
from repro.cache import TierEvaluationStore, entry_key
from repro.cache.store import (tier_result_from_payload,
                               tier_result_to_payload)
from repro.lint.canonical import canonical_json, canonical_key
from repro.units import Duration

ENGINE_ID = "markov@1"

mtbf_days = st.floats(min_value=5.0, max_value=2000.0, allow_nan=False)
mttr_hours = st.floats(min_value=0.05, max_value=100.0, allow_nan=False)
failover_minutes = st.floats(min_value=0.1, max_value=60.0,
                             allow_nan=False)


@st.composite
def tier_models(draw, max_n=6):
    n = draw(st.integers(min_value=1, max_value=max_n))
    m = draw(st.integers(min_value=1, max_value=n))
    s = draw(st.integers(min_value=0, max_value=2))
    mode = FailureModeEntry(
        "hard",
        Duration.days(draw(mtbf_days)),
        Duration.hours(draw(mttr_hours)),
        Duration.minutes(draw(failover_minutes)),
        spare_susceptible=draw(st.booleans()))
    return TierAvailabilityModel("t", n=n, m=m, s=s, modes=(mode,))


@pytest.fixture(scope="module")
def store_root(tmp_path_factory):
    return str(tmp_path_factory.mktemp("prop-cache"))


class TestRoundTripProperties:
    @given(tier_models())
    @settings(max_examples=40, deadline=None)
    def test_store_round_trip_is_serialized_identical(self, store_root,
                                                      model):
        store = TierEvaluationStore(store_root, scrub=False)
        result = MarkovEngine().evaluate_tier(model)
        assert store.put(ENGINE_ID, model, result)
        cached = store.get(ENGINE_ID, model)
        assert cached is not None
        assert canonical_json(tier_result_to_payload(cached)) \
            == canonical_json(tier_result_to_payload(result))
        # And again via a cold open (disk path, no memory LRU).
        cold = TierEvaluationStore(store_root, scrub=False,
                                   memory_entries=0)
        reread = cold.get(ENGINE_ID, model)
        assert canonical_json(tier_result_to_payload(reread)) \
            == canonical_json(tier_result_to_payload(result))

    @given(tier_models())
    @settings(max_examples=40, deadline=None)
    def test_payload_codec_round_trips(self, model):
        payload = tier_result_to_payload(
            MarkovEngine().evaluate_tier(model))
        rebuilt = tier_result_from_payload(payload)
        assert canonical_json(tier_result_to_payload(rebuilt)) \
            == canonical_json(payload)


class TestCorruptionDetectionProperties:
    @given(model=tier_models(), data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_any_single_byte_mutation_is_detected(self, store_root,
                                                  model, data):
        store = TierEvaluationStore(store_root, scrub=False,
                                    memory_entries=0)
        result = MarkovEngine().evaluate_tier(model)
        assert store.put(ENGINE_ID, model, result)
        path = store.entry_path(entry_key(ENGINE_ID,
                                          canonical_key(model)))
        original = open(path, "rb").read()
        position = data.draw(st.integers(min_value=0,
                                         max_value=len(original) - 1),
                             label="position")
        kind = data.draw(st.sampled_from(("flip", "set", "insert",
                                          "delete", "truncate")),
                         label="mutation")
        if kind == "flip":
            bit = data.draw(st.integers(min_value=0, max_value=7),
                            label="bit")
            mutated = (original[:position]
                       + bytes([original[position] ^ (1 << bit)])
                       + original[position + 1:])
        elif kind == "set":
            value = data.draw(st.integers(min_value=0, max_value=255),
                              label="byte")
            if value == original[position]:
                value ^= 0xFF
            mutated = (original[:position] + bytes([value])
                       + original[position + 1:])
        elif kind == "insert":
            value = data.draw(st.integers(min_value=0, max_value=255),
                              label="byte")
            mutated = (original[:position] + bytes([value])
                       + original[position:])
        elif kind == "delete":
            mutated = original[:position] + original[position + 1:]
        else:
            mutated = original[:position]
        try:
            with open(path, "wb") as handle:
                handle.write(mutated)
            assert store.get(ENGINE_ID, model) is None, \
                "mutated entry (%s at byte %d) was served" \
                % (kind, position)
        finally:
            # get() quarantines the mutated file; put the good entry
            # back so later examples start clean.
            if not os.path.exists(os.path.dirname(path)):
                os.makedirs(os.path.dirname(path), exist_ok=True)
            with open(path, "wb") as handle:
                handle.write(original)
