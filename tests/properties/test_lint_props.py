"""Property-based soundness tests for the lint interval analyzer.

The analyzer's contract (``ExpressionAnalysis.provably_safe``): when an
analysis reports none of the :data:`repro.lint.codes.
RUNTIME_ERROR_CODES`, *no* environment drawn from the declared domains
can make the evaluator raise :class:`~repro.errors.ExpressionError`.
These tests drive random expressions over random domains and check the
contrapositive at sampled points: a runtime error implies the analyzer
flagged the hazard.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ExpressionError
from repro.expr import evaluate, parse
from repro.lint import Interval, analyze_expression

VARIABLES = ("n", "x")


@st.composite
def domains(draw):
    low = draw(st.floats(min_value=-50.0, max_value=50.0,
                         allow_nan=False))
    width = draw(st.floats(min_value=0.0, max_value=25.0,
                           allow_nan=False))
    return Interval(low, low + width)


@st.composite
def sources(draw, depth=0):
    """Random well-formed expressions over the ``VARIABLES``.

    The grammar deliberately includes every hazard the analyzer rules
    on: division, ``log``/``sqrt`` domains, integer powers, guarded
    conditionals.
    """
    if depth >= 3 or draw(st.booleans()):
        if draw(st.booleans()):
            return "%.6g" % draw(st.floats(min_value=-20.0, max_value=20.0,
                                           allow_nan=False))
        return draw(st.sampled_from(VARIABLES))
    kind = draw(st.integers(min_value=0, max_value=4))
    left = draw(sources(depth=depth + 1))
    right = draw(sources(depth=depth + 1))
    if kind == 0:
        op = draw(st.sampled_from(["+", "-", "*"]))
        return "(%s %s %s)" % (left, op, right)
    if kind == 1:
        return "(%s / %s)" % (left, right)
    if kind == 2:
        fn = draw(st.sampled_from(["sqrt", "log", "abs", "floor"]))
        return "%s(%s)" % (fn, left)
    if kind == 3:
        return "(%s ^ %d)" % (left, draw(st.integers(min_value=-1,
                                                     max_value=3)))
    op = draw(st.sampled_from(["<", "<=", ">", ">=", "==", "!="]))
    bound = "%.6g" % draw(st.floats(min_value=-20.0, max_value=20.0,
                                    allow_nan=False))
    variable = draw(st.sampled_from(VARIABLES))
    return "(%s %s %s ? %s : %s)" % (variable, op, bound, left, right)


def sample(draw_float, interval):
    """One point inside ``interval``."""
    return draw_float(st.floats(min_value=interval.lo,
                                max_value=interval.hi,
                                allow_nan=False))


class TestRuntimeSafetySoundness:
    @given(data=st.data())
    @settings(max_examples=300, derandomize=True)
    def test_runtime_error_implies_flagged(self, data):
        env_domains = {name: data.draw(domains(), label="domain:" + name)
                       for name in VARIABLES}
        source = data.draw(sources(), label="source")
        analysis = analyze_expression(source, env_domains)
        node = parse(source)
        for attempt in range(3):
            env = {name: sample(data.draw, interval)
                   for name, interval in env_domains.items()}
            try:
                value = evaluate(node, env)
            except ExpressionError:
                assert not analysis.provably_safe, (
                    "evaluator raised on %r with %r but the analysis "
                    "claimed provable safety" % (source, env))
                return
            if analysis.provably_safe and math.isfinite(value) \
                    and not analysis.result.contains(value):
                # The result interval must also contain the value, up
                # to a sliver of floating-point rounding headroom.
                slack = 1e-9 * max(1.0, abs(value))
                assert analysis.result.lo - slack <= value \
                    <= analysis.result.hi + slack, (
                        "value %r of %r escapes interval %r"
                        % (value, source, analysis.result))

    @given(data=st.data())
    @settings(max_examples=200, derandomize=True)
    def test_safe_verdict_never_raises(self, data):
        """The direct form of the contract, on expressions the analyzer
        actually certifies (guarded divisions, tame domains)."""
        interval = data.draw(domains())
        shifted = Interval(interval.lo + 1.0, interval.hi + 1.0)
        source = data.draw(st.sampled_from([
            "100 / (abs(n) + 1)",
            # Note the guard at 1, not 0: false-branch refinement keeps
            # the *closed* bound [1, inf), so the denominator stays
            # provably nonzero (a guard at 0 would leave 0 reachable).
            "n <= 1 ? 1 - n : 100 / n",
            "log(abs(n) + 1) * x",
            "sqrt(abs(n * x))",
            "(n + x) ^ 2",
            "max(n, x) - min(n, x)",
        ]))
        env_domains = {"n": interval, "x": shifted}
        analysis = analyze_expression(source, env_domains)
        assert analysis.provably_safe
        node = parse(source)
        for attempt in range(3):
            env = {name: sample(data.draw, domain)
                   for name, domain in env_domains.items()}
            evaluate(node, env)  # must not raise
