"""Property-based tests for spec round-tripping."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model import (AvailabilityMechanism, ComponentSlot, ComponentType,
                         CostSchedule, FailureMode, InfrastructureModel,
                         MechanismParameter, MechanismRef, ResourceType,
                         TableEffect)
from repro.spec import parse_infrastructure, write_infrastructure
from repro.units import Duration, EnumeratedRange

component_names = st.sampled_from(
    ["alpha", "beta", "gamma", "delta", "epsilon"])
costs = st.floats(min_value=0.0, max_value=1e6, allow_nan=False)
days = st.floats(min_value=0.5, max_value=5000.0, allow_nan=False)
hours = st.floats(min_value=0.0, max_value=200.0, allow_nan=False)


@st.composite
def infrastructures(draw):
    """Random small but valid infrastructure models."""
    names = draw(st.lists(component_names, min_size=1, max_size=4,
                          unique=True))
    levels = EnumeratedRange(["lo", "hi"])
    parameter = MechanismParameter("level", levels)
    mechanism = AvailabilityMechanism(
        "contract",
        parameters=(parameter,),
        effects={
            "cost": TableEffect.from_values(
                parameter, [draw(costs), draw(costs)]),
            "mttr": TableEffect.from_values(
                parameter, [Duration.hours(draw(hours) + 0.1),
                            Duration.hours(draw(hours) + 0.1)]),
        })
    components = []
    for name in names:
        use_mechanism = draw(st.booleans())
        mttr = (MechanismRef("contract") if use_mechanism
                else Duration.hours(draw(hours)))
        components.append(ComponentType(
            name,
            cost=CostSchedule(inactive=draw(costs), active=draw(costs)),
            failure_modes=(FailureMode(
                "hard", Duration.days(draw(days)), mttr,
                detect_time=Duration.seconds(
                    draw(st.integers(min_value=0, max_value=600)))),)))
    slots = []
    for index, name in enumerate(names):
        parent = names[index - 1] if index else None
        slots.append(ComponentSlot(
            name, parent,
            Duration.seconds(draw(st.integers(min_value=0,
                                              max_value=600)))))
    resource = ResourceType("stack", slots=tuple(slots))
    return InfrastructureModel(components=components,
                               mechanisms=[mechanism],
                               resources=[resource])


class TestSpecRoundTrip:
    @given(infrastructures())
    @settings(max_examples=40, deadline=None)
    def test_write_parse_write_fixed_point(self, infra):
        text = write_infrastructure(infra)
        again = write_infrastructure(parse_infrastructure(text))
        assert text == again

    @given(infrastructures())
    @settings(max_examples=40, deadline=None)
    def test_reparse_preserves_structure(self, infra):
        reparsed = parse_infrastructure(write_infrastructure(infra))
        assert {c.name for c in reparsed.components} == \
            {c.name for c in infra.components}
        original = infra.resource("stack")
        twin = reparsed.resource("stack")
        assert twin.component_names == original.component_names
        for slot in original.slots:
            assert twin.slot(slot.component).depends_on == slot.depends_on

    @given(infrastructures())
    @settings(max_examples=20, deadline=None)
    def test_reparse_preserves_restart_times(self, infra):
        reparsed = parse_infrastructure(write_infrastructure(infra))
        original = infra.resource("stack")
        twin = reparsed.resource("stack")
        for name in original.component_names:
            a = original.restart_time(name).as_seconds
            b = twin.restart_time(name).as_seconds
            assert abs(a - b) < 0.5  # formatting rounds to 4 sig figs


service_names = st.sampled_from(["svc", "shop", "batch", "portal"])
tier_names = st.sampled_from(["web", "app", "db", "cache", "farm"])


@st.composite
def service_models(draw):
    """Random service models using inlineable performance forms."""
    from repro.model import (ConstantPerformance, ExpressionPerformance,
                             FailureScope, MechanismUse, ResourceOption,
                             ServiceModel, Sizing, Tier)
    from repro.units import ArithmeticRange
    tiers = []
    for name in draw(st.lists(tier_names, min_size=1, max_size=3,
                              unique=True)):
        options = []
        for index in range(draw(st.integers(min_value=1, max_value=2))):
            if draw(st.booleans()):
                performance = ExpressionPerformance(
                    "%d*n" % draw(st.integers(1, 500)))
            else:
                performance = ConstantPerformance(
                    draw(st.integers(1, 10_000)))
            mechanisms = ()
            if draw(st.booleans()):
                mechanisms = (MechanismUse("checkpoint"),)
            options.append(ResourceOption(
                "r%d_%s" % (index, name),
                draw(st.sampled_from(list(Sizing))),
                draw(st.sampled_from(list(FailureScope))),
                ArithmeticRange(1, draw(st.integers(2, 500)), 1),
                performance, mechanisms))
        tiers.append(Tier(name, options))
    job_size = draw(st.one_of(st.none(),
                              st.integers(min_value=1,
                                          max_value=100_000)))
    return ServiceModel(draw(service_names), tiers,
                        job_size=float(job_size) if job_size else None)


class TestServiceSpecRoundTrip:
    @given(service_models())
    @settings(max_examples=40, deadline=None)
    def test_write_parse_write_fixed_point(self, service):
        from repro.model import UnityOverhead
        from repro.spec import (DictResolver, parse_service,
                                write_service)
        resolver = DictResolver()  # no refs needed: all inlineable
        text = write_service(service)
        again = write_service(parse_service(text, resolver))
        assert text == again

    @given(service_models())
    @settings(max_examples=40, deadline=None)
    def test_reparse_preserves_semantics(self, service):
        from repro.spec import DictResolver, parse_service, write_service
        twin = parse_service(write_service(service), DictResolver())
        assert twin.name == service.name
        assert twin.job_size == service.job_size
        assert [t.name for t in twin.tiers] == \
            [t.name for t in service.tiers]
        for tier in service.tiers:
            twin_tier = twin.tier(tier.name)
            for option in tier.options:
                twin_option = twin_tier.option_for(option.resource)
                assert twin_option.sizing is option.sizing
                assert twin_option.failure_scope is option.failure_scope
                assert twin_option.active_counts() == \
                    option.active_counts()
                for n in (1, 2):
                    assert twin_option.performance.throughput(n) == \
                        pytest.approx(option.performance.throughput(n))
