"""Property-based tests for RBD composition and Eq. 1."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.availability import (failure_probability, k_of_n_availability,
                                mean_time_per_loss_window,
                                parallel_availability, series_availability,
                                series_unavailability, useful_fraction)
from repro.units import Duration

probabilities = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
prob_lists = st.lists(probabilities, min_size=1, max_size=8)
positive_hours = st.floats(min_value=1e-3, max_value=1e5,
                           allow_nan=False)


class TestRbdProperties:
    @given(prob_lists)
    def test_series_no_better_than_weakest(self, availabilities):
        series = series_availability(availabilities)
        assert series <= min(availabilities) + 1e-12

    @given(prob_lists)
    def test_parallel_no_worse_than_strongest(self, availabilities):
        parallel = parallel_availability(availabilities)
        assert parallel >= max(availabilities) - 1e-12

    @given(prob_lists)
    def test_series_forms_consistent(self, availabilities):
        unavailability = series_unavailability(
            1.0 - a for a in availabilities)
        assert math.isclose(1.0 - unavailability,
                            series_availability(availabilities),
                            rel_tol=1e-12, abs_tol=1e-12)

    @given(prob_lists)
    def test_k_of_n_monotone_in_k(self, availabilities):
        n = len(availabilities)
        values = [k_of_n_availability(k, availabilities)
                  for k in range(n + 1)]
        for a, b in zip(values, values[1:]):
            assert b <= a + 1e-12

    @given(prob_lists, probabilities)
    def test_k_of_n_bounds(self, availabilities, _):
        n = len(availabilities)
        for k in range(n + 1):
            value = k_of_n_availability(k, availabilities)
            assert -1e-12 <= value <= 1.0 + 1e-12


class TestEquation1Properties:
    @given(positive_hours, positive_hours)
    def test_failure_probability_in_unit_interval(self, lw, mtbf):
        p = failure_probability(Duration.hours(lw), Duration.hours(mtbf))
        assert 0.0 <= p <= 1.0

    @given(positive_hours, positive_hours)
    def test_t_lw_at_least_lw(self, lw, mtbf):
        t = mean_time_per_loss_window(Duration.hours(lw),
                                      Duration.hours(mtbf))
        assert not t.is_finite() or t.as_hours >= lw * (1 - 1e-12)

    @given(positive_hours, positive_hours)
    def test_useful_fraction_in_unit_interval(self, lw, mtbf):
        fraction = useful_fraction(Duration.hours(lw),
                                   Duration.hours(mtbf))
        assert 0.0 <= fraction <= 1.0

    @given(positive_hours, positive_hours, positive_hours)
    @settings(max_examples=60)
    def test_useful_fraction_monotone_in_mtbf(self, lw, mtbf, extra):
        worse = useful_fraction(Duration.hours(lw), Duration.hours(mtbf))
        better = useful_fraction(Duration.hours(lw),
                                 Duration.hours(mtbf + extra))
        assert better >= worse - 1e-12

    @given(positive_hours, positive_hours, positive_hours)
    @settings(max_examples=60)
    def test_useful_fraction_antitone_in_window(self, lw, mtbf, extra):
        better = useful_fraction(Duration.hours(lw), Duration.hours(mtbf))
        worse = useful_fraction(Duration.hours(lw + extra),
                                Duration.hours(mtbf))
        assert worse <= better + 1e-12
