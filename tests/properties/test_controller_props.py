"""Property-based tests for the redesign controller and workloads."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Duration, SearchLimits, workload
from repro.core import DesignEvaluator, RedesignController

loads = st.lists(st.floats(min_value=100.0, max_value=4000.0,
                           allow_nan=False), min_size=1, max_size=8)


@pytest.fixture(scope="module")
def evaluator(paper_infra, app_tier_service):
    return DesignEvaluator(paper_infra, app_tier_service)


class TestControllerInvariants:
    @given(loads, st.floats(min_value=0.0, max_value=0.5,
                            allow_nan=False))
    @settings(max_examples=20, deadline=None)
    def test_every_step_meets_slo_or_infeasible(self, evaluator, trail,
                                                hysteresis):
        controller = RedesignController(
            evaluator, "application", Duration.minutes(150),
            SearchLimits(max_redundancy=3), hysteresis=hysteresis)
        report = controller.run(trail)
        assert len(report.steps) == len(trail)
        for step in report.steps:
            if step.design is not None:
                assert step.design.downtime_minutes <= 150 + 1e-9

    @given(loads)
    @settings(max_examples=15, deadline=None)
    def test_reconfigurations_bounded_by_steps(self, evaluator, trail):
        controller = RedesignController(
            evaluator, "application", Duration.minutes(150),
            SearchLimits(max_redundancy=3))
        report = controller.run(trail)
        assert 0 <= report.reconfigurations <= len(trail)
        assert report.reconfigurations + report.infeasible_steps >= 1

    @given(loads)
    @settings(max_examples=15, deadline=None)
    def test_dynamic_never_beats_infeasible_peak(self, evaluator,
                                                 trail):
        controller = RedesignController(
            evaluator, "application", Duration.minutes(150),
            SearchLimits(max_redundancy=3))
        report = controller.run(trail)
        if report.infeasible_steps == 0:
            # Every step's cost <= peak cost, so the average is too.
            assert report.average_cost <= report.static_peak_cost + 1e-6
            assert 0.0 <= report.saving_fraction < 1.0


class TestWorkloadInvariants:
    @given(st.floats(min_value=10.0, max_value=5000.0, allow_nan=False),
           st.floats(min_value=1.0, max_value=20.0, allow_nan=False),
           st.integers(min_value=1, max_value=96))
    def test_diurnal_bounds(self, base, ratio, samples):
        trail = workload.diurnal(base, peak_ratio=ratio,
                                 samples_per_day=samples)
        assert len(trail) == samples
        for value in trail:
            assert base * (1 - 1e-9) <= value <= base * ratio * (1 + 1e-9)

    @given(st.floats(min_value=10.0, max_value=5000.0, allow_nan=False),
           st.floats(min_value=1.0, max_value=50.0, allow_nan=False),
           st.integers(min_value=2, max_value=60))
    def test_flash_crowd_bounds(self, base, ratio, total):
        trail = workload.flash_crowd(base, spike_ratio=ratio,
                                     total_samples=total,
                                     spike_at=total // 2)
        assert max(trail) <= base * ratio * (1 + 1e-9)
        assert min(trail) >= base * (1 - 1e-9)

    @given(st.floats(min_value=10.0, max_value=1000.0, allow_nan=False),
           st.floats(min_value=10.0, max_value=1000.0, allow_nan=False),
           st.integers(min_value=2, max_value=50))
    def test_ramp_monotone(self, start, end, samples):
        trail = workload.ramp(start, end, total_samples=samples)
        if end >= start:
            assert trail == sorted(trail)
        else:
            assert trail == sorted(trail, reverse=True)

    @given(st.lists(st.floats(min_value=1.0, max_value=1e4,
                              allow_nan=False), min_size=1, max_size=50),
           st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
           st.integers(min_value=0, max_value=2**31 - 1))
    def test_noise_positive_and_seeded(self, trail, sigma, seed):
        noisy_a = workload.noisy(trail, sigma=sigma, seed=seed)
        noisy_b = workload.noisy(trail, sigma=sigma, seed=seed)
        assert noisy_a == noisy_b
        assert all(value > 0 for value in noisy_a)
