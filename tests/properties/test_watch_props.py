"""Property-based tests for the watch pipeline's core guarantees.

Three properties carry the continuous-redesign story:

* **permutation/duplication invariance** -- ingestion unions records
  by ``(source, seq)``, so *any* delivery order and *any* amount of
  duplication yields the identical ledger: same aggregates, same load
  samples, same per-source accounting.  Values are drawn as multiples
  of one half so floating-point accumulation is exact and equality can
  be literal.
* **no false triggers** -- a stationary stream (every per-record value
  inside the drift policy's margin band around the spec) can never
  fire the detector, even with the policy weakened to its legal
  minimum (no debounce, single-sample gates).  Spurious redesigns are
  impossible by construction, not by tuning.
* **estimator round-trip** -- feeding the ledger ``k`` identical
  windows of a known true parameter returns exactly that parameter as
  the point estimate (IEEE division of an exact sum), with a
  confidence interval that contains it.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.units import Duration
from repro.watch import (DriftDetector, DriftPolicy, OnlineEstimator,
                         TelemetryLedger)
from repro.watch.events import FAILURE, LOAD, REPAIR, TelemetryEvent

halves = st.integers(min_value=1, max_value=4000).map(
    lambda n: n / 2.0)

SOURCES = ("lb", "ops", "agent")
MODES = ("box.hard", "os.crash")


@st.composite
def telemetry_batches(draw):
    """Events with per-source sequential seqs and exact-sum values."""
    count = draw(st.integers(min_value=1, max_value=40))
    next_seq = {source: 0 for source in SOURCES}
    events = []
    for index in range(count):
        source = draw(st.sampled_from(SOURCES))
        seq = next_seq[source]
        next_seq[source] = seq + 1
        kind = draw(st.sampled_from((LOAD, FAILURE, REPAIR)))
        if kind == LOAD:
            event = TelemetryEvent(LOAD, source, seq, float(index),
                                   "web", value=draw(halves))
        elif kind == FAILURE:
            event = TelemetryEvent(
                FAILURE, source, seq, float(index), "web",
                mode=draw(st.sampled_from(MODES)),
                failures=draw(st.integers(0, 3)),
                exposure_hours=draw(halves))
        else:
            event = TelemetryEvent(
                REPAIR, source, seq, float(index), "web",
                mode=draw(st.sampled_from(MODES)),
                repairs=draw(st.integers(1, 3)),
                repair_hours=draw(halves))
        events.append(event)
    return events


def ingest(events):
    ledger = TelemetryLedger()
    for event in events:
        ledger.add(event)
    return ledger


def ledger_view(ledger):
    """Everything downstream ever reads off a ledger."""
    view = {"snapshot": ledger.snapshot(), "gaps": ledger.gaps(),
            "skewed": ledger.skewed_sources()}
    view["snapshot"].pop("duplicates")  # delivery-dependent by design
    for tier in ledger.tiers():
        view[tier, "load"] = ledger.load_samples(tier)
        for mode in ledger.modes(tier):
            view[tier, mode] = ledger.mode_stats(tier, mode)
    return view


class TestIngestionInvariance:
    @given(batch=telemetry_batches(), data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_any_permutation_and_duplication_is_identical(
            self, batch, data):
        clean = ingest(batch)
        duplicates = data.draw(st.lists(st.sampled_from(batch),
                                        max_size=20))
        mangled = ingest(data.draw(st.permutations(
            batch + duplicates)))
        assert ledger_view(mangled) == ledger_view(clean)
        assert mangled.accepted == clean.accepted == len(batch)
        assert mangled.duplicates == len(duplicates)


class TestNoFalseTriggers:
    #: The weakest policy the validator admits: every statistical
    #: brake off except the margin band itself.
    HAIR_TRIGGER = DriftPolicy(confidence=0.5, min_failures=1,
                               min_repairs=1, min_load_samples=1,
                               debounce=1, cooldown=0)

    @given(data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_stationary_stream_never_fires(self, data):
        spec_load = 150.0
        spec_mtbf, spec_mttr = 1000.0, 24.0
        detector = DriftDetector(
            "web", {"box.hard": Duration.hours(spec_mtbf)},
            {"box.hard": Duration.hours(spec_mttr)}, spec_load,
            self.HAIR_TRIGGER)
        # Per-record values strictly inside each margin band:
        # load within 1.25x, MTBF/MTTR within their 2x factors.
        loads = st.floats(min_value=125.0, max_value=180.0,
                          allow_nan=False)
        exposures = st.floats(min_value=spec_mtbf / 1.9,
                              max_value=spec_mtbf * 1.9,
                              allow_nan=False)
        repair_times = st.floats(min_value=spec_mttr / 1.9,
                                 max_value=spec_mttr * 1.9,
                                 allow_nan=False)
        ledger = TelemetryLedger()
        estimator = OnlineEstimator(ledger)
        seq = 0
        for poll in range(data.draw(st.integers(2, 8))):
            for _ in range(data.draw(st.integers(1, 10))):
                ledger.add(TelemetryEvent(
                    LOAD, "lb", seq, float(seq), "web",
                    value=data.draw(loads)))
                ledger.add(TelemetryEvent(
                    FAILURE, "mon", seq, float(seq), "web",
                    mode="box.hard", failures=1,
                    exposure_hours=data.draw(exposures)))
                ledger.add(TelemetryEvent(
                    REPAIR, "ops", seq, float(seq), "web",
                    mode="box.hard", repairs=1,
                    repair_hours=data.draw(repair_times)))
                seq += 1
            report = detector.observe(estimator)
            assert not report.drifted
            assert report.streak == 0
            assert not report.reasons


class TestEstimatorRoundTrip:
    @given(true_mtbf=halves, k=st.integers(min_value=1, max_value=100))
    @settings(max_examples=60, deadline=None)
    def test_mtbf_point_is_exact_and_interval_contains(
            self, true_mtbf, k):
        ledger = TelemetryLedger()
        for seq in range(k):
            ledger.add(TelemetryEvent(
                FAILURE, "mon", seq, float(seq), "web",
                mode="box.hard", failures=1,
                exposure_hours=true_mtbf))
        estimate = OnlineEstimator(ledger).mtbf("web", "box.hard")
        assert estimate.failures == k
        assert estimate.mtbf.as_hours == true_mtbf
        assert estimate.contains(Duration.hours(true_mtbf))

    @given(true_mttr=halves, k=st.integers(min_value=1, max_value=100))
    @settings(max_examples=60, deadline=None)
    def test_mttr_point_is_exact_and_interval_contains(
            self, true_mttr, k):
        ledger = TelemetryLedger()
        for seq in range(k):
            ledger.add(TelemetryEvent(
                REPAIR, "ops", seq, float(seq), "web",
                mode="box.hard", repairs=1,
                repair_hours=true_mttr))
        estimate = OnlineEstimator(ledger).mttr("web", "box.hard")
        assert estimate.repairs == k
        assert estimate.mttr.as_hours == true_mttr
        assert estimate.contains(Duration.hours(true_mttr))
