"""Differential property suite: batched solves == scalar solves.

Hypothesis drives random tier models through :func:`solve_models` and
the scalar :func:`evaluate_tier` and requires *repr-level* float
equality -- the batched path's claim is bit-identity, not closeness.
Covers singleton batches, mixed-shape batches, duplicate chains, the
chain memo, and the degraded lstsq corner (where both paths fall back
and must still agree).
"""

from unittest import mock

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.availability import (FailureModeEntry, MarkovEngine,
                                TierAvailabilityModel, TierResult)
from repro.availability.markov import evaluate_tier
from repro.batch import solve_models
from repro.units import Duration

mtbf_days = st.floats(min_value=5.0, max_value=2000.0, allow_nan=False)
mttr_hours = st.floats(min_value=0.05, max_value=100.0, allow_nan=False)
failover_minutes = st.floats(min_value=0.1, max_value=60.0,
                             allow_nan=False)


@st.composite
def failure_modes(draw, name="hard", allow_instant=True):
    if allow_instant and draw(st.booleans()) and draw(st.booleans()):
        # The instant-repair closed form (mttr == 0, no failover).
        return FailureModeEntry(
            name, Duration.days(draw(mtbf_days)), Duration.ZERO,
            Duration.ZERO)
    return FailureModeEntry(
        name,
        Duration.days(draw(mtbf_days)),
        Duration.hours(draw(mttr_hours)),
        Duration.minutes(draw(failover_minutes)),
        spare_susceptible=draw(st.booleans()))


@st.composite
def tier_models(draw, max_n=8):
    n = draw(st.integers(min_value=1, max_value=max_n))
    m = draw(st.integers(min_value=1, max_value=n))
    s = draw(st.integers(min_value=0, max_value=3))
    crew = draw(st.one_of(st.none(),
                          st.integers(min_value=1, max_value=n + s)))
    mode_count = draw(st.integers(min_value=1, max_value=3))
    modes = tuple(draw(failure_modes(name="mode%d" % k))
                  for k in range(mode_count))
    return TierAvailabilityModel("t", n=n, m=m, s=s, modes=modes,
                                 repair_crew=crew)


def canonical(result):
    return (repr(result.unavailability),
            tuple((m.mode, repr(m.unavailability),
                   repr(m.failures_per_year), m.used_failover)
                  for m in result.mode_results))


def assert_equivalent(models, **kwargs):
    outcomes = solve_models(models, **kwargs)
    for model, outcome in zip(models, outcomes):
        try:
            scalar = evaluate_tier(model)
        except Exception as scalar_exc:
            assert isinstance(outcome, Exception)
            assert type(outcome) is type(scalar_exc)
            continue
        assert isinstance(outcome, TierResult), outcome
        assert canonical(outcome) == canonical(scalar)


class TestSingletonBatches:
    @given(tier_models())
    @settings(max_examples=80, deadline=None)
    def test_single_model_bit_identical(self, model):
        assert_equivalent([model])

    @given(tier_models())
    @settings(max_examples=40, deadline=None)
    def test_matches_engine_entry_point(self, model):
        """The batched value equals MarkovEngine().evaluate_tier too
        (the engine is a thin wrapper, but it is what the search sees)."""
        outcome, = solve_models([model])
        engine_result = MarkovEngine().evaluate_tier(model)
        assert repr(outcome.unavailability) == \
            repr(engine_result.unavailability)


class TestMixedShapeBatches:
    @given(st.lists(tier_models(max_n=6), min_size=2, max_size=10))
    @settings(max_examples=40, deadline=None)
    def test_batch_bit_identical(self, models):
        assert_equivalent(models)

    @given(tier_models(max_n=6),
           st.integers(min_value=2, max_value=5))
    @settings(max_examples=25, deadline=None)
    def test_duplicated_models_agree(self, model, copies):
        """Identical chains deduped within a batch still produce the
        scalar bits for every copy."""
        assert_equivalent([model] * copies)

    @given(st.lists(tier_models(max_n=6), min_size=1, max_size=6))
    @settings(max_examples=25, deadline=None)
    def test_chain_memo_across_calls(self, models):
        """A second call served from the persistent chain memo equals
        a fresh scalar solve of the same models."""
        memo: dict = {}
        solve_models(models, chain_cache=memo)
        assert_equivalent(models, chain_cache=memo)


class TestDegradedSolves:
    @given(st.lists(tier_models(max_n=5), min_size=1, max_size=5))
    @settings(max_examples=15, deadline=None)
    def test_lstsq_fallback_path_agrees(self, models):
        """With the direct LU solve refusing service, the batched
        ladder lands on the scalar path, whose own lstsq fallback is
        the baseline -- outcomes must still match exactly."""
        real_solve = np.linalg.solve

        def refusing(*args, **kwargs):
            raise np.linalg.LinAlgError("injected singularity")

        with mock.patch.object(np.linalg, "solve", refusing):
            outcomes = solve_models(models)
            scalars = []
            for model in models:
                try:
                    scalars.append(evaluate_tier(model))
                except Exception as exc:
                    scalars.append(exc)
        assert np.linalg.solve is real_solve  # patch released
        for outcome, scalar in zip(outcomes, scalars):
            if isinstance(scalar, Exception):
                assert isinstance(outcome, Exception)
                assert type(outcome) is type(scalar)
            else:
                assert canonical(outcome) == canonical(scalar)
