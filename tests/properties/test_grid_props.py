"""Property: every shard partition builds the byte-identical map.

The grid's whole correctness story rests on partition-independence:
``GridBuilder`` over *any* sharding of the load grid -- singleton
shards, one big shard, shards executed in permuted order -- must
serialize to exactly the bytes of the unsharded
``build_requirement_map`` sweep.  Hypothesis drives the partition;
the canonical JSON is the oracle.
"""

from dataclasses import dataclass, field
from typing import Tuple

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.availability import get_engine
from repro.core import DesignEvaluator
from repro.core.frontier import build_requirement_map
from repro.core.serialize import requirement_map_to_json
from repro.grid import GridBuilder, GridSpec
from repro.model import (AvailabilityMechanism, ComponentSlot,
                         ComponentType, CostSchedule,
                         ExpressionPerformance, FailureMode,
                         FailureScope, InfrastructureModel,
                         MechanismParameter, MechanismRef,
                         ResourceOption, ResourceType, ServiceModel,
                         Sizing, TableEffect, Tier)
from repro.units import ArithmeticRange, Duration, EnumeratedRange


def _tiny_evaluator() -> DesignEvaluator:
    """The top-level conftest's tiny model, built module-level so the
    strategies can share one evaluator and one baseline cache."""
    contract = AvailabilityMechanism(
        "contract",
        parameters=(MechanismParameter(
            "level", EnumeratedRange(["basic", "fast"])),),
        effects={
            "cost": TableEffect("level",
                                (("basic", 100.0), ("fast", 400.0))),
            "mttr": TableEffect("level",
                                (("basic", Duration.hours(24)),
                                 ("fast", Duration.hours(4)))),
        })
    box = ComponentType(
        "box",
        cost=CostSchedule(inactive=500.0, active=1000.0),
        failure_modes=(
            FailureMode("hard", Duration.days(365),
                        MechanismRef("contract"),
                        detect_time=Duration.minutes(1)),
            FailureMode("glitch", Duration.days(30), Duration.ZERO)))
    os_type = ComponentType(
        "os",
        cost=CostSchedule.flat(0.0),
        failure_modes=(
            FailureMode("crash", Duration.days(60), Duration.ZERO),))
    resource = ResourceType(
        "node",
        slots=(ComponentSlot("box", None, Duration.minutes(1)),
               ComponentSlot("os", "box", Duration.minutes(2))),
        reconfig_time=Duration.seconds(30))
    infrastructure = InfrastructureModel(
        components=[box, os_type], mechanisms=[contract],
        resources=[resource])
    option = ResourceOption(
        "node", Sizing.DYNAMIC, FailureScope.RESOURCE,
        ArithmeticRange(1, 100, 1), ExpressionPerformance("100*n"))
    service = ServiceModel("svc", [Tier("web", [option])])
    return DesignEvaluator(infrastructure, service,
                           get_engine("markov"))


EVALUATOR = _tiny_evaluator()
LOAD_POOL = (50.0, 100.0, 175.0, 250.0, 400.0, 550.0)
_BASELINES: dict = {}


def baseline(loads: Tuple[float, ...]) -> str:
    if loads not in _BASELINES:
        _BASELINES[loads] = requirement_map_to_json(
            build_requirement_map(EVALUATOR, "web", loads))
    return _BASELINES[loads]


@dataclass(frozen=True)
class PermutedSpec(GridSpec):
    """A GridSpec whose shards execute in an arbitrary order."""

    order: Tuple[int, ...] = field(default=())

    def shards(self):
        shards = super().shards()
        return [shards[index] for index in self.order]


@st.composite
def grids(draw):
    loads = tuple(sorted(draw(
        st.lists(st.sampled_from(LOAD_POOL), min_size=1, max_size=5,
                 unique=True))))
    shard_size = draw(st.integers(min_value=1,
                                  max_value=len(loads)))
    return loads, shard_size


@st.composite
def permuted_grids(draw):
    loads, shard_size = draw(grids())
    n_shards = -(-len(loads) // shard_size)
    order = tuple(draw(st.permutations(range(n_shards))))
    return loads, shard_size, order


@settings(max_examples=12, deadline=None)
@given(grids())
def test_any_contiguous_partition_matches_the_unsharded_map(grid):
    loads, shard_size = grid
    spec = GridSpec("web", loads, shard_size=shard_size)
    built = GridBuilder(EVALUATOR, spec,
                        sleep=lambda _s: None).build()
    assert requirement_map_to_json(built) == baseline(loads)


@settings(max_examples=12, deadline=None)
@given(permuted_grids())
def test_shard_execution_order_does_not_change_the_bytes(grid):
    loads, shard_size, order = grid
    spec = PermutedSpec("web", loads, shard_size=shard_size,
                        order=order)
    built = GridBuilder(EVALUATOR, spec,
                        sleep=lambda _s: None).build()
    assert requirement_map_to_json(built) == baseline(loads)


@settings(max_examples=8, deadline=None)
@given(grids())
def test_journaled_resume_reuses_rather_than_recomputes(grid):
    # A full build then a resume over the same journal: the second
    # builder reuses every shard and still serializes identically.
    import tempfile
    loads, shard_size = grid
    spec = GridSpec("web", loads, shard_size=shard_size)
    with tempfile.TemporaryDirectory() as tmp:
        journal = tmp + "/grid.jsonl"
        GridBuilder(EVALUATOR, spec, journal_path=journal,
                    sleep=lambda _s: None).build()
        second = GridBuilder(EVALUATOR, spec, journal_path=journal,
                             sleep=lambda _s: None)
        built = second.build()
        assert requirement_map_to_json(built) == baseline(loads)
        assert second.counters["shards_reused"] == \
            len(spec.shards())
