"""Property-based tests for the availability engines' invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.availability import (AnalyticEngine, FailureModeEntry,
                                MarkovEngine, TierAvailabilityModel)
from repro.availability.markov import evaluate_mode
from repro.units import Duration

mtbf_days = st.floats(min_value=5.0, max_value=2000.0, allow_nan=False)
mttr_hours = st.floats(min_value=0.05, max_value=100.0, allow_nan=False)
failover_minutes = st.floats(min_value=0.1, max_value=60.0,
                             allow_nan=False)


@st.composite
def tier_models(draw, max_n=8):
    n = draw(st.integers(min_value=1, max_value=max_n))
    m = draw(st.integers(min_value=1, max_value=n))
    s = draw(st.integers(min_value=0, max_value=3))
    mode = FailureModeEntry(
        "hard",
        Duration.days(draw(mtbf_days)),
        Duration.hours(draw(mttr_hours)),
        Duration.minutes(draw(failover_minutes)),
        spare_susceptible=draw(st.booleans()))
    return TierAvailabilityModel("t", n=n, m=m, s=s, modes=(mode,))


class TestMarkovInvariants:
    @given(tier_models())
    @settings(max_examples=60, deadline=None)
    def test_unavailability_is_probability(self, model):
        result = MarkovEngine().evaluate_tier(model)
        assert 0.0 <= result.unavailability <= 1.0

    @given(tier_models())
    @settings(max_examples=40, deadline=None)
    def test_spares_never_hurt(self, model):
        """An *instantly activating* spare can only reduce unavailability.

        The instant-activation restriction is load-bearing: with a slow
        activation (failover) time, recovery from the deepest states
        becomes repair -> rejoin the spare pool -> activate, a series
        path the in-place chain does not have, so a spare can
        *marginally raise* unavailability at the rare all-slots-down
        margin (see test_slow_activation_spare_can_marginally_hurt).
        """
        mode = model.modes[0]
        instant = FailureModeEntry(mode.name, mode.mtbf, mode.mttr,
                                   Duration.seconds(1.0),
                                   mode.spare_susceptible)
        base_model = TierAvailabilityModel(
            model.name, n=model.n, m=model.m, s=model.s, modes=(instant,))
        more_spares = TierAvailabilityModel(
            model.name, n=model.n, m=model.m, s=model.s + 1,
            modes=(instant,))
        base = MarkovEngine().evaluate_tier(base_model).unavailability
        better = MarkovEngine().evaluate_tier(more_spares).unavailability
        assert better <= base * (1 + 1e-9) + 1e-15

    def test_slow_activation_spare_can_marginally_hurt(self):
        """Regression pin: a slowly-activating spare is not a free win.

        Hypothesis found this counterexample to the unrestricted
        "spares never hurt" claim: at (n=4, m=1), MTTR 1h and a 46m
        activation time, adding one spare *raises* unavailability by
        ~1% relative, because the all-slots-down state now drains
        through repair + activation in series instead of in-place
        repair alone.  The effect is real chain structure, not noise
        or truncation, and stays second-order.
        """
        mode = FailureModeEntry(
            "hard", Duration.days(5.0), Duration.hours(1.0),
            Duration.minutes(46.0), spare_susceptible=False)
        base = MarkovEngine().evaluate_tier(TierAvailabilityModel(
            "t", n=4, m=1, s=0, modes=(mode,))).unavailability
        more = MarkovEngine().evaluate_tier(TierAvailabilityModel(
            "t", n=4, m=1, s=1, modes=(mode,))).unavailability
        assert more > base            # the spare hurts here...
        assert more <= base * 1.02    # ...by a second-order margin

    @given(tier_models())
    @settings(max_examples=40, deadline=None)
    def test_slack_never_hurts(self, model):
        """Lowering m (more slack) can only improve availability."""
        if model.m == 1:
            return
        slacker = TierAvailabilityModel(
            model.name, n=model.n, m=model.m - 1, s=model.s,
            modes=model.modes)
        base = MarkovEngine().evaluate_tier(model).unavailability
        better = MarkovEngine().evaluate_tier(slacker).unavailability
        assert better <= base * (1 + 1e-9) + 1e-15

    @given(tier_models(), st.floats(min_value=1.5, max_value=10.0,
                                    allow_nan=False))
    @settings(max_examples=40, deadline=None)
    def test_faster_repair_never_hurts(self, model, speedup):
        mode = model.modes[0]
        faster = FailureModeEntry(mode.name, mode.mtbf,
                                  Duration(mode.mttr.as_seconds / speedup),
                                  mode.failover_time,
                                  mode.spare_susceptible)
        faster_model = TierAvailabilityModel(
            model.name, n=model.n, m=model.m, s=model.s, modes=(faster,))
        base = MarkovEngine().evaluate_tier(model).unavailability
        better = MarkovEngine().evaluate_tier(faster_model).unavailability
        assert better <= base * (1 + 1e-6) + 1e-15

    @given(tier_models())
    @settings(max_examples=40, deadline=None)
    def test_failures_per_year_bounded_by_total_rate(self, model):
        result = evaluate_mode(model, model.modes[0])
        max_rate = (model.n + model.s) * 365.25 * 24 \
            / model.modes[0].mtbf.as_hours
        assert 0.0 <= result.failures_per_year <= max_rate * 1.01

    @given(tier_models(max_n=6))
    @settings(max_examples=30, deadline=None)
    def test_analytic_is_probability_and_no_worse_than_one(self, model):
        result = AnalyticEngine().evaluate_tier(model)
        assert 0.0 <= result.unavailability <= 1.0

    @given(tier_models(max_n=5))
    @settings(max_examples=25, deadline=None)
    def test_analytic_matches_markov_without_spares(self, model):
        """In-place chains: the binomial closed form is exact."""
        no_spares = TierAvailabilityModel(
            model.name, n=model.n, m=model.m, s=0, modes=model.modes)
        markov = MarkovEngine().evaluate_tier(no_spares).unavailability
        analytic = AnalyticEngine().evaluate_tier(no_spares).unavailability
        assert analytic == pytest.approx(markov, rel=1e-6, abs=1e-12)
