"""Differential oracles: the three availability engines cross-check.

In the **in-place repair domain** -- no mode ever fails over (either
``s == 0`` or ``mttr <= failover_time``), unlimited repair crew -- the
Markov chain decomposes into independent two-state processes, which is
exactly the analytic engine's binomial closed form.  There the two
engines are *both* exact, so they must agree to numerical precision on
any valid model: each is an oracle for the other.

The simulation engine is a statistical oracle for the Markov engine on
the full domain; its tolerance is necessarily wide (confidence
interval + modeling approximations), but it still catches sign errors,
unit slips, and structurally wrong chains.

Shrunk counterexamples from earlier hypothesis runs are committed as
explicit regression cases at the bottom, so they re-run even with a
different database state.
"""

from hypothesis import given, settings
from hypothesis import strategies as st
import pytest

from repro.availability import (AnalyticEngine, FailureModeEntry,
                                MarkovEngine, SimulationEngine,
                                TierAvailabilityModel, simulate_tier)
from repro.units import Duration

# Durations stay well above the Markov engine's 1e-6-hour clamp, and
# rates stay moderate so chain truncation error is negligible.
mtbf_hours = st.floats(min_value=200.0, max_value=20000.0,
                       allow_nan=False)
mttr_hours = st.floats(min_value=0.05, max_value=20.0, allow_nan=False)


@st.composite
def inplace_models(draw):
    """Valid tier models inside the analytic-exact domain."""
    n = draw(st.integers(min_value=1, max_value=4))
    m = draw(st.integers(min_value=1, max_value=n))
    s = draw(st.integers(min_value=0, max_value=2))
    modes = []
    for index in range(draw(st.integers(min_value=1, max_value=2))):
        mttr = draw(mttr_hours)
        # In-place repair: the paper's rule uses failover only when
        # repair is slower, so a failover time >= mttr disables it.
        failover = mttr * draw(st.floats(min_value=1.0, max_value=4.0,
                                         allow_nan=False))
        modes.append(FailureModeEntry(
            "mode%d" % index,
            Duration.hours(draw(mtbf_hours)),
            Duration.hours(mttr),
            Duration.hours(failover),
            spare_susceptible=draw(st.booleans())))
    return TierAvailabilityModel("t", n=n, m=m, s=s,
                                 modes=tuple(modes))


def assert_analytic_matches_markov(model):
    markov = MarkovEngine().evaluate_tier(model)
    analytic = AnalyticEngine().evaluate_tier(model)
    tolerance = max(1e-9 * markov.unavailability, 1e-14)
    assert abs(markov.unavailability - analytic.unavailability) \
        <= tolerance, (markov.unavailability, analytic.unavailability)


class TestAnalyticMarkovOracle:
    @given(inplace_models())
    @settings(max_examples=80, deadline=None, derandomize=True)
    def test_exact_agreement_in_place(self, model):
        assert_analytic_matches_markov(model)

    @given(inplace_models())
    @settings(max_examples=40, deadline=None, derandomize=True)
    def test_mode_decomposition_agrees(self, model):
        markov = MarkovEngine().evaluate_tier(model)
        analytic = AnalyticEngine().evaluate_tier(model)
        assert len(markov.mode_results) \
            == len(analytic.mode_results)
        for markov_mode, analytic_mode in zip(
                markov.mode_results, analytic.mode_results):
            assert markov_mode.mode == analytic_mode.mode
            assert abs(markov_mode.unavailability
                       - analytic_mode.unavailability) \
                <= max(1e-9 * markov_mode.unavailability, 1e-14)


class TestSimulationMarkovOracle:
    @given(inplace_models())
    @settings(max_examples=6, deadline=None, derandomize=True)
    def test_statistical_agreement(self, model):
        markov = MarkovEngine().evaluate_tier(model)
        sim = simulate_tier(model, years=150, seed=20260806)
        tolerance = max(0.35 * markov.unavailability,
                        4.0 * sim.ci_halfwidth, 5e-5)
        assert abs(markov.unavailability - sim.tier.unavailability) \
            <= tolerance, (markov.unavailability,
                           sim.tier.unavailability, sim.ci_halfwidth)

    def test_engine_facade_matches_direct_simulation(self):
        model = TierAvailabilityModel(
            "t", n=2, m=2, s=0,
            modes=(FailureModeEntry("hard", Duration.hours(500),
                                    Duration.hours(5),
                                    Duration.hours(5)),))
        engine = SimulationEngine(years=150, seed=7)
        via_engine = engine.evaluate_tier(model)
        direct = simulate_tier(model, years=150, seed=7)
        assert via_engine.unavailability \
            == direct.tier.unavailability


# ----------------------------------------------------------------------
# Regression corpus: shrunk examples committed from hypothesis runs,
# so they stay covered independently of the local example database.
# ----------------------------------------------------------------------

REGRESSION_MODELS = [
    # minimal shrink: single resource, single mode, s=0
    ("single-resource",
     dict(n=1, m=1, s=0,
          modes=[("m0", 200.0, 0.05, 0.05)])),
    # spares present but never used (failover == mttr edge)
    ("spare-unused-edge",
     dict(n=2, m=1, s=2,
          modes=[("m0", 200.0, 0.05, 0.05)])),
    # failover strictly slower than repair, spare_susceptible path
    ("slow-failover",
     dict(n=3, m=2, s=1,
          modes=[("m0", 1000.0, 10.0, 40.0)])),
    # two modes with very different timescales
    ("mixed-timescales",
     dict(n=4, m=4, s=0,
          modes=[("fast", 200.0, 0.05, 0.2),
                 ("slow", 20000.0, 20.0, 20.0)])),
    # high-load quorum with short repairs
    ("quorum",
     dict(n=4, m=3, s=2,
          modes=[("m0", 350.0, 0.5, 2.0)])),
]


@pytest.mark.parametrize(
    "spec", [spec for _, spec in REGRESSION_MODELS],
    ids=[name for name, _ in REGRESSION_MODELS])
def test_regression_corpus(spec):
    modes = tuple(
        FailureModeEntry(name, Duration.hours(mtbf),
                         Duration.hours(mttr), Duration.hours(failover))
        for name, mtbf, mttr, failover in spec["modes"])
    model = TierAvailabilityModel("t", n=spec["n"], m=spec["m"],
                                  s=spec["s"], modes=modes)
    assert_analytic_matches_markov(model)
