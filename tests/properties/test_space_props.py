"""Differential soundness of canonical keys and dominance pruning.

Two contracts from :mod:`repro.lint`:

* **Key soundness** -- equal canonical keys imply serialized-identical
  :class:`TierResult` under every engine (Markov, analytic, and the
  seeded simulation).  The generator builds model pairs that differ
  only in attributes the canonical form provably drops (failover
  decoration of spare-less tiers), the exact collapse the key relies
  on.
* **Pruning soundness** -- a search with ``prune=True`` returns a
  byte-identical :class:`DesignOutcome` to the exhaustive run on the
  same space, for every requirement point; candidates it skipped were
  therefore genuinely dominated.
"""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.availability import (AnalyticEngine, FailureModeEntry,
                                MarkovEngine, SimulationEngine,
                                TierAvailabilityModel)
from repro.core import Aved, SearchLimits
from repro.core.serialize import evaluation_to_dict
from repro.errors import InfeasibleError
from repro.lint import canonical_key
from repro.model import ServiceRequirements
from repro.units import Duration

from ..lint.test_space import build_infra, build_service

ENGINES = (MarkovEngine(), AnalyticEngine(),
           SimulationEngine(years=5.0, seed=7))


def result_json(result):
    """Bit-faithful serialization of a TierResult (floats as hex)."""
    return json.dumps({
        "name": result.name,
        "unavailability": result.unavailability.hex(),
        "modes": [[mode.mode, mode.unavailability.hex(),
                   mode.failures_per_year.hex(), mode.used_failover]
                  for mode in result.mode_results],
    }, sort_keys=True)


@st.composite
def spareless_model_pairs(draw):
    """Two models equal in every engine-visible way, decorated apart.

    With ``s == 0`` the failover time and spare susceptibility never
    reach any engine, so the pair must share a canonical key -- and,
    per the soundness contract, every result.
    """
    n = draw(st.integers(min_value=1, max_value=4))
    m = draw(st.integers(min_value=1, max_value=n))
    mode_count = draw(st.integers(min_value=1, max_value=3))
    entries = []
    decorated = []
    for index in range(mode_count):
        mtbf = draw(st.floats(min_value=100.0, max_value=20000.0,
                              allow_nan=False))
        mttr = draw(st.floats(min_value=0.1, max_value=100.0,
                              allow_nan=False))
        failover_a = draw(st.floats(min_value=0.0, max_value=10.0,
                                    allow_nan=False))
        failover_b = draw(st.floats(min_value=0.0, max_value=10.0,
                                    allow_nan=False))
        name = "mode%d" % index
        entries.append(FailureModeEntry(
            name=name, mtbf=Duration.hours(mtbf),
            mttr=Duration.hours(mttr),
            failover_time=Duration.hours(failover_a),
            spare_susceptible=draw(st.booleans())))
        decorated.append(FailureModeEntry(
            name=name, mtbf=Duration.hours(mtbf),
            mttr=Duration.hours(mttr),
            failover_time=Duration.hours(failover_b),
            spare_susceptible=draw(st.booleans())))
    crew = draw(st.sampled_from([None, 1, 2]))
    return (TierAvailabilityModel(name="tier", n=n, m=m, s=0,
                                  modes=tuple(entries),
                                  repair_crew=crew),
            TierAvailabilityModel(name="tier", n=n, m=m, s=0,
                                  modes=tuple(decorated),
                                  repair_crew=crew))


class TestKeySoundness:
    @given(spareless_model_pairs())
    @settings(max_examples=30, deadline=None)
    def test_equal_key_implies_equal_results(self, pair):
        first, second = pair
        assert canonical_key(first) == canonical_key(second)
        for engine in ENGINES:
            assert result_json(engine.evaluate_tier(first)) == \
                result_json(engine.evaluate_tier(second))

    @given(spareless_model_pairs())
    @settings(max_examples=30, deadline=None)
    def test_key_is_deterministic(self, pair):
        first, _ = pair
        copy = TierAvailabilityModel(
            name=first.name, n=first.n, m=first.m, s=first.s,
            modes=tuple(first.modes), repair_crew=first.repair_crew)
        assert canonical_key(first) == canonical_key(copy)


class TestPruningSoundness:
    @given(fast_mttr_hours=st.floats(min_value=0.5, max_value=23.0,
                                     allow_nan=False),
           target_minutes=st.floats(min_value=5.0, max_value=2000.0,
                                    allow_nan=False),
           load=st.floats(min_value=50.0, max_value=450.0,
                          allow_nan=False),
           max_redundancy=st.integers(min_value=1, max_value=2))
    @settings(max_examples=25, deadline=None)
    def test_pruned_search_equals_exhaustive_search(
            self, fast_mttr_hours, target_minutes, load, max_redundancy):
        infra = build_infra([
            ("basic", Duration.hours(24)),
            ("fast", Duration.hours(fast_mttr_hours))])
        service = build_service()
        limits = SearchLimits(max_redundancy=max_redundancy)
        requirements = ServiceRequirements(
            load, Duration.minutes(target_minutes))
        outcomes = {}
        for prune in (True, False):
            engine = Aved(infra, service, limits=limits, prune=prune)
            try:
                outcomes[prune] = engine.design(requirements)
            except InfeasibleError:
                outcomes[prune] = None
        if outcomes[False] is None:
            # Pruning only ever *removes* provably-infeasible
            # candidates, so it cannot make an infeasible point
            # feasible either.
            assert outcomes[True] is None
            return
        assert outcomes[True] is not None
        assert json.dumps(evaluation_to_dict(outcomes[True].evaluation),
                          sort_keys=True) == \
            json.dumps(evaluation_to_dict(outcomes[False].evaluation),
                       sort_keys=True)
        assert outcomes[False].stats.dominance_pruned == 0
