"""Property-based tests for durations and ranges."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.units import (ArithmeticRange, Duration, GeometricRange,
                         parse_range)

finite_seconds = st.floats(min_value=0.0, max_value=1e12,
                           allow_nan=False, allow_infinity=False)
positive_seconds = st.floats(min_value=1e-3, max_value=1e12,
                             allow_nan=False, allow_infinity=False)


class TestDurationProperties:
    @given(finite_seconds)
    def test_format_parse_roundtrip(self, seconds):
        duration = Duration(seconds)
        parsed = Duration.parse(duration.format())
        assert math.isclose(parsed.as_seconds, seconds,
                            rel_tol=1e-3, abs_tol=1e-9)

    @given(finite_seconds, finite_seconds)
    def test_addition_commutes(self, a, b):
        assert Duration(a) + Duration(b) == Duration(b) + Duration(a)

    @given(st.floats(min_value=1e-6, max_value=1e12, allow_nan=False),
           st.floats(min_value=0.0, max_value=1e6, allow_nan=False))
    def test_scaling_consistent_with_ratio(self, seconds, factor):
        duration = Duration(seconds)
        scaled = duration * factor
        assert math.isclose(scaled / duration, factor,
                            rel_tol=1e-12, abs_tol=1e-12)

    @given(finite_seconds, finite_seconds)
    def test_ordering_matches_seconds(self, a, b):
        assert (Duration(a) < Duration(b)) == (a < b)

    @given(finite_seconds)
    def test_unit_accessors_consistent(self, seconds):
        duration = Duration(seconds)
        assert math.isclose(duration.as_minutes * 60, seconds,
                            rel_tol=1e-12, abs_tol=1e-9)
        assert math.isclose(duration.as_hours * 3600, seconds,
                            rel_tol=1e-12, abs_tol=1e-9)
        assert math.isclose(duration.as_days * 86400, seconds,
                            rel_tol=1e-12, abs_tol=1e-9)


class TestRangeProperties:
    @given(st.integers(min_value=1, max_value=100),
           st.integers(min_value=0, max_value=500),
           st.integers(min_value=1, max_value=7))
    def test_arithmetic_range_values_within_bounds(self, start, extent,
                                                   step):
        stop = start + extent
        values = ArithmeticRange(start, stop, step).values()
        assert values[0] == start
        assert all(start <= v <= stop for v in values)
        assert all(b - a == step for a, b in zip(values, values[1:]))

    @given(st.integers(min_value=1, max_value=100),
           st.integers(min_value=0, max_value=500),
           st.integers(min_value=1, max_value=7))
    def test_arithmetic_len_matches_values(self, start, extent, step):
        r = ArithmeticRange(start, start + extent, step)
        assert len(r) == len(r.values())

    @given(positive_seconds,
           st.floats(min_value=1.01, max_value=10.0, allow_nan=False),
           st.floats(min_value=1.1, max_value=1000.0, allow_nan=False))
    @settings(max_examples=50)
    def test_geometric_range_covers_endpoints(self, start_s, factor,
                                              span):
        start = Duration(start_s)
        stop = Duration(start_s * span)
        values = GeometricRange(start, stop, factor).values()
        assert values[0] == start
        assert math.isclose(values[-1].as_seconds, stop.as_seconds,
                            rel_tol=1e-9)
        assert all(a <= b for a, b in zip(values, values[1:]))

    @given(st.lists(st.integers(min_value=0, max_value=999),
                    min_size=1, max_size=10, unique=True))
    def test_enumerated_roundtrip_through_parse(self, numbers):
        text = "[" + ",".join(str(n) for n in numbers) + "]"
        values = parse_range(text).values()
        assert values == numbers


class TestWorkAmountProperties:
    from repro.units import WorkAmount as _WA

    @given(st.floats(min_value=0.0, max_value=1e9, allow_nan=False))
    def test_parse_format_roundtrip(self, units):
        from repro.units import WorkAmount
        amount = WorkAmount(units)
        parsed = WorkAmount.parse(amount.format())
        assert math.isclose(parsed.units, units, rel_tol=1e-6,
                            abs_tol=1e-9)

    @given(st.floats(min_value=1e-3, max_value=1e6, allow_nan=False),
           st.floats(min_value=1e-3, max_value=1e6, allow_nan=False))
    def test_time_conversion_inverts(self, units, rate):
        from repro.units import WorkAmount
        amount = WorkAmount(units)
        duration = amount.time_at(rate)
        assert math.isclose(duration.as_hours * rate, units,
                            rel_tol=1e-12)

    @given(st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
           st.floats(min_value=0.0, max_value=1e6, allow_nan=False))
    def test_ordering_matches_units(self, a, b):
        from repro.units import WorkAmount
        assert (WorkAmount(a) < WorkAmount(b)) == (a < b)
        assert (WorkAmount(a) == WorkAmount(b)) == (a == b)
