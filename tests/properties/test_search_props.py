"""Property-based tests for the design-space search on random models."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (DesignEvaluator, EvaluatedTierDesign,
                        SearchLimits, TierDesign, TierSearch,
                        combine_tier_frontiers, pareto_filter,
                        refine_tier_frontiers_greedy)
from repro.model import (ComponentSlot, ComponentType,
                         ExpressionPerformance, FailureMode, FailureScope,
                         InfrastructureModel, ResourceOption, ResourceType,
                         ServiceModel, Sizing, Tier)
from repro.units import ArithmeticRange, Duration


@st.composite
def small_scenarios(draw):
    """A one-component resource with random failure/cost parameters."""
    mtbf_days = draw(st.floats(min_value=20.0, max_value=2000.0,
                               allow_nan=False))
    mttr_hours = draw(st.floats(min_value=0.5, max_value=72.0,
                                allow_nan=False))
    cost_active = draw(st.floats(min_value=100.0, max_value=5000.0,
                                 allow_nan=False))
    cost_inactive = cost_active * draw(st.floats(min_value=0.3,
                                                 max_value=1.0,
                                                 allow_nan=False))
    per_node = draw(st.floats(min_value=50.0, max_value=500.0,
                              allow_nan=False))
    box = ComponentType(
        "box",
        cost=__import__("repro.model", fromlist=["CostSchedule"])
        .CostSchedule(inactive=cost_inactive, active=cost_active),
        failure_modes=(FailureMode("hard", Duration.days(mtbf_days),
                                   Duration.hours(mttr_hours),
                                   detect_time=Duration.minutes(1)),))
    infra = InfrastructureModel(
        components=[box],
        resources=[ResourceType(
            "node", slots=(ComponentSlot("box", None,
                                         Duration.minutes(2)),))])
    option = ResourceOption("node", Sizing.DYNAMIC,
                            FailureScope.RESOURCE,
                            ArithmeticRange(1, 60, 1),
                            ExpressionPerformance("%g*n" % per_node))
    service = ServiceModel("svc", [Tier("t", [option])])
    load = draw(st.floats(min_value=per_node * 0.5,
                          max_value=per_node * 20.0, allow_nan=False))
    return DesignEvaluator(infra, service), load


class TestSearchInvariants:
    @given(small_scenarios(),
           st.floats(min_value=0.5, max_value=20000.0, allow_nan=False))
    @settings(max_examples=30, deadline=None)
    def test_returned_design_is_feasible(self, scenario, minutes):
        evaluator, load = scenario
        search = TierSearch(evaluator, SearchLimits(max_redundancy=4,
                                                    spare_policy="all"))
        best = search.best_tier_design("t", load,
                                       Duration.minutes(minutes))
        if best is not None:
            assert best.downtime_minutes <= minutes + 1e-9
            option = evaluator.service.tier("t").option_for("node")
            assert best.design.n_active >= option.min_active_for(load)

    @given(small_scenarios())
    @settings(max_examples=20, deadline=None)
    def test_cost_monotone_in_requirement(self, scenario):
        evaluator, load = scenario
        search = TierSearch(evaluator, SearchLimits(max_redundancy=4))
        costs = []
        for minutes in (20000.0, 2000.0, 200.0, 20.0):
            best = search.best_tier_design("t", load,
                                           Duration.minutes(minutes))
            if best is None:
                break
            costs.append(best.annual_cost)
        assert costs == sorted(costs)

    @given(small_scenarios())
    @settings(max_examples=20, deadline=None)
    def test_frontier_is_pareto_and_feasible_queries_match(self,
                                                           scenario):
        evaluator, load = scenario
        search = TierSearch(evaluator, SearchLimits(max_redundancy=3))
        frontier = search.tier_frontier("t", load)
        ordered = sorted(frontier, key=lambda c: c.annual_cost)
        for a, b in zip(ordered, ordered[1:]):
            assert b.unavailability < a.unavailability
        # The frontier's cheapest feasible entry at a cut equals the
        # direct search's answer.  The cut must survive the minutes ->
        # Duration -> minutes float round trip, so canonicalize it
        # through Duration first (and nudge it off the exact boundary).
        if frontier:
            raw = ordered[len(ordered) // 2].downtime_minutes
            cut = Duration.minutes(raw * (1.0 + 1e-9))
            target = cut.as_minutes
            direct = search.best_tier_design("t", load, cut)
            via_frontier = min(
                (c for c in frontier if c.downtime_minutes <= target),
                key=lambda c: c.annual_cost, default=None)
            if direct is not None and via_frontier is not None:
                assert direct.annual_cost <= via_frontier.annual_cost \
                    + 1e-6


class TestCombinerProperties:
    @st.composite
    @staticmethod
    def frontiers(draw):
        def frontier(tier):
            count = draw(st.integers(min_value=1, max_value=4))
            costs = sorted(draw(st.lists(
                st.floats(min_value=10, max_value=10_000,
                          allow_nan=False),
                min_size=count, max_size=count)))
            unavailabilities = sorted(draw(st.lists(
                st.floats(min_value=1e-9, max_value=1e-2,
                          allow_nan=False),
                min_size=count, max_size=count)), reverse=True)
            return [EvaluatedTierDesign(TierDesign(tier, "rC", 1, 0),
                                        cost, unavailability)
                    for cost, unavailability
                    in zip(costs, unavailabilities)]
        tier_count = draw(st.integers(min_value=1, max_value=3))
        return [frontier("t%d" % i) for i in range(tier_count)]

    @given(frontiers(),
           st.floats(min_value=0.1, max_value=50_000, allow_nan=False))
    @settings(max_examples=60, deadline=None)
    def test_greedy_never_cheaper_than_exact(self, frontiers, minutes):
        target = Duration.minutes(minutes)
        exact = combine_tier_frontiers(frontiers, target)
        greedy = refine_tier_frontiers_greedy(frontiers, target)

        def cost_of(design):
            total = 0.0
            for tier_design in design.tiers:
                index = int(tier_design.tier[1:])
                match = [c for c in frontiers[index]
                         if c.design is tier_design]
                total += match[0].annual_cost
            return total

        if greedy is not None:
            assert exact is not None
            assert cost_of(greedy) >= cost_of(exact) - 1e-9

    @given(frontiers(),
           st.floats(min_value=0.1, max_value=50_000, allow_nan=False))
    @settings(max_examples=60, deadline=None)
    def test_exact_result_is_feasible(self, frontiers, minutes):
        target = Duration.minutes(minutes)
        design = combine_tier_frontiers(frontiers, target)
        if design is None:
            return
        up = 1.0
        for tier_design in design.tiers:
            index = int(tier_design.tier[1:])
            match = [c for c in frontiers[index]
                     if c.design is tier_design]
            up *= 1.0 - match[0].unavailability
        assert (1.0 - up) * 525600.0 <= minutes * (1 + 1e-9) + 1e-9


class TestParetoFilterProperties:
    evaluated = st.builds(
        lambda cost, unavailability: EvaluatedTierDesign(
            TierDesign("t", "rC", 1, 0), cost, unavailability),
        st.floats(min_value=1, max_value=1e6, allow_nan=False),
        st.floats(min_value=0.0, max_value=1.0, allow_nan=False))

    @given(st.lists(evaluated, max_size=40))
    def test_filter_output_is_antichain(self, candidates):
        frontier = pareto_filter(candidates)
        for a in frontier:
            for b in frontier:
                if a is not b:
                    assert not a.dominates(b)

    @given(st.lists(evaluated, max_size=40))
    def test_every_candidate_dominated_or_kept(self, candidates):
        """Every input is kept or covered by a kept point that is no
        costlier and no less available -- up to the filter's 1e-15
        unavailability tie tolerance (differences that small are
        sub-nanosecond-per-year noise)."""
        frontier = pareto_filter(candidates)
        for candidate in candidates:
            covered = any(
                kept is candidate
                or (kept.annual_cost <= candidate.annual_cost
                    and kept.unavailability
                    <= candidate.unavailability + 1e-15)
                for kept in frontier)
            assert covered
