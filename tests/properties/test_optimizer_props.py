"""Property-based equivalence of the expression optimizer and printer."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ExpressionError
from repro.expr import evaluate, parse
from repro.expr.optimizer import fold_constants
from repro.expr.printer import to_source


@st.composite
def sources(draw, depth=0):
    """Random well-formed expression source strings."""
    if depth >= 3 or draw(st.booleans()):
        kind = draw(st.integers(0, 2))
        if kind == 0:
            return "%d" % draw(st.integers(0, 40))
        if kind == 1:
            return "%.3g" % draw(st.floats(min_value=0.001,
                                           max_value=100.0,
                                           allow_nan=False))
        return draw(st.sampled_from(["a", "b", "n"]))
    kind = draw(st.integers(0, 4))
    left = draw(sources(depth=depth + 1))
    right = draw(sources(depth=depth + 1))
    if kind == 0:
        op = draw(st.sampled_from(["+", "-", "*", "/"]))
        # Parenthesize children: a bare comparison child would chain
        # (a < b + c < d), which this grammar rejects.
        return "((%s) %s (%s))" % (left, op, right)
    if kind == 1:
        op = draw(st.sampled_from(["<", "<=", ">", ">=", "==", "!="]))
        return "(%s) %s (%s)" % (left, op, right)
    if kind == 2:
        op = draw(st.sampled_from(["and", "or"]))
        return "(%s) %s (%s)" % (left, op, right)
    if kind == 3:
        name = draw(st.sampled_from(["max", "min"]))
        return "%s(%s, %s)" % (name, left, right)
    condition = draw(sources(depth=depth + 1))
    return "(%s ? %s : %s)" % (condition, left, right)


ENVIRONMENTS = [
    {"a": 0.0, "b": 1.0, "n": 2.0},
    {"a": -3.5, "b": 0.0, "n": 10.0},
    {"a": 7.0, "b": -1.0, "n": 0.0},
]


def evaluate_or_error(node, env):
    try:
        return ("value", evaluate(node, env))
    except ExpressionError:
        return ("error", None)


class TestOptimizerEquivalence:
    @given(sources())
    @settings(max_examples=250, deadline=None)
    def test_folding_preserves_semantics(self, source):
        original = parse(source)
        folded = fold_constants(original)
        for env in ENVIRONMENTS:
            kind_a, value_a = evaluate_or_error(original, env)
            kind_b, value_b = evaluate_or_error(folded, env)
            assert kind_a == kind_b, source
            if kind_a == "value":
                assert value_a == pytest.approx(value_b, rel=1e-12,
                                                abs=1e-12), source

    @given(sources())
    @settings(max_examples=250, deadline=None)
    def test_printer_preserves_semantics(self, source):
        original = parse(source)
        printed = parse(to_source(original))
        for env in ENVIRONMENTS:
            kind_a, value_a = evaluate_or_error(original, env)
            kind_b, value_b = evaluate_or_error(printed, env)
            assert kind_a == kind_b, source
            if kind_a == "value":
                assert value_a == pytest.approx(value_b, rel=1e-12,
                                                abs=1e-12), source

    @given(sources())
    @settings(max_examples=150, deadline=None)
    def test_fold_print_fold_stable(self, source):
        """Folding is idempotent, including through a print round trip."""
        folded = fold_constants(parse(source))
        again = fold_constants(parse(to_source(folded)))
        for env in ENVIRONMENTS:
            kind_a, value_a = evaluate_or_error(folded, env)
            kind_b, value_b = evaluate_or_error(again, env)
            assert kind_a == kind_b
            if kind_a == "value":
                assert value_a == pytest.approx(value_b, rel=1e-12,
                                                abs=1e-12)
