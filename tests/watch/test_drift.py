"""Drift detection: contradiction, hysteresis, quantization."""

import pytest

from repro.errors import WatchError
from repro.units import Duration
from repro.watch import DriftDetector, DriftPolicy, OnlineEstimator, \
    TelemetryLedger, quantize

from .conftest import load_events, repair_events


def make_estimator(events, confidence=0.99):
    ledger = TelemetryLedger()
    for event in events:
        ledger.add(event)
    return OnlineEstimator(ledger, confidence)


def make_detector(spec_load=150.0, **policy_kwargs):
    policy = DriftPolicy(min_load_samples=10, min_repairs=10,
                         debounce=3, cooldown=2, **policy_kwargs)
    return DriftDetector("web",
                         {"box.hard": Duration.hours(8760.0)},
                         {"box.hard": Duration.hours(24.0)},
                         spec_load, policy)


class TestQuantize:
    def test_anchor_is_a_fixed_point(self):
        assert quantize(800.0, anchor=800.0) == 800.0

    def test_snaps_to_geometric_grid(self):
        assert quantize(2400.0, ratio=1.25, anchor=800.0) \
            == pytest.approx(800.0 * 1.25 ** 5)

    def test_nearby_values_share_a_cell(self):
        low = quantize(2350.0, ratio=1.25, anchor=800.0)
        high = quantize(2450.0, ratio=1.25, anchor=800.0)
        assert low == high

    def test_validation(self):
        with pytest.raises(WatchError):
            quantize(-1.0)
        with pytest.raises(WatchError):
            quantize(1.0, ratio=0.9)


class TestPolicyValidation:
    def test_bad_confidence(self):
        with pytest.raises(WatchError):
            DriftPolicy(confidence=0.0)

    def test_bad_margin(self):
        with pytest.raises(WatchError):
            DriftPolicy(load_margin=1.0)

    def test_bad_debounce(self):
        with pytest.raises(WatchError):
            DriftPolicy(debounce=0)


class TestDetector:
    def test_stationary_stream_never_fires(self):
        detector = make_detector()
        estimator = make_estimator(load_events(150.0, 200)
                                   + repair_events("box.hard", 24.0, 50,
                                                   start_seq=200))
        for _ in range(20):
            report = detector.observe(estimator)
            assert not report.contradicted
            assert not report.drifted

    def test_within_margin_never_fires(self):
        # Mean off the spec but inside the margin factor: statistically
        # distinguishable, operationally irrelevant -- no drift.
        detector = make_detector()
        estimator = make_estimator(load_events(170.0, 200))
        assert not detector.observe(estimator).contradicted

    def test_debounce_delays_firing(self):
        detector = make_detector()
        estimator = make_estimator(load_events(600.0, 50))
        reports = [detector.observe(estimator) for _ in range(3)]
        assert [r.drifted for r in reports] == [False, False, True]
        assert reports[2].streak == 3
        assert reports[2].load == pytest.approx(
            quantize(600.0, 1.25, 150.0))

    def test_min_samples_gate(self):
        detector = make_detector()
        estimator = make_estimator(load_events(600.0, 5))
        assert not detector.observe(estimator).contradicted

    def test_mttr_contradiction(self):
        detector = make_detector()
        estimator = make_estimator(repair_events("box.hard", 96.0, 40))
        report = detector.observe(estimator)
        assert report.contradicted
        assert report.mttr["box.hard"].as_hours == pytest.approx(
            quantize(96.0, 1.25, 24.0))

    def test_cooldown_suppresses_after_rebase(self):
        detector = make_detector()
        estimator = make_estimator(load_events(600.0, 50))
        for _ in range(3):
            report = detector.observe(estimator)
        assert report.drifted
        detector.rebase({}, {}, report.load)
        # New spec adopted; cooldown swallows residual contradictions.
        estimator2 = make_estimator(load_events(5000.0, 50))
        for _ in range(detector.policy.cooldown):
            quiet = detector.observe(estimator2)
            assert not quiet.drifted
            assert quiet.streak == 0

    def test_interrupted_streak_resets(self):
        detector = make_detector()
        drifting = make_estimator(load_events(600.0, 50))
        steady = make_estimator(load_events(150.0, 50))
        detector.observe(drifting)
        detector.observe(drifting)
        assert detector.observe(steady).streak == 0
        assert not detector.observe(drifting).drifted

    def test_report_to_dict_is_json_ready(self):
        detector = make_detector()
        estimator = make_estimator(load_events(600.0, 50))
        view = detector.observe(estimator).to_dict()
        assert view["tier"] == "web"
        assert isinstance(view["reasons"], list)
        assert view["mtbf_hours"] == {} and view["mttr_hours"] == {}
