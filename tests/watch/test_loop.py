"""The watcher loop: incumbents, drift epochs, warm/cold, resume."""

import json

import pytest

from repro.core import DesignEvaluator
from repro.resilience.events import (DRIFT_DETECTED, WATCH_COLD_SEARCH,
                                     WATCH_RESUMED, WATCH_WARM_START)
from repro.units import Duration
from repro.watch import (DriftPolicy, DriftReport, JsonlTailReader,
                         WatchJournal, WatchSpec, Watcher)
from repro.watch.loop import DriftedEvaluator, substitute_modes

from .conftest import load_events, make_watcher, repair_events, \
    write_jsonl

FAST = DriftPolicy(min_load_samples=10, min_repairs=10, debounce=2,
                   cooldown=2)


def reader_for(tmp_path, events, name="stream.jsonl"):
    path = str(tmp_path / name)
    write_jsonl(path, events)
    return JsonlTailReader(path)


class TestSubstitution:
    def test_substitute_modes_by_name(self, tiny_evaluator, tiny_spec):
        design = make_watcher(tiny_evaluator, tiny_spec)
        design.start()
        model = tiny_evaluator.tier_model(design.incumbent.design,
                                          tiny_spec.load)
        substituted = substitute_modes(model.modes,
                                       {"box.hard": 500.0}, {})
        by_name = {mode.name: mode for mode in substituted}
        assert by_name["box.hard"].mtbf == Duration.hours(500.0)
        # Untouched fields and modes are preserved.
        original = {mode.name: mode for mode in model.modes}
        assert by_name["box.hard"].mttr == original["box.hard"].mttr
        assert by_name["os.crash"] == original["os.crash"]

    def test_drifted_evaluator_changes_only_the_modes(
            self, tiny_evaluator, tiny_spec):
        watcher = make_watcher(tiny_evaluator, tiny_spec)
        watcher.start()
        drifted = DriftedEvaluator(tiny_evaluator,
                                   {"box.hard": 500.0},
                                   {"os.crash": 9.0})
        base_model = tiny_evaluator.tier_model(
            watcher.incumbent.design, tiny_spec.load)
        drift_model = drifted.tier_model(watcher.incumbent.design,
                                         tiny_spec.load)
        modes = {mode.name: mode for mode in drift_model.modes}
        assert modes["box.hard"].mtbf == Duration.hours(500.0)
        assert modes["os.crash"].mttr == Duration.hours(9.0)
        assert drift_model.n == base_model.n
        assert drift_model.s == base_model.s


class TestWatchSpec:
    def test_round_trip(self):
        spec = WatchSpec("web", 600.0, Duration.minutes(100),
                         mtbf_hours={"box.hard": 500.0},
                         mttr_hours={"os.crash": 9.0})
        assert WatchSpec.from_dict(spec.to_dict()) == spec

    def test_modes_differ_is_the_warm_cold_boundary(self):
        base = WatchSpec("web", 150.0, Duration.minutes(100))
        load_only = WatchSpec("web", 600.0, Duration.minutes(100))
        mode_drift = WatchSpec("web", 150.0, Duration.minutes(100),
                               mttr_hours={"box.hard": 96.0})
        assert not base.modes_differ(load_only)
        assert base.modes_differ(mode_drift)

    def test_with_drift_merges_quantized_parameters(self):
        spec = WatchSpec("web", 150.0, Duration.minutes(100))
        report = DriftReport(
            "web", True, 3, 0, ("load drifted",),
            mttr={"box.hard": Duration.hours(91.55)}, load=572.2)
        drifted = spec.with_drift(report)
        assert drifted.load == 572.2
        assert drifted.mttr_hours == {"box.hard": 91.55}
        assert drifted.max_downtime == spec.max_downtime


class TestLoop:
    def test_stationary_stream_never_reconfigures(
            self, tmp_path, tiny_evaluator, tiny_spec):
        reader = reader_for(tmp_path, load_events(150.0, 100))
        watcher = make_watcher(tiny_evaluator, tiny_spec,
                               readers=[reader], policy=FAST)
        for _ in range(6):
            status = watcher.poll()
        assert status["epoch"] == 0
        assert status["reconfigurations"] == 0
        assert status["incumbent"] is not None
        assert status["ingest"]["accepted"] == 100
        assert watcher.decisions == []

    def test_load_drift_warm_starts(self, tmp_path, tiny_evaluator,
                                    tiny_spec):
        reader = reader_for(tmp_path, load_events(600.0, 50))
        watcher = make_watcher(tiny_evaluator, tiny_spec,
                               readers=[reader], policy=FAST)
        statuses = [watcher.poll() for _ in range(2)]
        assert statuses[0]["epoch"] == 0
        final = statuses[1]
        assert final["epoch"] == 1
        assert final["warm_starts"] == 1
        assert final["cold_searches"] == 0
        assert final["reconfigurations"] == 1
        # The spec rebased onto the quantized grid anchored at 150.
        assert final["spec"]["load"] == pytest.approx(
            150.0 * 1.25 ** 6)
        assert final["incumbent"]["n_active"] >= 6
        kinds = watcher.log.counts()
        assert kinds[DRIFT_DETECTED] == 1
        assert kinds[WATCH_WARM_START] == 1

    def test_mode_drift_cold_searches(self, tmp_path, tiny_evaluator,
                                      tiny_spec):
        watcher = make_watcher(tiny_evaluator, tiny_spec, policy=FAST)
        watcher.start()
        spec_mttr = watcher.detector.spec_mttr["box.hard"].as_hours
        reader = reader_for(
            tmp_path, repair_events("box.hard", spec_mttr * 8, 40))
        watcher.readers.append(reader)
        for _ in range(2):
            status = watcher.poll()
        assert status["epoch"] == 1
        assert status["cold_searches"] == 1
        assert status["warm_starts"] == 0
        assert watcher.spec.mttr_hours["box.hard"] > spec_mttr
        assert watcher.log.counts()[WATCH_COLD_SEARCH] == 1

    def test_infeasible_drift_keeps_incumbent(
            self, tmp_path, tiny_evaluator, tiny_spec):
        # 20000 work units need n > 100: beyond the option's range.
        reader = reader_for(tmp_path, load_events(20000.0, 50))
        watcher = make_watcher(tiny_evaluator, tiny_spec,
                               readers=[reader], policy=FAST)
        watcher.start()
        before = watcher.incumbent
        for _ in range(2):
            status = watcher.poll()
        assert status["infeasible_epochs"] == 1
        assert status["reconfigurations"] == 0
        assert watcher.incumbent == before
        assert watcher.decisions[-1]["feasible"] is False

    def test_malformed_lines_quarantine_not_crash(
            self, tmp_path, tiny_evaluator, tiny_spec):
        path = str(tmp_path / "stream.jsonl")
        with open(path, "w") as handle:
            handle.write("garbage that is not json\n")
            for event in load_events(150.0, 3):
                handle.write(event.to_json_line())
        watcher = make_watcher(tiny_evaluator, tiny_spec,
                               readers=[JsonlTailReader(path)],
                               policy=FAST)
        status = watcher.poll()
        assert status["quarantined"] == 1
        assert status["ingest"]["accepted"] == 3
        assert watcher.quarantined[0]["reason"].startswith("not valid")


class TestJournalResume:
    def test_completed_epochs_restore_spec(self, tmp_path,
                                           tiny_evaluator, tiny_spec):
        journal = str(tmp_path / "journal.jsonl")
        reader = reader_for(tmp_path, load_events(600.0, 50))
        first = make_watcher(tiny_evaluator, tiny_spec,
                             readers=[reader], policy=FAST,
                             journal_path=journal)
        for _ in range(2):
            first.poll()
        assert first.epoch == 1
        second = make_watcher(tiny_evaluator, tiny_spec, policy=FAST,
                              journal_path=journal)
        second.start()
        assert second.resumed
        assert second.epoch == 1
        assert second.spec == first.spec
        assert second.incumbent.design == first.incumbent.design

    def test_interrupted_redesign_resumes_exactly_once(
            self, tmp_path, tiny_evaluator, tiny_spec):
        journal_path = str(tmp_path / "journal.jsonl")
        drifted = WatchSpec("web", 150.0 * 1.25 ** 6,
                            tiny_spec.max_downtime)
        # Simulate a kill -9 between redesign-start and redesign-done.
        WatchJournal(journal_path).redesign_start(1, drifted.to_dict())
        watcher = make_watcher(tiny_evaluator, tiny_spec, policy=FAST,
                               journal_path=journal_path)
        watcher.start()
        assert watcher.resumed
        assert watcher.epoch == 1
        assert watcher.spec == drifted
        assert len(watcher.decisions) == 1
        assert watcher.log.counts()[WATCH_RESUMED] == 1
        state = WatchJournal.replay(journal_path)
        assert state.last_epoch == 1
        assert state.pending is None
        # A further restart re-executes nothing: exactly once.
        again = make_watcher(tiny_evaluator, tiny_spec, policy=FAST,
                             journal_path=journal_path)
        again.start()
        assert again.decisions == []
        assert again.epoch == 1
        assert again.spec == drifted

    def test_resumed_decision_matches_uninterrupted_run(
            self, tmp_path, tiny_evaluator, tiny_spec):
        """The replayed redesign reaches the decision the killed run
        would have -- determinism is what makes exactly-once safe."""
        journal_a = str(tmp_path / "a.jsonl")
        reader = reader_for(tmp_path, load_events(600.0, 50))
        clean = make_watcher(tiny_evaluator, tiny_spec,
                             readers=[reader], policy=FAST,
                             journal_path=journal_a)
        for _ in range(2):
            clean.poll()
        drifted_spec = clean.decisions[0]["spec"]
        journal_b = str(tmp_path / "b.jsonl")
        WatchJournal(journal_b).redesign_start(1, drifted_spec)
        resumed = make_watcher(tiny_evaluator, tiny_spec, policy=FAST,
                               journal_path=journal_b)
        resumed.start()
        assert json.dumps(resumed.decisions[0], sort_keys=True) \
            == json.dumps(clean.decisions[0], sort_keys=True)


class TestStatus:
    def test_journal_degradation_is_reported(self, tmp_path,
                                             tiny_evaluator, tiny_spec):
        reader = reader_for(tmp_path, load_events(600.0, 50))
        watcher = make_watcher(tiny_evaluator, tiny_spec,
                               readers=[reader], policy=FAST,
                               journal_path=str(tmp_path))  # EISDIR
        for _ in range(2):
            status = watcher.poll()
        # The journal failed, the loop carried on and still redesigned.
        assert status["journal"]["enabled"]
        assert status["journal"]["degraded"]
        assert status["epoch"] == 1

    def test_cache_store_feeds_search_stats(self, tmp_path,
                                            tiny_evaluator, tiny_spec):
        cache_dir = str(tmp_path / "cache")
        first = make_watcher(tiny_evaluator, tiny_spec,
                             cache_dir=cache_dir)
        first.start()
        evaluations = first.last_search_stats["availability_evaluations"]
        assert evaluations > 0
        # A fresh watcher over the same store replays warm.
        second = make_watcher(
            DesignEvaluator(tiny_evaluator.infrastructure,
                            tiny_evaluator.service),
            tiny_spec, cache_dir=cache_dir)
        second.start()
        assert second.incumbent.design == first.incumbent.design
        assert second.cache_store.snapshot()["hits"] > 0
