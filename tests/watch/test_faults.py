"""Seeded telemetry fault injection: purity and wire effects."""

import pytest

from repro.watch import FaultyStreamWriter, JsonlTailReader, \
    WatchFaultPlan, WatchKilled
from repro.watch.faults import write_stream

from .conftest import load_events


STORM = WatchFaultPlan(seed=11, gap_rate=0.08, duplicate_rate=0.08,
                       skew_rate=0.07, corrupt_rate=0.05,
                       kill_rate=0.02)


class TestPlan:
    def test_decisions_are_pure(self):
        again = WatchFaultPlan(seed=11, gap_rate=0.08,
                               duplicate_rate=0.08, skew_rate=0.07,
                               corrupt_rate=0.05, kill_rate=0.02)
        assert [STORM.decide(i) for i in range(500)] \
            == [again.decide(i) for i in range(500)]

    def test_zero_plan_never_faults(self):
        plan = WatchFaultPlan()
        assert all(plan.decide(i) is None for i in range(200))

    def test_certain_fault(self):
        plan = WatchFaultPlan(gap_rate=1.0)
        assert all(plan.decide(i) == "gap" for i in range(50))

    def test_rates_roughly_respected(self):
        decisions = [STORM.decide(i) for i in range(4000)]
        faulted = sum(1 for d in decisions if d is not None)
        assert 0.2 < faulted / len(decisions) < 0.4

    def test_rate_validation(self):
        with pytest.raises(ValueError):
            WatchFaultPlan(gap_rate=1.5)

    def test_skew_is_pure_and_bounded(self):
        assert STORM.skew_hours(3) == STORM.skew_hours(3)
        assert all(abs(STORM.skew_hours(i)) <= 1000.0
                   for i in range(100))


class TestWriter:
    def read_all(self, path):
        return JsonlTailReader(path).poll()

    def test_clean_plan_is_a_plain_producer(self, tmp_path):
        path = str(tmp_path / "stream.jsonl")
        events = load_events(100.0, 20)
        writer = FaultyStreamWriter(path)
        for event in events:
            writer.write(event)
        got, rejects = self.read_all(path)
        assert got == events and not rejects

    def test_gap_drops_records(self, tmp_path):
        path = str(tmp_path / "stream.jsonl")
        writer = FaultyStreamWriter(path, WatchFaultPlan(gap_rate=1.0))
        for event in load_events(100.0, 5):
            writer.write(event)
        assert writer.injected["gap"] == 5
        got, rejects = JsonlTailReader(path).poll()
        assert got == [] and rejects == []

    def test_duplicate_doubles_the_line(self, tmp_path):
        path = str(tmp_path / "stream.jsonl")
        writer = FaultyStreamWriter(
            path, WatchFaultPlan(duplicate_rate=1.0))
        writer.write(load_events(100.0, 1)[0])
        got, _ = self.read_all(path)
        assert len(got) == 2 and got[0] == got[1]

    def test_corrupt_line_must_quarantine(self, tmp_path):
        path = str(tmp_path / "stream.jsonl")
        writer = FaultyStreamWriter(
            path, WatchFaultPlan(corrupt_rate=1.0))
        writer.write(load_events(100.0, 1)[0])
        got, rejects = self.read_all(path)
        assert got == [] and len(rejects) == 1

    def test_skewed_record_stays_well_formed(self, tmp_path):
        path = str(tmp_path / "stream.jsonl")
        writer = FaultyStreamWriter(path, WatchFaultPlan(skew_rate=1.0))
        event = load_events(100.0, 1)[0]
        writer.write(event)
        got, rejects = self.read_all(path)
        assert len(got) == 1 and not rejects
        assert got[0].value == event.value
        assert got[0].time_hours != event.time_hours

    def test_kill_leaves_torn_tail_and_raises(self, tmp_path):
        path = str(tmp_path / "stream.jsonl")
        writer = FaultyStreamWriter(path, WatchFaultPlan(kill_rate=1.0))
        with pytest.raises(WatchKilled):
            writer.write(load_events(100.0, 1)[0])
        # The torn tail has no newline: invisible to the tail reader.
        assert self.read_all(path) == ([], [])
        writer.resume()
        got, rejects = self.read_all(path)
        assert got == [] and len(rejects) == 1

    def test_write_stream_restarts_after_kills(self, tmp_path):
        path = str(tmp_path / "stream.jsonl")
        events = load_events(100.0, 200)
        writer = write_stream(path, events, STORM)
        assert writer.op_index == 200
        got, rejects = self.read_all(path)
        # Survivors parse; corrupt/torn lines quarantine; gaps vanish.
        survivors = 200 - writer.injected["gap"] \
            - writer.injected["corrupt"] - writer.injected["kill"] \
            + writer.injected["duplicate"]
        assert len(got) == survivors
        assert len(rejects) >= writer.injected["corrupt"]
