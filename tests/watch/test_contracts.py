"""The ``repro watch`` CLI: exit-code matrix and JSON contract."""

import json
from io import StringIO

import pytest

from repro.cli import main
from repro.contracts import CLI_SCHEMAS, WATCH_STATUS_SCHEMA

from .conftest import load_events


def run(argv):
    out = StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


def validate(instance, schema):
    jsonschema = pytest.importorskip("jsonschema")
    jsonschema.validate(instance=instance, schema=schema)


def base_args(stream, *extra):
    return (["watch", "--paper-ecommerce", "--app-tier-only",
             "--tier", "application", "--load", "800",
             "--downtime", "100m", "--telemetry", stream,
             "--max-polls", "2", "--poll-interval", "0",
             "--max-redundancy", "2"] + list(extra))


@pytest.fixture
def stream(tmp_path):
    path = str(tmp_path / "stream.jsonl")
    with open(path, "w") as handle:
        for event in load_events(800.0, 5, tier="application"):
            handle.write(event.to_json_line())
    return path


def test_schema_registry_covers_watch():
    assert CLI_SCHEMAS["watch-status"] is WATCH_STATUS_SCHEMA


def test_feasible_watch_is_zero_with_valid_json(stream):
    code, output = run(base_args(stream, "--json"))
    assert code == 0
    status = json.loads(output)
    validate(status, WATCH_STATUS_SCHEMA)
    assert status["tier"] == "application"
    assert status["polls"] == 2
    assert status["ingest"]["accepted"] == 5
    assert status["incumbent"]["n_active"] >= 1


def test_text_mode_summarizes(stream):
    code, output = run(base_args(stream))
    assert code == 0
    assert "tier 'application'" in output
    assert "reconfigurations 0" in output


def test_infeasible_watch_is_two(stream):
    code, output = run(
        ["watch", "--paper-ecommerce", "--app-tier-only",
         "--tier", "application", "--load", "1000000",
         "--downtime", "1s", "--telemetry", stream,
         "--max-polls", "1", "--poll-interval", "0",
         "--max-redundancy", "1", "--json"])
    assert code == 2
    status = json.loads(output)
    validate(status, WATCH_STATUS_SCHEMA)
    assert status["incumbent"] is None
    assert status["infeasible_epochs"] >= 1


def test_missing_telemetry_is_one(tmp_path):
    code, output = run(
        ["watch", "--paper-ecommerce", "--tier", "application",
         "--load", "800", "--downtime", "100m"])
    assert code == 1
    assert output.startswith("error:")


def test_missing_model_is_one(stream):
    code, output = run(
        ["watch", "--tier", "application", "--load", "800",
         "--downtime", "100m", "--telemetry", stream])
    assert code == 1
    assert output.startswith("error:")


def test_absent_stream_file_is_tolerated(tmp_path):
    # A producer that has not started yet is an empty stream, not an
    # error -- the watcher must come up and wait for it.
    code, output = run(base_args(str(tmp_path / "nope.jsonl"),
                                 "--json"))
    assert code == 0
    status = json.loads(output)
    assert status["ingest"]["accepted"] == 0


def test_durable_paths_round_trip(tmp_path, stream):
    journal = str(tmp_path / "journal.jsonl")
    cache = str(tmp_path / "cache")
    checkpoint = str(tmp_path / "ckpt.json")
    code, output = run(base_args(stream, "--json",
                                 "--journal", journal,
                                 "--checkpoint", checkpoint,
                                 "--cache", cache))
    assert code == 0
    status = json.loads(output)
    assert status["journal"]["enabled"]
    assert not status["journal"]["degraded"]
    # A second run resumes against the same durable state.
    code, output = run(base_args(stream, "--json",
                                 "--journal", journal,
                                 "--checkpoint", checkpoint,
                                 "--cache", cache))
    assert code == 0
    validate(json.loads(output), WATCH_STATUS_SCHEMA)
