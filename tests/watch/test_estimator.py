"""Online estimators read off the ledger."""

import math

import pytest

from repro.errors import WatchError
from repro.units import Duration
from repro.watch import OnlineEstimator, TelemetryLedger
from repro.watch.estimator import estimate_load

from .conftest import failure_events, load_events, repair_events


class TestEstimateLoad:
    def test_empty_is_none(self):
        assert estimate_load("web", []) is None

    def test_single_sample_cannot_contradict(self):
        estimate = estimate_load("web", [400.0])
        assert estimate.mean == 400.0
        assert estimate.lower == -math.inf
        assert estimate.upper == math.inf
        assert estimate.contains(1.0)

    def test_zero_variance_is_degenerate(self):
        estimate = estimate_load("web", [400.0] * 20)
        assert estimate.lower == estimate.upper == 400.0
        assert estimate.contains(400.0)
        assert not estimate.contains(401.0)

    def test_interval_brackets_mean(self):
        samples = [90.0, 100.0, 110.0, 95.0, 105.0]
        estimate = estimate_load("web", samples)
        assert estimate.lower < estimate.mean < estimate.upper
        assert estimate.contains(100.0)

    def test_confidence_validation(self):
        with pytest.raises(WatchError):
            estimate_load("web", [1.0], confidence=1.5)


class TestOnlineEstimator:
    def make(self, events, **kwargs):
        ledger = TelemetryLedger()
        for event in events:
            ledger.add(event)
        return OnlineEstimator(ledger, **kwargs)

    def test_mtbf_from_aggregates(self):
        estimator = self.make(failure_events("box.hard", 2400.0, 50))
        estimate = estimator.mtbf("web", "box.hard")
        assert estimate.mtbf == Duration.hours(2400.0)
        assert estimate.contains(Duration.hours(2400.0))

    def test_mttr_from_aggregates(self):
        estimator = self.make(repair_events("box.hard", 24.0, 40))
        estimate = estimator.mttr("web", "box.hard")
        assert estimate.mttr == Duration.hours(24.0)
        assert estimate.lower < estimate.mttr < estimate.upper

    def test_no_observations_is_none(self):
        estimator = self.make([])
        assert estimator.mtbf("web", "box.hard") is None
        assert estimator.mttr("web", "box.hard") is None
        assert estimator.load("web") is None

    def test_load_window_tracks_current_level(self):
        events = load_events(100.0, 30) \
            + load_events(400.0, 30, start_seq=30)
        windowed = self.make(events, load_window=30)
        all_time = self.make(events)
        assert windowed.load("web").mean == 400.0
        assert all_time.load("web").mean == 250.0

    def test_estimate_maps(self):
        estimator = self.make(failure_events("box.hard", 2400.0, 5)
                              + repair_events("box.hard", 24.0, 5,
                                              start_seq=5))
        assert set(estimator.mtbf_estimates("web")) == {"box.hard"}
        assert set(estimator.mttr_estimates("web")) == {"box.hard"}
