"""Soak: ``repro watch`` as a real subprocess under kill -9.

The daemon tails a drifted telemetry stream with an artificially slow
re-search (``--test-redesign-delay``), so there is a wide window in
which the journal holds a ``redesign-start`` with no matching
``redesign-done``.  A SIGKILL in that window followed by a restart
must finish the redesign exactly once, from the journaled spec, and
report ``resumed`` in its status document.
"""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.watch import WatchJournal

from .conftest import load_events, write_jsonl

SRC = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                   os.pardir, os.pardir, "src")

BASE = ["--paper-ecommerce", "--app-tier-only",
        "--tier", "application", "--load", "800",
        "--downtime", "100m", "--max-redundancy", "3",
        "--min-load-samples", "10", "--debounce", "2"]


def start_watch(*extra):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.abspath(SRC)
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "watch"] + BASE + list(extra),
        stdout=subprocess.PIPE, stderr=subprocess.PIPE,
        env=env, text=True)


def run_watch(*extra, timeout=120):
    process = start_watch(*extra)
    stdout, stderr = process.communicate(timeout=timeout)
    return process.returncode, stdout, stderr


def journal_entries(path):
    entries = []
    try:
        with open(path, encoding="utf-8") as handle:
            for line in handle:
                if line.strip():
                    entries.append(json.loads(line)["entry"])
    except OSError:
        pass
    return entries


@pytest.fixture
def drifted_stream(tmp_path):
    path = str(tmp_path / "stream.jsonl")
    write_jsonl(path, load_events(2400.0, 40, tier="application"))
    return path


class TestKillResume:
    def test_kill9_mid_redesign_resumes_exactly_once(
            self, tmp_path, drifted_stream):
        journal = str(tmp_path / "journal.jsonl")
        checkpoint = str(tmp_path / "ckpt.json")
        durable = ["--telemetry", drifted_stream,
                   "--journal", journal, "--checkpoint", checkpoint]
        process = start_watch("--poll-interval", "0.1",
                              "--test-redesign-delay", "30",
                              *durable)
        try:
            # Wait until the redesign is journaled but (thanks to the
            # delayed search) not yet done, then kill -9.
            deadline = time.monotonic() + 60.0
            while time.monotonic() < deadline:
                if process.poll() is not None:
                    raise AssertionError(
                        "watch died during soak:\n%s"
                        % process.stderr.read())
                if "redesign-start" in journal_entries(journal):
                    break
                time.sleep(0.05)
            assert "redesign-start" in journal_entries(journal)
            assert "redesign-done" not in journal_entries(journal)
        finally:
            process.kill()
            process.wait(timeout=30)

        state = WatchJournal.replay(journal)
        assert state.pending is not None
        assert state.pending["epoch"] == 1

        # Restart: the pending redesign replays from the journaled
        # spec before the first poll, then the loop goes stationary.
        code, stdout, stderr = run_watch(
            "--max-polls", "1", "--poll-interval", "0", "--json",
            *durable)
        assert code == 0, stderr
        status = json.loads(stdout)
        assert status["resumed"] is True
        assert status["epoch"] == 1
        assert status["incumbent"]["n_active"] == 14
        assert status["spec"]["load"] == pytest.approx(
            800.0 * 1.25 ** 5)

        state = WatchJournal.replay(journal)
        assert state.last_epoch == 1
        assert state.pending is None
        done = [e for e in journal_entries(journal)
                if e == "redesign-done"]
        assert done == ["redesign-done"]  # exactly once

        # A third run replays the completed journal: no new redesign.
        code, stdout, _ = run_watch(
            "--max-polls", "1", "--poll-interval", "0", "--json",
            *durable)
        assert code == 0
        status = json.loads(stdout)
        assert status["epoch"] == 1
        assert journal_entries(journal).count("redesign-start") == 1


class TestSignals:
    def test_sigterm_interrupts_cleanly(self, tmp_path):
        stream = str(tmp_path / "stream.jsonl")
        write_jsonl(stream, load_events(800.0, 5, tier="application"))
        # No --max-polls: runs until a signal arrives.
        process = start_watch("--telemetry", stream,
                              "--poll-interval", "0.1")
        time.sleep(2.0)
        assert process.poll() is None
        process.send_signal(signal.SIGTERM)
        stdout, stderr = process.communicate(timeout=30)
        assert process.returncode == 130, stderr
        assert "interrupted" in stdout
