"""Ingestion: union-by-identity ledger, tail reader, metrics feed."""

import random

from repro.obs import MetricsRegistry
from repro.watch import JsonlTailReader, MetricsFeed, TelemetryEvent, \
    TelemetryLedger

from .conftest import failure_events, load_events, repair_events, \
    write_jsonl


class TestLedger:
    def test_union_dedups_exact_replays(self):
        ledger = TelemetryLedger()
        events = load_events(100.0, 5)
        for event in events + events:
            ledger.add(event)
        assert ledger.accepted == 5
        assert ledger.duplicates == 5
        assert ledger.load_samples("web") == [100.0] * 5

    def test_conflict_keeps_first_seen(self):
        ledger = TelemetryLedger()
        first = load_events(100.0, 1)[0]
        forged = TelemetryEvent(kind="load", source=first.source,
                                seq=first.seq, time_hours=0.0,
                                tier="web", value=999.0)
        assert ledger.add(first) == "accepted"
        assert ledger.add(forged) == "conflict"
        assert ledger.load_samples("web") == [100.0]
        assert ledger.conflicts == 1

    def test_permutation_invariance(self):
        events = (load_events(100.0, 10)
                  + failure_events("box.hard", 2400.0, 10)
                  + repair_events("box.hard", 24.0, 10, start_seq=10))
        ledger_a, ledger_b = TelemetryLedger(), TelemetryLedger()
        shuffled = list(events)
        random.Random(7).shuffle(shuffled)
        for event in events:
            ledger_a.add(event)
        for event in shuffled + shuffled[::3]:
            ledger_b.add(event)
        assert ledger_a.snapshot()["sources"] \
            == ledger_b.snapshot()["sources"]
        assert ledger_a.load_samples("web") == ledger_b.load_samples("web")
        stats_a = ledger_a.mode_stats("web", "box.hard")
        stats_b = ledger_b.mode_stats("web", "box.hard")
        assert (stats_a.failures, stats_a.exposure_hours,
                stats_a.repairs, stats_a.repair_hours) \
            == (stats_b.failures, stats_b.exposure_hours,
                stats_b.repairs, stats_b.repair_hours)

    def test_gap_detection(self):
        ledger = TelemetryLedger()
        for event in load_events(100.0, 10):
            if event.seq not in (3, 7):
                ledger.add(event)
        assert ledger.gaps() == {"lb": 2}

    def test_skew_detection(self):
        ledger = TelemetryLedger()
        events = load_events(100.0, 5)
        skewed = TelemetryEvent(kind="load", source="lb", seq=5,
                                time_hours=-500.0, tier="web",
                                value=100.0)
        for event in events + [skewed]:
            ledger.add(event)
        assert ledger.skewed_sources() == ["lb"]
        # The samples themselves are untouched by the lying clock.
        assert ledger.load_samples("web") == [100.0] * 6

    def test_load_window(self):
        ledger = TelemetryLedger()
        for event in load_events(100.0, 5) \
                + load_events(200.0, 5, start_seq=5):
            ledger.add(event)
        assert ledger.load_samples("web", window=5) == [200.0] * 5


class TestTailReader:
    def test_incremental_polls(self, tmp_path):
        path = str(tmp_path / "stream.jsonl")
        events = load_events(100.0, 4)
        write_jsonl(path, events[:2])
        reader = JsonlTailReader(path)
        got, rejects = reader.poll()
        assert [e.seq for e in got] == [0, 1] and not rejects
        with open(path, "a") as handle:
            for event in events[2:]:
                handle.write(event.to_json_line())
        got, _ = reader.poll()
        assert [e.seq for e in got] == [2, 3]
        assert reader.poll() == ([], [])

    def test_missing_file_is_empty_stream(self, tmp_path):
        reader = JsonlTailReader(str(tmp_path / "absent.jsonl"))
        assert reader.poll() == ([], [])

    def test_torn_tail_invisible_until_completed(self, tmp_path):
        path = str(tmp_path / "stream.jsonl")
        line = load_events(100.0, 1)[0].to_json_line()
        with open(path, "w") as handle:
            handle.write(line)
            handle.write(line[: len(line) // 2])    # torn, no newline
        reader = JsonlTailReader(path)
        got, rejects = reader.poll()
        assert len(got) == 1 and not rejects
        # A restarted producer terminates the torn line; the merged
        # bytes are one malformed record -- quarantined, never parsed.
        with open(path, "a") as handle:
            handle.write("\n")
        got, rejects = reader.poll()
        assert got == [] and len(rejects) == 1

    def test_malformed_lines_are_rejected_not_fatal(self, tmp_path):
        path = str(tmp_path / "stream.jsonl")
        with open(path, "wb") as handle:
            handle.write(b'{"kind": "load"\x00\xff garbage\n')
            handle.write(load_events(100.0, 1)[0]
                         .to_json_line().encode())
        got, rejects = reader_poll = JsonlTailReader(path).poll()
        assert len(got) == 1
        assert len(rejects) == 1
        assert rejects[0].source == "stream.jsonl"
        assert len(rejects[0].line) <= JsonlTailReader.EXCERPT


class TestMetricsFeed:
    def test_deltas_become_windows(self):
        registry = MetricsRegistry()
        feed = MetricsFeed(registry, "web", ["box.hard"])
        registry.counter("watch.web.box.hard.failures").inc(2)
        registry.gauge("watch.web.box.hard.exposure_hours").set(4800.0)
        registry.counter("watch.web.box.hard.repairs").inc(1)
        registry.gauge("watch.web.box.hard.repair_hours").set(24.0)
        registry.gauge("watch.web.load").set(300.0)
        events = feed.poll()
        kinds = sorted(event.kind for event in events)
        assert kinds == ["failure", "load", "repair"]
        ledger = TelemetryLedger()
        for event in events:
            assert ledger.add(event) == "accepted"
        stats = ledger.mode_stats("web", "box.hard")
        assert stats.failures == 2
        assert stats.exposure_hours == 4800.0
        assert ledger.load_samples("web") == [300.0]

    def test_second_poll_reports_only_growth(self):
        registry = MetricsRegistry()
        feed = MetricsFeed(registry, "web", ["box.hard"])
        registry.counter("watch.web.box.hard.failures").inc(2)
        registry.gauge("watch.web.box.hard.exposure_hours").set(100.0)
        feed.poll()
        registry.counter("watch.web.box.hard.failures").inc(1)
        registry.gauge("watch.web.box.hard.exposure_hours").set(150.0)
        events = feed.poll()
        failure = [e for e in events if e.kind == "failure"][0]
        assert failure.failures == 1
        assert failure.exposure_hours == 50.0
        # Sequence numbers keep advancing: the feed is its own source.
        assert failure.seq >= 1
