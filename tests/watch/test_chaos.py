"""Chaos soak: a 30% telemetry fault storm must change *nothing*.

The same logical event sequence -- a stationary prefix, then a load
plateau and an MTTR regression -- is delivered once through a clean
producer and once through a 30% fault storm (gaps, duplicates, clock
skew, corrupt lines, producer kills).  Both watchers must converge to
**byte-identical** redesign decisions: the union ledger erases
duplicates and ordering, quarantine absorbs corruption, per-record
ratios keep point estimates identical across surviving subsets, and
the spec-anchored quantization grid snaps away the residual noise.

A stationary storm run additionally proves the negative: faults alone
never cause a spurious reconfiguration.
"""

import pytest

from repro.resilience.events import (TELEMETRY_GAP, TELEMETRY_MALFORMED,
                                     TELEMETRY_SKEW)
from repro.watch import DriftPolicy, JsonlTailReader, WatchFaultPlan
from repro.watch.faults import write_stream

from .conftest import load_events, make_watcher, repair_events

#: ~30% of records faulted, all five fault kinds in play.
STORM = WatchFaultPlan(seed=23, gap_rate=0.08, duplicate_rate=0.08,
                       skew_rate=0.07, corrupt_rate=0.05,
                       kill_rate=0.02)

POLICY = DriftPolicy(min_load_samples=20, min_repairs=10, debounce=2,
                     cooldown=2)


def drifting_sequence():
    """Stationary prefix, then a 4x load plateau and an 8x MTTR one.

    Per-record values are constant within each phase, so any surviving
    subset of a phase estimates the same point value -- the property
    the storm cannot break.
    """
    events = load_events(150.0, 40)                       # stationary
    events += repair_events("box.hard", 24.0, 20, source="ops")
    events += load_events(600.0, 80, start_seq=40)        # load drift
    events += repair_events("box.hard", 192.0, 60, source="ops",
                            start_seq=20)                 # mttr drift
    return events


def run_watcher(tmp_path, evaluator, spec, events, plan, name):
    path = str(tmp_path / ("%s.jsonl" % name))
    writer = write_stream(path, events, plan)
    watcher = make_watcher(evaluator, spec,
                           readers=[JsonlTailReader(path, name)],
                           policy=POLICY)
    for _ in range(8):
        status = watcher.poll()
    return watcher, writer, status


def test_storm_converges_to_identical_decisions(
        tmp_path, tiny_evaluator, tiny_spec):
    events = drifting_sequence()
    clean, _, clean_status = run_watcher(
        tmp_path, tiny_evaluator, tiny_spec, events, None, "clean")
    stormy, writer, storm_status = run_watcher(
        tmp_path, tiny_evaluator, tiny_spec, events, STORM, "storm")
    # The storm really happened...
    assert sum(writer.injected.values()) > 40
    assert storm_status["quarantined"] >= writer.injected["corrupt"]
    # ...and changed nothing that matters: every redesign decision --
    # epoch, drifted spec, chosen design, cost -- is byte-identical.
    assert clean.decisions != []
    assert stormy.decisions_digest() == clean.decisions_digest()
    assert storm_status["incumbent"] == clean_status["incumbent"]
    assert storm_status["spec"] == clean_status["spec"]
    assert storm_status["reconfigurations"] \
        == clean_status["reconfigurations"]


def test_storm_diagnostics_are_complete(tmp_path, tiny_evaluator,
                                        tiny_spec):
    events = drifting_sequence()
    watcher, writer, status = run_watcher(
        tmp_path, tiny_evaluator, tiny_spec, events, STORM, "storm")
    counts = watcher.log.counts()
    if writer.injected["corrupt"]:
        assert counts[TELEMETRY_MALFORMED] >= writer.injected["corrupt"]
    if writer.injected["gap"]:
        assert counts.get(TELEMETRY_GAP, 0) >= 1
    if writer.injected["skew"]:
        assert counts.get(TELEMETRY_SKEW, 0) >= 1
    # Quarantine is bounded and each entry carries its provenance.
    assert all(entry["source"] == "storm"
               for entry in watcher.quarantined)


def test_stationary_storm_never_reconfigures(tmp_path, tiny_evaluator,
                                             tiny_spec):
    events = load_events(150.0, 120) \
        + repair_events("box.hard", 24.0, 40, source="ops")
    watcher, writer, status = run_watcher(
        tmp_path, tiny_evaluator, tiny_spec, events, STORM,
        "stationary")
    assert sum(writer.injected.values()) > 20
    assert status["epoch"] == 0
    assert status["reconfigurations"] == 0
    assert watcher.decisions == []


@pytest.mark.parametrize("seed", [1, 7, 42])
def test_convergence_across_storm_seeds(tmp_path, tiny_evaluator,
                                        tiny_spec, seed):
    """Different storms, same destination."""
    plan = WatchFaultPlan(seed=seed, gap_rate=0.08,
                          duplicate_rate=0.08, skew_rate=0.07,
                          corrupt_rate=0.05, kill_rate=0.02)
    events = drifting_sequence()
    clean, _, _ = run_watcher(tmp_path, tiny_evaluator, tiny_spec,
                              events, None, "clean-%d" % seed)
    stormy, _, _ = run_watcher(tmp_path, tiny_evaluator, tiny_spec,
                               events, plan, "storm-%d" % seed)
    assert stormy.decisions_digest() == clean.decisions_digest()
