"""Telemetry event parsing, validation, and canonical serialization."""

import pytest

from repro.errors import WatchError
from repro.watch import EVENT_KINDS, TelemetryEvent, event_from_dict, \
    parse_line


def test_kinds_registry():
    assert set(EVENT_KINDS) == {"failure", "repair", "load"}


class TestRoundTrip:
    def test_load(self):
        event = TelemetryEvent(kind="load", source="lb", seq=3,
                               time_hours=12.5, tier="web", value=480.0)
        assert parse_line(event.to_json_line()) == event

    def test_failure(self):
        event = TelemetryEvent(kind="failure", source="ops", seq=0,
                               time_hours=1.0, tier="web",
                               mode="box.hard", failures=2,
                               exposure_hours=4800.0)
        assert parse_line(event.to_json_line()) == event

    def test_repair(self):
        event = TelemetryEvent(kind="repair", source="ops", seq=9,
                               time_hours=7.0, tier="web",
                               mode="box.hard", repairs=1,
                               repair_hours=26.0)
        assert parse_line(event.to_json_line()) == event

    def test_json_line_is_newline_terminated(self):
        event = TelemetryEvent(kind="load", source="lb", seq=0,
                               time_hours=0.0, tier="web", value=1.0)
        assert event.to_json_line().endswith("\n")
        assert "\n" not in event.to_json_line()[:-1]

    def test_key_is_source_and_seq(self):
        event = TelemetryEvent(kind="load", source="lb", seq=7,
                               time_hours=0.0, tier="web", value=1.0)
        assert event.key == ("lb", 7)


class TestValidation:
    def test_unknown_kind(self):
        with pytest.raises(WatchError):
            event_from_dict({"kind": "reboot", "source": "lb", "seq": 0,
                             "time_hours": 0.0, "tier": "web"})

    def test_negative_counts(self):
        with pytest.raises(WatchError):
            event_from_dict({"kind": "failure", "source": "ops",
                             "seq": 0, "time_hours": 0.0, "tier": "web",
                             "mode": "m", "failures": -1,
                             "exposure_hours": 1.0})

    def test_non_finite_value(self):
        with pytest.raises(WatchError):
            event_from_dict({"kind": "load", "source": "lb", "seq": 0,
                             "time_hours": 0.0, "tier": "web",
                             "value": float("nan")})

    def test_negative_time_is_allowed(self):
        # Clock skew may push advisory timestamps below zero; they are
        # never used for estimation, so they must not be fatal.
        event = TelemetryEvent(kind="load", source="lb", seq=0,
                               time_hours=-42.0, tier="web", value=1.0)
        assert event.time_hours == -42.0

    def test_parse_rejects_non_json(self):
        with pytest.raises(WatchError):
            parse_line("not json at all")

    def test_parse_rejects_non_object(self):
        with pytest.raises(WatchError):
            parse_line("[1, 2, 3]")

    def test_from_dict_rejects_missing_fields(self):
        with pytest.raises(WatchError):
            event_from_dict({"kind": "load"})
