"""Shared helpers for the watch tests: tiny evaluator and streams."""

import pytest

from repro.core import DesignEvaluator
from repro.core.search import SearchLimits
from repro.units import Duration
from repro.watch import TelemetryEvent, WatchSpec, Watcher


@pytest.fixture
def tiny_evaluator(tiny_infra, tiny_service):
    return DesignEvaluator(tiny_infra, tiny_service)


@pytest.fixture
def tiny_spec():
    """A spec the tiny model solves quickly (web tier, 100*n perf)."""
    return WatchSpec("web", 150.0, Duration.minutes(100))


def make_watcher(evaluator, spec, **kwargs):
    kwargs.setdefault("limits", SearchLimits(max_redundancy=2))
    return Watcher(evaluator, spec, **kwargs)


def load_events(value, count, tier="web", source="lb", start_seq=0,
                start_time=0.0):
    return [TelemetryEvent(kind="load", source=source,
                           seq=start_seq + i,
                           time_hours=start_time + i, tier=tier,
                           value=value)
            for i in range(count)]


def repair_events(mode, mttr_hours, count, tier="web", source="ops",
                  start_seq=0, start_time=0.0):
    """One repair per event, each at exactly ``mttr_hours``.

    The per-record ratio is constant, so the aggregate point estimate
    is ``mttr_hours`` for *any* surviving subset -- which is what lets
    fault-storm runs converge to the clean run's drifted spec.
    """
    return [TelemetryEvent(kind="repair", source=source,
                           seq=start_seq + i,
                           time_hours=start_time + i, tier=tier,
                           mode=mode, repairs=1,
                           repair_hours=mttr_hours)
            for i in range(count)]


def failure_events(mode, mtbf_hours, count, tier="web", source="ops",
                   start_seq=0, start_time=0.0):
    """One failure per event with exposure at exactly ``mtbf_hours``."""
    return [TelemetryEvent(kind="failure", source=source,
                           seq=start_seq + i,
                           time_hours=start_time + i, tier=tier,
                           mode=mode, failures=1,
                           exposure_hours=mtbf_hours)
            for i in range(count)]


def write_jsonl(path, events):
    with open(path, "w") as handle:
        for event in events:
            handle.write(event.to_json_line())
