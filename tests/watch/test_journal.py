"""The watcher's crash journal: replay, torn tails, degraded writes."""

from repro.resilience.events import DegradationLog, WATCH_JOURNAL_FAULT
from repro.watch import WatchJournal


SPEC = {"tier": "web", "load": 600.0, "max_downtime_minutes": 100.0,
        "mtbf_hours": {}, "mttr_hours": {}}
DECISION = {"epoch": 1, "spec": SPEC, "feasible": True,
            "reconfigured": True, "design": None}


def test_empty_or_missing_journal(tmp_path):
    state = WatchJournal.replay(str(tmp_path / "absent.jsonl"))
    assert state.last_epoch == 0
    assert state.pending is None
    assert state.entries == 0


def test_completed_epoch_replays_spec_and_decision(tmp_path):
    path = str(tmp_path / "journal.jsonl")
    journal = WatchJournal(path)
    assert journal.redesign_start(1, SPEC)
    assert journal.redesign_done(1, DECISION)
    state = WatchJournal.replay(path)
    assert state.last_epoch == 1
    assert state.last_spec == SPEC
    assert state.last_decision == DECISION
    assert state.pending is None
    assert not journal.degraded


def test_interrupted_redesign_is_pending(tmp_path):
    path = str(tmp_path / "journal.jsonl")
    journal = WatchJournal(path)
    journal.redesign_start(1, SPEC)
    journal.redesign_done(1, DECISION)
    journal.redesign_start(2, dict(SPEC, load=1200.0))
    state = WatchJournal.replay(path)
    assert state.last_epoch == 1
    assert state.pending["epoch"] == 2
    assert state.pending["spec"]["load"] == 1200.0


def test_torn_tail_is_skipped_not_fatal(tmp_path):
    path = str(tmp_path / "journal.jsonl")
    journal = WatchJournal(path)
    journal.redesign_start(1, SPEC)
    journal.redesign_done(1, DECISION)
    with open(path, "a") as handle:
        handle.write('{"entry": "redesign-start", "epo')   # kill -9 here
    state = WatchJournal.replay(path)
    assert state.last_epoch == 1
    assert state.pending is None
    assert state.skipped == 1


def test_write_failure_degrades_never_raises(tmp_path):
    log = DegradationLog()
    journal = WatchJournal(str(tmp_path), log)    # a directory: EISDIR
    assert not journal.redesign_start(1, SPEC)
    assert journal.degraded
    assert journal.appends == 0
    assert log.counts().get(WATCH_JOURNAL_FAULT) == 1


def test_done_without_start_is_ignored(tmp_path):
    path = str(tmp_path / "journal.jsonl")
    with open(path, "w") as handle:
        handle.write('{"entry": "redesign-done", "epoch": 5, '
                     '"decision": {}}\n')
    state = WatchJournal.replay(path)
    assert state.last_epoch == 0
    assert state.pending is None
