"""Tests for synthetic workload generation."""

import pytest

from repro import workload
from repro.errors import ModelError


class TestDiurnal:
    def test_range(self):
        loads = workload.diurnal(100, peak_ratio=3.0)
        assert len(loads) == 24
        assert min(loads) == pytest.approx(100, rel=1e-9)
        assert max(loads) == pytest.approx(300, rel=1e-9)

    def test_peak_hour(self):
        loads = workload.diurnal(100, peak_ratio=2.0, peak_hour=14.0)
        assert loads.index(max(loads)) == 14

    def test_flat_when_ratio_one(self):
        loads = workload.diurnal(100, peak_ratio=1.0)
        assert all(load == pytest.approx(100) for load in loads)

    def test_multiple_days_repeat(self):
        loads = workload.diurnal(100, days=2)
        assert loads[:24] == loads[24:]

    def test_weekend_scaling(self):
        loads = workload.diurnal(100, days=7, weekend_factor=0.5)
        weekday = loads[:24]
        saturday = loads[5 * 24:6 * 24]
        for a, b in zip(weekday, saturday):
            assert b == pytest.approx(a * 0.5)

    def test_validation(self):
        with pytest.raises(ModelError):
            workload.diurnal(0)
        with pytest.raises(ModelError):
            workload.diurnal(100, peak_ratio=0.5)
        with pytest.raises(ModelError):
            workload.diurnal(100, samples_per_day=0)


class TestFlashCrowd:
    def test_shape(self):
        loads = workload.flash_crowd(100, spike_ratio=10.0,
                                     total_samples=48, spike_at=12)
        assert all(load == 100 for load in loads[:12])
        assert loads[12] == pytest.approx(1000)
        assert loads[-1] < loads[12]
        # Monotone decay after the spike.
        tail = loads[12:]
        assert all(a >= b for a, b in zip(tail, tail[1:]))

    def test_decay_constant(self):
        loads = workload.flash_crowd(100, spike_ratio=11.0,
                                     total_samples=20, spike_at=0,
                                     decay_samples=5.0)
        import math
        assert loads[5] == pytest.approx(
            100 * (1 + 10 * math.exp(-1.0)))

    def test_validation(self):
        with pytest.raises(ModelError):
            workload.flash_crowd(100, spike_at=100, total_samples=50)
        with pytest.raises(ModelError):
            workload.flash_crowd(100, spike_ratio=0.5)


class TestRamp:
    def test_endpoints(self):
        loads = workload.ramp(100, 500, total_samples=5)
        assert loads[0] == 100
        assert loads[-1] == 500
        assert loads == sorted(loads)

    def test_descending(self):
        loads = workload.ramp(500, 100, total_samples=5)
        assert loads == sorted(loads, reverse=True)

    def test_validation(self):
        with pytest.raises(ModelError):
            workload.ramp(100, 500, total_samples=1)


class TestNoisy:
    def test_reproducible_with_seed(self):
        base = workload.ramp(100, 200, 10)
        assert workload.noisy(base, seed=7) == workload.noisy(base,
                                                              seed=7)

    def test_zero_sigma_is_identity(self):
        base = workload.ramp(100, 200, 10)
        assert workload.noisy(base, sigma=0.0, seed=1) == \
            pytest.approx(base)

    def test_noise_stays_positive(self):
        base = workload.diurnal(50)
        assert all(load > 0 for load in workload.noisy(base, sigma=0.5,
                                                       seed=3))

    def test_validation(self):
        with pytest.raises(ModelError):
            workload.noisy([100], sigma=-0.1)
