"""Additional report-formatting coverage: multi-tier and job outputs."""

import pytest

from repro.core import Design, DesignEvaluator, TierDesign
from repro.core.report import evaluation_summary, format_downtime
from repro.model import MechanismConfig, ServiceRequirements
from repro.units import Duration


class TestFormatDowntimeBoundaries:
    def test_hours_threshold(self):
        assert format_downtime(60.0) == "1.0 h/yr"
        assert format_downtime(59.9).endswith("min/yr")

    def test_sub_minute_precision(self):
        assert format_downtime(0.999) == "1.00 min/yr"
        assert format_downtime(0.005) == "0.01 min/yr"


class TestMultiTierSummary:
    def test_three_tier_summary(self, paper_infra, ecommerce):
        evaluator = DesignEvaluator(paper_infra, ecommerce)
        bronze_a = MechanismConfig(paper_infra.mechanism("maintenanceA"),
                                   {"level": "bronze"})
        bronze_b = MechanismConfig(paper_infra.mechanism("maintenanceB"),
                                   {"level": "bronze"})
        design = Design((
            TierDesign("web", "rA", 3, 0, (), (bronze_a,)),
            TierDesign("application", "rC", 6, 0, (), (bronze_a,)),
            TierDesign("database", "rG", 1, 1, (), (bronze_b,)),
        ))
        evaluation = evaluator.evaluate(
            design, ServiceRequirements(400, Duration.minutes(2000)))
        text = evaluation_summary(evaluation)
        for tier in ("web", "application", "database"):
            assert tier in text
        assert "annual cost" in text
        # Database tier includes a 93.5k machineB: total is six figures.
        assert evaluation.annual_cost > 100_000

    def test_job_summary_fields(self, paper_infra, scientific):
        evaluator = DesignEvaluator(paper_infra, scientific)
        bronze = MechanismConfig(paper_infra.mechanism("maintenanceA"),
                                 {"level": "bronze"})
        checkpoint = paper_infra.mechanism("checkpoint")
        grid = checkpoint.parameter("checkpoint_interval").values \
            .values()
        config = MechanismConfig(checkpoint,
                                 {"storage_location": "central",
                                  "checkpoint_interval": grid[60]})
        design = Design((TierDesign("computation", "rH", 12, 1, (),
                                    (bronze, config)),))
        evaluation = evaluator.evaluate(design, None)
        text = evaluation_summary(evaluation)
        assert "expected job time" in text
        assert "useful" in text
        assert "overhead" in text
