"""Tests for the design-space search (paper section 4.1)."""

import math

import pytest

from repro.core import (Design, DesignEvaluator, EvaluatedTierDesign,
                        JobSearch, SearchLimits, TierDesign, TierSearch,
                        combine_tier_frontiers, pareto_filter)
from repro.errors import SearchError
from repro.model import JobRequirements
from repro.units import Duration


@pytest.fixture
def app_search(paper_infra, app_tier_service):
    return TierSearch(DesignEvaluator(paper_infra, app_tier_service))


@pytest.fixture
def sci_search(paper_infra, scientific):
    limits = SearchLimits(
        spare_policy="cold", max_redundancy=12,
        fixed_settings={"maintenanceA": {"level": "bronze"},
                        "maintenanceB": {"level": "bronze"}})
    return JobSearch(DesignEvaluator(paper_infra, scientific), limits)


class TestSearchLimits:
    def test_defaults(self):
        limits = SearchLimits()
        assert limits.max_redundancy == 8
        assert limits.spare_policy == "cold"

    def test_validation(self):
        with pytest.raises(SearchError):
            SearchLimits(max_redundancy=-1)
        with pytest.raises(SearchError):
            SearchLimits(patience=0)
        with pytest.raises(SearchError):
            SearchLimits(spare_policy="lukewarm")


class TestTierSearch:
    def test_paper_anchor_load1000_downtime100(self, app_search):
        """The paper's worked example: family 9 (rC, bronze, 1 extra)."""
        best = app_search.best_tier_design(
            "application", 1000, Duration.minutes(100))
        assert best is not None
        assert best.design.resource == "rC"
        assert best.design.n_active == 6
        assert best.design.n_spare == 0
        assert best.design.mechanism_config("maintenanceA") \
            .settings["level"] == "bronze"
        assert best.annual_cost == pytest.approx(28320.0)
        assert best.downtime_minutes == pytest.approx(46.5, abs=2)

    def test_loose_requirement_gives_minimum_design(self, app_search):
        best = app_search.best_tier_design(
            "application", 1000, Duration.minutes(8000))
        assert best.design.n_active == 5
        assert best.design.n_spare == 0
        assert best.annual_cost == pytest.approx(5 * 4720.0)

    def test_tight_requirement_buys_redundancy(self, app_search):
        loose = app_search.best_tier_design(
            "application", 1000, Duration.minutes(100))
        tight = app_search.best_tier_design(
            "application", 1000, Duration.minutes(1))
        assert tight.annual_cost > loose.annual_cost
        assert tight.downtime_minutes <= 1.0

    def test_infeasible_returns_none(self, paper_infra, app_tier_service):
        search = TierSearch(DesignEvaluator(paper_infra, app_tier_service),
                            SearchLimits(max_redundancy=1))
        best = search.best_tier_design(
            "application", 1000, Duration.seconds(1))
        assert best is None

    def test_unreachable_load_returns_none(self, app_search):
        # rC/rD max out at 200*1000; rE/rF at 1600*1000.
        best = app_search.best_tier_design(
            "application", 2_000_000, Duration.minutes(1000))
        assert best is None

    def test_monotone_cost_in_requirement(self, app_search):
        """Tighter downtime requirements can never get cheaper."""
        costs = []
        for minutes in (5000, 500, 50, 5, 0.5):
            best = app_search.best_tier_design(
                "application", 800, Duration.minutes(minutes))
            assert best is not None
            costs.append(best.annual_cost)
        assert costs == sorted(costs)

    def test_feasible_design_meets_requirement(self, app_search):
        for minutes in (10, 100, 1000):
            best = app_search.best_tier_design(
                "application", 1600, Duration.minutes(minutes))
            assert best.downtime_minutes <= minutes

    def test_stats_track_work(self, app_search):
        app_search.best_tier_design("application", 400,
                                    Duration.minutes(100))
        assert app_search.stats.structures_enumerated > 0
        assert app_search.stats.availability_evaluations > 0

    def test_cache_reused_across_calls(self, app_search):
        app_search.best_tier_design("application", 400,
                                    Duration.minutes(100))
        solves_before = app_search.stats.availability_evaluations
        app_search.best_tier_design("application", 400,
                                    Duration.minutes(100))
        assert app_search.stats.cache_hits > 0
        assert app_search.stats.availability_evaluations == solves_before


class TestTierFrontier:
    def test_frontier_is_pareto(self, app_search):
        frontier = app_search.tier_frontier("application", 1000)
        assert len(frontier) > 3
        ordered = sorted(frontier, key=lambda c: c.annual_cost)
        for a, b in zip(ordered, ordered[1:]):
            assert b.unavailability < a.unavailability

    def test_frontier_contains_paper_families(self, app_search):
        frontier = app_search.tier_frontier("application", 1000)
        signatures = {(c.design.resource, c.design.n_active,
                       c.design.n_spare,
                       c.design.mechanism_config("maintenanceA")
                       .settings["level"])
                      for c in frontier}
        assert ("rC", 5, 0, "bronze") in signatures      # family 1
        assert ("rC", 6, 0, "bronze") in signatures      # family 9
        assert ("rC", 5, 1, "bronze") in signatures      # family 6

    def test_pareto_filter(self):
        def make(cost, unavailability):
            return EvaluatedTierDesign(TierDesign("t", "rC", 1, 0),
                                       cost, unavailability)
        candidates = [make(100, 0.5), make(200, 0.1), make(150, 0.5),
                      make(300, 0.1), make(250, 0.05)]
        frontier = pareto_filter(candidates)
        assert [(c.annual_cost, c.unavailability) for c in frontier] == \
            [(100, 0.5), (200, 0.1), (250, 0.05)]

    def test_pareto_filter_empty(self):
        assert pareto_filter([]) == []


class TestCombineTierFrontiers:
    def make(self, tier, cost, unavailability):
        return EvaluatedTierDesign(TierDesign(tier, "rC", 1, 0), cost,
                                   unavailability)

    def minutes(self, value):
        return Duration.minutes(value)

    def test_single_tier(self):
        frontier = [self.make("a", 100, 1e-4), self.make("a", 50, 1e-2)]
        design = combine_tier_frontiers([frontier], self.minutes(100))
        # 1e-4 * 525600 = 52.6 min <= 100: cheap one is infeasible
        # (1e-2 -> 5256 min), so the expensive one wins.
        assert design.tiers[0].resource == "rC"
        assert design is not None

    def test_budget_split_across_tiers(self):
        # Tier A: cheap/dirty or pricey/clean. Tier B likewise.
        a = [self.make("a", 100, 2e-4), self.make("a", 500, 1e-6)]
        b = [self.make("b", 100, 2e-4), self.make("b", 300, 1e-6)]
        # Requirement ~105 min/yr: one tier can stay dirty (105 min
        # covers one 2e-4) but not both; upgrading B is cheaper.
        design = combine_tier_frontiers([a, b], self.minutes(107))
        assert design is not None
        chosen_costs = {t.tier: t for t in design.tiers}
        assert len(design.tiers) == 2
        # The optimal combination upgrades tier B (300 < 500).
        total = 100 + 300
        # Verify through recomputation: find which split was chosen.
        picked = sorted(t.tier for t in design.tiers)
        assert picked == ["a", "b"]
        assert chosen_costs["a"].n_active == 1

    def test_infeasible_combination(self):
        a = [self.make("a", 100, 0.5)]
        b = [self.make("b", 100, 0.5)]
        assert combine_tier_frontiers([a, b], self.minutes(1)) is None

    def test_empty_frontier_gives_none(self):
        a = [self.make("a", 100, 0.1)]
        assert combine_tier_frontiers([a, []], self.minutes(1000)) is None

    def test_no_frontiers_rejected(self):
        with pytest.raises(SearchError):
            combine_tier_frontiers([], self.minutes(1))

    def test_optimality_against_brute_force(self):
        import itertools
        a = [self.make("a", c, u) for c, u in
             ((100, 3e-4), (180, 1e-4), (400, 1e-6))]
        b = [self.make("b", c, u) for c, u in
             ((90, 4e-4), (210, 5e-5), (350, 1e-6))]
        target_minutes = 150.0
        best_cost = math.inf
        for ca, cb in itertools.product(a, b):
            u = 1 - (1 - ca.unavailability) * (1 - cb.unavailability)
            if u * 525600 <= target_minutes:
                best_cost = min(best_cost,
                                ca.annual_cost + cb.annual_cost)
        design = combine_tier_frontiers([a, b],
                                        self.minutes(target_minutes))
        assert design is not None
        # Recompute the chosen cost.
        chosen = 0.0
        for tier_design in design.tiers:
            pool = a if tier_design.tier == "a" else b
            match = [c for c in pool if c.design is tier_design]
            chosen += match[0].annual_cost
        assert chosen == pytest.approx(best_cost)


class TestJobSearch:
    def test_relaxed_deadline_prefers_machineA(self, sci_search):
        best = sci_search.best_design(JobRequirements(Duration.hours(200)))
        assert best is not None
        assert best.design.tiers[0].resource == "rH"
        assert best.job_time.expected_time <= Duration.hours(200)

    def test_tight_deadline_prefers_machineB(self, sci_search):
        best = sci_search.best_design(JobRequirements(Duration.hours(5)))
        assert best is not None
        assert best.design.tiers[0].resource == "rI"

    def test_impossible_deadline_returns_none(self, sci_search):
        assert sci_search.best_design(
            JobRequirements(Duration.minutes(10))) is None

    def test_cost_monotone_in_deadline(self, sci_search):
        costs = []
        for hours in (1000, 100, 20, 5):
            best = sci_search.best_design(
                JobRequirements(Duration.hours(hours)))
            assert best is not None
            costs.append(best.annual_cost)
        assert costs == sorted(costs)

    def test_checkpoint_configured(self, sci_search):
        best = sci_search.best_design(JobRequirements(Duration.hours(100)))
        tier = best.design.tiers[0]
        config = tier.mechanism_config("checkpoint")
        assert config.settings["storage_location"] in ("central", "peer")
        assert Duration.minutes(1) <= \
            config.settings["checkpoint_interval"] <= Duration.hours(24)

    def test_maintenance_pinned_to_bronze(self, sci_search):
        best = sci_search.best_design(JobRequirements(Duration.hours(100)))
        tier = best.design.tiers[0]
        assert tier.mechanism_config("maintenanceA") \
            .settings["level"] == "bronze"

    def test_fixed_settings_validation(self, paper_infra, scientific):
        limits = SearchLimits(fixed_settings={
            "maintenanceA": {"level": "diamond"}})
        search = JobSearch(DesignEvaluator(paper_infra, scientific),
                           limits)
        with pytest.raises(SearchError):
            search.best_design(JobRequirements(Duration.hours(100)))

    def test_job_search_rejects_non_job_service(self, paper_infra,
                                                app_tier_service):
        search = JobSearch(DesignEvaluator(paper_infra, app_tier_service))
        with pytest.raises(SearchError):
            search.best_design(JobRequirements(Duration.hours(1)))


class TestMaxInstancesCap:
    @pytest.fixture
    def capped_setup(self):
        """A component capped at 6 instances limits actives + spares."""
        from repro.model import (ComponentSlot, ComponentType,
                                 ExpressionPerformance, FailureMode,
                                 FailureScope, InfrastructureModel,
                                 ResourceOption, ResourceType,
                                 ServiceModel, Sizing, Tier)
        from repro.units import ArithmeticRange
        box = ComponentType(
            "box", max_instances=6,
            failure_modes=(FailureMode("hard", Duration.days(100),
                                       Duration.hours(24)),))
        infra = InfrastructureModel(
            components=[box],
            resources=[ResourceType(
                "node", slots=(ComponentSlot("box", None,
                                             Duration.minutes(1)),))])
        option = ResourceOption("node", Sizing.DYNAMIC,
                                FailureScope.RESOURCE,
                                ArithmeticRange(1, 50, 1),
                                ExpressionPerformance("100*n"))
        service = ServiceModel("svc", [Tier("t", [option])])
        return DesignEvaluator(infra, service)

    def test_designs_respect_cap(self, capped_setup):
        search = TierSearch(capped_setup, SearchLimits(max_redundancy=8))
        for candidate in search.enumerate_candidates("t", 400):
            assert candidate.design.total_resources <= 6

    def test_feasible_within_cap(self, capped_setup):
        search = TierSearch(capped_setup, SearchLimits(max_redundancy=8))
        best = search.best_tier_design("t", 400, Duration.minutes(5000))
        assert best is not None
        assert best.design.total_resources <= 6

    def test_infeasible_when_cap_too_tight(self, capped_setup):
        """Load 650 needs 7 actives; the cap is 6."""
        search = TierSearch(capped_setup, SearchLimits(max_redundancy=8))
        best = search.best_tier_design("t", 650, Duration.minutes(50000))
        assert best is None
