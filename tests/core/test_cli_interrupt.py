"""Signal handling in long-running CLI paths.

``repro design`` with ``--checkpoint`` or ``--jobs`` installs a
SIGTERM handler (SIGINT is Python's default KeyboardInterrupt) so
that an interrupted search exits with the conventional 130, flushes
its checkpoint on the way out, and never leaves worker processes or
lock files behind.
"""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

SRC = os.path.abspath(os.path.join(
    os.path.dirname(os.path.abspath(__file__)),
    os.pardir, os.pardir, "src"))

#: Slow enough to signal mid-search (~12s uninterrupted), with fast
#: per-candidate markov solves so checkpoints accumulate quickly.
SLOW_DESIGN = ["design", "--paper-ecommerce", "--load", "3000",
               "--downtime", "30m", "--engine", "markov",
               "--max-redundancy", "14"]


def start_cli(args):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC
    # Pin the job count to the command line: the checkpoint-focused
    # tests here exercise the serial interrupt path, and an ambient
    # REPRO_JOBS (the CI parallel leg) would silently fork a pool
    # under them.  The parallel interrupt path has its own test that
    # passes --jobs explicitly.
    env.pop("REPRO_JOBS", None)
    return subprocess.Popen(
        [sys.executable, "-m", "repro"] + args,
        stdout=subprocess.PIPE, stderr=subprocess.PIPE,
        env=env, text=True)


def wait_for(predicate, timeout=30.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.05)
    return False


@pytest.mark.parametrize("signum", [signal.SIGTERM, signal.SIGINT])
def test_checkpointed_design_interrupts_with_130(tmp_path, signum):
    checkpoint = str(tmp_path / "cp.json")
    process = start_cli(SLOW_DESIGN + ["--checkpoint", checkpoint])
    try:
        # Let the search make checkpointable progress first.
        made_progress = wait_for(
            lambda: os.path.exists(checkpoint)
            or process.poll() is not None)
        assert made_progress
        assert process.poll() is None, \
            "search finished before it could be interrupted"
        process.send_signal(signum)
        stdout, _ = process.communicate(timeout=30)
    finally:
        if process.poll() is None:
            process.kill()
            process.wait(timeout=30)
    assert process.returncode == 130
    assert "interrupted" in stdout
    # The flushed checkpoint is valid, resumable state...
    with open(checkpoint, encoding="utf-8") as handle:
        state = json.load(handle)
    assert state["availability_cache"]
    # ...with no lock or temp residue next to it.
    assert not os.path.exists(checkpoint + ".lock")
    assert not [name for name in os.listdir(tmp_path)
                if name.endswith(".tmp")]


def test_interrupted_checkpoint_is_resumable(tmp_path):
    checkpoint = str(tmp_path / "cp.json")
    process = start_cli(SLOW_DESIGN + ["--checkpoint", checkpoint])
    try:
        assert wait_for(lambda: os.path.exists(checkpoint)
                        or process.poll() is not None)
        assert process.poll() is None
        process.send_signal(signal.SIGTERM)
        process.communicate(timeout=30)
    finally:
        if process.poll() is None:
            process.kill()
            process.wait(timeout=30)
    assert process.returncode == 130

    from repro.resilience.checkpoint import SearchCheckpoint
    resumed = SearchCheckpoint.load(checkpoint)
    assert resumed.resumed
    assert resumed.evaluations > 0


def test_parallel_design_interrupts_with_130(tmp_path):
    process = start_cli(SLOW_DESIGN + ["--jobs", "2"])
    try:
        time.sleep(2.0)    # boot + fork the worker pool
        assert process.poll() is None, \
            "search finished before it could be interrupted"
        process.send_signal(signal.SIGTERM)
        stdout, _ = process.communicate(timeout=60)    # pool shutdown
    finally:
        if process.poll() is None:
            process.kill()
            process.wait(timeout=30)
    assert process.returncode == 130
    assert "interrupted" in stdout


def test_uninterrupted_design_still_exits_normally(tmp_path):
    # The signal plumbing must not change the happy path.
    checkpoint = str(tmp_path / "cp.json")
    process = start_cli(
        ["design", "--paper-ecommerce", "--app-tier-only",
         "--load", "1000", "--downtime", "100m",
         "--checkpoint", checkpoint])
    stdout, stderr = process.communicate(timeout=120)
    assert process.returncode == 0, stderr
    assert "rC x6" in stdout
