"""Tests for report formatting."""

import pytest

from repro.core import (DesignEvaluator, SearchLimits, TierSearch,
                        build_requirement_map)
from repro.core.report import (evaluation_summary, format_cost,
                               format_downtime, frontier_table,
                               requirement_grid)
from repro.model import ServiceRequirements
from repro.units import Duration


class TestFormatters:
    def test_format_cost(self):
        assert format_cost(28320.4) == "$28,320"
        assert format_cost(0) == "$0"
        assert format_cost(1234567.9) == "$1,234,568"

    def test_format_downtime(self):
        assert format_downtime(120.0) == "2.0 h/yr"
        assert format_downtime(46.5) == "46.5 min/yr"
        assert format_downtime(0.43) == "0.43 min/yr"


class TestSummaries:
    def test_evaluation_summary(self, paper_infra, app_tier_service):
        from repro.core import Design, TierDesign
        from repro.model import MechanismConfig
        evaluator = DesignEvaluator(paper_infra, app_tier_service)
        bronze = MechanismConfig(paper_infra.mechanism("maintenanceA"),
                                 {"level": "bronze"})
        design = Design((TierDesign("application", "rC", 6, 0, (),
                                    (bronze,)),))
        evaluation = evaluator.evaluate(
            design, ServiceRequirements(1000, Duration.minutes(100)))
        text = evaluation_summary(evaluation)
        assert "$28,320" in text
        assert "rC x6" in text


class TestTables:
    def test_frontier_table(self, paper_infra, app_tier_service):
        search = TierSearch(DesignEvaluator(paper_infra, app_tier_service),
                            SearchLimits(max_redundancy=2))
        frontier = search.tier_frontier("application", 400)
        table = frontier_table(frontier, title="load 400")
        assert "load 400" in table
        assert "annual cost" in table
        assert table.count("\n") >= len(frontier)

    def test_requirement_grid(self, paper_infra, app_tier_service):
        evaluator = DesignEvaluator(paper_infra, app_tier_service)
        req_map = build_requirement_map(
            evaluator, "application", loads=[400, 1000],
            limits=SearchLimits(max_redundancy=3))
        grid = requirement_grid(req_map, [5000, 1000, 100, 10, 1])
        assert "families:" in grid
        assert "rC, bronze" in grid
        # Every downtime row is rendered.
        for value in ("5000", "1000", "100"):
            assert value in grid
