"""Tests for the model describe renderers."""

import pytest

from repro.core.report import describe_infrastructure, describe_service


class TestDescribeInfrastructure:
    def test_counts_line(self, paper_infra):
        text = describe_infrastructure(paper_infra)
        assert "9 components, 3 mechanisms, 9 resources" in text

    def test_all_components_listed(self, paper_infra):
        text = describe_infrastructure(paper_infra)
        for component in paper_infra.components:
            assert component.name in text

    def test_mechanism_parameters_summarized(self, paper_infra):
        text = describe_infrastructure(paper_infra)
        assert "level (4 settings)" in text
        assert "checkpoint_interval (151 settings)" in text

    def test_deferred_attributes_marked(self, paper_infra):
        text = describe_infrastructure(paper_infra)
        assert "via <maintenanceA>" in text
        assert "loss window via <checkpoint>" in text

    def test_resource_chains_rendered(self, paper_infra):
        text = describe_infrastructure(paper_infra)
        assert "machineA -> linux -> appserverA" in text
        assert "full startup 4.5m" in text

    def test_tiny_model(self, tiny_infra):
        text = describe_infrastructure(tiny_infra)
        assert "box" in text
        assert "contract" in text
        assert "node" in text


class TestDescribeService:
    def test_enterprise_summary(self, ecommerce):
        text = describe_service(ecommerce)
        assert "always-on service, 3 tier(s)" in text
        assert "tier web:" in text
        assert "tier database:" in text
        assert "sizing=static" in text
        assert "sizing=dynamic" in text

    def test_job_summary(self, scientific):
        text = describe_service(scientific)
        assert "finite job (size 10000)" in text
        assert "mechanisms: checkpoint" in text
        assert "n=[1..1000]" in text
