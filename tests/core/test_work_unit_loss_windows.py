"""Tests for work-unit loss windows (paper footnote 1)."""

import pytest

from repro import Aved, Duration, JobRequirements, SearchLimits
from repro.core import Design, DesignEvaluator, TierDesign
from repro.errors import EvaluationError, UnitError
from repro.spec import parse_infrastructure, parse_service
from repro.units import WorkAmount

INFRA = """
component=box cost=1000
 failure=hard mtbf=200d mttr=24h detect_time=1m
component=app cost=0 loss_window=50u
 failure=crash mtbf=30d mttr=0 detect_time=0
resource=node reconfig_time=0
 component=box depend=null startup=1m
 component=app depend=box startup=10s
"""

SERVICE = """
application=batch jobsize=2000
tier=farm
 resource=node sizing=static failurescope=tier
  nActive=[1-50,+1] performance=expr:20*n
"""


class TestWorkAmount:
    def test_parse_and_format(self):
        amount = WorkAmount.parse("500u")
        assert amount.units == 500.0
        assert amount.format() == "500u"
        assert WorkAmount.parse(amount) is amount

    def test_time_at_rate(self):
        assert WorkAmount(100).time_at(50.0) == Duration.hours(2)

    def test_validation(self):
        with pytest.raises(UnitError):
            WorkAmount(-1)
        with pytest.raises(UnitError):
            WorkAmount.parse("5x")
        with pytest.raises(UnitError):
            WorkAmount(100).time_at(0.0)

    def test_ordering(self):
        assert WorkAmount(1) < WorkAmount(2)
        assert WorkAmount(2) == WorkAmount(2.0)


class TestEndToEnd:
    @pytest.fixture
    def evaluator(self):
        return DesignEvaluator(parse_infrastructure(INFRA),
                               parse_service(SERVICE))

    def test_spec_roundtrip(self):
        from repro.spec import write_infrastructure
        infra = parse_infrastructure(INFRA)
        assert infra.component("app").loss_window == WorkAmount(50)
        assert "loss_window=50u" in write_infrastructure(infra)

    def test_work_window_converts_at_design_rate(self, evaluator):
        """50 work units at 20*n units/h: the time window shrinks as
        the cluster grows, so the useful fraction should barely move
        while the failure rate grows."""
        small = evaluator.job_time(
            Design((TierDesign("farm", "node", 2, 0),)))
        large = evaluator.job_time(
            Design((TierDesign("farm", "node", 10, 0),)))
        # 50u at 40/h = 1.25h window vs tier MTBF; at 200/h = 0.25h.
        # The conversion must actually happen: both feasible, useful
        # fraction high, and the larger cluster is faster overall.
        assert small.feasible and large.feasible
        assert large.expected_time < small.expected_time
        assert small.useful_fraction > 0.95

    def test_design_search_with_work_window(self):
        engine = Aved(parse_infrastructure(INFRA),
                      parse_service(SERVICE),
                      limits=SearchLimits(max_redundancy=4))
        outcome = engine.design(JobRequirements(Duration.hours(20)))
        assert outcome.evaluation.job_time.expected_time <= \
            Duration.hours(20)

    def test_mixed_window_types_rejected(self):
        mixed_infra = parse_infrastructure(INFRA + """
component=app2 cost=0 loss_window=30m
 failure=crash mtbf=30d mttr=0 detect_time=0
resource=node2 reconfig_time=0
 component=box depend=null startup=1m
 component=app depend=box startup=10s
 component=app2 depend=box startup=10s
""")
        service = parse_service("""
application=batch jobsize=2000
tier=farm
 resource=node2 sizing=static failurescope=tier
  nActive=[1-50,+1] performance=expr:20*n
""")
        evaluator = DesignEvaluator(mixed_infra, service)
        with pytest.raises(EvaluationError, match="time and work"):
            evaluator.job_time(
                Design((TierDesign("farm", "node2", 2, 0),)))
