"""Tests for design-choice explanations."""

import pytest

from repro.core import (DesignEvaluator, SearchLimits, TierSearch,
                        explain_tier_choice)
from repro.errors import SearchError
from repro.units import Duration

LIMITS = SearchLimits(max_redundancy=4)


@pytest.fixture(scope="module")
def evaluator(paper_infra, app_tier_service):
    return DesignEvaluator(paper_infra, app_tier_service)


class TestExplainTierChoice:
    def test_chosen_matches_search(self, evaluator):
        explanation = explain_tier_choice(
            evaluator, "application", 1000, Duration.minutes(100),
            LIMITS)
        direct = TierSearch(evaluator, LIMITS).best_tier_design(
            "application", 1000, Duration.minutes(100))
        assert explanation.chosen.annual_cost == pytest.approx(
            direct.annual_cost)
        assert explanation.chosen.downtime_minutes <= 100

    def test_near_miss_is_cheaper_and_infeasible(self, evaluator):
        explanation = explain_tier_choice(
            evaluator, "application", 1000, Duration.minutes(100),
            LIMITS)
        assert explanation.near_miss is not None
        assert explanation.near_miss.annual_cost < \
            explanation.chosen.annual_cost
        assert explanation.near_miss.downtime_minutes > 100

    def test_runner_up_is_feasible_and_pricier(self, evaluator):
        explanation = explain_tier_choice(
            evaluator, "application", 1000, Duration.minutes(100),
            LIMITS)
        assert explanation.runner_up is not None
        assert explanation.runner_up.downtime_minutes <= 100
        assert explanation.runner_up.annual_cost > \
            explanation.chosen.annual_cost

    def test_upgrade_improves_availability(self, evaluator):
        explanation = explain_tier_choice(
            evaluator, "application", 1000, Duration.minutes(100),
            LIMITS)
        assert explanation.upgrade is not None
        assert explanation.upgrade.downtime_minutes < \
            explanation.chosen.downtime_minutes

    def test_loose_requirement_has_no_near_miss(self, evaluator):
        """At a requirement the cheapest design meets, nothing cheaper
        exists to have missed it."""
        explanation = explain_tier_choice(
            evaluator, "application", 1000, Duration.minutes(50_000),
            LIMITS)
        assert explanation.near_miss is None

    def test_infeasible_requirement_raises(self, evaluator):
        with pytest.raises(SearchError):
            explain_tier_choice(evaluator, "application", 1000,
                                Duration.seconds(1e-6),
                                SearchLimits(max_redundancy=1))

    def test_unreachable_load_raises(self, evaluator):
        with pytest.raises(SearchError):
            explain_tier_choice(evaluator, "application", 10_000_000,
                                Duration.minutes(100), LIMITS)

    def test_render_contains_all_sections(self, evaluator):
        explanation = explain_tier_choice(
            evaluator, "application", 1000, Duration.minutes(100),
            LIMITS)
        text = explanation.render()
        assert "chosen:" in text
        assert "near miss:" in text
        assert "runner-up:" in text
        assert "upgrade:" in text
