"""Tests for the redesign controller."""

import pytest

from repro import Duration, SearchLimits, workload
from repro.core import DesignEvaluator, RedesignController
from repro.errors import SearchError
from repro.obs import observing


@pytest.fixture
def controller_factory(paper_infra, app_tier_service):
    evaluator = DesignEvaluator(paper_infra, app_tier_service)

    def make(hysteresis=0.05, minutes=100, max_redundancy=3):
        return RedesignController(
            evaluator, "application", Duration.minutes(minutes),
            SearchLimits(max_redundancy=max_redundancy),
            hysteresis=hysteresis)

    return make


class TestControllerBasics:
    def test_constant_load_configures_once(self, controller_factory):
        report = controller_factory().run([800] * 6)
        assert report.reconfigurations == 1
        assert report.infeasible_steps == 0
        designs = {step.design.design.describe()
                   for step in report.steps}
        assert len(designs) == 1

    def test_empty_trajectory_rejected(self, controller_factory):
        with pytest.raises(SearchError):
            controller_factory().run([])

    def test_negative_hysteresis_rejected(self, paper_infra,
                                          app_tier_service):
        evaluator = DesignEvaluator(paper_infra, app_tier_service)
        with pytest.raises(SearchError):
            RedesignController(evaluator, "application",
                               Duration.minutes(100), hysteresis=-0.1)

    def test_every_feasible_step_meets_slo(self, controller_factory):
        loads = workload.diurnal(600, peak_ratio=3.0,
                                 samples_per_day=12)
        report = controller_factory().run(loads)
        for step in report.steps:
            assert step.design is not None
            assert step.design.downtime_minutes <= 100 + 1e-9

    def test_infeasible_loads_counted(self, controller_factory):
        report = controller_factory().run([800, 10_000_000, 800])
        assert report.infeasible_steps == 1
        assert report.steps[1].design is None


class TestHysteresis:
    def test_rising_load_forces_reconfiguration(self, controller_factory):
        report = controller_factory(hysteresis=0.5).run([400, 4000])
        # A 400-unit design cannot carry 4000 units: must switch even
        # with huge hysteresis.
        assert report.reconfigurations == 2

    def test_high_hysteresis_rides_out_small_dips(self,
                                                  controller_factory):
        loads = [2000, 1900, 2000]
        lazy = controller_factory(hysteresis=0.5).run(loads)
        eager = controller_factory(hysteresis=0.0).run(loads)
        assert lazy.reconfigurations <= eager.reconfigurations

    def test_zero_hysteresis_tracks_optimum(self, controller_factory,
                                            paper_infra,
                                            app_tier_service):
        from repro.core import TierSearch
        evaluator = DesignEvaluator(paper_infra, app_tier_service)
        search = TierSearch(evaluator, SearchLimits(max_redundancy=3))
        loads = [500, 1500, 2500]
        report = controller_factory(hysteresis=0.0).run(loads)
        for step in report.steps:
            optimum = search.best_tier_design(
                "application", step.load, Duration.minutes(100))
            assert step.design.annual_cost == pytest.approx(
                optimum.annual_cost)


class TestAccounting:
    def test_dynamic_saves_over_static_peak(self, controller_factory):
        loads = workload.diurnal(800, peak_ratio=4.0,
                                 samples_per_day=12)
        report = controller_factory().run(loads)
        assert report.static_peak_cost > 0
        assert report.average_cost < report.static_peak_cost
        assert 0.0 < report.saving_fraction < 1.0

    def test_flat_load_saves_nothing(self, controller_factory):
        report = controller_factory().run([1000] * 4)
        assert report.saving_fraction == pytest.approx(0.0, abs=1e-9)

    def test_steps_recorded_in_order(self, controller_factory):
        loads = [400, 800, 1200]
        report = controller_factory().run(loads)
        assert [step.load for step in report.steps] == loads
        assert [step.index for step in report.steps] == [0, 1, 2]


class TestReconfigurationCharges:
    def test_free_switches_by_default(self, controller_factory):
        report = controller_factory().run([400, 1600, 400])
        assert report.reconfiguration_charges == 0.0
        assert report.average_cost_with_charges == report.average_cost

    def test_charges_accrue_per_switch(self, paper_infra,
                                       app_tier_service):
        from repro.core import DesignEvaluator, RedesignController
        evaluator = DesignEvaluator(paper_infra, app_tier_service)
        controller = RedesignController(
            evaluator, "application", Duration.minutes(100),
            SearchLimits(max_redundancy=3), hysteresis=0.05,
            reconfiguration_cost=500.0)
        report = controller.run([400, 1600, 400])
        assert report.reconfigurations >= 2
        assert report.reconfiguration_charges == \
            500.0 * report.reconfigurations
        assert report.average_cost_with_charges > report.average_cost

    def test_charges_eat_into_savings(self, paper_infra,
                                      app_tier_service):
        from repro import workload
        from repro.core import DesignEvaluator, RedesignController
        evaluator = DesignEvaluator(paper_infra, app_tier_service)
        loads = workload.diurnal(800, peak_ratio=4.0, samples_per_day=12)

        def saving(charge):
            controller = RedesignController(
                evaluator, "application", Duration.minutes(100),
                SearchLimits(max_redundancy=3),
                reconfiguration_cost=charge)
            return controller.run(loads).saving_fraction

        assert saving(2000.0) < saving(0.0)

    def test_negative_charge_rejected(self, paper_infra,
                                      app_tier_service):
        from repro.core import DesignEvaluator, RedesignController
        evaluator = DesignEvaluator(paper_infra, app_tier_service)
        with pytest.raises(SearchError):
            RedesignController(evaluator, "application",
                               Duration.minutes(100),
                               reconfiguration_cost=-1.0)


class TestPersistentCache:
    def make(self, paper_infra, app_tier_service, cache_dir):
        evaluator = DesignEvaluator(paper_infra, app_tier_service)
        return RedesignController(
            evaluator, "application", Duration.minutes(100),
            SearchLimits(max_redundancy=3), cache_dir=cache_dir)

    def test_cache_dir_attaches_a_store(self, paper_infra,
                                        app_tier_service, tmp_path):
        cache_dir = str(tmp_path / "cache")
        controller = self.make(paper_infra, app_tier_service, cache_dir)
        controller.run([800, 2400])
        snapshot = controller.cache_store.snapshot()
        assert snapshot["enabled"]
        assert snapshot["writes"] > 0

    def test_second_controller_replays_warm(self, paper_infra,
                                            app_tier_service, tmp_path):
        cache_dir = str(tmp_path / "cache")
        first = self.make(paper_infra, app_tier_service, cache_dir)
        cold = first.run([800, 2400])
        second = self.make(paper_infra, app_tier_service, cache_dir)
        warm = second.run([800, 2400])
        assert second.cache_store.snapshot()["hits"] > 0
        # Warm replay decides identically.
        assert [step.design.design for step in warm.steps] \
            == [step.design.design for step in cold.steps]

    def test_no_cache_dir_means_no_store(self, controller_factory):
        assert controller_factory().cache_store is None


class TestObservability:
    def test_counters_track_the_run(self, controller_factory):
        with observing() as obs:
            report = controller_factory().run([800, 2400, 10_000_000])
        counters = obs.metrics.snapshot()["counters"]
        assert counters["controller.steps"] == 3
        assert counters["controller.reconfigurations"] \
            == report.reconfigurations
        assert counters["controller.infeasible_steps"] \
            == report.infeasible_steps == 1

    def test_counters_silent_when_not_observing(self,
                                                controller_factory):
        report = controller_factory().run([800] * 2)
        assert report.reconfigurations == 1
