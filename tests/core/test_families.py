"""Tests for design-family classification (Fig. 6 grouping)."""

import pytest

from repro.core import TierDesign
from repro.core.families import (DesignFamily, checkpoint_settings,
                                 family_of)
from repro.model import MechanismConfig


def bronze(infra):
    return MechanismConfig(infra.mechanism("maintenanceA"),
                           {"level": "bronze"})


class TestFamilyOf:
    def test_paper_family9(self, paper_infra):
        design = TierDesign("app", "rC", 6, 0, (), (bronze(paper_infra),))
        family = family_of(design, n_min=5)
        assert family == DesignFamily("rC", "bronze", 1, 0)
        assert family.label() == "rC, bronze, 1, 0"

    def test_spare_family(self, paper_infra):
        design = TierDesign("app", "rC", 5, 1, (), (bronze(paper_infra),))
        family = family_of(design, n_min=5)
        assert family.n_extra == 0
        assert family.n_spare == 1

    def test_warm_spare_label(self, paper_infra):
        design = TierDesign("app", "rC", 5, 1, ("machineA",),
                            (bronze(paper_infra),))
        family = family_of(design, n_min=5)
        assert "warm" in family.label()

    def test_no_contract(self):
        design = TierDesign("app", "rC", 5, 0)
        family = family_of(design, n_min=5)
        assert family.contract == "-"

    def test_machineb_contract(self, paper_infra):
        config = MechanismConfig(paper_infra.mechanism("maintenanceB"),
                                 {"level": "gold"})
        design = TierDesign("app", "rE", 2, 0, (), (config,))
        family = family_of(design, n_min=1)
        assert family.contract == "gold"
        assert family.n_extra == 1

    def test_families_are_hashable_and_ordered(self):
        a = DesignFamily("rC", "bronze", 0, 0)
        b = DesignFamily("rC", "bronze", 1, 0)
        assert a < b
        assert len({a, b, DesignFamily("rC", "bronze", 0, 0)}) == 2


class TestCheckpointSettings:
    def test_present(self, paper_infra):
        mechanism = paper_infra.mechanism("checkpoint")
        interval = mechanism.parameter("checkpoint_interval") \
            .values.values()[0]
        config = MechanismConfig(mechanism,
                                 {"storage_location": "peer",
                                  "checkpoint_interval": interval})
        design = TierDesign("compute", "rH", 4, 0, (), (config,))
        found = checkpoint_settings(design)
        assert found.settings["storage_location"] == "peer"

    def test_absent(self):
        design = TierDesign("compute", "rH", 4, 0)
        assert checkpoint_settings(design) is None
