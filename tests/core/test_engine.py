"""Tests for the Aved facade (paper Fig. 1 architecture)."""

import pytest

from repro import (Aved, Duration, InfeasibleError, JobRequirements,
                   SearchLimits, ServiceRequirements)
from repro.errors import ModelError, SearchError


class TestServiceDesign:
    def test_single_tier_anchor(self, paper_infra, app_tier_service):
        engine = Aved(paper_infra, app_tier_service)
        outcome = engine.design(ServiceRequirements(
            1000, Duration.minutes(100)))
        tier = outcome.design.tiers[0]
        assert tier.resource == "rC"
        assert tier.n_active == 6
        assert outcome.annual_cost == pytest.approx(28320.0)
        assert outcome.downtime_minutes <= 100

    def test_infeasible_raises(self, paper_infra, app_tier_service):
        engine = Aved(paper_infra, app_tier_service,
                      limits=SearchLimits(max_redundancy=1))
        with pytest.raises(InfeasibleError):
            engine.design(ServiceRequirements(1000, Duration.seconds(1)))

    def test_multi_tier_design(self, paper_infra, ecommerce):
        engine = Aved(paper_infra, ecommerce,
                      limits=SearchLimits(max_redundancy=3))
        outcome = engine.design(ServiceRequirements(
            1000, Duration.minutes(500)))
        tiers = {t.tier: t for t in outcome.design.tiers}
        assert set(tiers) == {"web", "application", "database"}
        assert outcome.downtime_minutes <= 500
        # Database tier is static single-resource rG.
        assert tiers["database"].resource == "rG"
        assert tiers["database"].n_active == 1

    def test_multi_tier_budget_allocation(self, paper_infra, ecommerce):
        """A tighter overall budget makes the whole design pricier."""
        engine = Aved(paper_infra, ecommerce,
                      limits=SearchLimits(max_redundancy=3))
        loose = engine.design(ServiceRequirements(
            800, Duration.minutes(2000)))
        tight = engine.design(ServiceRequirements(
            800, Duration.minutes(60)))
        assert tight.annual_cost > loose.annual_cost

    def test_validation_happens_at_construction(self, paper_infra,
                                                tiny_service):
        with pytest.raises(ModelError):
            Aved(paper_infra, tiny_service)  # 'node' not in paper infra

    def test_unsupported_requirements(self, paper_infra,
                                      app_tier_service):
        engine = Aved(paper_infra, app_tier_service)
        with pytest.raises(SearchError):
            engine.design("not requirements")

    def test_outcome_summary_renders(self, paper_infra, app_tier_service):
        engine = Aved(paper_infra, app_tier_service)
        outcome = engine.design(ServiceRequirements(
            400, Duration.minutes(1000)))
        text = outcome.summary()
        assert "annual cost" in text
        assert "downtime" in text


class TestJobDesign:
    @pytest.fixture
    def engine(self, paper_infra, scientific):
        limits = SearchLimits(
            max_redundancy=12,
            fixed_settings={"maintenanceA": {"level": "bronze"},
                            "maintenanceB": {"level": "bronze"}})
        return Aved(paper_infra, scientific, limits=limits)

    def test_job_design(self, engine):
        outcome = engine.design(JobRequirements(Duration.hours(100)))
        tier = outcome.design.tiers[0]
        assert tier.resource == "rH"
        assert outcome.evaluation.job_time.expected_time <= \
            Duration.hours(100)

    def test_job_summary_includes_job_time(self, engine):
        outcome = engine.design(JobRequirements(Duration.hours(100)))
        assert "expected job time" in outcome.summary()

    def test_job_infeasible(self, engine):
        with pytest.raises(InfeasibleError):
            engine.design(JobRequirements(Duration.minutes(5)))


class TestCustomEngine:
    def test_simulation_engine_can_drive_search(self, paper_infra,
                                                app_tier_service):
        from repro.availability import SimulationEngine
        engine = Aved(paper_infra, app_tier_service,
                      availability_engine=SimulationEngine(years=150,
                                                           seed=7),
                      limits=SearchLimits(max_redundancy=2))
        outcome = engine.design(ServiceRequirements(
            400, Duration.minutes(3000)))
        assert outcome.design.tiers[0].resource in ("rC", "rD")


class TestRepairCrewOption:
    def test_engine_accepts_crew_limit(self, paper_infra,
                                       app_tier_service):
        from repro import SearchLimits
        solo = Aved(paper_infra, app_tier_service,
                    limits=SearchLimits(max_redundancy=4),
                    repair_crew=1)
        free = Aved(paper_infra, app_tier_service,
                    limits=SearchLimits(max_redundancy=4))
        req = ServiceRequirements(1000, Duration.minutes(100))
        assert solo.design(req).annual_cost >= \
            free.design(req).annual_cost
