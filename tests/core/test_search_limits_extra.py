"""Coverage for the less-traveled SearchLimits knobs."""

import pytest

from repro.core import DesignEvaluator, SearchLimits, TierSearch
from repro.units import Duration


@pytest.fixture
def evaluator(paper_infra, app_tier_service):
    return DesignEvaluator(paper_infra, app_tier_service)


class TestMaxSpares:
    def test_zero_spares_policy(self, evaluator):
        search = TierSearch(evaluator, SearchLimits(max_redundancy=4,
                                                    max_spares=0))
        for candidate in search.enumerate_candidates("application", 800):
            assert candidate.design.n_spare == 0

    def test_one_spare_cap(self, evaluator):
        search = TierSearch(evaluator, SearchLimits(max_redundancy=4,
                                                    max_spares=1))
        spare_counts = {candidate.design.n_spare for candidate in
                        search.enumerate_candidates("application", 800)}
        assert spare_counts <= {0, 1}
        assert 1 in spare_counts

    def test_cap_changes_feasible_optimum(self, evaluator):
        """At a requirement where the unrestricted optimum uses a
        spare, capping spares must either cost more or pick an
        extra-active design."""
        unrestricted = TierSearch(
            evaluator, SearchLimits(max_redundancy=4)).best_tier_design(
            "application", 800, Duration.minutes(400))
        capped = TierSearch(
            evaluator,
            SearchLimits(max_redundancy=4,
                         max_spares=0)).best_tier_design(
            "application", 800, Duration.minutes(400))
        assert capped is not None
        assert capped.design.n_spare == 0
        assert capped.annual_cost >= unrestricted.annual_cost - 1e-9


class TestPatience:
    def test_patient_search_explores_further(self, evaluator):
        """A patience of 1 gives up on a degrading availability trend
        immediately; more patience enumerates at least as much."""
        impatient = TierSearch(evaluator,
                               SearchLimits(max_redundancy=6,
                                            patience=1))
        patient = TierSearch(evaluator,
                             SearchLimits(max_redundancy=6, patience=3))
        target = Duration.seconds(0.0001)  # infeasible: forces full walk
        impatient.best_tier_design("application", 400, target)
        patient.best_tier_design("application", 400, target)
        assert patient.stats.structures_enumerated >= \
            impatient.stats.structures_enumerated


class TestHotSparePolicy:
    def test_hot_policy_yields_full_prefixes(self, evaluator,
                                             paper_infra):
        search = TierSearch(evaluator,
                            SearchLimits(max_redundancy=3,
                                         spare_policy="hot"))
        prefixes = {candidate.design.spare_active_prefix
                    for candidate in search.enumerate_candidates(
                        "application", 400)
                    if candidate.design.n_spare > 0}
        for prefix in prefixes:
            # A hot spare keeps the full component stack active.
            assert len(prefix) == 3

    def test_hot_spares_fail_over_faster_but_cost_more(self, evaluator,
                                                       paper_infra):
        from repro.core import TierDesign
        from repro.model import MechanismConfig
        bronze = MechanismConfig(paper_infra.mechanism("maintenanceA"),
                                 {"level": "bronze"})
        resource = paper_infra.resource("rC")
        hot_prefix = resource.activation_prefixes()[-1]
        cold = TierDesign("application", "rC", 5, 1, (), (bronze,))
        hot = TierDesign("application", "rC", 5, 1, hot_prefix,
                         (bronze,))
        assert evaluator.tier_cost(hot).total > \
            evaluator.tier_cost(cold).total
        cold_model = evaluator.tier_model(cold, 1000)
        hot_model = evaluator.tier_model(hot, 1000)
        assert hot_model.modes[0].failover_time < \
            cold_model.modes[0].failover_time
