"""Dominance pruning is a pure accelerator: same outcome, fewer solves.

The acceptance bar: on the paper's e-commerce application tier the
pruner skips at least 20% of the enumerated candidates while the
serialized evaluation stays byte-identical to the unpruned run.  The
multi-tier run must also be identical (there pruning additionally
bounds frontier construction through the series-downtime argument).
"""

import json

import pytest

from repro.availability import SimulationEngine
from repro.core import Aved, SearchLimits
from repro.core.serialize import evaluation_to_dict
from repro.errors import SearchError
from repro.model import ServiceModel, ServiceRequirements
from repro.units import Duration

LIMITS = SearchLimits(max_redundancy=4)
REQUIREMENTS = ServiceRequirements(1000.0, Duration.minutes(100))


def outcome_json(outcome):
    return json.dumps(evaluation_to_dict(outcome.evaluation),
                      sort_keys=True)


@pytest.fixture(scope="module")
def app_runs(request):
    infra, ecommerce = _paper_models()
    service = ServiceModel("app-tier", [ecommerce.tier("application")])
    runs = {}
    for prune in (False, "auto"):
        engine = Aved(infra, service, limits=LIMITS, prune=prune)
        runs[prune] = engine.design(REQUIREMENTS)
    return runs


def _paper_models():
    from repro.spec.paper import ecommerce_service, paper_infrastructure
    return paper_infrastructure(), ecommerce_service()


class TestSingleTier:
    def test_outcome_is_byte_identical(self, app_runs):
        assert outcome_json(app_runs["auto"]) == \
            outcome_json(app_runs[False])

    def test_at_least_twenty_percent_pruned(self, app_runs):
        stats = app_runs["auto"].stats
        assert stats.structures_enumerated > 0
        ratio = stats.dominance_pruned / stats.structures_enumerated
        assert ratio >= 0.20

    def test_pruning_saves_solves(self, app_runs):
        pruned = app_runs["auto"].stats
        full = app_runs[False].stats
        assert pruned.structures_enumerated == full.structures_enumerated
        assert pruned.availability_evaluations < \
            full.availability_evaluations
        assert pruned.dominance_probes > 0
        assert pruned.dominance_groups_pruned > 0
        assert full.dominance_pruned == 0
        assert full.dominance_probes == 0

    def test_provenance_is_reported_not_degradation(self, app_runs):
        outcome = app_runs["auto"]
        assert outcome.pruning is not None
        assert len(outcome.pruning) == \
            outcome.stats.dominance_groups_pruned
        assert all(diagnostic.code == "AVD506"
                   for diagnostic in outcome.pruning)
        assert not outcome.degraded
        assert "dominance-pruned" in outcome.summary()

    def test_unpruned_run_reports_nothing(self, app_runs):
        outcome = app_runs[False]
        assert outcome.pruning is None
        assert "dominance-pruned" not in outcome.summary()


class TestMultiTier:
    def test_three_tier_outcome_is_byte_identical(self):
        infra, service = _paper_models()
        pruned = Aved(infra, service, limits=LIMITS,
                      prune="auto").design(REQUIREMENTS)
        full = Aved(infra, service, limits=LIMITS,
                    prune=False).design(REQUIREMENTS)
        assert outcome_json(pruned) == outcome_json(full)
        assert pruned.stats.dominance_pruned > 0
        assert pruned.stats.availability_evaluations < \
            full.stats.availability_evaluations


class TestEngineGating:
    def test_auto_disables_pruning_for_simulation(self):
        infra, ecommerce = _paper_models()
        service = ServiceModel("app-tier",
                               [ecommerce.tier("application")])
        engine = Aved(infra, service,
                      availability_engine=SimulationEngine(years=20,
                                                           seed=1),
                      limits=SearchLimits(max_redundancy=1),
                      prune="auto")
        outcome = engine.design(ServiceRequirements(
            1000.0, Duration.minutes(500)))
        assert outcome.stats.dominance_pruned == 0
        assert outcome.stats.dominance_probes == 0
        assert outcome.pruning is None

    def test_explicit_true_forces_pruning(self):
        infra, ecommerce = _paper_models()
        service = ServiceModel("app-tier",
                               [ecommerce.tier("application")])
        engine = Aved(infra, service, limits=LIMITS, prune=True)
        outcome = engine.design(REQUIREMENTS)
        assert outcome.stats.dominance_pruned > 0

    def test_invalid_prune_value_is_rejected(self):
        infra, ecommerce = _paper_models()
        with pytest.raises(SearchError):
            Aved(infra, ecommerce, prune="always")
