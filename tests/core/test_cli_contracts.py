"""CLI contracts: the exit-code matrix and JSON output schemas.

``repro``'s exit codes and JSON shapes are consumed by scripts and CI
gates; these tests pin both.  Schema validation uses ``jsonschema``
when installed and skips cleanly otherwise -- the schemas themselves
live dependency-free in :mod:`repro.contracts`.
"""

import json
from io import StringIO

import pytest

from repro.cli import main
from repro.contracts import (BENCH_RECORD_SCHEMA, CACHE_STATUS_SCHEMA,
                             DESIGN_EVALUATION_SCHEMA,
                             LINT_REPORT_SCHEMA, LINT_SPACE_SCHEMA,
                             METRICS_SNAPSHOT_SCHEMA, TRACE_SCHEMA)

APP_TIER = ["--paper-ecommerce", "--app-tier-only"]


def run(argv):
    out = StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


def validate(instance, schema):
    jsonschema = pytest.importorskip("jsonschema")
    jsonschema.validate(instance=instance, schema=schema)


# ----------------------------------------------------------------------
# Exit-code matrix
# ----------------------------------------------------------------------

class TestExitCodes:
    def test_design_success_is_zero(self):
        code, output = run(["design"] + APP_TIER
                           + ["--load", "1000", "--downtime", "100m"])
        assert code == 0
        assert "rC x6" in output

    def test_design_infeasible_is_two(self):
        code, output = run(["design"] + APP_TIER
                           + ["--load", "1000", "--downtime", "1s",
                              "--max-redundancy", "1"])
        assert code == 2
        assert output.startswith("infeasible")

    def test_design_missing_requirement_is_one(self):
        code, output = run(["design"] + APP_TIER)
        assert code == 1
        assert output.startswith("error:")

    def test_design_missing_model_files_is_one(self):
        code, output = run(["design", "--load", "1000",
                            "--downtime", "100m"])
        assert code == 1
        assert "error" in output

    def test_design_unreadable_spec_is_one(self, tmp_path):
        code, output = run(
            ["design", "--infrastructure", str(tmp_path / "no.infra"),
             "--service", str(tmp_path / "no.service"),
             "--load", "1000", "--downtime", "100m"])
        assert code == 1

    def test_lint_clean_pair_is_zero(self):
        code, _ = run(["lint"] + APP_TIER)
        assert code == 0

    def test_lint_strict_escalates_warnings(self):
        code, _ = run(["lint", "--paper-ecommerce"])
        assert code == 0
        strict_code, _ = run(["lint", "--paper-ecommerce", "--strict"])
        # the paper pair has info findings only; strict still passes
        assert strict_code == 0

    def test_validate_good_pair_is_zero(self):
        code, _ = run(["validate", "--paper-ecommerce"])
        assert code == 0

    def test_profile_success_is_zero(self, monkeypatch):
        # Under an ambient warm REPRO_CACHE the engine-solve phase
        # honestly disappears (every solve is served from the store),
        # so pin the cache-off profile surface explicitly.
        monkeypatch.delenv("REPRO_CACHE", raising=False)
        code, output = run(["profile"] + APP_TIER
                           + ["--load", "1000", "--downtime", "100m"])
        assert code == 0
        assert "phase" in output and "engine-solve" in output

    def test_profile_infeasible_is_two(self):
        code, output = run(["profile"] + APP_TIER
                           + ["--load", "1000", "--downtime", "1s",
                              "--max-redundancy", "1"])
        assert code == 2
        assert "infeasible" in output
        assert "phase" in output  # the profile still prints


# ----------------------------------------------------------------------
# JSON schema contracts
# ----------------------------------------------------------------------

class TestJsonContracts:
    def test_design_json_matches_schema(self):
        code, output = run(["design"] + APP_TIER
                           + ["--load", "1000", "--downtime", "100m",
                              "--json"])
        assert code == 0
        validate(json.loads(output), DESIGN_EVALUATION_SCHEMA)

    def test_job_design_json_matches_schema(self):
        code, output = run(
            ["design", "--paper-scientific", "--job-time", "20h",
             "--max-redundancy", "2", "--json"])
        assert code == 0
        document = json.loads(output)
        validate(document, DESIGN_EVALUATION_SCHEMA)
        assert "job_time" in document

    def test_lint_json_matches_schema(self):
        code, output = run(["lint", "--paper-ecommerce",
                            "--format", "json"])
        assert code == 0
        validate(json.loads(output), LINT_REPORT_SCHEMA)

    def test_lint_space_json_matches_schema(self):
        code, output = run(["lint", "--paper-ecommerce", "--space",
                            "--load", "1000", "--downtime", "100m",
                            "--format", "json"])
        assert code == 0
        document = json.loads(output)
        validate(document, LINT_SPACE_SCHEMA)
        assert document["space"]["structures"] > 0
        assert {d["code"] for d in document["diagnostics"]} \
            >= {"AVD500", "AVD504", "AVD505"}

    def test_metrics_out_matches_schema(self, tmp_path):
        metrics_path = tmp_path / "metrics.json"
        code, _ = run(["design"] + APP_TIER
                      + ["--load", "1000", "--downtime", "100m",
                         "--metrics-out", str(metrics_path)])
        assert code == 0
        snapshot = json.loads(metrics_path.read_text())
        validate(snapshot, METRICS_SNAPSHOT_SCHEMA)
        assert snapshot["counters"]["search.availability_evaluations"] \
            > 0

    def test_trace_matches_schema(self, tmp_path):
        trace_path = tmp_path / "trace.json"
        code, _ = run(["design"] + APP_TIER
                      + ["--load", "1000", "--downtime", "100m",
                         "--trace", str(trace_path)])
        assert code == 0
        document = json.loads(trace_path.read_text())
        validate(document, TRACE_SCHEMA)
        assert document["spans"][0]["name"] == "design"

    def test_trace_written_even_when_infeasible(self, tmp_path):
        trace_path = tmp_path / "trace.json"
        metrics_path = tmp_path / "metrics.json"
        code, _ = run(["design"] + APP_TIER
                      + ["--load", "1000", "--downtime", "1s",
                         "--max-redundancy", "1",
                         "--trace", str(trace_path),
                         "--metrics-out", str(metrics_path)])
        assert code == 2
        validate(json.loads(trace_path.read_text()), TRACE_SCHEMA)
        validate(json.loads(metrics_path.read_text()),
                 METRICS_SNAPSHOT_SCHEMA)

    def test_profile_bench_out_matches_schema(self, tmp_path,
                                              monkeypatch):
        # See test_profile_success_is_zero: a warm ambient cache
        # removes the engine-solve phase this test asserts on.
        monkeypatch.delenv("REPRO_CACHE", raising=False)
        bench_path = tmp_path / "BENCH_obs.json"
        code, _ = run(["profile"] + APP_TIER
                      + ["--load", "1000", "--downtime", "100m",
                         "--bench-out", str(bench_path)])
        assert code == 0
        record = json.loads(bench_path.read_text())
        validate(record, BENCH_RECORD_SCHEMA)
        assert record["bench"] == "obs"
        phase_names = {phase["name"]
                       for phase in record["results"]["phases"]}
        assert "engine-solve" in phase_names

    def test_cache_stats_matches_schema(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        code, _ = run(["design"] + APP_TIER
                      + ["--load", "1000", "--downtime", "100m",
                         "--cache", cache_dir])
        assert code == 0
        code, output = run(["cache", "stats", cache_dir])
        assert code == 0
        document = json.loads(output)
        validate(document, CACHE_STATUS_SCHEMA)
        assert document["action"] == "stats"
        assert document["store"]["entries"] > 0

    def test_cache_verify_clean_store_is_zero(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        run(["design"] + APP_TIER
            + ["--load", "1000", "--downtime", "100m",
               "--cache", cache_dir])
        code, output = run(["cache", "verify", cache_dir])
        assert code == 0
        document = json.loads(output)
        validate(document, CACHE_STATUS_SCHEMA)
        assert document["verify"]["corrupt"] == 0
        assert document["verify"]["ok"] == document["verify"]["checked"]

    def test_cache_verify_corrupt_store_is_one(self, tmp_path):
        import os
        cache_dir = str(tmp_path / "cache")
        run(["design"] + APP_TIER
            + ["--load", "1000", "--downtime", "100m",
               "--cache", cache_dir])
        objects = os.path.join(cache_dir, "objects")
        victim = None
        for directory, _, names in os.walk(objects):
            for name in names:
                if name.endswith(".json"):
                    victim = os.path.join(directory, name)
                    break
            if victim:
                break
        with open(victim, "wb") as handle:
            handle.write(b"scribbled over")
        code, output = run(["cache", "verify", cache_dir])
        assert code == 1
        document = json.loads(output)
        validate(document, CACHE_STATUS_SCHEMA)
        assert document["verify"]["corrupt"] == 1

    def test_cache_purge_empties_store(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        run(["design"] + APP_TIER
            + ["--load", "1000", "--downtime", "100m",
               "--cache", cache_dir])
        code, output = run(["cache", "purge", cache_dir])
        assert code == 0
        document = json.loads(output)
        validate(document, CACHE_STATUS_SCHEMA)
        assert document["removed"] > 0
        assert document["store"]["entries"] == 0

    def test_cache_missing_dir_is_one(self, tmp_path):
        code, output = run(["cache", "stats",
                            str(tmp_path / "never-created")])
        assert code == 1
        assert "error" in output

    def test_cache_without_dir_or_env_is_one(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE", raising=False)
        code, output = run(["cache", "stats"])
        assert code == 1
        assert "error" in output

    def test_cache_env_dir_fallback(self, tmp_path, monkeypatch):
        cache_dir = str(tmp_path / "cache")
        run(["design"] + APP_TIER
            + ["--load", "1000", "--downtime", "100m",
               "--cache", cache_dir])
        monkeypatch.setenv("REPRO_CACHE", cache_dir)
        code, output = run(["cache", "stats"])
        assert code == 0
        validate(json.loads(output), CACHE_STATUS_SCHEMA)

    def test_design_cache_verify_without_cache_is_one(self,
                                                      monkeypatch):
        # An ambient REPRO_CACHE legitimately satisfies
        # --cache-verify; pin the no-cache-anywhere case.
        monkeypatch.delenv("REPRO_CACHE", raising=False)
        code, output = run(["design"] + APP_TIER
                           + ["--load", "1000", "--downtime", "100m",
                              "--cache-verify"])
        assert code == 1
        assert "error" in output

    def test_file_spec_design_matches_embedded_model(self):
        """examples/specs round-trip: file specs == embedded models."""
        import os
        specs = os.path.join(os.path.dirname(__file__), "..", "..",
                             "examples", "specs")
        code_file, out_file = run(
            ["design",
             "--infrastructure", os.path.join(specs, "paper.infra"),
             "--service", os.path.join(specs, "ecommerce.service"),
             "--load", "1000", "--downtime", "100m", "--json"])
        code_paper, out_paper = run(
            ["design", "--paper-ecommerce",
             "--load", "1000", "--downtime", "100m", "--json"])
        assert code_file == code_paper == 0
        assert json.loads(out_file) == json.loads(out_paper)
