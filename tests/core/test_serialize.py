"""Tests for design serialization round trips."""

import json

import pytest

from repro.core import Design, DesignEvaluator, TierDesign
from repro.core.serialize import (design_from_dict, design_from_json,
                                  design_to_dict, design_to_json,
                                  evaluation_to_dict,
                                  tier_design_from_dict,
                                  tier_design_to_dict)
from repro.errors import ModelError
from repro.model import MechanismConfig, ServiceRequirements
from repro.units import Duration


@pytest.fixture
def sample_design(paper_infra):
    bronze = MechanismConfig(paper_infra.mechanism("maintenanceA"),
                             {"level": "bronze"})
    checkpoint = paper_infra.mechanism("checkpoint")
    grid = checkpoint.parameter("checkpoint_interval").values.values()
    cp = MechanismConfig(checkpoint, {"storage_location": "peer",
                                      "checkpoint_interval": grid[50]})
    return Design((
        TierDesign("application", "rC", 6, 1, ("machineA",), (bronze,)),
        TierDesign("computation", "rH", 8, 0, (), (bronze, cp)),
    ))


class TestRoundTrip:
    def test_design_dict_roundtrip(self, sample_design, paper_infra):
        data = design_to_dict(sample_design)
        rebuilt = design_from_dict(data, paper_infra)
        assert rebuilt == sample_design

    def test_design_json_roundtrip(self, sample_design, paper_infra):
        text = design_to_json(sample_design)
        json.loads(text)  # valid JSON
        rebuilt = design_from_json(text, paper_infra)
        assert rebuilt == sample_design

    def test_durations_as_spec_strings(self, sample_design):
        data = design_to_dict(sample_design)
        compute = data["tiers"][1]
        interval = compute["mechanisms"]["checkpoint"][
            "checkpoint_interval"]
        assert set(interval) == {"duration"}
        Duration.parse(interval["duration"])  # parseable

    def test_spare_prefix_preserved(self, sample_design, paper_infra):
        rebuilt = design_from_dict(design_to_dict(sample_design),
                                   paper_infra)
        assert rebuilt.tiers[0].spare_active_prefix == ("machineA",)

    def test_grid_snapping(self, paper_infra):
        """Deserialized durations snap onto the mechanism's own grid
        objects so config equality holds."""
        checkpoint = paper_infra.mechanism("checkpoint")
        grid = checkpoint.parameter("checkpoint_interval").values \
            .values()
        original = TierDesign(
            "computation", "rH", 4, 0, (),
            (MechanismConfig(checkpoint,
                             {"storage_location": "central",
                              "checkpoint_interval": grid[33]}),))
        rebuilt = tier_design_from_dict(tier_design_to_dict(original),
                                        paper_infra)
        assert rebuilt.mechanism_config("checkpoint") \
            .settings["checkpoint_interval"] == grid[33]


class TestValidation:
    def test_unknown_mechanism_rejected(self, paper_infra):
        data = {"tier": "t", "resource": "rC", "n_active": 1,
                "n_spare": 0, "mechanisms": {"ghost": {}}}
        with pytest.raises(ModelError):
            tier_design_from_dict(data, paper_infra)

    def test_bad_setting_rejected(self, paper_infra):
        data = {"tier": "t", "resource": "rC", "n_active": 1,
                "n_spare": 0,
                "mechanisms": {"maintenanceA": {"level": "diamond"}}}
        with pytest.raises(ModelError):
            tier_design_from_dict(data, paper_infra)

    def test_missing_field_rejected(self, paper_infra):
        with pytest.raises(ModelError):
            tier_design_from_dict({"tier": "t"}, paper_infra)

    def test_empty_design_rejected(self, paper_infra):
        with pytest.raises(ModelError):
            design_from_dict({"tiers": []}, paper_infra)


class TestEvaluationExport:
    def test_service_evaluation_dict(self, paper_infra,
                                     app_tier_service):
        evaluator = DesignEvaluator(paper_infra, app_tier_service)
        bronze = MechanismConfig(paper_infra.mechanism("maintenanceA"),
                                 {"level": "bronze"})
        design = Design((TierDesign("application", "rC", 6, 0, (),
                                    (bronze,)),))
        evaluation = evaluator.evaluate(
            design, ServiceRequirements(1000, Duration.minutes(100)))
        data = evaluation_to_dict(evaluation)
        assert data["annual_cost"] == pytest.approx(28320.0)
        assert data["downtime_minutes"] == pytest.approx(46.5, abs=2)
        assert "application" in data["tier_downtime_minutes"]
        assert "job_time" not in data
        json.dumps(data)  # JSON-compatible

    def test_job_evaluation_dict(self, paper_infra, scientific):
        evaluator = DesignEvaluator(paper_infra, scientific)
        bronze = MechanismConfig(paper_infra.mechanism("maintenanceA"),
                                 {"level": "bronze"})
        checkpoint = paper_infra.mechanism("checkpoint")
        grid = checkpoint.parameter("checkpoint_interval").values \
            .values()
        cp = MechanismConfig(checkpoint,
                             {"storage_location": "central",
                              "checkpoint_interval": grid[60]})
        design = Design((TierDesign("computation", "rH", 10, 0, (),
                                    (bronze, cp)),))
        evaluation = evaluator.evaluate(design, None)
        data = evaluation_to_dict(evaluation)
        assert data["job_time"]["expected_hours"] > 0
        assert 0 < data["job_time"]["useful_fraction"] <= 1
        json.dumps(data)
