"""Tests for requirement-space maps (Fig. 6 / Fig. 8 machinery)."""

import pytest

from repro.core import (DesignEvaluator, SearchLimits,
                        build_requirement_map)
from repro.units import Duration


@pytest.fixture(scope="module")
def req_map(paper_infra, app_tier_service):
    evaluator = DesignEvaluator(paper_infra, app_tier_service)
    return build_requirement_map(
        evaluator, "application", loads=[400, 1000, 3200],
        limits=SearchLimits(max_redundancy=4))


class TestRequirementSpaceMap:
    def test_loads_recorded(self, req_map):
        assert req_map.loads == (400, 1000, 3200)

    def test_at_load_sorted_by_downtime(self, req_map):
        points = req_map.at_load(1000)
        downtimes = [p.downtime_minutes for p in points]
        assert downtimes == sorted(downtimes, reverse=True)

    def test_optimal_for_picks_cheapest_feasible(self, req_map):
        point = req_map.optimal_for(1000, Duration.minutes(100))
        assert point is not None
        assert point.downtime_minutes <= 100
        # The paper's family 9.
        assert point.family.resource == "rC"
        assert point.family.contract == "bronze"
        assert point.family.n_extra == 1
        assert point.family.n_spare == 0

    def test_optimal_for_unknown_load_is_none(self, req_map):
        assert req_map.optimal_for(999, Duration.minutes(100)) is None

    def test_optimal_tracks_requirement(self, req_map):
        """As the requirement tightens, the chosen design's cost rises."""
        costs = []
        for minutes in (5000, 300, 30, 3):
            point = req_map.optimal_for(1000, Duration.minutes(minutes))
            assert point is not None
            costs.append(point.annual_cost)
        assert costs == sorted(costs)

    def test_family_curves_structure(self, req_map):
        curves = req_map.family_curves()
        assert len(curves) >= 8
        for family, points in curves.items():
            for load, downtime in points:
                assert load in (400, 1000, 3200)
                assert downtime >= 0

    def test_family_downtime_increases_with_load(self, req_map):
        """The paper: a family's downtime estimate rises with load."""
        curves = req_map.family_curves()
        from repro.core.families import DesignFamily
        family = DesignFamily("rC", "bronze", 0, 0)
        assert family in curves
        points = dict(curves[family])
        assert points[400] < points[1000] < points[3200]

    def test_baseline_cost_scales_with_load(self, req_map):
        assert req_map.baseline_cost(400) < req_map.baseline_cost(1000) \
            < req_map.baseline_cost(3200)

    def test_extra_cost_curve_monotone(self, req_map):
        """Fig. 8: tighter downtime never costs less."""
        curve = req_map.extra_cost_curve(1000, [1000, 100, 10, 1])
        costs = [extra for _, extra in curve if extra is not None]
        assert costs == sorted(costs)

    def test_extra_cost_zero_at_loose_requirement(self, req_map):
        curve = dict(req_map.extra_cost_curve(1000, [1e9]))
        assert curve[1e9] == pytest.approx(0.0)

    def test_point_metadata(self, req_map):
        point = req_map.at_load(400)[0]
        assert point.n_min == 2           # 400 / 200 per machine
        assert point.annual_cost > 0
        assert point.design.design.tier == "application"
