"""Tests for design representations."""

import pytest

from repro.core import Design, EvaluatedTierDesign, TierDesign
from repro.errors import ModelError
from repro.model import MechanismConfig


def bronze(paper_infra):
    return MechanismConfig(paper_infra.mechanism("maintenanceA"),
                           {"level": "bronze"})


class TestTierDesign:
    def test_basic(self, paper_infra):
        design = TierDesign("app", "rC", 6, 1, (),
                            (bronze(paper_infra),))
        assert design.total_resources == 7
        assert design.has_mechanism("maintenanceA")
        assert design.mechanism_config("maintenanceA") \
            .settings["level"] == "bronze"

    def test_missing_mechanism_lookup(self, paper_infra):
        design = TierDesign("app", "rC", 1, 0)
        with pytest.raises(ModelError):
            design.mechanism_config("maintenanceA")
        assert not design.has_mechanism("maintenanceA")

    def test_validation(self):
        with pytest.raises(ModelError):
            TierDesign("app", "rC", 0, 0)
        with pytest.raises(ModelError):
            TierDesign("app", "rC", 1, -1)

    def test_duplicate_mechanisms_rejected(self, paper_infra):
        config = bronze(paper_infra)
        with pytest.raises(ModelError):
            TierDesign("app", "rC", 1, 0, (), (config, config))

    def test_describe(self, paper_infra):
        design = TierDesign("app", "rC", 6, 2, ("machineA",),
                            (bronze(paper_infra),))
        text = design.describe()
        assert "rC x6" in text
        assert "+2 warm[machineA] spares" in text
        assert "maintenanceA(level=bronze)" in text

    def test_describe_cold_spare(self):
        design = TierDesign("app", "rC", 5, 1)
        assert "+1 cold spare" in design.describe()


class TestDesign:
    def test_tier_lookup(self):
        design = Design((TierDesign("web", "rA", 2, 0),
                         TierDesign("db", "rG", 1, 1)))
        assert design.tier("db").resource == "rG"
        with pytest.raises(ModelError):
            design.tier("cache")

    def test_duplicate_tiers_rejected(self):
        with pytest.raises(ModelError):
            Design((TierDesign("web", "rA", 1, 0),
                    TierDesign("web", "rB", 1, 0)))

    def test_empty_rejected(self):
        with pytest.raises(ModelError):
            Design(())

    def test_describe_joins_tiers(self):
        design = Design((TierDesign("web", "rA", 2, 0),
                         TierDesign("db", "rG", 1, 0)))
        assert "web" in design.describe()
        assert "db" in design.describe()


class TestEvaluatedTierDesign:
    def make(self, cost, unavailability):
        return EvaluatedTierDesign(TierDesign("t", "rC", 1, 0), cost,
                                   unavailability)

    def test_downtime_minutes(self):
        evaluated = self.make(100.0, 1.0 / (365 * 24 * 60))
        assert evaluated.downtime_minutes == pytest.approx(1.0)

    def test_dominates(self):
        cheap_good = self.make(100.0, 0.001)
        pricey_bad = self.make(200.0, 0.01)
        assert cheap_good.dominates(pricey_bad)
        assert not pricey_bad.dominates(cheap_good)

    def test_no_domination_on_tradeoff(self):
        cheap_bad = self.make(100.0, 0.01)
        pricey_good = self.make(200.0, 0.001)
        assert not cheap_bad.dominates(pricey_good)
        assert not pricey_good.dominates(cheap_bad)

    def test_equal_points_do_not_dominate(self):
        a = self.make(100.0, 0.01)
        b = self.make(100.0, 0.01)
        assert not a.dominates(b)
