"""Tests for design evaluation: model generation, cost, job time."""

import pytest

from repro.core import Design, DesignEvaluator, TierDesign
from repro.errors import EvaluationError
from repro.model import (JobRequirements, MechanismConfig,
                         ServiceRequirements)
from repro.units import Duration


@pytest.fixture
def app_evaluator(paper_infra, app_tier_service):
    return DesignEvaluator(paper_infra, app_tier_service)


@pytest.fixture
def sci_evaluator(paper_infra, scientific):
    return DesignEvaluator(paper_infra, scientific)


def bronze(infra, mech="maintenanceA"):
    return MechanismConfig(infra.mechanism(mech), {"level": "bronze"})


def checkpoint(infra, location="central", minutes=30):
    mechanism = infra.mechanism("checkpoint")
    grid = mechanism.parameter("checkpoint_interval").values.values()
    interval = min(grid, key=lambda d: abs(d.as_minutes - minutes))
    return MechanismConfig(mechanism,
                           {"storage_location": location,
                            "checkpoint_interval": interval})


class TestTierModelGeneration:
    def test_paper_section42_parameters(self, app_evaluator, paper_infra):
        """Check n, m, s and the derived MTTR/failover of each mode."""
        design = TierDesign("application", "rC", 6, 1, (),
                            (bronze(paper_infra),))
        model = app_evaluator.tier_model(design, required_throughput=1000)
        assert (model.n, model.m, model.s) == (6, 5, 1)

        by_name = {mode.name: mode for mode in model.modes}
        assert set(by_name) == {"machineA.hard", "machineA.soft",
                                "linux.soft", "appserverA.soft"}

        hard = by_name["machineA.hard"]
        # MTTR = detect (2m) + contract repair (38h) + restarts (4.5m)
        assert hard.mttr == Duration.minutes(2) + Duration.hours(38) \
            + Duration.minutes(4.5)
        # Failover = detect (2m) + reconfig (0) + cold activation (4.5m)
        assert hard.failover_time == Duration.minutes(6.5)
        assert hard.uses_failover

        soft = by_name["machineA.soft"]
        # MTTR = detect (0) + repair (0) + restarts (4.5m)
        assert soft.mttr == Duration.minutes(4.5)
        assert soft.failover_time == Duration.minutes(4.5)
        assert not soft.uses_failover  # repair not slower than failover

        os_soft = by_name["linux.soft"]
        assert os_soft.mttr == Duration.minutes(4)  # linux + appserver

        app_soft = by_name["appserverA.soft"]
        assert app_soft.mttr == Duration.minutes(2)

    def test_m_for_dynamic_tier_follows_load(self, app_evaluator,
                                             paper_infra):
        design = TierDesign("application", "rC", 10, 0, (),
                            (bronze(paper_infra),))
        assert app_evaluator.tier_model(design, 1000).m == 5
        assert app_evaluator.tier_model(design, 1001).m == 6
        assert app_evaluator.tier_model(design, 1).m == 1

    def test_m_equals_n_for_static_tier(self, sci_evaluator, paper_infra):
        design = TierDesign("computation", "rH", 8, 0, (),
                            (bronze(paper_infra),))
        model = sci_evaluator.tier_model(design)
        assert model.m == model.n == 8

    def test_m_needs_throughput_for_dynamic(self, app_evaluator,
                                            paper_infra):
        design = TierDesign("application", "rC", 5, 0, (),
                            (bronze(paper_infra),))
        with pytest.raises(EvaluationError):
            app_evaluator.tier_model(design, None)

    def test_insufficient_actives_rejected(self, app_evaluator,
                                           paper_infra):
        design = TierDesign("application", "rC", 3, 0, (),
                            (bronze(paper_infra),))
        with pytest.raises(EvaluationError):
            app_evaluator.tier_model(design, 1000)  # needs 5

    def test_warm_spare_shortens_failover(self, app_evaluator,
                                          paper_infra):
        cold = TierDesign("application", "rC", 6, 1, (),
                          (bronze(paper_infra),))
        warm = TierDesign("application", "rC", 6, 1,
                          ("machineA", "linux"), (bronze(paper_infra),))
        cold_model = app_evaluator.tier_model(cold, 1000)
        warm_model = app_evaluator.tier_model(warm, 1000)
        hard_cold = cold_model.modes[0]
        hard_warm = warm_model.modes[0]
        # Warm spare: only appserver (2m) to start, plus 2m detect.
        assert hard_warm.failover_time == Duration.minutes(4)
        assert hard_warm.failover_time < hard_cold.failover_time
        assert hard_warm.spare_susceptible  # machineA active in spare
        assert not hard_cold.spare_susceptible

    def test_missing_mechanism_config_raises(self, app_evaluator):
        design = TierDesign("application", "rC", 6, 0)
        with pytest.raises(Exception):
            app_evaluator.tier_model(design, 1000)


class TestEvaluate:
    def test_service_evaluation(self, app_evaluator, paper_infra):
        design = Design((TierDesign("application", "rC", 6, 0, (),
                                    (bronze(paper_infra),)),))
        requirements = ServiceRequirements(1000, Duration.minutes(100))
        evaluation = app_evaluator.evaluate(design, requirements)
        assert evaluation.annual_cost == pytest.approx(28320.0)
        assert evaluation.downtime_minutes == pytest.approx(46.5, abs=2.0)
        assert evaluation.meets(requirements)
        assert not evaluation.meets(
            ServiceRequirements(1000, Duration.minutes(10)))

    def test_unknown_requirements_type(self, app_evaluator, paper_infra):
        design = Design((TierDesign("application", "rC", 6, 0, (),
                                    (bronze(paper_infra),)),))
        evaluation = app_evaluator.evaluate(
            design, ServiceRequirements(1000, Duration.minutes(100)))
        with pytest.raises(EvaluationError):
            evaluation.meets(object())


class TestJobTime:
    def design(self, infra, n=10, s=0, minutes=30, location="central"):
        return Design((TierDesign("computation", "rH", n, s, (),
                                  (bronze(infra),
                                   checkpoint(infra, location, minutes))),))

    def test_job_time_components(self, sci_evaluator, paper_infra):
        design = self.design(paper_infra)
        estimate = sci_evaluator.job_time(design)
        assert estimate.feasible
        assert 0.9 < estimate.useful_fraction <= 1.0
        assert estimate.overhead_factor >= 1.0
        # 10000 units at ~96 units/h => ~104h plus overheads.
        assert 100 < estimate.expected_time.as_hours < 130

    def test_meets_job_requirements(self, sci_evaluator, paper_infra):
        design = self.design(paper_infra)
        evaluation = sci_evaluator.evaluate(
            design, JobRequirements(Duration.hours(150)))
        assert evaluation.job_time is not None
        assert evaluation.meets(JobRequirements(Duration.hours(150)))
        assert not evaluation.meets(JobRequirements(Duration.hours(50)))

    def test_shorter_interval_less_loss_more_overhead(self, sci_evaluator,
                                                      paper_infra):
        frequent = sci_evaluator.job_time(
            self.design(paper_infra, minutes=2))
        rare = sci_evaluator.job_time(
            self.design(paper_infra, minutes=1200))
        assert frequent.useful_fraction > rare.useful_fraction
        assert frequent.overhead_factor > rare.overhead_factor

    def test_job_time_on_non_job_service_rejected(self, app_evaluator,
                                                  paper_infra):
        design = Design((TierDesign("application", "rC", 6, 0, (),
                                    (bronze(paper_infra),)),))
        with pytest.raises(EvaluationError):
            app_evaluator.job_time(design)

    def test_spares_improve_job_time(self, sci_evaluator, paper_infra):
        """rH at n=40 with bronze (38h) repairs: spares cut the repair
        outages dramatically."""
        without = sci_evaluator.job_time(self.design(paper_infra, n=40))
        with_spares = sci_evaluator.job_time(
            self.design(paper_infra, n=40, s=2))
        assert with_spares.expected_time < without.expected_time


class TestRequiredMechanisms:
    def test_app_tier(self, app_evaluator):
        structural, performance = app_evaluator.required_mechanisms(
            "application", "rC")
        assert structural == ["maintenanceA"]
        assert performance == []

    def test_compute_tier(self, sci_evaluator):
        structural, performance = sci_evaluator.required_mechanisms(
            "computation", "rH")
        assert structural == ["maintenanceA"]
        assert performance == ["checkpoint"]

    def test_machineb_compute(self, sci_evaluator):
        structural, performance = sci_evaluator.required_mechanisms(
            "computation", "rI")
        assert structural == ["maintenanceB"]
        assert performance == ["checkpoint"]


class TestRepairCrewPlumbing:
    def test_crew_reaches_tier_models(self, paper_infra,
                                      app_tier_service):
        limited = DesignEvaluator(paper_infra, app_tier_service,
                                  repair_crew=1)
        design = TierDesign("application", "rC", 6, 0, (),
                            (MechanismConfig(
                                paper_infra.mechanism("maintenanceA"),
                                {"level": "bronze"}),))
        model = limited.tier_model(design, 1000)
        assert model.repair_crew == 1

    def test_crew_constrained_design_has_more_downtime(
            self, paper_infra, app_tier_service):
        bronze = MechanismConfig(paper_infra.mechanism("maintenanceA"),
                                 {"level": "bronze"})
        design = Design((TierDesign("application", "rC", 6, 0, (),
                                    (bronze,)),))
        free = DesignEvaluator(paper_infra, app_tier_service)
        solo = DesignEvaluator(paper_infra, app_tier_service,
                               repair_crew=1)
        assert solo.availability(design, 1000).downtime_minutes > \
            free.availability(design, 1000).downtime_minutes * 1.5

    def test_search_buys_more_redundancy_under_staffing_limits(
            self, paper_infra, app_tier_service):
        """With one technician, the 100 min/yr SLO at load 1000 costs
        more than with unlimited staff."""
        from repro.core import SearchLimits, TierSearch
        free_search = TierSearch(
            DesignEvaluator(paper_infra, app_tier_service),
            SearchLimits(max_redundancy=4))
        solo_search = TierSearch(
            DesignEvaluator(paper_infra, app_tier_service,
                            repair_crew=1),
            SearchLimits(max_redundancy=4))
        free = free_search.best_tier_design("application", 1000,
                                            Duration.minutes(100))
        solo = solo_search.best_tier_design("application", 1000,
                                            Duration.minutes(100))
        assert solo is not None
        assert solo.annual_cost >= free.annual_cost
        assert solo.downtime_minutes <= 100
