"""Tests for the dual search: best availability within a cost budget."""

import pytest

from repro.core import DesignEvaluator, SearchLimits, TierSearch
from repro.units import Duration


@pytest.fixture(scope="module")
def search(paper_infra, app_tier_service):
    return TierSearch(DesignEvaluator(paper_infra, app_tier_service),
                      SearchLimits(max_redundancy=4))


class TestBestWithinBudget:
    def test_budget_below_minimum_is_none(self, search):
        # Load 1000 needs 5 machines ~ $23.6k minimum.
        assert search.best_within_budget("application", 1000,
                                         10_000.0) is None

    def test_exact_minimum_buys_the_base_design(self, search):
        best = search.best_within_budget("application", 1000, 23_600.0)
        assert best is not None
        assert best.annual_cost <= 23_600.0
        assert best.design.n_active == 5
        assert best.design.n_spare == 0

    def test_bigger_budget_never_less_available(self, search):
        downtimes = []
        for budget in (24_000, 28_000, 32_000, 40_000, 60_000):
            best = search.best_within_budget("application", 1000,
                                             float(budget))
            assert best is not None
            assert best.annual_cost <= budget
            downtimes.append(best.downtime_minutes)
        assert downtimes == sorted(downtimes, reverse=True)

    def test_duality_with_cost_minimization(self, search):
        """Budget-optimal at B, then cost-minimize at its downtime:
        the costs must agree (both sit on the same frontier point)."""
        budget_best = search.best_within_budget("application", 1000,
                                                32_000.0)
        cost_best = search.best_tier_design(
            "application", 1000,
            Duration.minutes(budget_best.downtime_minutes * 1.0000001))
        assert cost_best.annual_cost <= budget_best.annual_cost + 1e-6
        assert cost_best.downtime_minutes <= \
            budget_best.downtime_minutes * 1.01

    def test_unreachable_load_is_none(self, search):
        assert search.best_within_budget("application", 10_000_000,
                                         1e12) is None
