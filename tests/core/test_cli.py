"""Tests for the command-line interface."""

import io

import pytest

from repro.cli import main, parse_fixed_settings
from repro.errors import AvedError


def run(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


class TestFixedSettings:
    def test_parse_single(self):
        assert parse_fixed_settings(["maintenanceA.level=bronze"]) == \
            {"maintenanceA": {"level": "bronze"}}

    def test_parse_multiple_and_numeric(self):
        fixed = parse_fixed_settings(["a.x=1", "a.y=2.5", "b.z=gold"])
        assert fixed == {"a": {"x": 1, "y": 2.5}, "b": {"z": "gold"}}

    def test_malformed_rejected(self):
        with pytest.raises(AvedError):
            parse_fixed_settings(["nodots=1"])
        with pytest.raises(AvedError):
            parse_fixed_settings(["a.b"])


class TestDesignCommand:
    def test_paper_app_tier_anchor(self):
        code, output = run(["design", "--paper-ecommerce",
                            "--app-tier-only", "--load", "1000",
                            "--downtime", "100m"])
        assert code == 0
        assert "rC x6" in output
        assert "$28,320" in output

    def test_job_design(self):
        code, output = run(["design", "--paper-scientific",
                            "--job-time", "200h",
                            "--fix", "maintenanceA.level=bronze",
                            "--fix", "maintenanceB.level=bronze"])
        assert code == 0
        assert "rH" in output
        assert "expected job time" in output

    def test_infeasible_returns_2(self):
        code, output = run(["design", "--paper-ecommerce",
                            "--app-tier-only", "--load", "1000",
                            "--downtime", "0.000001m",
                            "--max-redundancy", "1"])
        assert code == 2
        assert "infeasible" in output

    def test_missing_requirement_errors(self):
        code, output = run(["design", "--paper-ecommerce",
                            "--app-tier-only"])
        assert code == 1
        assert "error" in output

    def test_missing_model_files_errors(self):
        code, output = run(["design", "--load", "1", "--downtime", "1m"])
        assert code == 1
        assert "--infrastructure" in output

    def test_unreadable_file_errors(self):
        code, output = run(["design", "--infrastructure", "/nope.spec",
                            "--service", "/nope2.spec",
                            "--load", "1", "--downtime", "1m"])
        assert code == 1

    def test_analytic_engine_option(self):
        code, output = run(["design", "--paper-ecommerce",
                            "--app-tier-only", "--load", "400",
                            "--downtime", "1000m",
                            "--engine", "analytic"])
        assert code == 0
        assert "annual cost" in output


class TestResilienceOptions:
    def test_fallback_engine_option(self):
        code, output = run(["design", "--paper-ecommerce",
                            "--app-tier-only", "--load", "1000",
                            "--downtime", "100m",
                            "--engine", "fallback"])
        assert code == 0
        assert "rC x6" in output
        assert "$28,320" in output

    def test_seed_reaches_simulation_engine(self):
        from repro.cli import build_parser, make_engine
        args = build_parser().parse_args(
            ["design", "--paper-ecommerce", "--app-tier-only",
             "--load", "1", "--downtime", "1m",
             "--engine", "simulation", "--seed", "42"])
        engine = make_engine(args)
        assert engine.seed == 42

    def test_seed_reaches_fallback_chain(self):
        from repro.cli import build_parser, make_engine
        args = build_parser().parse_args(
            ["design", "--paper-ecommerce", "--app-tier-only",
             "--load", "1", "--downtime", "1m",
             "--engine", "fallback", "--seed", "7"])
        engine = make_engine(args)
        assert engine.engines[-1].name == "simulation"
        assert engine.engines[-1].seed == 7

    def test_checkpoint_then_resume(self, tmp_path):
        path = str(tmp_path / "ck.json")
        base = ["design", "--paper-ecommerce", "--app-tier-only",
                "--load", "1000", "--downtime", "100m",
                "--checkpoint", path]
        code, first = run(base)
        assert code == 0
        code, second = run(base + ["--resume"])
        assert code == 0
        assert "resumed from checkpoint" in second
        assert "$28,320" in first and "$28,320" in second

    def test_resume_requires_checkpoint(self):
        code, output = run(["design", "--paper-ecommerce",
                            "--app-tier-only", "--load", "1000",
                            "--downtime", "100m", "--resume"])
        assert code == 1
        assert "--checkpoint" in output

    def test_resume_without_existing_file_starts_fresh(self, tmp_path):
        path = str(tmp_path / "new.json")
        code, output = run(["design", "--paper-ecommerce",
                            "--app-tier-only", "--load", "1000",
                            "--downtime", "100m",
                            "--checkpoint", path, "--resume"])
        assert code == 0
        assert "resumed" not in output


class TestParallelOptions:
    def test_jobs_reproduces_serial_anchor(self):
        serial = run(["design", "--paper-ecommerce", "--app-tier-only",
                      "--load", "1000", "--downtime", "100m"])
        pooled = run(["design", "--paper-ecommerce", "--app-tier-only",
                      "--load", "1000", "--downtime", "100m",
                      "--jobs", "2"])
        assert serial[0] == 0 and pooled[0] == 0
        assert "rC x6" in pooled[1]
        assert "$28,320" in pooled[1]
        # The design/cost/downtime lines are identical; only the
        # search-statistics line may differ (speculative prefetch).
        assert serial[1].splitlines()[:3] == pooled[1].splitlines()[:3]

    def test_supervised_serial_jobs_1(self):
        code, output = run(["design", "--paper-ecommerce",
                            "--app-tier-only", "--load", "1000",
                            "--downtime", "100m", "--jobs", "1",
                            "--task-timeout", "60"])
        assert code == 0
        assert "rC x6" in output

    def test_repro_jobs_env_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "2")
        code, output = run(["design", "--paper-ecommerce",
                            "--app-tier-only", "--load", "1000",
                            "--downtime", "100m"])
        assert code == 0
        assert "rC x6" in output
        assert "$28,320" in output

    def test_explicit_jobs_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "not-a-number")
        code, output = run(["design", "--paper-ecommerce",
                            "--app-tier-only", "--load", "1000",
                            "--downtime", "100m", "--jobs", "1"])
        assert code == 0  # env never consulted when --jobs is given

    def test_bad_env_value_errors(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "two")
        code, output = run(["design", "--paper-ecommerce",
                            "--app-tier-only", "--load", "1000",
                            "--downtime", "100m"])
        assert code == 1
        assert "REPRO_JOBS" in output

    def test_jobs_must_be_positive(self):
        code, output = run(["design", "--paper-ecommerce",
                            "--app-tier-only", "--load", "1000",
                            "--downtime", "100m", "--jobs", "0"])
        assert code == 1
        assert "--jobs" in output

    def test_task_timeout_requires_jobs(self, monkeypatch):
        # An ambient REPRO_JOBS (e.g. the CI legs that push the whole
        # suite through the pool) legitimately satisfies the
        # requirement, so pin the no-jobs-anywhere case explicitly.
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        code, output = run(["design", "--paper-ecommerce",
                            "--app-tier-only", "--load", "1000",
                            "--downtime", "100m",
                            "--task-timeout", "5"])
        assert code == 1
        assert "--task-timeout requires --jobs" in output

    def test_frontier_accepts_jobs(self):
        serial = run(["frontier", "--paper-ecommerce",
                      "--tier", "application", "--load", "1000"])
        pooled = run(["frontier", "--paper-ecommerce",
                      "--tier", "application", "--load", "1000",
                      "--jobs", "2"])
        assert pooled[0] == 0
        assert pooled[1] == serial[1]


class TestFrontierCommand:
    def test_frontier_table(self):
        code, output = run(["frontier", "--paper-ecommerce",
                            "--app-tier-only", "--tier", "application",
                            "--load", "800", "--max-redundancy", "3"])
        assert code == 0
        assert "annual cost" in output
        assert "rC" in output

    def test_unreachable_load(self):
        code, output = run(["frontier", "--paper-ecommerce",
                            "--app-tier-only", "--tier", "application",
                            "--load", "99999999"])
        assert code == 2
        assert "no designs" in output


class TestValidateCommand:
    def test_paper_models_validate(self):
        code, output = run(["validate", "--paper-scientific"])
        assert code == 0
        assert "ok:" in output

    def test_spec_files_from_disk(self, tmp_path):
        (tmp_path / "infra.spec").write_text("""
component=box cost=10
 failure=soft mtbf=30d mttr=0 detect_time=0
resource=node reconfig_time=0
 component=box depend=null startup=1m
""")
        (tmp_path / "svc.spec").write_text("""
application=svc
tier=t
 resource=node sizing=dynamic failurescope=resource
  nActive=[1-10,+1] performance=expr:10*n
""")
        code, output = run(["validate",
                            "--infrastructure",
                            str(tmp_path / "infra.spec"),
                            "--service", str(tmp_path / "svc.spec")])
        assert code == 0

    def test_broken_pair_reports_problems(self, tmp_path):
        (tmp_path / "infra.spec").write_text("""
component=box cost=10
 failure=soft mtbf=30d mttr=0 detect_time=0
resource=node reconfig_time=0
 component=box depend=null startup=1m
""")
        (tmp_path / "svc.spec").write_text("""
application=svc
tier=t
 resource=ghost sizing=dynamic failurescope=resource
  nActive=[1-10,+1] performance=expr:10*n
""")
        code, output = run(["validate",
                            "--infrastructure",
                            str(tmp_path / "infra.spec"),
                            "--service", str(tmp_path / "svc.spec")])
        assert code == 2
        assert "unknown resource" in output


class TestDesignFromFiles:
    def test_full_pipeline_from_disk(self, tmp_path):
        (tmp_path / "infra.spec").write_text("""
component=box cost([inactive,active])=[500 600]
 failure=hard mtbf=200d mttr=<support> detect_time=1m
 failure=soft mtbf=20d mttr=0 detect_time=0
component=app cost=0
 failure=crash mtbf=30d mttr=0 detect_time=0
mechanism=support
 param=level range=[slow,fast]
 cost(level)=[100 300]
 mttr(level)=[48h 6h]
resource=node reconfig_time=0
 component=box depend=null startup=1m
 component=app depend=box startup=30s
""")
        (tmp_path / "svc.spec").write_text("""
application=svc
tier=t
 resource=node sizing=dynamic failurescope=resource
  nActive=[1-20,+1] performance(nActive)=perf.dat
""")
        (tmp_path / "perf.dat").write_text(
            "\n".join("%d %d" % (n, 25 * n) for n in range(1, 21)))
        code, output = run(["design",
                            "--infrastructure",
                            str(tmp_path / "infra.spec"),
                            "--service", str(tmp_path / "svc.spec"),
                            "--perf-dir", str(tmp_path),
                            "--load", "100", "--downtime", "500m"])
        assert code == 0
        assert "node" in output


class TestAnalyzeCommand:
    def test_budget_and_tornado(self):
        code, output = run(["analyze", "--paper-ecommerce",
                            "--app-tier-only", "--load", "1000",
                            "--downtime", "100m"])
        assert code == 0
        assert "downtime budget" in output
        assert "sensitivity of" in output
        assert "machineA.hard" in output

    def test_infeasible(self):
        code, output = run(["analyze", "--paper-ecommerce",
                            "--app-tier-only", "--load", "1000",
                            "--downtime", "0.0000001m",
                            "--max-redundancy", "1"])
        assert code == 2


class TestDescribeCommand:
    def test_describe_paper_models(self):
        code, output = run(["describe", "--paper-scientific"])
        assert code == 0
        assert "machineA" in output
        assert "maintenanceA" in output
        assert "rH" in output
        assert "finite job" in output

    def test_describe_ecommerce(self):
        code, output = run(["describe", "--paper-ecommerce"])
        assert code == 0
        assert "always-on service" in output
        assert "tier application" in output


class TestRepairCrewFlag:
    def test_crew_limit_changes_design(self):
        code_free, out_free = run(["design", "--paper-ecommerce",
                                   "--app-tier-only", "--load", "1000",
                                   "--downtime", "100m"])
        code_solo, out_solo = run(["design", "--paper-ecommerce",
                                   "--app-tier-only", "--load", "1000",
                                   "--downtime", "100m",
                                   "--repair-crew", "1"])
        assert code_free == 0 and code_solo == 0
        assert out_free != out_solo


class TestJsonOutput:
    def test_design_json_parses_and_reloads(self, paper_infra):
        import json as json_module
        code, output = run(["design", "--paper-ecommerce",
                            "--app-tier-only", "--load", "1000",
                            "--downtime", "100m", "--json"])
        assert code == 0
        data = json_module.loads(output)
        assert data["annual_cost"] == pytest.approx(28320.0)
        # The embedded design reloads against the infrastructure.
        from repro.core.serialize import design_from_dict
        design = design_from_dict(data["design"], paper_infra)
        assert design.tiers[0].resource == "rC"

    def test_job_design_json_has_job_block(self):
        import json as json_module
        code, output = run(["design", "--paper-scientific",
                            "--job-time", "200h", "--json",
                            "--fix", "maintenanceA.level=bronze",
                            "--fix", "maintenanceB.level=bronze"])
        assert code == 0
        data = json_module.loads(output)
        assert data["job_time"]["expected_hours"] <= 200
