"""Tests for the paper-literal greedy multi-tier refinement."""

import pytest

from repro import Aved, Duration, SearchLimits, ServiceRequirements
from repro.core import (EvaluatedTierDesign, TierDesign,
                        combine_tier_frontiers,
                        refine_tier_frontiers_greedy)
from repro.errors import SearchError


def make(tier, cost, unavailability):
    return EvaluatedTierDesign(TierDesign(tier, "rC", 1, 0), cost,
                               unavailability)


def minutes(value):
    return Duration.minutes(value)


class TestGreedyRefinement:
    def test_already_feasible_start(self):
        a = [make("a", 100, 1e-7)]
        b = [make("b", 100, 1e-7)]
        design = refine_tier_frontiers_greedy([a, b], minutes(100))
        assert design is not None
        assert len(design.tiers) == 2

    def test_tightens_cheapest_tier_first(self):
        # Both tiers start dirty; tier B's upgrade is much cheaper per
        # unit of downtime removed, so greedy should take it first and
        # stop if that suffices.
        a = [make("a", 100, 2e-4), make("a", 1000, 1e-7)]
        b = [make("b", 100, 2e-4), make("b", 150, 1e-7)]
        design = refine_tier_frontiers_greedy([a, b], minutes(110))
        assert design is not None
        chosen = {t.tier: t for t in design.tiers}
        # 2e-4 ~ 105 min; after upgrading b, total ~105 min <= 110.
        assert chosen["b"].resource == "rC"
        # Tier a must still be the cheap design.
        total_cost = 0.0
        for tier_design in design.tiers:
            pool = a if tier_design.tier == "a" else b
            match = [c for c in pool if c.design is tier_design]
            total_cost += match[0].annual_cost
        assert total_cost == pytest.approx(250)

    def test_infeasible_returns_none(self):
        a = [make("a", 100, 0.5)]
        b = [make("b", 100, 0.5)]
        assert refine_tier_frontiers_greedy([a, b], minutes(1)) is None

    def test_empty_frontier_returns_none(self):
        a = [make("a", 100, 0.1)]
        assert refine_tier_frontiers_greedy([a, []],
                                            minutes(1000)) is None

    def test_no_frontiers_rejected(self):
        with pytest.raises(SearchError):
            refine_tier_frontiers_greedy([], minutes(1))

    def test_greedy_never_cheaper_than_exact(self):
        """Greedy is at best equal to the exact combiner."""
        import itertools
        a = [make("a", c, u) for c, u in
             ((100, 3e-4), (160, 1.2e-4), (420, 1e-6))]
        b = [make("b", c, u) for c, u in
             ((90, 4e-4), (205, 6e-5), (340, 2e-6))]
        c_ = [make("c", c, u) for c, u in
              ((80, 2e-4), (140, 8e-5), (300, 1e-6))]
        for target in (500, 200, 120, 60, 20):
            exact = combine_tier_frontiers([a, b, c_], minutes(target))
            greedy = refine_tier_frontiers_greedy([a, b, c_],
                                                  minutes(target))
            if exact is None:
                assert greedy is None
                continue
            if greedy is None:
                continue  # greedy may fail where exact succeeds

            def cost_of(design):
                total = 0.0
                for tier_design in design.tiers:
                    pool = {"a": a, "b": b, "c": c_}[tier_design.tier]
                    match = [cand for cand in pool
                             if cand.design is tier_design]
                    total += match[0].annual_cost
                return total

            assert cost_of(greedy) >= cost_of(exact) - 1e-9

    def test_greedy_result_is_feasible(self):
        a = [make("a", 100, 3e-4), make("a", 200, 1e-5)]
        b = [make("b", 90, 2e-4), make("b", 300, 1e-6)]
        design = refine_tier_frontiers_greedy([a, b], minutes(60))
        assert design is not None
        unavailability = 1.0
        for tier_design in design.tiers:
            pool = a if tier_design.tier == "a" else b
            match = [cand for cand in pool
                     if cand.design is tier_design]
            unavailability *= 1.0 - match[0].unavailability
        assert (1.0 - unavailability) * 525600 <= 60 + 1e-6


class TestAvedGreedyMode:
    def test_greedy_multi_tier_design(self, paper_infra, ecommerce):
        engine = Aved(paper_infra, ecommerce,
                      limits=SearchLimits(max_redundancy=3),
                      combination="greedy")
        outcome = engine.design(ServiceRequirements(
            1000, Duration.minutes(500)))
        assert outcome.downtime_minutes <= 500

    def test_greedy_never_beats_exact(self, paper_infra, ecommerce):
        limits = SearchLimits(max_redundancy=3)
        exact = Aved(paper_infra, ecommerce, limits=limits,
                     combination="exact").design(
            ServiceRequirements(800, Duration.minutes(200)))
        greedy = Aved(paper_infra, ecommerce, limits=limits,
                      combination="greedy").design(
            ServiceRequirements(800, Duration.minutes(200)))
        assert greedy.annual_cost >= exact.annual_cost - 1e-6

    def test_bad_combination_rejected(self, paper_infra, ecommerce):
        with pytest.raises(SearchError):
            Aved(paper_infra, ecommerce, combination="magic")
