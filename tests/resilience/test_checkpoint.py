"""Unit tests for search checkpointing (save, load, resume)."""

import json
import os

import pytest

from repro.core import DesignEvaluator, TierSearch
from repro.errors import CheckpointError
from repro.resilience import SearchCheckpoint


class TestRecording:
    def test_round_trip_preserves_tuple_keys(self, tmp_path):
        path = str(tmp_path / "ck.json")
        checkpoint = SearchCheckpoint(path)
        key = ("app", "rC", 6, 0, (), (("maintenanceA",
                                        (("level", "gold"),)),), 1000.0)
        checkpoint.record_evaluation(key, 1.25e-4)
        checkpoint.save()
        loaded = SearchCheckpoint.load(path)
        assert loaded.resumed
        assert loaded.resumed_evaluations == 1
        cache = {}
        assert loaded.seed_cache(cache) == 1
        assert cache[key] == 1.25e-4

    def test_duplicate_keys_recorded_once(self):
        checkpoint = SearchCheckpoint()
        checkpoint.record_evaluation(("a",), 0.5)
        checkpoint.record_evaluation(("a",), 0.5)
        assert checkpoint.evaluations == 1

    def test_autosave_every_interval(self, tmp_path):
        path = str(tmp_path / "ck.json")
        checkpoint = SearchCheckpoint(path, interval=2)
        checkpoint.record_evaluation(("a",), 0.1)
        assert not os.path.exists(path)
        checkpoint.record_evaluation(("b",), 0.2)
        assert os.path.exists(path)

    def test_flush_writes_pending(self, tmp_path):
        path = str(tmp_path / "ck.json")
        checkpoint = SearchCheckpoint(path, interval=100)
        checkpoint.record_evaluation(("a",), 0.1)
        assert not os.path.exists(path)
        checkpoint.flush()
        assert SearchCheckpoint.load(path).evaluations == 1

    def test_pathless_checkpoint_is_in_memory(self):
        checkpoint = SearchCheckpoint()
        checkpoint.record_evaluation(("a",), 0.1)
        checkpoint.flush()  # no-op, must not raise
        with pytest.raises(CheckpointError):
            checkpoint.save()

    def test_interval_must_be_positive(self):
        with pytest.raises(CheckpointError):
            SearchCheckpoint(interval=0)

    def test_record_batch_saves_once(self, tmp_path, monkeypatch):
        path = str(tmp_path / "ck.json")
        checkpoint = SearchCheckpoint(path, interval=100)
        saves = []
        original = SearchCheckpoint.save

        def counting_save(self, target=None):
            saves.append(1)
            return original(self, target)

        monkeypatch.setattr(SearchCheckpoint, "save", counting_save)
        checkpoint.record_batch([(("a",), 0.1), (("b",), 0.2),
                                 (("c",), 0.3)])
        assert len(saves) == 1  # one batch, one write
        assert SearchCheckpoint.load(path).evaluations == 3

    def test_record_batch_skips_known_keys(self, tmp_path):
        path = str(tmp_path / "ck.json")
        checkpoint = SearchCheckpoint(path)
        checkpoint.record_batch([(("a",), 0.1)])
        checkpoint.record_batch([(("a",), 0.1)])  # no-op: no new keys
        assert checkpoint.evaluations == 1

    def test_empty_batch_does_not_save(self, tmp_path):
        path = str(tmp_path / "ck.json")
        SearchCheckpoint(path).record_batch([])
        assert not os.path.exists(path)


class TestAtomicReplace:
    def test_failed_write_leaves_previous_snapshot_intact(
            self, tmp_path, monkeypatch):
        """A crash mid-write (simulated: json.dump raises) must leave
        the last complete snapshot on disk, loadable, with no temp
        litter -- the property the kill-and-resume workflow rests on."""
        path = str(tmp_path / "ck.json")
        checkpoint = SearchCheckpoint(path)
        checkpoint.record_batch([(("a",), 0.1)])

        def exploding_dump(*args, **kwargs):
            raise KeyboardInterrupt("killed mid-write")

        monkeypatch.setattr(json, "dump", exploding_dump)
        checkpoint.record_evaluation(("b",), 0.2)
        with pytest.raises(KeyboardInterrupt):
            checkpoint.save()
        monkeypatch.undo()

        loaded = SearchCheckpoint.load(path)
        assert loaded.evaluations == 1  # the pre-kill snapshot
        cache = {}
        loaded.seed_cache(cache)
        assert cache == {("a",): 0.1}
        leftovers = [name for name in os.listdir(str(tmp_path))
                     if name.startswith(".checkpoint-")]
        assert leftovers == []


class TestLoadErrors:
    def test_missing_file(self, tmp_path):
        with pytest.raises(CheckpointError, match="cannot read"):
            SearchCheckpoint.load(str(tmp_path / "nope.json"))

    def test_invalid_json(self, tmp_path):
        path = tmp_path / "ck.json"
        path.write_text("{truncated")
        with pytest.raises(CheckpointError, match="not valid JSON"):
            SearchCheckpoint.load(str(path))

    def test_wrong_version(self, tmp_path):
        path = tmp_path / "ck.json"
        path.write_text(json.dumps({"version": 99}))
        with pytest.raises(CheckpointError, match="version"):
            SearchCheckpoint.load(str(path))

    def test_non_object_payload(self, tmp_path):
        path = tmp_path / "ck.json"
        path.write_text("[1, 2, 3]")
        with pytest.raises(CheckpointError):
            SearchCheckpoint.load(str(path))

    def test_malformed_cache_entry(self, tmp_path):
        path = tmp_path / "ck.json"
        path.write_text(json.dumps({
            "version": 1,
            "availability_cache": [[["k"], "not-a-number"]],
            "tier_frontiers": {}}))
        with pytest.raises(CheckpointError, match="malformed"):
            SearchCheckpoint.load(str(path))

    def test_malformed_frontiers(self, tmp_path):
        path = tmp_path / "ck.json"
        path.write_text(json.dumps({
            "version": 1, "availability_cache": [],
            "tier_frontiers": [1]}))
        with pytest.raises(CheckpointError, match="malformed"):
            SearchCheckpoint.load(str(path))

    def test_save_failure_raises(self, tmp_path):
        target = tmp_path / "dir-not-file"
        target.mkdir()
        checkpoint = SearchCheckpoint(str(target))
        checkpoint.record_evaluation(("a",), 0.1)
        with pytest.raises(CheckpointError, match="cannot save"):
            checkpoint.save()


class TestSearchIntegration:
    def test_resumed_search_replays_solves(self, tmp_path, paper_infra,
                                           app_tier_service):
        path = str(tmp_path / "ck.json")
        evaluator = DesignEvaluator(paper_infra, app_tier_service)
        first = TierSearch(evaluator,
                           checkpoint=SearchCheckpoint(path, interval=5))
        frontier = first.tier_frontier("application", 1000.0)
        assert first.stats.availability_evaluations > 0
        assert first.stats.resumed_frontiers == 0

        loaded = SearchCheckpoint.load(path)
        assert loaded.completed_tiers == ("application",)
        second = TierSearch(DesignEvaluator(paper_infra,
                                            app_tier_service),
                            checkpoint=loaded)
        resumed = second.tier_frontier("application", 1000.0)
        assert second.stats.availability_evaluations == 0
        assert second.stats.resumed_frontiers == 1
        assert second.stats.resumed_evaluations == \
            first.stats.availability_evaluations
        assert [(c.annual_cost, c.unavailability) for c in resumed] == \
            [(c.annual_cost, c.unavailability) for c in frontier]

    def test_stale_load_frontier_ignored(self, tmp_path, paper_infra,
                                         app_tier_service):
        path = str(tmp_path / "ck.json")
        evaluator = DesignEvaluator(paper_infra, app_tier_service)
        search = TierSearch(evaluator,
                            checkpoint=SearchCheckpoint(path))
        search.tier_frontier("application", 1000.0)
        loaded = SearchCheckpoint.load(path)
        assert loaded.frontier_for("application", 400.0,
                                   paper_infra) is None
        assert loaded.frontier_for("web", 1000.0, paper_infra) is None

    def test_frontier_against_wrong_infrastructure(
            self, tmp_path, paper_infra, app_tier_service, tiny_infra):
        path = str(tmp_path / "ck.json")
        evaluator = DesignEvaluator(paper_infra, app_tier_service)
        search = TierSearch(evaluator,
                            checkpoint=SearchCheckpoint(path))
        search.tier_frontier("application", 1000.0)
        loaded = SearchCheckpoint.load(path)
        with pytest.raises(CheckpointError, match="does not fit"):
            loaded.frontier_for("application", 1000.0, tiny_infra)
