"""Checkpoint durability: fsync, the sidecar lock, and disk faults.

Covers the crash-safety corners of :class:`SearchCheckpoint`:

* ``save()`` fsyncs the temp file before the atomic rename;
* the pid-stamped ``<path>.lock`` enforces single-writer (a *live*
  foreign holder is an error; a stale one -- writer killed
  mid-rename -- is broken and recovered from);
* disk faults (``ENOSPC``/``EACCES``) during *autosave* degrade to an
  ``AVD309`` event instead of killing the search, while an explicit
  ``save()`` still raises.
"""

import errno
import json
import os
import signal
import subprocess
import sys
import tempfile
import textwrap
import time

import pytest

from repro.errors import CheckpointError
from repro.resilience.checkpoint import SearchCheckpoint
from repro.resilience.events import CHECKPOINT_FAULT


def make_checkpoint(tmp_path, interval=5):
    return SearchCheckpoint(str(tmp_path / "cp.json"),
                            interval=interval)


class TestSaveDurability:
    def test_save_fsyncs_before_rename(self, tmp_path, monkeypatch):
        calls = []
        real_fsync = os.fsync
        real_replace = os.replace

        def spy_fsync(fd):
            calls.append("fsync")
            return real_fsync(fd)

        def spy_replace(src, dst):
            calls.append("replace")
            return real_replace(src, dst)

        monkeypatch.setattr(os, "fsync", spy_fsync)
        monkeypatch.setattr(os, "replace", spy_replace)
        checkpoint = make_checkpoint(tmp_path)
        checkpoint.record_evaluation(("web", 1, 0), 0.01)
        checkpoint.save()
        assert calls == ["fsync", "replace"]
        with open(tmp_path / "cp.json", encoding="utf-8") as handle:
            json.load(handle)    # valid JSON on disk

    def test_save_releases_the_lock(self, tmp_path):
        checkpoint = make_checkpoint(tmp_path)
        checkpoint.record_evaluation(("web", 1, 0), 0.01)
        checkpoint.save()
        assert not os.path.exists(str(tmp_path / "cp.json") + ".lock")
        assert not [name for name in os.listdir(tmp_path)
                    if name.endswith(".tmp")]


class TestSidecarLock:
    def test_live_foreign_writer_is_an_error(self, tmp_path):
        holder = subprocess.Popen(
            [sys.executable, "-c", "import time; time.sleep(60)"])
        try:
            lock = str(tmp_path / "cp.json") + ".lock"
            with open(lock, "w", encoding="utf-8") as handle:
                handle.write("%d\n" % holder.pid)
            checkpoint = make_checkpoint(tmp_path)
            checkpoint.record_evaluation(("web", 1, 0), 0.01)
            with pytest.raises(CheckpointError,
                               match="another live writer"):
                checkpoint.save()
            assert os.path.exists(lock)    # never break a live lock
        finally:
            holder.kill()
            holder.wait(timeout=30)

    def test_stale_dead_holder_lock_is_broken(self, tmp_path):
        dead = subprocess.Popen([sys.executable, "-c", "pass"])
        dead.wait(timeout=30)
        lock = str(tmp_path / "cp.json") + ".lock"
        with open(lock, "w", encoding="utf-8") as handle:
            handle.write("%d\n" % dead.pid)
        checkpoint = make_checkpoint(tmp_path)
        checkpoint.record_evaluation(("web", 1, 0), 0.01)
        assert checkpoint.save() == str(tmp_path / "cp.json")
        assert not os.path.exists(lock)

    @pytest.mark.parametrize("content", ["", "not-a-pid\n"])
    def test_unreadable_lock_is_broken(self, tmp_path, content):
        lock = str(tmp_path / "cp.json") + ".lock"
        with open(lock, "w", encoding="utf-8") as handle:
            handle.write(content)
        checkpoint = make_checkpoint(tmp_path)
        checkpoint.record_evaluation(("web", 1, 0), 0.01)
        checkpoint.save()
        assert not os.path.exists(lock)

    def test_own_pid_lock_is_broken(self, tmp_path):
        # A prior incarnation in this very process (e.g. after an
        # exception between acquire and release) must not deadlock us.
        lock = str(tmp_path / "cp.json") + ".lock"
        with open(lock, "w", encoding="utf-8") as handle:
            handle.write("%d\n" % os.getpid())
        checkpoint = make_checkpoint(tmp_path)
        checkpoint.record_evaluation(("web", 1, 0), 0.01)
        checkpoint.save()


class TestKillMidRename:
    def test_writer_killed_before_rename_leaves_recoverable_state(
            self, tmp_path):
        """Regression: kill -9 between fsync and rename.

        The dead writer leaves its pid-stamped lock (and temp file)
        behind; the next writer must break the stale lock, save
        cleanly, and the checkpoint must load as valid JSON.
        """
        script = textwrap.dedent("""
            import os, sys
            from repro.resilience.checkpoint import SearchCheckpoint

            def blocked_replace(src, dst):
                print("READY", flush=True)
                import time
                time.sleep(60)

            os.replace = blocked_replace
            cp = SearchCheckpoint(sys.argv[1], interval=1)
            cp.record_evaluation(("web", 1, 0), 0.01)
            cp.save()
        """)
        target = str(tmp_path / "cp.json")
        env = dict(os.environ)
        src_dir = os.path.join(os.path.dirname(
            os.path.abspath(__file__)), os.pardir, os.pardir, "src")
        env["PYTHONPATH"] = os.path.abspath(src_dir)
        writer = subprocess.Popen(
            [sys.executable, "-c", script, target],
            stdout=subprocess.PIPE, env=env, text=True)
        try:
            assert writer.stdout.readline().strip() == "READY"
            writer.kill()                  # mid-"rename"
        finally:
            writer.wait(timeout=30)

        lock = target + ".lock"
        assert os.path.exists(lock)        # the stale crash residue

        checkpoint = SearchCheckpoint(target, interval=1)
        checkpoint.record_evaluation(("web", 2, 1), 0.02)
        checkpoint.save()
        assert not os.path.exists(lock)
        resumed = SearchCheckpoint.load(target)
        assert resumed.evaluations == 1


class TestDiskFaultDegradation:
    @pytest.mark.parametrize("code", [errno.ENOSPC, errno.EACCES])
    def test_autosave_degrades_to_avd309(self, tmp_path, monkeypatch,
                                         code):
        checkpoint = make_checkpoint(tmp_path, interval=2)

        def broken_tempfile(*args, **kwargs):
            raise OSError(code, os.strerror(code))

        monkeypatch.setattr(tempfile, "NamedTemporaryFile",
                            broken_tempfile)
        # Reaching the interval triggers an autosave; the fault must
        # not propagate out of record_evaluation.
        checkpoint.record_evaluation(("web", 1, 0), 0.01)
        checkpoint.record_evaluation(("web", 2, 0), 0.02)
        assert checkpoint.save_failures == 1
        events = list(checkpoint.drain_log())
        assert len(events) == 1
        assert events[0].kind == CHECKPOINT_FAULT
        assert os.strerror(code) in events[0].detail

        # An explicit save() is a user command: it still raises.
        with pytest.raises(CheckpointError):
            checkpoint.save()

    def test_autosave_backs_off_after_a_failure(self, tmp_path,
                                                monkeypatch):
        checkpoint = make_checkpoint(tmp_path, interval=2)
        attempts = []
        real = tempfile.NamedTemporaryFile

        def flaky_tempfile(*args, **kwargs):
            attempts.append(len(attempts))
            if len(attempts) == 1:
                raise OSError(errno.ENOSPC, "no space")
            return real(*args, **kwargs)

        monkeypatch.setattr(tempfile, "NamedTemporaryFile",
                            flaky_tempfile)
        checkpoint.record_evaluation(("web", 1, 0), 0.01)
        checkpoint.record_evaluation(("web", 2, 0), 0.02)
        assert attempts == [0]             # first autosave failed
        # The next entry is below the backed-off threshold: no retry.
        checkpoint.record_evaluation(("web", 3, 0), 0.03)
        assert attempts == [0]
        # Another interval of progress retries -- and succeeds.
        checkpoint.record_evaluation(("web", 4, 0), 0.04)
        assert attempts == [0, 1]
        assert checkpoint.save_failures == 1
        resumed = SearchCheckpoint.load(str(tmp_path / "cp.json"))
        assert resumed.evaluations == 4

    def test_flush_degrades_instead_of_raising(self, tmp_path,
                                               monkeypatch):
        checkpoint = make_checkpoint(tmp_path, interval=100)
        checkpoint.record_evaluation(("web", 1, 0), 0.01)

        def broken_tempfile(*args, **kwargs):
            raise OSError(errno.ENOSPC, "no space")

        monkeypatch.setattr(tempfile, "NamedTemporaryFile",
                            broken_tempfile)
        checkpoint.flush()                 # Aved calls this in finally
        assert checkpoint.save_failures == 1
        assert len(checkpoint.log) == 1


class TestConcurrentAccess:
    def test_two_threads_one_path_never_corrupt(self, tmp_path):
        """Hammer one checkpoint path from two threads.

        Whatever interleaving happens, the file on disk must always
        be complete valid JSON (atomic rename), and any contention
        surfaces as CheckpointError -- never as a torn file.
        """
        import threading
        target = str(tmp_path / "cp.json")
        errors = []

        def writer(worker):
            checkpoint = SearchCheckpoint(target, interval=1)
            for index in range(20):
                checkpoint.record_evaluation(
                    ("web", worker, index), 0.01)
                try:
                    checkpoint.save()
                except CheckpointError:
                    pass        # lost the single-writer race: fine
                except Exception as exc:   # noqa: BLE001
                    errors.append(exc)

        threads = [threading.Thread(target=writer, args=(n,))
                   for n in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors
        with open(target, encoding="utf-8") as handle:
            data = json.load(handle)       # never torn
        assert data["availability_cache"]
