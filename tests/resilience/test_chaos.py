"""Unit tests for the deterministic fault-injection harness."""

import pytest

from repro.availability import (FailureModeEntry, MarkovEngine,
                                TierAvailabilityModel)
from repro.errors import NumericalError, SearchError
from repro.resilience import (ChaosEngine, FaultPlan, VirtualClock,
                              broken_tier_result)
from repro.units import Duration


def tier_model(name="t"):
    return TierAvailabilityModel(
        name, n=2, m=2, s=0,
        modes=(FailureModeEntry("hard", Duration.days(50),
                                Duration.hours(12),
                                Duration.minutes(5)),))


def injection_trace(plan, calls=40):
    """What a chaos engine does over ``calls`` calls, as a tuple."""
    engine = ChaosEngine(MarkovEngine(), plan)
    model = tier_model()
    trace = []
    for _ in range(calls):
        try:
            result = engine.evaluate_tier(model)
        except Exception as exc:
            trace.append(("raise", type(exc).__name__))
        else:
            # repr() keeps NaN comparable (nan != nan would break the
            # equality check below).
            trace.append(("ok", repr(result.unavailability)))
    return tuple(trace)


class TestVirtualClock:
    def test_advance_and_sleep(self):
        clock = VirtualClock(start=5.0)
        assert clock() == 5.0
        clock.advance(2.5)
        clock.sleep(1.5)
        assert clock.now() == 9.0

    def test_rejects_backwards(self):
        with pytest.raises(ValueError):
            VirtualClock().advance(-1.0)


class TestFaultPlan:
    @pytest.mark.parametrize("kwargs", [
        {"error_rate": -0.1},
        {"error_rate": 1.5},
        {"nan_rate": 2.0},
        {"delay_seconds": -1.0},
        {"fail_after": -1},
    ])
    def test_invalid_plans_rejected(self, kwargs):
        with pytest.raises(SearchError):
            FaultPlan(**kwargs)

    def test_default_plan_is_benign(self):
        engine = ChaosEngine(MarkovEngine())
        result = engine.evaluate_tier(tier_model())
        assert 0 <= result.unavailability <= 1
        assert engine.injected == {}


class TestChaosEngine:
    def test_same_seed_same_schedule(self):
        plan = FaultPlan(seed=11, error_rate=0.3, nan_rate=0.1)
        assert injection_trace(plan) == injection_trace(plan)

    def test_different_seed_different_schedule(self):
        a = FaultPlan(seed=1, error_rate=0.5)
        b = FaultPlan(seed=2, error_rate=0.5)
        assert injection_trace(a) != injection_trace(b)

    def test_error_rate_one_always_raises(self):
        engine = ChaosEngine(MarkovEngine(), FaultPlan(error_rate=1.0))
        with pytest.raises(NumericalError):
            engine.evaluate_tier(tier_model())
        assert engine.injected["error"] == 1

    def test_custom_error_type(self):
        plan = FaultPlan(error_rate=1.0, error_type=RuntimeError)
        engine = ChaosEngine(MarkovEngine(), plan)
        with pytest.raises(RuntimeError):
            engine.evaluate_tier(tier_model())

    def test_fail_calls_force_specific_calls(self):
        plan = FaultPlan(fail_calls=(2,))
        engine = ChaosEngine(MarkovEngine(), plan)
        model = tier_model()
        engine.evaluate_tier(model)
        with pytest.raises(NumericalError, match="call 2"):
            engine.evaluate_tier(model)
        engine.evaluate_tier(model)
        assert engine.injected["fail-call"] == 1

    def test_fail_after_is_a_crash_switch(self):
        plan = FaultPlan(fail_after=3)
        engine = ChaosEngine(MarkovEngine(), plan)
        model = tier_model()
        for _ in range(3):
            engine.evaluate_tier(model)
        with pytest.raises(NumericalError, match="fail_after"):
            engine.evaluate_tier(model)
        with pytest.raises(NumericalError):
            engine.evaluate_tier(model)

    def test_nan_injection_bypasses_validator(self):
        engine = ChaosEngine(MarkovEngine(), FaultPlan(nan_rate=1.0))
        result = engine.evaluate_tier(tier_model())
        assert result.unavailability != result.unavailability
        assert engine.injected["nan"] == 1

    def test_garbage_injection_returns_out_of_range(self):
        plan = FaultPlan(garbage_rate=1.0, garbage_value=7.5)
        engine = ChaosEngine(MarkovEngine(), plan)
        result = engine.evaluate_tier(tier_model())
        assert result.unavailability == 7.5

    def test_delay_advances_virtual_clock(self):
        clock = VirtualClock()
        plan = FaultPlan(delay_rate=1.0, delay_seconds=2.0)
        engine = ChaosEngine(MarkovEngine(), plan, clock=clock)
        engine.evaluate_tier(tier_model())
        assert clock.now() == 2.0
        assert engine.injected["delay"] == 1

    def test_name_mirrors_inner_engine(self):
        engine = ChaosEngine(MarkovEngine(), FaultPlan())
        assert engine.name == "markov"

    def test_clean_calls_delegate_to_inner(self):
        model = tier_model()
        chaotic = ChaosEngine(MarkovEngine(), FaultPlan(seed=0))
        assert chaotic.evaluate_tier(model).unavailability == \
            pytest.approx(MarkovEngine()
                          .evaluate_tier(model).unavailability)


class TestBrokenTierResult:
    def test_carries_invalid_value(self):
        result = broken_tier_result("t", float("inf"))
        assert result.name == "t"
        assert result.unavailability == float("inf")
        assert result.mode_results == ()
        assert result.provenance is None
