"""Shared tests for the consolidated retry/backoff schedule.

Every retry loop in the codebase (engine fallback, supervised
executor task retries, pool-supervisor restarts, grid shard leases)
pauses through one :class:`repro.resilience.RetrySchedule`; these
tests pin down the contract they all rely on: one jitter draw per
pause, byte-compatibility with the idiom the schedule replaced, the
attempt cap, and the injectable sleep.
"""

import random

import pytest

from repro.errors import SearchError
from repro.resilience import POOL_BACKOFF, FallbackPolicy, RetrySchedule


def test_delay_matches_replaced_idiom():
    # The schedule must consume exactly one rng.random() per call and
    # produce policy.backoff_delay(attempt, draw) -- the literal code
    # it replaced -- so seeded runs reproduce pre-consolidation
    # schedules.
    policy = FallbackPolicy(backoff_base=0.5, backoff_factor=3.0,
                            backoff_jitter=0.25)
    schedule = RetrySchedule(policy, rng=random.Random(7),
                             sleep=lambda s: None)
    reference = random.Random(7)
    for attempt in (1, 2, 3, 1, 5):
        expected = policy.backoff_delay(attempt, reference.random())
        assert schedule.pause(attempt) == expected


def test_one_draw_per_pause_shared_rng():
    # Sharing a caller's RNG must advance it exactly once per pause so
    # interleaved consumers stay deterministic.
    rng = random.Random(3)
    schedule = RetrySchedule(POOL_BACKOFF, rng=rng, sleep=lambda s: None)
    twin = random.Random(3)
    schedule.pause(1)
    twin.random()
    assert rng.random() == twin.random()


def test_sleep_injection_and_accounting():
    slept = []
    schedule = RetrySchedule(
        FallbackPolicy(backoff_base=1.0, backoff_jitter=0.0),
        seed=11, sleep=slept.append)
    d1 = schedule.pause(1)
    d2 = schedule.pause(2)
    assert slept == [d1, d2] == [1.0, 2.0]
    assert schedule.pauses == 2
    assert schedule.slept == pytest.approx(d1 + d2)


def test_zero_base_never_sleeps():
    calls = []
    schedule = RetrySchedule(FallbackPolicy(backoff_base=0.0),
                             seed=1, sleep=calls.append)
    assert schedule.pause(4) == 0.0
    assert calls == []
    assert schedule.pauses == 1


def test_max_attempt_caps_the_exponent():
    policy = FallbackPolicy(backoff_base=0.25, backoff_factor=2.0,
                            backoff_jitter=0.0)
    capped = RetrySchedule(policy, seed=5, sleep=lambda s: None,
                           max_attempt=3)
    assert capped.delay(50) == policy.backoff_delay(3, 0.5)
    assert capped.delay(3) == capped.delay(99)


def test_seed_and_rng_are_exclusive():
    with pytest.raises(SearchError):
        RetrySchedule(POOL_BACKOFF, seed=1, rng=random.Random(1))
    with pytest.raises(SearchError):
        RetrySchedule(POOL_BACKOFF, max_attempt=0)


def test_default_seed_is_reproducible():
    a = RetrySchedule(POOL_BACKOFF, sleep=lambda s: None)
    b = RetrySchedule(POOL_BACKOFF, sleep=lambda s: None)
    assert [a.delay(i) for i in (1, 2, 3)] == \
        [b.delay(i) for i in (1, 2, 3)]
