"""Unit tests for the fault-tolerant evaluation runtime."""

import pytest

from repro.availability import (AvailabilityEngine, FailureModeEntry,
                                TierAvailabilityModel, TierResult,
                                get_engine)
from repro.errors import EvaluationError, NumericalError, SearchError
from repro.resilience import (CircuitBreaker, FallbackEngine,
                              FallbackPolicy, VirtualClock,
                              broken_tier_result)
from repro.resilience import events
from repro.units import Duration


def tier_model(name="t"):
    return TierAvailabilityModel(
        name, n=2, m=2, s=0,
        modes=(FailureModeEntry("hard", Duration.days(50),
                                Duration.hours(12),
                                Duration.minutes(5)),))


class ScriptedEngine(AvailabilityEngine):
    """Plays back a script of results/exceptions, repeating the last.

    Script entries: a float (returned as a valid TierResult), an
    exception instance (raised), or a callable taking the model.
    """

    def __init__(self, name, script):
        self.name = name
        self.script = list(script)
        self.calls = 0

    def evaluate_tier(self, model):
        self.calls += 1
        entry = self.script[min(self.calls - 1, len(self.script) - 1)]
        if isinstance(entry, BaseException):
            raise entry
        if callable(entry):
            return entry(model)
        return TierResult(model.name, entry)


class SlowEngine(AvailabilityEngine):
    """Advances a virtual clock on every call, then succeeds."""

    def __init__(self, name, clock, seconds, value=1e-4):
        self.name = name
        self.clock = clock
        self.seconds = seconds
        self.value = value

    def evaluate_tier(self, model):
        self.clock.advance(self.seconds)
        return TierResult(model.name, self.value)


def make_engine(*engines, **kwargs):
    clock = kwargs.pop("clock", None)
    policy = FallbackPolicy(backoff_base=0.0, **kwargs)
    if clock is None:
        clock = VirtualClock()
    return FallbackEngine(engines=list(engines), policy=policy,
                          clock=clock, sleep=clock.sleep)


class TestPolicy:
    def test_defaults_valid(self):
        policy = FallbackPolicy()
        assert policy.chain == ("markov", "analytic", "simulation")

    @pytest.mark.parametrize("kwargs", [
        {"chain": ()},
        {"chain": ("markov", "markov")},
        {"max_retries": -1},
        {"backoff_factor": 0.5},
        {"backoff_jitter": 2.0},
        {"call_timeout": 0.0},
        {"deadline": -1.0},
        {"breaker_threshold": 0},
        {"breaker_cooldown": 0},
    ])
    def test_invalid_knobs_rejected(self, kwargs):
        with pytest.raises(SearchError):
            FallbackPolicy(**kwargs)

    def test_backoff_grows_and_jitters(self):
        policy = FallbackPolicy(backoff_base=0.1, backoff_factor=2.0,
                                backoff_jitter=0.5)
        mid1 = policy.backoff_delay(1, 0.5)
        mid2 = policy.backoff_delay(2, 0.5)
        assert mid2 == pytest.approx(2.0 * mid1)
        low = policy.backoff_delay(1, 0.0)
        high = policy.backoff_delay(1, 1.0)
        assert low == pytest.approx(0.05)
        assert high == pytest.approx(0.15)


class TestCircuitBreaker:
    def test_opens_after_threshold(self):
        breaker = CircuitBreaker(threshold=2, cooldown=3)
        assert not breaker.record_fault()
        assert breaker.record_fault()  # second fault opens it
        assert breaker.state == "open"
        assert breaker.trips == 1

    def test_open_skips_then_half_open(self):
        breaker = CircuitBreaker(threshold=1, cooldown=2)
        breaker.record_fault()
        assert not breaker.allows()
        assert not breaker.allows()
        assert breaker.allows()  # cooldown spent: half-open probe
        assert breaker.state == "half-open"

    def test_probe_success_closes(self):
        breaker = CircuitBreaker(threshold=1, cooldown=1)
        breaker.record_fault()
        breaker.allows()
        breaker.allows()
        assert breaker.record_success() is True
        assert breaker.state == "closed"

    def test_probe_fault_reopens(self):
        breaker = CircuitBreaker(threshold=3, cooldown=1)
        breaker.record_fault()
        breaker.record_fault()
        breaker.record_fault()
        breaker.allows()
        breaker.allows()
        assert breaker.state == "half-open"
        breaker.record_fault()  # single probe fault reopens
        assert breaker.state == "open"

    def test_success_resets_consecutive_count(self):
        breaker = CircuitBreaker(threshold=2, cooldown=1)
        breaker.record_fault()
        breaker.record_success()
        assert not breaker.record_fault()
        assert breaker.state == "closed"


class TestFallbackEngine:
    def test_passthrough_provenance(self):
        engine = make_engine(ScriptedEngine("a", [1e-4]))
        result = engine.evaluate_tier(tier_model())
        assert result.unavailability == pytest.approx(1e-4)
        assert result.provenance.engine == "a"
        assert result.provenance.attempts == 1
        assert not result.provenance.degraded
        assert len(engine.log) == 0

    def test_transient_fault_retried(self):
        scripted = ScriptedEngine(
            "a", [NumericalError("boom"), NumericalError("boom"), 1e-4])
        engine = make_engine(scripted, max_retries=2)
        result = engine.evaluate_tier(tier_model())
        assert scripted.calls == 3
        assert result.provenance.engine == "a"
        assert result.provenance.attempts == 3
        assert not result.provenance.degraded
        retries = engine.log.of_kind(events.RETRY)
        assert len(retries) == 1
        assert retries[0].attempt == 3

    def test_retries_exhausted_fall_back(self):
        engine = make_engine(ScriptedEngine("a", [NumericalError("x")]),
                             ScriptedEngine("b", [2e-4]),
                             max_retries=1, breaker_threshold=10)
        result = engine.evaluate_tier(tier_model())
        assert result.provenance.engine == "b"
        assert result.provenance.fallback_from == ("a",)
        assert "x" in result.provenance.cause
        assert len(engine.log.of_kind(events.FALLBACK)) == 1

    def test_permanent_fault_skips_retries(self):
        scripted = ScriptedEngine("a", [EvaluationError("no")])
        engine = make_engine(scripted, ScriptedEngine("b", [2e-4]),
                             max_retries=5)
        result = engine.evaluate_tier(tier_model())
        assert scripted.calls == 1  # EvaluationError is not retried
        assert result.provenance.engine == "b"

    def test_unexpected_exception_is_contained(self):
        engine = make_engine(ScriptedEngine("a", [ZeroDivisionError()]),
                             ScriptedEngine("b", [2e-4]))
        result = engine.evaluate_tier(tier_model())
        assert result.provenance.engine == "b"
        assert "ZeroDivisionError" in result.provenance.cause

    def test_nan_result_rejected(self):
        bad = ScriptedEngine(
            "a", [lambda m: broken_tier_result(m.name, float("nan"))])
        engine = make_engine(bad, ScriptedEngine("b", [2e-4]),
                             max_retries=0, breaker_threshold=10)
        result = engine.evaluate_tier(tier_model())
        assert result.provenance.engine == "b"
        garbage = engine.log.of_kind(events.GARBAGE)
        assert garbage and "NaN" in garbage[0].detail

    def test_out_of_range_result_rejected(self):
        bad = ScriptedEngine(
            "a", [lambda m: broken_tier_result(m.name, 2.0)])
        engine = make_engine(bad, ScriptedEngine("b", [2e-4]),
                             max_retries=0, breaker_threshold=10)
        result = engine.evaluate_tier(tier_model())
        assert result.provenance.engine == "b"
        assert engine.log.of_kind(events.GARBAGE)

    def test_garbage_validation_can_be_disabled(self):
        bad = ScriptedEngine(
            "a", [lambda m: broken_tier_result(m.name, 2.0)])
        engine = make_engine(bad, validate_results=False)
        result = engine.evaluate_tier(tier_model())
        assert result.unavailability == 2.0

    def test_timeout_discards_and_falls_back(self):
        clock = VirtualClock()
        slow = SlowEngine("a", clock, seconds=5.0)
        engine = make_engine(slow, ScriptedEngine("b", [2e-4]),
                             clock=clock, call_timeout=1.0)
        result = engine.evaluate_tier(tier_model())
        assert result.provenance.engine == "b"
        timeouts = engine.log.of_kind(events.TIMEOUT)
        assert timeouts and "timeout" in timeouts[0].detail

    def test_deadline_budget_spans_tiers(self):
        clock = VirtualClock()
        slow = SlowEngine("a", clock, seconds=6.0)
        engine = make_engine(slow, clock=clock, deadline=10.0)
        models = [tier_model("t1"), tier_model("t2"), tier_model("t3")]
        with pytest.raises(EvaluationError, match="deadline"):
            engine.evaluate(models)
        assert engine.log.of_kind(events.DEADLINE)

    def test_breaker_opens_skips_and_recloses(self):
        flaky = ScriptedEngine("a", [EvaluationError("dead"),
                                     EvaluationError("dead"), 1e-4])
        engine = make_engine(flaky, ScriptedEngine("b", [2e-4]),
                             breaker_threshold=2, breaker_cooldown=2)
        model = tier_model()
        # Calls 1-2 fault engine a (opening the breaker on call 2).
        assert engine.evaluate_tier(model).provenance.engine == "b"
        assert engine.evaluate_tier(model).provenance.engine == "b"
        assert engine.log.of_kind(events.BREAKER_OPEN)
        # Calls 3-4: breaker open, engine a skipped without being called.
        engine.evaluate_tier(model)
        engine.evaluate_tier(model)
        assert flaky.calls == 2
        # Call 5: half-open probe succeeds and closes the breaker.
        result = engine.evaluate_tier(model)
        assert result.provenance.engine == "a"
        assert engine.log.of_kind(events.BREAKER_CLOSE)
        assert engine.breakers["a"].state == "closed"

    def test_all_engines_failed(self):
        engine = make_engine(ScriptedEngine("a", [EvaluationError("x")]),
                             ScriptedEngine("b", [EvaluationError("y")]))
        with pytest.raises(EvaluationError,
                           match="all availability engines failed"):
            engine.evaluate_tier(tier_model())

    def test_empty_design_rejected(self):
        engine = make_engine(ScriptedEngine("a", [1e-4]))
        with pytest.raises(EvaluationError):
            engine.evaluate([])

    def test_empty_chain_rejected(self):
        with pytest.raises(EvaluationError):
            FallbackEngine(engines=[])

    def test_series_composition_matches_bare_engine(self):
        engine = make_engine(get_engine("markov"))
        models = [tier_model("t1"), tier_model("t2")]
        resilient = engine.evaluate(models)
        bare = get_engine("markov").evaluate(models)
        assert resilient.unavailability == pytest.approx(
            bare.unavailability)

    def test_default_chain_built_from_registry(self):
        engine = FallbackEngine(seed=3)
        assert [e.name for e in engine.engines] == \
            ["markov", "analytic", "simulation"]
        assert engine.engines[-1].seed == 3

    def test_registered_under_fallback_name(self):
        assert isinstance(get_engine("fallback"), FallbackEngine)


class TestReporting:
    def test_degradation_report_codes(self):
        engine = make_engine(ScriptedEngine("a", [NumericalError("t"),
                                                  1e-4]),
                             ScriptedEngine("b", [2e-4]))
        engine.evaluate_tier(tier_model())
        report = engine.degradation_report()
        assert {d.code for d in report} == {"AVD303"}

    def test_drain_log_resets(self):
        engine = make_engine(ScriptedEngine("a", [NumericalError("t"),
                                                  1e-4]))
        engine.evaluate_tier(tier_model())
        drained = engine.drain_log()
        assert len(drained) == 1
        assert len(engine.log) == 0

    def test_reset_clears_breakers_and_log(self):
        engine = make_engine(ScriptedEngine("a", [EvaluationError("x")]),
                             ScriptedEngine("b", [2e-4]),
                             breaker_threshold=1)
        engine.evaluate_tier(tier_model())
        assert engine.breakers["a"].state == "open"
        engine.reset()
        assert engine.breakers["a"].state == "closed"
        assert len(engine.log) == 0
        assert engine.calls == 0

    def test_log_summary_counts(self):
        engine = make_engine(ScriptedEngine("a", [EvaluationError("x")]),
                             ScriptedEngine("b", [2e-4]),
                             breaker_threshold=10)
        engine.evaluate_tier(tier_model())
        assert "1 fallback" in engine.log.summary()
        assert engine.log.counts()[events.FALLBACK] == 1
