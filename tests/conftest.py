"""Shared fixtures: the paper's models and small synthetic ones."""

from __future__ import annotations

import pytest

from repro.model import (AvailabilityMechanism, ComponentSlot, ComponentType,
                         CostSchedule, ExpressionPerformance, FailureMode,
                         FailureScope, InfrastructureModel,
                         MechanismParameter, MechanismRef, MechanismUse,
                         ResourceOption, ResourceType, ServiceModel, Sizing,
                         TableEffect, Tier)
from repro.spec.paper import (ecommerce_service, paper_infrastructure,
                              scientific_service)
from repro.units import ArithmeticRange, Duration, EnumeratedRange


@pytest.fixture(scope="session")
def paper_infra():
    return paper_infrastructure()


@pytest.fixture(scope="session")
def ecommerce():
    return ecommerce_service()


@pytest.fixture(scope="session")
def scientific():
    return scientific_service()


@pytest.fixture(scope="session")
def app_tier_service(ecommerce):
    """The application tier in isolation, as the paper's Fig. 6 uses it."""
    return ServiceModel("app-only", [ecommerce.tier("application")])


@pytest.fixture
def tiny_infra():
    """A minimal synthetic infrastructure: one box, one OS, one contract."""
    contract = AvailabilityMechanism(
        "contract",
        parameters=(MechanismParameter(
            "level", EnumeratedRange(["basic", "fast"])),),
        effects={
            "cost": TableEffect("level",
                                (("basic", 100.0), ("fast", 400.0))),
            "mttr": TableEffect("level",
                                (("basic", Duration.hours(24)),
                                 ("fast", Duration.hours(4)))),
        })
    box = ComponentType(
        "box",
        cost=CostSchedule(inactive=500.0, active=1000.0),
        failure_modes=(
            FailureMode("hard", Duration.days(365),
                        MechanismRef("contract"),
                        detect_time=Duration.minutes(1)),
            FailureMode("glitch", Duration.days(30), Duration.ZERO),
        ))
    os = ComponentType(
        "os",
        cost=CostSchedule.flat(0.0),
        failure_modes=(
            FailureMode("crash", Duration.days(60), Duration.ZERO),))
    resource = ResourceType(
        "node",
        slots=(ComponentSlot("box", None, Duration.minutes(1)),
               ComponentSlot("os", "box", Duration.minutes(2))),
        reconfig_time=Duration.seconds(30))
    return InfrastructureModel(components=[box, os],
                               mechanisms=[contract],
                               resources=[resource])


@pytest.fixture
def tiny_service():
    """A one-tier dynamic service on the tiny infrastructure."""
    option = ResourceOption(
        "node", Sizing.DYNAMIC, FailureScope.RESOURCE,
        ArithmeticRange(1, 100, 1),
        ExpressionPerformance("100*n"))
    return ServiceModel("svc", [Tier("web", [option])])
