"""Shared fixtures: the paper's models and small synthetic ones.

Also hosts the golden-snapshot machinery: the ``golden`` fixture
compares a JSON-able result against a fixture in ``tests/golden/``,
failing with a unified diff; ``pytest --update-golden`` rewrites the
fixtures instead (review the git diff before committing).
"""

from __future__ import annotations

import difflib
import json
import os

import pytest

from repro.model import (AvailabilityMechanism, ComponentSlot, ComponentType,
                         CostSchedule, ExpressionPerformance, FailureMode,
                         FailureScope, InfrastructureModel,
                         MechanismParameter, MechanismRef, MechanismUse,
                         ResourceOption, ResourceType, ServiceModel, Sizing,
                         TableEffect, Tier)
from repro.spec.paper import (ecommerce_service, paper_infrastructure,
                              scientific_service)
from repro.units import ArithmeticRange, Duration, EnumeratedRange


@pytest.fixture(scope="session")
def paper_infra():
    return paper_infrastructure()


@pytest.fixture(scope="session")
def ecommerce():
    return ecommerce_service()


@pytest.fixture(scope="session")
def scientific():
    return scientific_service()


@pytest.fixture(scope="session")
def app_tier_service(ecommerce):
    """The application tier in isolation, as the paper's Fig. 6 uses it."""
    return ServiceModel("app-only", [ecommerce.tier("application")])


@pytest.fixture
def tiny_infra():
    """A minimal synthetic infrastructure: one box, one OS, one contract."""
    contract = AvailabilityMechanism(
        "contract",
        parameters=(MechanismParameter(
            "level", EnumeratedRange(["basic", "fast"])),),
        effects={
            "cost": TableEffect("level",
                                (("basic", 100.0), ("fast", 400.0))),
            "mttr": TableEffect("level",
                                (("basic", Duration.hours(24)),
                                 ("fast", Duration.hours(4)))),
        })
    box = ComponentType(
        "box",
        cost=CostSchedule(inactive=500.0, active=1000.0),
        failure_modes=(
            FailureMode("hard", Duration.days(365),
                        MechanismRef("contract"),
                        detect_time=Duration.minutes(1)),
            FailureMode("glitch", Duration.days(30), Duration.ZERO),
        ))
    os = ComponentType(
        "os",
        cost=CostSchedule.flat(0.0),
        failure_modes=(
            FailureMode("crash", Duration.days(60), Duration.ZERO),))
    resource = ResourceType(
        "node",
        slots=(ComponentSlot("box", None, Duration.minutes(1)),
               ComponentSlot("os", "box", Duration.minutes(2))),
        reconfig_time=Duration.seconds(30))
    return InfrastructureModel(components=[box, os],
                               mechanisms=[contract],
                               resources=[resource])


@pytest.fixture
def tiny_service():
    """A one-tier dynamic service on the tiny infrastructure."""
    option = ResourceOption(
        "node", Sizing.DYNAMIC, FailureScope.RESOURCE,
        ArithmeticRange(1, 100, 1),
        ExpressionPerformance("100*n"))
    return ServiceModel("svc", [Tier("web", [option])])


# ----------------------------------------------------------------------
# Golden snapshots (tests/golden/*.json)
# ----------------------------------------------------------------------

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "golden")


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden", action="store_true", default=False,
        help="rewrite tests/golden/*.json fixtures from current "
             "results instead of comparing against them")


def _round_floats(value, digits=8):
    """Round every float to ``digits`` significant digits.

    Golden fixtures must not churn on BLAS/platform noise in the last
    few bits; 8 significant digits is far tighter than any modeled
    quantity's meaning and far looser than float noise.
    """
    if isinstance(value, float):
        return float("%.*g" % (digits, value))
    if isinstance(value, dict):
        return {key: _round_floats(item, digits)
                for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_round_floats(item, digits) for item in value]
    return value


class GoldenComparator:
    """Compare results against committed JSON snapshots."""

    def __init__(self, update: bool):
        self.update = update

    def check(self, name: str, data) -> None:
        data = _round_floats(data)
        rendered = json.dumps(data, indent=2, sort_keys=True) + "\n"
        path = os.path.join(GOLDEN_DIR, name + ".json")
        if self.update:
            os.makedirs(GOLDEN_DIR, exist_ok=True)
            with open(path, "w") as handle:
                handle.write(rendered)
            return
        if not os.path.exists(path):
            pytest.fail(
                "golden fixture %s does not exist; run "
                "`pytest --update-golden` to create it" % path)
        with open(path) as handle:
            expected_text = handle.read()
        if json.loads(expected_text) == data:
            return
        diff = difflib.unified_diff(
            expected_text.splitlines(keepends=True),
            rendered.splitlines(keepends=True),
            fromfile="golden/%s.json (committed)" % name,
            tofile="golden/%s.json (current run)" % name)
        pytest.fail(
            "golden snapshot %r differs from the committed fixture.\n"
            "If the change is intended, run `pytest --update-golden` "
            "and commit the updated fixture.\n%s"
            % (name, "".join(diff)), pytrace=False)


@pytest.fixture
def golden(request):
    return GoldenComparator(request.config.getoption("--update-golden"))
