"""Pins the concrete numbers quoted in EXPERIMENTS.md.

If a model or engine change moves these anchors, EXPERIMENTS.md is
stale -- this file fails first and says which number to re-derive.
"""

import pytest

from repro.core import (DesignEvaluator, SearchLimits, TierSearch,
                        build_requirement_map)
from repro.model import MechanismConfig
from repro.units import Duration


@pytest.fixture(scope="module")
def evaluator(paper_infra, app_tier_service):
    return DesignEvaluator(paper_infra, app_tier_service)


class TestFig6Anchors:
    def test_family9_downtime_and_cost(self, evaluator):
        search = TierSearch(evaluator)
        best = search.best_tier_design("application", 1000,
                                       Duration.minutes(100))
        assert best.annual_cost == pytest.approx(28320.0)
        assert best.downtime_minutes == pytest.approx(46.5, abs=0.5)

    def test_family1_downtime_curve(self, evaluator):
        """(rC, bronze, 0, 0): 2,675 / 6,661 / 32,500 min/yr at loads
        400 / 1000 / 5000 (quoted in EXPERIMENTS.md)."""
        from repro.core import TierDesign
        bronze = MechanismConfig(
            evaluator.infrastructure.mechanism("maintenanceA"),
            {"level": "bronze"})
        expectations = {400: 2675.0, 1000: 6661.0, 5000: 32500.0}
        for load, expected in expectations.items():
            option = evaluator.service.tier("application") \
                .option_for("rC")
            n_min = option.min_active_for(load)
            design = TierDesign("application", "rC", n_min, 0, (),
                                (bronze,))
            model = evaluator.tier_model(design, load)
            result = evaluator.engine.evaluate_tier(model)
            assert result.downtime_minutes == pytest.approx(
                expected, rel=0.01), load


class TestFig8Anchors:
    @pytest.fixture(scope="class")
    def req_map(self, evaluator):
        return build_requirement_map(
            evaluator, "application", loads=[400, 3200],
            limits=SearchLimits(max_redundancy=4))

    def test_baselines(self, req_map):
        assert req_map.baseline_cost(400) == pytest.approx(9440.0)
        assert req_map.baseline_cost(3200) == pytest.approx(75520.0)

    def test_extra_cost_at_one_minute(self, req_map):
        curve_400 = dict(req_map.extra_cost_curve(400, [1.0]))
        curve_3200 = dict(req_map.extra_cost_curve(3200, [1.0]))
        assert curve_400[1.0] == pytest.approx(5860.0)
        assert curve_3200[1.0] == pytest.approx(10280.0)


class TestFig7Anchors:
    def test_relaxed_end_of_sweep(self, paper_infra, scientific):
        """1000h requirement: rH x2, cpi at the 10-minute knee,
        $6,040/yr (quoted in EXPERIMENTS.md)."""
        from repro import JobRequirements
        from repro.core import JobSearch
        from repro.core.families import checkpoint_settings
        limits = SearchLimits(
            max_redundancy=12,
            fixed_settings={"maintenanceA": {"level": "bronze"},
                            "maintenanceB": {"level": "bronze"}})
        search = JobSearch(DesignEvaluator(paper_infra, scientific),
                           limits)
        best = search.best_design(JobRequirements(Duration.hours(1000)))
        tier = best.design.tiers[0]
        assert tier.resource == "rH"
        assert tier.n_active == 2
        assert best.annual_cost == pytest.approx(6040.0)
        config = checkpoint_settings(tier)
        assert config.settings["checkpoint_interval"].as_minutes == \
            pytest.approx(10.4, abs=0.6)
        assert config.settings["storage_location"] == "central"


class TestEngineAblationAnchors:
    def test_quoted_engine_comparison(self, evaluator, paper_infra):
        """rC x5 + 1 cold spare: markov 349, analytic 310 min/yr."""
        from repro.availability import AnalyticEngine, MarkovEngine
        from repro.core import TierDesign
        bronze = MechanismConfig(paper_infra.mechanism("maintenanceA"),
                                 {"level": "bronze"})
        design = TierDesign("application", "rC", 5, 1, (), (bronze,))
        model = evaluator.tier_model(design, 1000)
        markov = MarkovEngine().evaluate_tier(model)
        analytic = AnalyticEngine().evaluate_tier(model)
        assert markov.downtime_minutes == pytest.approx(349.0, abs=2)
        assert analytic.downtime_minutes == pytest.approx(310.0, abs=2)
