"""Golden snapshots of the paper-reproduction results.

Each test serializes a headline result -- Table 1 designs, Fig. 6/7
frontier points -- and compares it against a committed JSON fixture in
``tests/golden/``.  A mismatch fails with a unified diff; if the
change is intended (model fix, engine improvement), run
``pytest --update-golden`` and commit the rewritten fixture so the
shift is visible in review.
"""

import pytest

from repro.core import (Aved, DesignEvaluator, SearchLimits, TierSearch)
from repro.core.serialize import (evaluated_tier_design_to_dict,
                                  evaluation_to_dict)
from repro.model import JobRequirements, ServiceRequirements
from repro.units import Duration

SERVICE_REQ = ServiceRequirements(throughput=1000,
                                  max_annual_downtime=Duration.minutes(100))


def test_app_tier_design_snapshot(paper_infra, app_tier_service,
                                  golden):
    """The paper's first example: app tier, load 1000, 100 min/yr."""
    outcome = Aved(paper_infra, app_tier_service).design(SERVICE_REQ)
    golden.check("design_app_tier_load1000_100m",
                 evaluation_to_dict(outcome.evaluation))


def test_ecommerce_design_snapshot(paper_infra, ecommerce, golden):
    """Table 1's e-commerce row: all three tiers, load 1000, 100m."""
    outcome = Aved(paper_infra, ecommerce).design(SERVICE_REQ)
    golden.check("design_ecommerce_load1000_100m",
                 evaluation_to_dict(outcome.evaluation))


def test_ecommerce_design_snapshot_batched(paper_infra, ecommerce,
                                           golden):
    """The batched path must reproduce the *same committed fixture* as
    the scalar run -- byte-identical snapshots, not a parallel set of
    batched fixtures."""
    outcome = Aved(paper_infra, ecommerce, batch=True).design(SERVICE_REQ)
    golden.check("design_ecommerce_load1000_100m",
                 evaluation_to_dict(outcome.evaluation))


def test_app_tier_design_snapshot_batched(paper_infra,
                                          app_tier_service, golden):
    outcome = Aved(paper_infra, app_tier_service,
                   batch=True).design(SERVICE_REQ)
    golden.check("design_app_tier_load1000_100m",
                 evaluation_to_dict(outcome.evaluation))


def test_scientific_job_design_snapshot(paper_infra, scientific,
                                        golden):
    """Table 1's scientific row: 20h expected-completion budget."""
    outcome = Aved(paper_infra, scientific,
                   limits=SearchLimits(max_redundancy=4)) \
        .design(JobRequirements(Duration.hours(20)))
    golden.check("design_scientific_job20h",
                 evaluation_to_dict(outcome.evaluation))


def test_fig6_frontier_snapshot(paper_infra, app_tier_service, golden):
    """Fig. 6's cost/availability frontier for the app tier at 1000."""
    evaluator = DesignEvaluator(paper_infra, app_tier_service)
    search = TierSearch(evaluator, SearchLimits(max_redundancy=4))
    frontier = search.tier_frontier("application", 1000)
    golden.check("frontier_fig6_app_load1000",
                 [evaluated_tier_design_to_dict(entry)
                  for entry in frontier])


def test_fig7_job_cost_curve_snapshot(paper_infra, scientific, golden):
    """Fig. 7-style sweep: minimum cost vs job-time requirement."""
    limits = SearchLimits(
        max_redundancy=6,
        fixed_settings={"maintenanceA": {"level": "bronze"},
                        "maintenanceB": {"level": "bronze"}})
    engine = Aved(paper_infra, scientific, limits=limits)
    points = []
    for hours in (20.0, 100.0, 1000.0):
        outcome = engine.design(JobRequirements(Duration.hours(hours)))
        tier = outcome.design.tiers[0]
        points.append({
            "required_hours": hours,
            "resource": tier.resource,
            "n_active": tier.n_active,
            "n_spare": tier.n_spare,
            "annual_cost": outcome.annual_cost,
            "expected_hours":
                outcome.evaluation.job_time.expected_time.as_hours
                if outcome.evaluation.job_time.expected_time.is_finite()
                else None,
        })
    golden.check("frontier_fig7_scientific_job_curve", points)


def test_update_flag_writes_fixture(tmp_path, golden, monkeypatch):
    """The --update-golden path writes a diff-friendly file."""
    import json

    import tests.conftest as conftest_module
    monkeypatch.setattr(conftest_module, "GOLDEN_DIR", str(tmp_path))
    writer = conftest_module.GoldenComparator(update=True)
    writer.check("sample", {"b": 2.0, "a": 1.23456789123})
    text = (tmp_path / "sample.json").read_text()
    assert text.endswith("\n")
    data = json.loads(text)
    assert data == {"a": 1.2345679, "b": 2.0}  # 8 significant digits
    # and the comparing path accepts what the writing path produced
    reader = conftest_module.GoldenComparator(update=False)
    reader.check("sample", {"b": 2.0, "a": 1.23456789123})
    with pytest.raises(BaseException):
        reader.check("sample", {"b": 3.0, "a": 1.0})
