"""Multi-tier design integration: the full e-commerce service.

The paper's examples isolate single tiers; its engine, and ours,
handle the full three-tier service (web, application, database in
series).  These tests check the budget-allocation behavior the exact
combiner should exhibit.
"""

import pytest

from repro import Aved, Duration, SearchLimits, ServiceRequirements


@pytest.fixture(scope="module")
def engine(paper_infra, ecommerce):
    return Aved(paper_infra, ecommerce,
                limits=SearchLimits(max_redundancy=3))


@pytest.fixture(scope="module")
def relaxed(engine):
    return engine.design(ServiceRequirements(1000,
                                             Duration.minutes(2000)))


@pytest.fixture(scope="module")
def strict(engine):
    # The database tier (static single rG) has a hard floor of ~45
    # min/yr from restart-repaired soft failures that neither spares
    # nor contracts can reduce; ~100 min/yr is the practical edge of
    # the three-tier feasibility region.
    return engine.design(ServiceRequirements(1000,
                                             Duration.minutes(100)))


class TestStructure:
    def test_all_tiers_designed(self, relaxed):
        assert {t.tier for t in relaxed.design.tiers} == \
            {"web", "application", "database"}

    def test_database_always_rG_static_single(self, relaxed, strict):
        for outcome in (relaxed, strict):
            db = outcome.design.tier("database")
            assert db.resource == "rG"
            assert db.n_active == 1

    def test_web_and_app_use_machineA(self, relaxed):
        assert relaxed.design.tier("web").resource == "rA"
        assert relaxed.design.tier("application").resource in ("rC",
                                                               "rD")

    def test_series_requirement_met(self, relaxed, strict):
        assert relaxed.downtime_minutes <= 2000
        assert strict.downtime_minutes <= 100


class TestBudgetAllocation:
    def test_database_keeps_its_soft_failure_floor(self, engine,
                                                   strict):
        """The static single-node database has an irreducible soft-
        failure floor (~45 min/yr); the optimal split hands it (and the
        similarly-floored web tier) the budget instead of overpaying,
        and buys the database hard-failure protection."""
        evaluation = engine.evaluator.evaluate(
            strict.design, ServiceRequirements(1000,
                                               Duration.minutes(100)))
        downtimes = {t.name: t.downtime_minutes
                     for t in evaluation.availability.tiers}
        assert downtimes["database"] > downtimes["application"]
        assert downtimes["database"] > 30.0   # the soft floor remains
        db = strict.design.tier("database")
        level = db.mechanism_config("maintenanceB").settings["level"]
        assert db.n_spare >= 1 or level != "bronze"

    def test_tier_downtimes_sum_within_budget(self, engine, strict):
        evaluation = engine.evaluator.evaluate(
            strict.design, ServiceRequirements(1000,
                                               Duration.minutes(100)))
        total = sum(t.downtime_minutes
                    for t in evaluation.availability.tiers)
        # Series unavailability ~ sum of tier downtimes for small u.
        assert total == pytest.approx(evaluation.downtime_minutes,
                                      rel=0.01)
        assert total <= 100 * 1.01

    def test_strict_budget_costs_more(self, relaxed, strict):
        assert strict.annual_cost > relaxed.annual_cost

    def test_no_tier_grossly_overbuilt(self, engine, strict):
        """Optimality sanity: no single tier may be swappable for a
        cheaper frontier entry while keeping the series within budget."""
        from repro.core import TierSearch
        search = TierSearch(engine.evaluator,
                            SearchLimits(max_redundancy=3))
        evaluation = engine.evaluator.evaluate(
            strict.design, ServiceRequirements(1000,
                                               Duration.minutes(100)))
        tier_down = {t.name: t.unavailability
                     for t in evaluation.availability.tiers}
        for tier_design in strict.design.tiers:
            frontier = search.tier_frontier(tier_design.tier, 1000)
            current_cost = search.evaluator.tier_cost(tier_design).total
            others_up = 1.0
            for name, unavailability in tier_down.items():
                if name != tier_design.tier:
                    others_up *= 1.0 - unavailability
            budget = 1.0 - (1.0 - 100.0 / 525600.0) / others_up
            for candidate in frontier:
                if candidate.annual_cost < current_cost - 1e-6:
                    assert candidate.unavailability > budget, \
                        (tier_design.tier, candidate.design.describe())
