"""Integration: the full monitoring/refinement loop, statistically.

Plants a wrong declared MTBF, observes "production" (the simulator on
the true model), fits estimates, refines, and checks the loop actually
converges.  Also checks the confidence intervals are calibrated: over
many observation runs, ~95% of intervals should contain the truth.
"""

import pytest

from repro.availability import (FailureModeEntry, MarkovEngine,
                                TierAvailabilityModel,
                                estimates_from_simulation, refine_modes,
                                simulate_tier)
from repro.units import Duration


def make_model(linux_mtbf_days):
    """A family-1 shape (m = n) where the OS crash rate matters: every
    soft failure is downtime, so a 4x error in the declared linux MTBF
    moves the downtime estimate by hundreds of minutes per year."""
    modes = (
        FailureModeEntry("machineA.hard", Duration.days(650),
                         Duration.hours(2), Duration.minutes(6.5)),
        FailureModeEntry("linux.soft", Duration.days(linux_mtbf_days),
                         Duration.minutes(4), Duration.minutes(6.5)),
    )
    return TierAvailabilityModel("app", n=5, m=5, s=0, modes=modes)


class TestRefinementLoop:
    def test_loop_converges_toward_truth(self):
        truth = make_model(linux_mtbf_days=15.0)
        declared = make_model(linux_mtbf_days=60.0)
        observed = simulate_tier(truth, years=40, seed=7)
        estimates = estimates_from_simulation(truth, observed)
        refined = refine_modes(declared, estimates)

        engine = MarkovEngine()
        truth_minutes = engine.evaluate_tier(truth).downtime_minutes
        declared_minutes = engine.evaluate_tier(
            declared).downtime_minutes
        refined_minutes = engine.evaluate_tier(refined).downtime_minutes
        assert abs(refined_minutes - truth_minutes) < \
            abs(declared_minutes - truth_minutes)

    def test_refined_mtbf_close_to_truth(self):
        truth = make_model(linux_mtbf_days=15.0)
        observed = simulate_tier(truth, years=60, seed=11)
        estimates = estimates_from_simulation(truth, observed)
        estimate = estimates["linux.soft"]
        assert estimate.mtbf.as_days == pytest.approx(15.0, rel=0.1)

    def test_confidence_interval_calibration(self):
        """Over 24 independent observation runs, the 95% CI should
        contain the true MTBF in at least ~80% of runs (binomial slack
        for the small sample)."""
        truth = make_model(linux_mtbf_days=15.0)
        hits = 0
        runs = 24
        for seed in range(runs):
            observed = simulate_tier(truth, years=3, seed=1000 + seed)
            estimates = estimates_from_simulation(truth, observed)
            if estimates["linux.soft"].contains(Duration.days(15.0)):
                hits += 1
        assert hits >= int(0.8 * runs), hits

    def test_more_observation_tightens_the_refinement(self):
        truth = make_model(linux_mtbf_days=15.0)
        short = estimates_from_simulation(
            truth, simulate_tier(truth, years=2, seed=3))["linux.soft"]
        long = estimates_from_simulation(
            truth, simulate_tier(truth, years=80, seed=3))["linux.soft"]

        def rel_width(estimate):
            return ((estimate.upper - estimate.lower)
                    / estimate.mtbf)

        assert rel_width(long) < rel_width(short)
