"""End-to-end integration: spec text -> models -> search -> evaluation.

Builds a synthetic scenario entirely from specification documents (the
way a user of the library would) and drives the full Aved loop on it.
"""

import pytest

from repro import (Aved, Duration, InfeasibleError, JobRequirements,
                   SearchLimits, ServiceRequirements)
from repro.spec import parse_infrastructure, parse_service

INFRA = """
\\\\ A two-platform shop: cheap pizza boxes and a big SMP.
component=pizzabox cost([inactive,active])=[900 1000]
 failure=hard mtbf=400d mttr=<support> detect_time=1m
 failure=glitch mtbf=40d mttr=0 detect_time=0
component=bigbox cost([inactive,active])=[28000 30000]
 failure=hard mtbf=800d mttr=<support> detect_time=1m
 failure=glitch mtbf=80d mttr=0 detect_time=0
component=os cost=0
 failure=crash mtbf=50d mttr=0 detect_time=0
component=server cost([inactive,active])=[0 500]
 failure=crash mtbf=45d mttr=0 detect_time=0
component=batch cost=0 loss_window=<snap>
 failure=crash mtbf=45d mttr=0 detect_time=0

mechanism=support
 param=level range=[slow,fast]
 cost(level)=[200 800]
 mttr(level)=[48h 8h]
mechanism=snap
 param=interval range=[1m-8h;*1.25]
 cost=0
 loss_window=interval

resource=small reconfig_time=10s
 component=pizzabox depend=null startup=1m
 component=os depend=pizzabox startup=2m
 component=server depend=os startup=30s
resource=big reconfig_time=10s
 component=bigbox depend=null startup=2m
 component=os depend=bigbox startup=3m
 component=server depend=os startup=30s
resource=smallbatch reconfig_time=10s
 component=pizzabox depend=null startup=1m
 component=os depend=pizzabox startup=2m
 component=batch depend=os startup=10s
"""

WEB_SERVICE = """
application=webshop
tier=frontend
 resource=small sizing=dynamic failurescope=resource
  nActive=[1-200,+1] performance=expr:50*n
 resource=big sizing=dynamic failurescope=resource
  nActive=[1-50,+1] performance=expr:900*n
"""

BATCH_SERVICE = """
application=render jobsize=5000
tier=farm
 resource=smallbatch sizing=static failurescope=tier
  nActive=[1-300,+1] performance=expr:(20*n)/(1+0.01*n)
  mechanism=snap mperformance(interval,n)=snapcost.dat
"""


@pytest.fixture(scope="module")
def infra():
    return parse_infrastructure(INFRA)


@pytest.fixture(scope="module")
def web_service():
    return parse_service(WEB_SERVICE)


@pytest.fixture(scope="module")
def batch_service():
    from repro.spec import DictResolver
    resolver = DictResolver(overhead={"snapcost.dat": _flat_overhead()})
    return parse_service(BATCH_SERVICE, resolver)


def _flat_overhead():
    from repro.expr import Expression
    from repro.model import OverheadModel
    from repro.units import Duration

    class _SnapOverhead(OverheadModel):
        expression = Expression("max(5/cpi, 100%)")

        def factor(self, settings, n_active):
            cpi = Duration.parse(settings["interval"]).as_minutes
            return self.expression(cpi=cpi)

    return _SnapOverhead()


class TestWebServiceDesign:
    def test_low_load_prefers_small_boxes(self, infra, web_service):
        engine = Aved(infra, web_service,
                      limits=SearchLimits(max_redundancy=4))
        outcome = engine.design(ServiceRequirements(
            200, Duration.minutes(200)))
        assert outcome.design.tiers[0].resource == "small"
        assert outcome.downtime_minutes <= 200

    def test_big_box_cost_effective_at_scale(self, infra, web_service):
        """900 units for $30.5-31.3k vs 18 small boxes at ~$27k: small
        still wins on raw cost, but the crossover logic must at least
        consider both; verify the engine returns the cheaper one."""
        engine = Aved(infra, web_service,
                      limits=SearchLimits(max_redundancy=4))
        outcome = engine.design(ServiceRequirements(
            900, Duration.minutes(500)))
        evaluator = engine.evaluator
        assert outcome.design.tiers[0].resource in ("small", "big")
        # Whichever was chosen, no candidate of the other type on the
        # frontier may be both cheaper and at least as available.
        from repro.core import TierSearch
        search = TierSearch(evaluator, SearchLimits(max_redundancy=4))
        frontier = search.tier_frontier("frontend", 900)
        chosen_cost = outcome.annual_cost
        for candidate in frontier:
            if candidate.downtime_minutes <= 500:
                assert candidate.annual_cost >= chosen_cost - 1e-6

    def test_fast_support_or_redundancy(self, infra, web_service):
        """Tight downtime must buy either the fast contract or extra
        machines; either way cost exceeds the loose design."""
        engine = Aved(infra, web_service,
                      limits=SearchLimits(max_redundancy=4))
        loose = engine.design(ServiceRequirements(
            200, Duration.minutes(2000)))
        tight = engine.design(ServiceRequirements(
            200, Duration.minutes(20)))
        assert tight.annual_cost > loose.annual_cost

    def test_impossible_requirement(self, infra, web_service):
        engine = Aved(infra, web_service,
                      limits=SearchLimits(max_redundancy=1))
        with pytest.raises(InfeasibleError):
            engine.design(ServiceRequirements(
                200, Duration.seconds(0.001)))


class TestBatchServiceDesign:
    def test_job_design_end_to_end(self, infra, batch_service):
        limits = SearchLimits(
            max_redundancy=6,
            fixed_settings={"support": {"level": "slow"}})
        engine = Aved(infra, batch_service, limits=limits)
        outcome = engine.design(JobRequirements(Duration.hours(30)))
        tier = outcome.design.tiers[0]
        assert tier.resource == "smallbatch"
        assert outcome.evaluation.job_time.expected_time <= \
            Duration.hours(30)
        snap = tier.mechanism_config("snap")
        assert Duration.minutes(1) <= snap.settings["interval"] \
            <= Duration.hours(8)

    def test_snapshot_interval_near_overhead_knee(self, infra,
                                                  batch_service):
        """The flat-knee overhead (5/cpi saturating at 1) plus Eq. 1
        losses puts the optimal interval at or near 5 minutes."""
        limits = SearchLimits(
            max_redundancy=6,
            fixed_settings={"support": {"level": "slow"}})
        engine = Aved(infra, batch_service, limits=limits)
        outcome = engine.design(JobRequirements(Duration.hours(100)))
        snap = outcome.design.tiers[0].mechanism_config("snap")
        assert 3.0 <= snap.settings["interval"].as_minutes <= 12.0
