"""Cross-engine integration: Markov vs simulation on generated designs.

The Markov engine makes two approximations the simulator does not:
failure-mode decomposition and chain truncation.  These tests generate
tier models through the *real* evaluator pipeline (paper components,
derived MTTRs/failover times) and require the engines to agree.
"""

import pytest

from repro.availability import MarkovEngine, simulate_tier
from repro.core import DesignEvaluator, TierDesign
from repro.model import MechanismConfig


def bronze(infra, mech="maintenanceA"):
    return MechanismConfig(infra.mechanism(mech), {"level": "bronze"})


def gold(infra, mech="maintenanceA"):
    return MechanismConfig(infra.mechanism(mech), {"level": "gold"})


def agreement(model, years, seed=1234, rel=0.15):
    markov = MarkovEngine().evaluate_tier(model)
    sim = simulate_tier(model, years=years, seed=seed)
    tolerance = max(markov.unavailability * rel,
                    2.5 * sim.ci_halfwidth, 2e-7)
    assert abs(markov.unavailability - sim.tier.unavailability) \
        <= tolerance, (markov.unavailability, sim.tier.unavailability,
                       sim.ci_halfwidth)


class TestAppTierDesigns:
    @pytest.fixture
    def evaluator(self, paper_infra, app_tier_service):
        return DesignEvaluator(paper_infra, app_tier_service)

    def test_family1_no_redundancy(self, evaluator, paper_infra):
        design = TierDesign("application", "rC", 5, 0, (),
                            (bronze(paper_infra),))
        agreement(evaluator.tier_model(design, 1000), years=2000)

    def test_family6_cold_spare(self, evaluator, paper_infra):
        design = TierDesign("application", "rC", 5, 1, (),
                            (bronze(paper_infra),))
        agreement(evaluator.tier_model(design, 1000), years=3000)

    def test_family9_extra_active(self, evaluator, paper_infra):
        design = TierDesign("application", "rC", 6, 0, (),
                            (bronze(paper_infra),))
        agreement(evaluator.tier_model(design, 1000), years=6000,
                  rel=0.25)

    def test_gold_contract(self, evaluator, paper_infra):
        design = TierDesign("application", "rC", 5, 0, (),
                            (gold(paper_infra),))
        agreement(evaluator.tier_model(design, 1000), years=2000)

    def test_warm_spare(self, evaluator, paper_infra):
        design = TierDesign("application", "rC", 5, 1,
                            ("machineA", "linux"), (bronze(paper_infra),))
        agreement(evaluator.tier_model(design, 1000), years=3000)

    def test_appserverB_resource(self, evaluator, paper_infra):
        # m = 6 at load 1200, so single failover windows are visible
        # downtime (a 6+1 design at load 1000 only goes down on triple
        # overlaps -- far too rare to resolve by simulation).
        design = TierDesign("application", "rD", 6, 1, (),
                            (bronze(paper_infra),))
        agreement(evaluator.tier_model(design, 1200), years=3000)


class TestComputeTierDesigns:
    @pytest.fixture
    def evaluator(self, paper_infra, scientific):
        return DesignEvaluator(paper_infra, scientific)

    def test_small_compute_cluster(self, evaluator, paper_infra):
        design = TierDesign("computation", "rH", 8, 0, (),
                            (bronze(paper_infra),))
        agreement(evaluator.tier_model(design), years=1500)

    def test_compute_cluster_with_spares(self, evaluator, paper_infra):
        design = TierDesign("computation", "rH", 30, 2, (),
                            (bronze(paper_infra),))
        agreement(evaluator.tier_model(design), years=1000)

    def test_machineb_cluster(self, evaluator, paper_infra):
        design = TierDesign("computation", "rI", 12, 1, (),
                            (bronze(paper_infra, "maintenanceB"),))
        agreement(evaluator.tier_model(design), years=1500)
