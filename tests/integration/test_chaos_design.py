"""Chaos suite: graceful degradation end-to-end through Aved.design().

These tests inject faults into the Markov engine by seeded schedule
and prove the acceptance properties of the resilience runtime: a
design run with 30% injected faults still returns the fault-free
design (with every fallback recorded), and a search killed mid-run
resumes from its checkpoint to the same minimum-cost design.
"""

import pytest

from repro.availability import AnalyticEngine, MarkovEngine
from repro.core import Aved
from repro.errors import EvaluationError
from repro.model import ServiceRequirements
from repro.parallel import ParallelEvaluationRuntime, ParallelPolicy
from repro.resilience import (ChaosEngine, FallbackEngine, FallbackPolicy,
                              FaultPlan, SearchCheckpoint,
                              WorkerFaultPlan)
from repro.units import Duration


REQUIREMENTS = ServiceRequirements(1000, Duration.minutes(100))


def chaotic_markov(plan):
    """A Markov engine with injected faults, distinct breaker identity."""
    engine = ChaosEngine(MarkovEngine(), plan)
    engine.name = "chaos-markov"
    return engine


@pytest.fixture(scope="module")
def fault_free(paper_infra, ecommerce):
    return Aved(paper_infra, ecommerce).design(REQUIREMENTS)


class TestThirtyPercentFaults:
    def test_degraded_chain_reproduces_fault_free_design(
            self, paper_infra, ecommerce, fault_free):
        """The paper's e-commerce service, 30% Markov faults, analytic
        fallback: same design as the fault-free run."""
        chaos = chaotic_markov(FaultPlan(seed=1, error_rate=0.3))
        engine = FallbackEngine(
            engines=[chaos, AnalyticEngine()],
            policy=FallbackPolicy(backoff_base=0.0))
        outcome = Aved(paper_infra, ecommerce,
                       availability_engine=engine).design(REQUIREMENTS)
        assert outcome.evaluation.design.describe() == \
            fault_free.evaluation.design.describe()
        assert outcome.annual_cost == fault_free.annual_cost
        assert outcome.downtime_minutes == pytest.approx(
            fault_free.downtime_minutes, rel=0.02)
        assert chaos.injected["error"] > 0

    def test_every_fallback_is_recorded(self, paper_infra, ecommerce):
        chaos = chaotic_markov(FaultPlan(seed=1, error_rate=0.3))
        engine = FallbackEngine(
            engines=[chaos, AnalyticEngine()],
            policy=FallbackPolicy(backoff_base=0.0))
        outcome = Aved(paper_infra, ecommerce,
                       availability_engine=engine).design(REQUIREMENTS)
        assert outcome.degraded
        report = outcome.degradation
        fallbacks = [d for d in report if d.code == "AVD301"]
        assert fallbacks
        for diagnostic in fallbacks:
            # Cause and engine identity on every record.
            assert "fell back from" in diagnostic.message
            assert "engine" in diagnostic.context
        assert any(d.code == "AVD303" for d in report)  # retries too
        # The final evaluation names the engine that answered per tier.
        engines = dict(outcome.evaluation.engines_used())
        assert set(engines) == {"web", "application", "database"}
        assert set(engines.values()) <= {"chaos-markov", "analytic"}
        assert "degradation:" in outcome.summary()

    @pytest.mark.parametrize("seed", [2, 5])
    def test_markov_replica_fallback_is_exact(self, paper_infra,
                                              ecommerce, fault_free,
                                              seed):
        """With an equal-fidelity replica as fallback, any injection
        schedule yields the exact fault-free result."""
        chaos = chaotic_markov(FaultPlan(seed=seed, error_rate=0.3))
        engine = FallbackEngine(
            engines=[chaos, MarkovEngine()],
            policy=FallbackPolicy(backoff_base=0.0))
        outcome = Aved(paper_infra, ecommerce,
                       availability_engine=engine).design(REQUIREMENTS)
        assert outcome.evaluation.design.describe() == \
            fault_free.evaluation.design.describe()
        assert outcome.annual_cost == fault_free.annual_cost
        assert outcome.downtime_minutes == pytest.approx(
            fault_free.downtime_minutes, rel=1e-12)

    def test_garbage_injection_is_caught(self, paper_infra,
                                         app_tier_service):
        """NaN/out-of-range results never reach the search."""
        chaos = chaotic_markov(FaultPlan(seed=3, nan_rate=0.2,
                                         garbage_rate=0.1))
        engine = FallbackEngine(
            engines=[chaos, MarkovEngine()],
            policy=FallbackPolicy(backoff_base=0.0))
        outcome = Aved(paper_infra, app_tier_service,
                       availability_engine=engine).design(REQUIREMENTS)
        assert 0 <= outcome.downtime_minutes <= 100
        assert chaos.injected.get("nan", 0) \
            + chaos.injected.get("garbage", 0) > 0
        assert any(d.code == "AVD305" for d in outcome.degradation)


def _supervised(paper_infra, service, worker_plan, jobs=2,
                task_retries=2):
    """An Aved over a supervised runtime with process faults injected."""
    engine = Aved(paper_infra, service)
    runtime = ParallelEvaluationRuntime(
        engine.evaluator.engine, jobs=jobs, worker_plan=worker_plan,
        policy=ParallelPolicy(task_retries=task_retries,
                              backoff=FallbackPolicy(backoff_base=0.0)))
    return Aved(paper_infra, service, parallel=runtime), runtime


class TestWorkerCrashFaults:
    """Process-level chaos: workers die or hang, the search survives."""

    def test_thirty_percent_worker_crashes_reproduce_design(
            self, paper_infra, ecommerce, fault_free):
        """30% of submissions crash their worker (each task at most
        once): the search completes to the fault-free design, with
        every crash and pool restart on the record."""
        plan = WorkerFaultPlan(seed=7, fault_rate=0.3,
                               max_faults_per_task=1)
        engine, runtime = _supervised(paper_infra, ecommerce, plan)
        try:
            outcome = engine.design(REQUIREMENTS)
        finally:
            runtime.close()
        assert outcome.evaluation.design.describe() == \
            fault_free.evaluation.design.describe()
        assert outcome.annual_cost == fault_free.annual_cost
        assert outcome.stats.quarantined == 0
        assert outcome.degraded
        codes = {d.code for d in outcome.degradation}
        assert "AVD403" in codes  # worker crashes observed
        assert "AVD405" in codes  # pool restarted each time
        assert "AVD402" not in codes  # ...but nobody falsely convicted

    def test_poison_candidates_are_quarantined_not_fatal(
            self, paper_infra, ecommerce):
        """Two candidates crash their worker on every attempt: the
        search quarantines them (AVD402) and still completes."""
        plan = WorkerFaultPlan(seed=3, poison_tasks=(5, 17),
                               poison_mode="crash")
        engine, runtime = _supervised(paper_infra, ecommerce, plan,
                                      task_retries=1)
        try:
            outcome = engine.design(REQUIREMENTS)
        finally:
            runtime.close()
        assert len(runtime.quarantine) == 2
        assert outcome.stats.quarantined == 2
        quarantines = [d for d in outcome.degradation
                       if d.code == "AVD402"]
        assert len(quarantines) == 2
        for diagnostic in quarantines:
            assert "worker process crashed" in diagnostic.message
        assert "AVD402" in outcome.summary()

    def test_hanging_worker_is_timed_out(self, paper_infra,
                                         app_tier_service):
        """A candidate whose solve hangs forever is killed by the
        task timeout and quarantined; everything else completes."""
        plan = WorkerFaultPlan(seed=1, poison_tasks=(2,),
                               poison_mode="hang", hang_seconds=60.0)
        engine = Aved(paper_infra, app_tier_service)
        runtime = ParallelEvaluationRuntime(
            engine.evaluator.engine, jobs=2, worker_plan=plan,
            policy=ParallelPolicy(
                task_retries=0, task_timeout=0.5,
                backoff=FallbackPolicy(backoff_base=0.0)))
        supervised = Aved(paper_infra, app_tier_service,
                          parallel=runtime)
        try:
            outcome = supervised.design(REQUIREMENTS)
        finally:
            runtime.close()
        assert outcome.stats.quarantined >= 1
        codes = {d.code for d in outcome.degradation}
        assert "AVD404" in codes
        assert "AVD402" in codes


class TestWorkerCrashFaultsBatched:
    """The same process chaos with the vectorized batch transport on
    (candidates ride to workers in shape chunks).  The fine-grained
    chunk-fault battery lives in tests/batch/test_chunk_faults.py;
    this leg keeps the end-to-end chaos claim honest in both modes."""

    def test_thirty_percent_worker_crashes_reproduce_design(
            self, paper_infra, ecommerce, fault_free):
        plan = WorkerFaultPlan(seed=7, fault_rate=0.3,
                               max_faults_per_task=1)
        engine = Aved(paper_infra, ecommerce)
        runtime = ParallelEvaluationRuntime(
            engine.evaluator.engine, jobs=2, worker_plan=plan,
            policy=ParallelPolicy(
                task_retries=2,
                backoff=FallbackPolicy(backoff_base=0.0)))
        batched = Aved(paper_infra, ecommerce, parallel=runtime,
                       batch=True)
        try:
            outcome = batched.design(REQUIREMENTS)
        finally:
            runtime.close()
        assert outcome.evaluation.design.describe() == \
            fault_free.evaluation.design.describe()
        assert outcome.annual_cost == fault_free.annual_cost
        assert outcome.stats.quarantined == 0
        codes = {d.code for d in outcome.degradation}
        assert "AVD403" in codes
        assert "AVD402" not in codes


class TestCheckpointResume:
    def test_killed_search_resumes_to_same_design(
            self, tmp_path, paper_infra, app_tier_service):
        path = str(tmp_path / "search.json")
        baseline = Aved(paper_infra,
                        app_tier_service).design(REQUIREMENTS)
        total_solves = baseline.stats.availability_evaluations

        # Run 1: the engine dies for good after 15 evaluations.
        dying = FallbackEngine(
            engines=[chaotic_markov(FaultPlan(fail_after=15))],
            policy=FallbackPolicy(max_retries=0, backoff_base=0.0))
        crashed = Aved(paper_infra, app_tier_service,
                       availability_engine=dying,
                       checkpoint=SearchCheckpoint(path, interval=5))
        with pytest.raises(EvaluationError):
            crashed.design(REQUIREMENTS)

        # The checkpoint survived the crash with the completed solves.
        loaded = SearchCheckpoint.load(path)
        assert loaded.resumed
        assert loaded.resumed_evaluations == 15

        # Run 2: resume with a healthy engine; prior solves replay.
        resumed = Aved(paper_infra, app_tier_service,
                       checkpoint=loaded).design(REQUIREMENTS)
        assert resumed.stats.resumed_evaluations == 15
        assert resumed.stats.availability_evaluations == \
            total_solves - 15
        assert resumed.annual_cost == baseline.annual_cost
        assert resumed.evaluation.design.describe() == \
            baseline.evaluation.design.describe()
        assert any(d.code == "AVD308" for d in resumed.degradation)
        assert "resumed from checkpoint" in resumed.summary()

    def test_completed_run_resumes_without_solves(
            self, tmp_path, paper_infra, ecommerce):
        path = str(tmp_path / "search.json")
        first = Aved(paper_infra, ecommerce,
                     checkpoint=SearchCheckpoint(path)) \
            .design(REQUIREMENTS)
        second = Aved(paper_infra, ecommerce,
                      checkpoint=SearchCheckpoint.load(path)) \
            .design(REQUIREMENTS)
        assert second.stats.availability_evaluations == 0
        assert second.stats.resumed_frontiers == 3
        assert second.annual_cost == first.annual_cost
