"""Integration tests pinning the paper's reported example behavior.

Each test corresponds to a claim made in section 5 of the paper about
Fig. 6, Fig. 7, or Fig. 8.  Where the paper gives a number (family 9's
~50 minutes at load 1000) we check it quantitatively; where it gives a
trend (machineB never selected; checkpoint storage flips to peer at
large n) we check the trend.
"""

import pytest

from repro import (Aved, Duration, JobRequirements, SearchLimits,
                   ServiceRequirements)
from repro.core import (DesignEvaluator, JobSearch, TierSearch,
                        build_requirement_map)
from repro.core.families import DesignFamily, checkpoint_settings


@pytest.fixture(scope="module")
def app_map(paper_infra, app_tier_service):
    evaluator = DesignEvaluator(paper_infra, app_tier_service)
    return build_requirement_map(
        evaluator, "application",
        loads=[400, 800, 1600, 3200],
        limits=SearchLimits(max_redundancy=4))


@pytest.fixture(scope="module")
def job_searcher(paper_infra, scientific):
    limits = SearchLimits(
        max_redundancy=12,
        fixed_settings={"maintenanceA": {"level": "bronze"},
                        "maintenanceB": {"level": "bronze"}})
    return JobSearch(DesignEvaluator(paper_infra, scientific), limits)


class TestFig6Claims:
    def test_family9_downtime_about_50min_at_load_1000(
            self, paper_infra, app_tier_service):
        """Paper: "for a requirement (load = 1000, downtime = 100) ...
        the optimal design family (number 9) ... has downtime of
        approximately 50 minutes." """
        engine = Aved(paper_infra, app_tier_service)
        outcome = engine.design(ServiceRequirements(
            1000, Duration.minutes(100)))
        family = (outcome.design.tiers[0].resource,
                  outcome.design.tiers[0].mechanism_config("maintenanceA")
                  .settings["level"],
                  outcome.design.tiers[0].n_active - 5,
                  outcome.design.tiers[0].n_spare)
        assert family == ("rC", "bronze", 1, 0)
        assert outcome.downtime_minutes == pytest.approx(50, abs=10)

    def test_machineB_never_on_cheap_frontier(self, app_map):
        """Paper: "the more powerful machineB is never selected"
        (linear scalability + worse cost/performance).  machineB
        families may appear deep in the over-provisioned tail but never
        as the optimal choice for the paper's requirement range."""
        for load in app_map.loads:
            for minutes in (10000, 1000, 100, 10, 1, 0.1):
                point = app_map.optimal_for(load,
                                            Duration.minutes(minutes))
                if point is not None:
                    assert point.family.resource in ("rC", "rD"), \
                        (load, minutes, point.family)

    def test_family_downtime_increases_with_load(self, app_map):
        """Paper: "the downtime estimated for a particular design
        family increases with load." """
        curves = app_map.family_curves()
        checked = 0
        for family, points in curves.items():
            if len(points) >= 3:
                downtimes = [d for _, d in sorted(points)]
                # Allow tiny numerical jitter on near-zero values.
                for a, b in zip(downtimes, downtimes[1:]):
                    assert b >= a * 0.99 - 1e-9, (family, points)
                checked += 1
        assert checked >= 3

    def test_gold_contract_displaced_by_extra_resource_at_high_load(
            self, app_map):
        """Paper: family 3 (gold, 0, 0) is not selected above ~1400
        load units; family 6 (bronze, 0, 1) replaces it: contract cost
        scales with machine count while a spare is one machine."""
        gold = DesignFamily("rC", "gold", 0, 0)
        families_low = {p.family for p in app_map.at_load(400)}
        families_high = {p.family for p in app_map.at_load(3200)}
        assert gold in families_low
        assert gold not in families_high
        assert DesignFamily("rC", "bronze", 0, 1) in families_high

    def test_number_of_optimal_families_is_large(self, app_map):
        """Paper: "the number of optimal solutions distributed across
        the requirements space is large" (17 families in Fig. 6)."""
        assert len(app_map.family_curves()) >= 10


class TestFig7Claims:
    @pytest.fixture(scope="class")
    def sweep(self, job_searcher):
        results = {}
        for hours in (2, 5, 20, 100, 500, 1000):
            best = job_searcher.best_design(
                JobRequirements(Duration.hours(hours)))
            assert best is not None, hours
            results[hours] = best
        return results

    def test_resource_type_crossover(self, sweep):
        """Paper: machineB at low execution times, machineA when more
        time is tolerated."""
        assert sweep[2].design.tiers[0].resource == "rI"
        assert sweep[5].design.tiers[0].resource == "rI"
        assert sweep[500].design.tiers[0].resource == "rH"
        assert sweep[1000].design.tiers[0].resource == "rH"

    def test_resource_count_decreases_with_relaxed_deadline(self, sweep):
        """Paper: "for the same resource type the number of resources
        decreases as the user tolerates a longer execution time." """
        rh_counts = [(h, e.design.tiers[0].n_active)
                     for h, e in sweep.items()
                     if e.design.tiers[0].resource == "rH"]
        rh_counts.sort()
        counts = [n for _, n in rh_counts]
        assert counts == sorted(counts, reverse=True)

    def test_spares_grow_with_resource_count(self, sweep):
        """Paper: "the number of spare resources increases as the
        number of total resources increases." """
        by_n = sorted((e.design.tiers[0].n_active,
                       e.design.tiers[0].n_spare)
                      for e in sweep.values())
        smallest_spares = by_n[0][1]
        largest_spares = by_n[-1][1]
        assert largest_spares >= smallest_spares
        assert largest_spares >= 1

    def test_designs_meet_their_requirements(self, sweep):
        for hours, evaluation in sweep.items():
            assert evaluation.job_time.expected_time <= \
                Duration.hours(hours)

    def test_storage_location_flips_to_peer_at_large_n(self, sweep,
                                                       job_searcher):
        """Paper: central storage for few nodes, peer for many.  With
        Table 1's numbers the flip for rH sits near n=60 (central
        overhead n/3 exceeds peer's 20)."""
        locations = {}
        for hours, evaluation in sweep.items():
            tier = evaluation.design.tiers[0]
            config = checkpoint_settings(tier)
            locations[tier.n_active, tier.resource] = \
                config.settings["storage_location"]
        small_n = [loc for (n, r), loc in locations.items() if n < 30]
        large_rh = [loc for (n, r), loc in locations.items()
                    if n > 60 and r == "rH"]
        assert all(loc == "central" for loc in small_n)
        assert all(loc == "peer" for loc in large_rh)

    def test_cost_increases_as_deadline_tightens(self, sweep):
        ordered = sorted(sweep.items())  # ascending hours
        costs = [e.annual_cost for _, e in ordered]
        assert costs == sorted(costs, reverse=True)


class TestFig8Claims:
    def test_extra_cost_curves(self, app_map):
        """Fig. 8's shape: extra cost is non-increasing in allowed
        downtime, and higher loads pay more for the same downtime."""
        grid = [1000, 100, 10, 1]
        curves = {load: dict(app_map.extra_cost_curve(load, grid))
                  for load in (400, 1600, 3200)}
        for load, curve in curves.items():
            values = [curve[d] for d in grid if curve[d] is not None]
            assert values == sorted(values), load
        # At a tight 1-minute requirement the 3200-load system needs
        # more extra spend than the 400-load system.
        assert curves[3200][1] > curves[400][1]

    def test_large_downtime_requirement_costs_nothing_extra(self,
                                                            app_map):
        curve = dict(app_map.extra_cost_curve(800, [50000]))
        assert curve[50000] == pytest.approx(0.0)
