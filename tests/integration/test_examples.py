"""Every example script must run clean: examples are executable docs.

Each example's ``main()`` is imported and executed with stdout
captured; a broken public API surfaces here before a user hits it.
"""

import importlib.util
import io
import os
import sys
from contextlib import redirect_stdout

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), os.pardir,
                            os.pardir, "examples")

EXPECTATIONS = {
    "quickstart": ["rC x6", "$28,320", "tightening"],
    "staffing_study": ["crew", "optimal design", "technician"],
    "ecommerce_app_tier": ["Pareto frontier", "families:",
                           "requirement points where machineB is optimal: 0"],
    "scientific_checkpoint": ["rI", "rH", "central"],
    "tradeoff_explorer": ["extra annual cost", "baseline"],
    "custom_infrastructure": ["api_node", "snapshot every",
                              "engine ablation"],
    "utility_computing": ["redesign points", "downtime budget",
                          "sensitivity"],
    "model_refinement": ["declared model", "refined model",
                         "optimal design under"],
}


def run_example(name):
    path = os.path.join(EXAMPLES_DIR, name + ".py")
    spec = importlib.util.spec_from_file_location(
        "example_" + name, path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    buffer = io.StringIO()
    with redirect_stdout(buffer):
        module.main()
    return buffer.getvalue()


@pytest.mark.parametrize("name", sorted(EXPECTATIONS))
def test_example_runs_and_produces_expected_output(name):
    output = run_example(name)
    assert len(output) > 100, "example %s produced no output" % name
    for marker in EXPECTATIONS[name]:
        assert marker in output, (name, marker)


def test_every_example_file_is_covered():
    present = {fname[:-3] for fname in os.listdir(EXAMPLES_DIR)
               if fname.endswith(".py")}
    assert present == set(EXPECTATIONS), \
        "update EXPECTATIONS when adding/removing examples"
