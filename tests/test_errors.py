"""Tests for the exception hierarchy and error message formatting."""

import pytest

from repro.errors import (AvedError, EvaluationError, ExpressionError,
                          InfeasibleError, ModelError, SearchError,
                          SpecError, UnitError)


class TestHierarchy:
    @pytest.mark.parametrize("exc_cls", [
        UnitError, ExpressionError, SpecError, ModelError,
        EvaluationError, SearchError, InfeasibleError,
    ])
    def test_all_derive_from_aved_error(self, exc_cls):
        assert issubclass(exc_cls, AvedError)

    def test_unit_error_is_value_error(self):
        assert issubclass(UnitError, ValueError)
        with pytest.raises(ValueError):
            raise UnitError("bad")

    def test_infeasible_is_search_error(self):
        assert issubclass(InfeasibleError, SearchError)


class TestMessageFormatting:
    def test_expression_error_position(self):
        error = ExpressionError("boom", source="1 + + 2", position=4)
        assert "position 4" in str(error)
        assert "1 + + 2" in str(error)

    def test_expression_error_without_source(self):
        assert str(ExpressionError("boom")) == "boom"

    def test_spec_error_line_number(self):
        error = SpecError("bad key", line=17)
        assert str(error).startswith("line 17:")
        assert error.line == 17

    def test_spec_error_without_line(self):
        error = SpecError("bad key")
        assert str(error) == "bad key"
        assert error.line == -1

    def test_infeasible_carries_diagnostic(self):
        marker = object()
        error = InfeasibleError("nope", best_infeasible=marker)
        assert error.best_infeasible is marker

    def test_one_catch_all(self):
        """Library callers can wrap any entry point in one except."""
        from repro.units import Duration
        with pytest.raises(AvedError):
            Duration.parse("not-a-duration")
        from repro.expr import Expression
        with pytest.raises(AvedError):
            Expression("max(")
        from repro.spec import parse_infrastructure
        with pytest.raises(AvedError):
            parse_infrastructure("failure=orphan mtbf=1d mttr=0")
