"""Tests for MTBF/MTTR estimation from observed operation."""

import pytest

from repro.availability import (FailureModeEntry, MarkovEngine,
                                TierAvailabilityModel, estimate_mtbf,
                                estimate_mttr,
                                estimates_from_simulation, refine_modes,
                                simulate_tier)
from repro.errors import EvaluationError
from repro.units import Duration


def model_with(mtbf_days_hard=100.0, mtbf_days_soft=10.0, n=4, s=1):
    modes = (
        FailureModeEntry("hard", Duration.days(mtbf_days_hard),
                         Duration.hours(10), Duration.minutes(5)),
        FailureModeEntry("soft", Duration.days(mtbf_days_soft),
                         Duration.minutes(3), Duration.minutes(5)),
    )
    return TierAvailabilityModel("t", n=n, m=n, s=s, modes=modes)


class TestEstimateMtbf:
    def test_point_estimate(self):
        estimate = estimate_mtbf("m", failures=100,
                                 exposure_hours=240_000.0)
        assert estimate.mtbf == Duration.hours(2400)

    def test_interval_brackets_point(self):
        estimate = estimate_mtbf("m", failures=50,
                                 exposure_hours=100_000.0)
        assert estimate.lower < estimate.mtbf < estimate.upper

    def test_interval_narrows_with_more_data(self):
        wide = estimate_mtbf("m", 10, 24_000.0)
        narrow = estimate_mtbf("m", 1000, 2_400_000.0)

        def rel_width(estimate):
            return (estimate.upper - estimate.lower) / estimate.mtbf

        assert rel_width(narrow) < rel_width(wide)

    def test_zero_failures_gives_lower_bound_only(self):
        estimate = estimate_mtbf("m", 0, 10_000.0)
        assert estimate.mtbf is None
        assert estimate.upper is None
        assert estimate.lower.as_hours > 0
        assert estimate.contains(Duration.hours(1e9))

    def test_contains(self):
        estimate = estimate_mtbf("m", 100, 240_000.0)
        assert estimate.contains(Duration.hours(2400))
        assert not estimate.contains(Duration.hours(1))
        assert not estimate.contains(Duration.hours(1e9))

    def test_validation(self):
        with pytest.raises(EvaluationError):
            estimate_mtbf("m", 1, 0.0)
        with pytest.raises(EvaluationError):
            estimate_mtbf("m", -1, 100.0)
        with pytest.raises(EvaluationError):
            estimate_mtbf("m", 1, 100.0, confidence=1.5)


class TestEstimateMttr:
    def test_point_estimate(self):
        estimate = estimate_mttr("m", repairs=50, repair_hours=1200.0)
        assert estimate.mttr == Duration.hours(24)

    def test_interval_brackets_point(self):
        estimate = estimate_mttr("m", repairs=20, repair_hours=480.0)
        assert estimate.lower < estimate.mttr < estimate.upper

    def test_interval_narrows_with_more_data(self):
        wide = estimate_mttr("m", 10, 240.0)
        narrow = estimate_mttr("m", 1000, 24_000.0)

        def rel_width(estimate):
            return (estimate.upper - estimate.lower) / estimate.mttr

        assert rel_width(narrow) < rel_width(wide)

    def test_zero_repairs_contradicts_nothing(self):
        estimate = estimate_mttr("m", 0, 0.0)
        assert estimate.mttr is None
        assert estimate.lower is None and estimate.upper is None
        assert estimate.contains(Duration.hours(1e9))

    def test_contains(self):
        estimate = estimate_mttr("m", 100, 2400.0)
        assert estimate.contains(Duration.hours(24))
        assert not estimate.contains(Duration.minutes(1))
        assert not estimate.contains(Duration.hours(1e6))

    def test_validation(self):
        with pytest.raises(EvaluationError):
            estimate_mttr("m", -1, 100.0)
        with pytest.raises(EvaluationError):
            estimate_mttr("m", 1, -100.0)
        with pytest.raises(EvaluationError):
            estimate_mttr("m", 1, 0.0)  # a repair must take time
        with pytest.raises(EvaluationError):
            estimate_mttr("m", 1, 100.0, confidence=0.0)


class TestEstimatesFromSimulation:
    @pytest.fixture(scope="class")
    def observed(self):
        model = model_with()
        result = simulate_tier(model, years=300, seed=5)
        return model, result, estimates_from_simulation(model, result)

    def test_true_values_inside_intervals(self, observed):
        model, _, estimates = observed
        for mode in model.modes:
            assert estimates[mode.name].contains(mode.mtbf), mode.name

    def test_point_estimates_close(self, observed):
        model, _, estimates = observed
        for mode in model.modes:
            estimate = estimates[mode.name]
            ratio = estimate.mtbf / mode.mtbf
            assert 0.9 < ratio < 1.1, mode.name

    def test_requires_mode_counts(self):
        from repro.availability import SimulationResult, TierResult
        model = model_with()
        bare = SimulationResult(TierResult("t", 0.0), 1.0, 0.0, 0, 0,
                                0.0)
        with pytest.raises(EvaluationError):
            estimates_from_simulation(model, bare)


class TestRefineModes:
    def test_refinement_closes_model_error(self):
        """Declare a wrong MTBF, observe reality, refine: the refined
        model's downtime must be closer to the truth's."""
        truth = model_with(mtbf_days_hard=50.0)
        declared = model_with(mtbf_days_hard=200.0)
        observed = simulate_tier(truth, years=300, seed=6)
        estimates = estimates_from_simulation(truth, observed)
        refined = refine_modes(declared, estimates)

        engine = MarkovEngine()
        true_downtime = engine.evaluate_tier(truth).downtime_minutes
        declared_downtime = engine.evaluate_tier(
            declared).downtime_minutes
        refined_downtime = engine.evaluate_tier(refined).downtime_minutes
        assert abs(refined_downtime - true_downtime) < \
            abs(declared_downtime - true_downtime)

    def test_sparse_observations_keep_prior(self):
        model = model_with()
        estimates = {"hard": estimate_mtbf("hard", 2, 1_000_000.0)}
        refined = refine_modes(model, estimates, min_failures=10)
        assert refined.modes[0].mtbf == model.modes[0].mtbf

    def test_unobserved_modes_untouched(self):
        model = model_with()
        refined = refine_modes(model, {})
        assert refined.modes == model.modes


class TestExposureAccounting:
    def test_manned_hours_close_to_n_times_horizon(self):
        """With rare failures, exposure ~ n x horizon."""
        model = model_with(mtbf_days_hard=5000, mtbf_days_soft=5000,
                           n=3, s=0)
        result = simulate_tier(model, years=50, seed=7)
        expected = 3 * 50 * 365 * 24
        assert result.manned_hours == pytest.approx(expected, rel=0.01)

    def test_idle_hours_tracked_for_spares(self):
        model = model_with(n=2, s=2)
        result = simulate_tier(model, years=20, seed=8)
        expected = 2 * 20 * 365 * 24
        assert result.idle_hours == pytest.approx(expected, rel=0.1)

    def test_mode_counts_sum_to_failures(self):
        model = model_with()
        result = simulate_tier(model, years=100, seed=9)
        assert sum(result.mode_failures.values()) == \
            result.failure_events
