"""Tests for the job completion model (paper Eq. 1)."""

import math

import pytest

from repro.availability import (estimate_job_time, failure_probability,
                                mean_time_per_loss_window, useful_fraction)
from repro.errors import EvaluationError
from repro.units import Duration


class TestEquation1:
    def test_failure_probability(self):
        p = failure_probability(Duration.hours(1), Duration.hours(10))
        assert p == pytest.approx(1 - math.exp(-0.1))

    def test_t_lw_closed_form(self):
        """T_lw = MTBF * P_f / (1 - P_f) = MTBF * (e^{lw/MTBF} - 1)."""
        lw, mtbf = Duration.hours(2), Duration.hours(10)
        t = mean_time_per_loss_window(lw, mtbf)
        p = failure_probability(lw, mtbf)
        assert t.as_hours == pytest.approx(10 * p / (1 - p), rel=1e-12)

    def test_t_lw_approaches_lw_for_rare_failures(self):
        t = mean_time_per_loss_window(Duration.minutes(10),
                                      Duration.days(365))
        assert t.as_minutes == pytest.approx(10.0, rel=1e-4)

    def test_t_lw_explodes_for_long_windows(self):
        t = mean_time_per_loss_window(Duration.hours(50),
                                      Duration.hours(10))
        # e^5 - 1 ~ 147.4 mtbf units.
        assert t.as_hours == pytest.approx(10 * (math.exp(5) - 1),
                                           rel=1e-9)

    def test_t_lw_overflow_guard(self):
        t = mean_time_per_loss_window(Duration.hours(10_000),
                                      Duration.hours(1))
        assert not t.is_finite()

    def test_zero_window(self):
        assert mean_time_per_loss_window(Duration.ZERO,
                                         Duration.hours(1)) == Duration.ZERO
        assert useful_fraction(Duration.ZERO, Duration.hours(1)) == 1.0

    def test_useful_fraction_monotone_in_window(self):
        mtbf = Duration.hours(100)
        fractions = [useful_fraction(Duration.hours(h), mtbf)
                     for h in (1, 10, 50, 100, 300)]
        assert all(a > b for a, b in zip(fractions, fractions[1:]))
        assert all(0 <= f <= 1 for f in fractions)

    def test_invalid_inputs(self):
        with pytest.raises(EvaluationError):
            failure_probability(Duration.hours(1), Duration.ZERO)
        with pytest.raises(EvaluationError):
            mean_time_per_loss_window(Duration.hours(-1),
                                      Duration.hours(1))


class TestJobTimeEstimate:
    def base(self, **overrides):
        kwargs = dict(job_size=10_000.0, throughput_per_hour=500.0,
                      overhead_factor=1.0,
                      loss_window=Duration.minutes(10),
                      tier_mtbf=Duration.days(10),
                      uptime_fraction=1.0)
        kwargs.update(overrides)
        return estimate_job_time(**kwargs)

    def test_ideal_case_is_failure_free_time(self):
        estimate = self.base(loss_window=Duration.ZERO)
        assert estimate.expected_time.as_hours == pytest.approx(20.0)
        assert estimate.useful_fraction == 1.0

    def test_overhead_stretches_time(self):
        assert self.base(overhead_factor=2.0).expected_time.as_hours == \
            pytest.approx(2 * self.base().expected_time.as_hours, rel=1e-6)

    def test_downtime_stretches_time(self):
        degraded = self.base(uptime_fraction=0.5)
        assert degraded.expected_time.as_hours == pytest.approx(
            2 * self.base().expected_time.as_hours, rel=1e-6)

    def test_reexecution_stretches_time(self):
        risky = self.base(loss_window=Duration.days(5))
        assert risky.expected_time > self.base().expected_time

    def test_effective_rate_consistency(self):
        estimate = self.base()
        assert estimate.expected_time.as_hours == pytest.approx(
            10_000.0 / estimate.effective_rate)

    def test_zero_uptime_is_infeasible(self):
        estimate = self.base(uptime_fraction=0.0)
        assert not estimate.feasible

    def test_input_validation(self):
        with pytest.raises(EvaluationError):
            self.base(job_size=0)
        with pytest.raises(EvaluationError):
            self.base(throughput_per_hour=0)
        with pytest.raises(EvaluationError):
            self.base(overhead_factor=0.5)
        with pytest.raises(EvaluationError):
            self.base(uptime_fraction=1.5)


class TestCheckpointIntervalTradeoff:
    def test_interior_optimum_exists(self):
        """With an overhead knee and Eq. 1 losses, the expected job time
        as a function of the interval is minimized at the knee."""
        mtbf = Duration.hours(50)
        knee_minutes = 30.0

        def job_hours(cpi_minutes):
            overhead = max(knee_minutes / cpi_minutes, 1.0)
            return estimate_job_time(
                1000.0, 100.0, overhead, Duration.minutes(cpi_minutes),
                mtbf, 1.0).expected_time.as_hours

        at_knee = job_hours(knee_minutes)
        assert job_hours(5.0) > at_knee        # overhead dominates
        assert job_hours(2000.0) > at_knee     # re-execution dominates
