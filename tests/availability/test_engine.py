"""Tests for the engine facade, registry and series composition."""

import pytest

from repro.availability import (AnalyticEngine, AvailabilityEngine,
                                FailureModeEntry, MarkovEngine,
                                SimulationEngine, TierAvailabilityModel,
                                get_engine, register_engine)
from repro.errors import EvaluationError, ModelError
from repro.units import Duration


def simple_tier(name="t", n=2, m=2, s=0, mtbf_days=50, mttr_hours=12):
    return TierAvailabilityModel(
        name, n=n, m=m, s=s,
        modes=(FailureModeEntry("hard", Duration.days(mtbf_days),
                                Duration.hours(mttr_hours),
                                Duration.minutes(5)),))


class TestRegistry:
    def test_get_markov(self):
        assert isinstance(get_engine("markov"), MarkovEngine)

    def test_get_analytic(self):
        assert isinstance(get_engine("analytic"), AnalyticEngine)

    def test_get_simulation_with_kwargs(self):
        engine = get_engine("simulation", years=10, seed=1)
        assert isinstance(engine, SimulationEngine)
        assert engine.years == 10

    def test_unknown_engine(self):
        with pytest.raises(EvaluationError):
            get_engine("quantum")

    def test_register_custom(self):
        class FakeEngine(AvailabilityEngine):
            name = "fake-test-engine"

            def evaluate_tier(self, model):
                from repro.availability import TierResult
                return TierResult(model.name, 0.0)

        register_engine(FakeEngine)
        assert isinstance(get_engine("fake-test-engine"), FakeEngine)

    def test_register_rejects_non_engine(self):
        with pytest.raises(EvaluationError):
            register_engine(dict)


class TestSeriesComposition:
    def test_two_tiers_compose(self):
        engine = MarkovEngine()
        a, b = simple_tier("a"), simple_tier("b", mtbf_days=25)
        result = engine.evaluate([a, b])
        ua = engine.evaluate_tier(a).unavailability
        ub = engine.evaluate_tier(b).unavailability
        assert result.unavailability == pytest.approx(
            1 - (1 - ua) * (1 - ub))
        assert result.tier("a").unavailability == pytest.approx(ua)

    def test_empty_design_rejected(self):
        with pytest.raises(EvaluationError):
            MarkovEngine().evaluate([])

    def test_missing_tier_lookup(self):
        result = MarkovEngine().evaluate([simple_tier("a")])
        with pytest.raises(ModelError):
            result.tier("zzz")

    def test_result_durations(self):
        result = MarkovEngine().evaluate([simple_tier()])
        year_minutes = 365 * 24 * 60
        assert (result.annual_downtime.as_minutes
                + result.annual_uptime.as_minutes) == pytest.approx(
            year_minutes)


class TestEngineAgreement:
    def test_analytic_exact_for_inplace(self):
        """In-place chains are n independent on/off processes; the
        analytic binomial form must match Markov exactly."""
        for n, m in ((1, 1), (3, 2), (5, 5), (6, 3)):
            model = simple_tier(n=n, m=m, s=0)
            markov = MarkovEngine().evaluate_tier(model)
            analytic = AnalyticEngine().evaluate_tier(model)
            assert analytic.unavailability == pytest.approx(
                markov.unavailability, rel=1e-9), (n, m)

    def test_analytic_close_when_spares_ample(self):
        """With ample spares, spare exhaustion is negligible and the
        first-order failover form tracks the Markov answer."""
        model = simple_tier(n=4, m=4, s=3, mtbf_days=100, mttr_hours=12)
        markov = MarkovEngine().evaluate_tier(model)
        analytic = AnalyticEngine().evaluate_tier(model)
        assert analytic.unavailability == pytest.approx(
            markov.unavailability, rel=0.1)

    def test_analytic_underestimates_when_spares_scarce(self):
        """Spare exhaustion, which the closed form ignores, dominates in
        this regime: the analytic engine must land far below Markov.
        (This is exactly the gap the engine-ablation benchmark shows.)"""
        model = simple_tier(n=6, m=6, s=1, mtbf_days=20, mttr_hours=48)
        markov = MarkovEngine().evaluate_tier(model)
        analytic = AnalyticEngine().evaluate_tier(model)
        assert analytic.unavailability < markov.unavailability / 10

    def test_simulation_engine_evaluate_tier(self):
        engine = SimulationEngine(years=200, seed=17)
        result = engine.evaluate_tier(simple_tier())
        assert 0 < result.unavailability < 1


class StubEngine(AvailabilityEngine):
    """Returns a fixed unavailability per tier name (edge-case probe)."""

    name = "stub-values"

    def __init__(self, values):
        self.values = values

    def evaluate_tier(self, model):
        from repro.availability import TierResult
        return TierResult(model.name, self.values[model.name])


class TestEvaluateEdgeCases:
    def test_empty_model_sequence_rejected(self):
        engine = StubEngine({})
        with pytest.raises(EvaluationError, match="no tier models"):
            engine.evaluate([])

    def test_unavailability_exactly_zero(self):
        engine = StubEngine({"a": 0.0, "b": 0.0})
        result = engine.evaluate([simple_tier("a"), simple_tier("b")])
        assert result.unavailability == 0.0
        assert result.availability == 1.0
        assert result.annual_downtime.as_minutes == 0.0

    def test_unavailability_exactly_one(self):
        engine = StubEngine({"a": 1.0, "b": 1e-5})
        result = engine.evaluate([simple_tier("a"), simple_tier("b")])
        assert result.unavailability == 1.0
        assert result.availability == 0.0

    def test_series_composition_is_order_invariant(self):
        values = {"a": 3e-4, "b": 7e-5, "c": 1.2e-3}
        engine = StubEngine(values)
        models = [simple_tier(name) for name in values]
        forward = engine.evaluate(models)
        backward = engine.evaluate(list(reversed(models)))
        assert forward.unavailability == pytest.approx(
            backward.unavailability, rel=1e-12)

    def test_single_tier_series_is_identity(self):
        engine = StubEngine({"a": 2.5e-4})
        result = engine.evaluate([simple_tier("a")])
        assert result.unavailability == pytest.approx(2.5e-4)


class TestModelValidation:
    def test_rejects_bad_m(self):
        with pytest.raises(ModelError):
            simple_tier(n=2, m=3)

    def test_rejects_no_modes(self):
        with pytest.raises(ModelError):
            TierAvailabilityModel("t", n=1, m=1, s=0, modes=())

    def test_rejects_duplicate_modes(self):
        mode = FailureModeEntry("x", Duration.days(1), Duration.ZERO,
                                Duration.ZERO)
        with pytest.raises(ModelError):
            TierAvailabilityModel("t", n=1, m=1, s=0, modes=(mode, mode))

    def test_tier_mtbf(self):
        model = simple_tier(n=4, mtbf_days=100)
        assert model.tier_mtbf().as_days == pytest.approx(25.0)

    def test_slack(self):
        assert simple_tier(n=5, m=3).slack == 2
