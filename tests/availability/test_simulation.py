"""Tests for the discrete-event simulator, including Markov agreement."""

import pytest

from repro.availability import (FailureModeEntry, MarkovEngine,
                                TierAvailabilityModel, simulate_tier)
from repro.errors import EvaluationError
from repro.units import Duration


def mode(name="hard", mtbf_days=100, mttr_hours=24, failover_minutes=5,
         spare_susceptible=False):
    return FailureModeEntry(name, Duration.days(mtbf_days),
                            Duration.hours(mttr_hours),
                            Duration.minutes(failover_minutes),
                            spare_susceptible)


def tier(n, m, s, modes):
    return TierAvailabilityModel("t", n=n, m=m, s=s, modes=tuple(modes))


class TestBasics:
    def test_deterministic_with_seed(self):
        model = tier(2, 2, 0, [mode()])
        a = simulate_tier(model, years=50, seed=11)
        b = simulate_tier(model, years=50, seed=11)
        assert a.tier.unavailability == b.tier.unavailability
        assert a.failure_events == b.failure_events

    def test_different_seeds_differ(self):
        model = tier(2, 2, 0, [mode()])
        a = simulate_tier(model, years=50, seed=1)
        b = simulate_tier(model, years=50, seed=2)
        assert a.tier.unavailability != b.tier.unavailability

    def test_failure_rate_observed(self):
        model = tier(4, 4, 0, [mode(mtbf_days=365, mttr_hours=1)])
        result = simulate_tier(model, years=500, seed=5)
        # ~4 failures/yr expected.
        assert result.failure_events == pytest.approx(2000, rel=0.1)

    def test_invalid_horizon(self):
        with pytest.raises(EvaluationError):
            simulate_tier(tier(1, 1, 0, [mode()]), years=0)

    def test_invalid_batches(self):
        with pytest.raises(EvaluationError):
            simulate_tier(tier(1, 1, 0, [mode()]), years=1, batches=0)

    def test_ci_shrinks_with_horizon(self):
        model = tier(2, 2, 0, [mode(mtbf_days=10, mttr_hours=4)])
        short = simulate_tier(model, years=50, seed=3)
        long = simulate_tier(model, years=2000, seed=3)
        assert long.ci_halfwidth < short.ci_halfwidth

    def test_failover_events_counted(self):
        model = tier(2, 2, 1, [mode(mtbf_days=10, mttr_hours=48)])
        result = simulate_tier(model, years=100, seed=7)
        assert result.failover_events > 0


class TestAgainstMarkov:
    """The simulator is the ground truth for the Markov decomposition;
    here we check the two agree in representative regimes."""

    def assert_agreement(self, model, years=3000, seed=42, rel=0.15):
        markov = MarkovEngine().evaluate_tier(model)
        sim = simulate_tier(model, years=years, seed=seed)
        tolerance = max(markov.unavailability * rel,
                        2.5 * sim.ci_halfwidth, 1e-7)
        assert abs(markov.unavailability - sim.tier.unavailability) <= \
            tolerance, (markov.unavailability, sim.tier.unavailability)

    def test_single_mode_no_spares(self):
        self.assert_agreement(tier(3, 3, 0, [mode(mtbf_days=30,
                                                  mttr_hours=8)]))

    def test_single_mode_with_slack(self):
        self.assert_agreement(tier(4, 3, 0, [mode(mtbf_days=30,
                                                  mttr_hours=8)]))

    def test_failover_mode(self):
        self.assert_agreement(
            tier(3, 3, 1, [mode(mtbf_days=30, mttr_hours=24,
                                failover_minutes=15)]))

    def test_multiple_modes(self):
        modes = [mode("hard", mtbf_days=100, mttr_hours=38,
                      failover_minutes=7),
                 mode("soft", mtbf_days=10, mttr_hours=0.1,
                      failover_minutes=7)]
        self.assert_agreement(tier(5, 5, 1, modes))

    def test_hot_spares(self):
        self.assert_agreement(
            tier(3, 3, 1, [mode(mtbf_days=20, mttr_hours=24,
                                failover_minutes=1,
                                spare_susceptible=True)]))

    def test_paper_app_tier_family9(self, paper_infra):
        """The paper's family 9 shape: rC x6, m=5, bronze."""
        modes = (
            FailureModeEntry("machineA.hard", Duration.days(650),
                             Duration.hours(38) + Duration.minutes(6.5),
                             Duration.minutes(6.5)),
            FailureModeEntry("machineA.soft", Duration.days(75),
                             Duration.minutes(4.5), Duration.minutes(6.5)),
            FailureModeEntry("linux.soft", Duration.days(60),
                             Duration.minutes(4), Duration.minutes(6.5)),
            FailureModeEntry("appserverA.soft", Duration.days(60),
                             Duration.minutes(2), Duration.minutes(6.5)),
        )
        self.assert_agreement(
            TierAvailabilityModel("app", n=6, m=5, s=0, modes=modes),
            years=6000, rel=0.2)


class TestDeterministicRepairs:
    def test_runs_and_is_reproducible(self):
        model = tier(3, 3, 1, [mode(mtbf_days=30, mttr_hours=24)])
        a = simulate_tier(model, years=200, seed=9,
                          deterministic_repairs=True)
        b = simulate_tier(model, years=200, seed=9,
                          deterministic_repairs=True)
        assert a.tier.unavailability == b.tier.unavailability

    def test_same_order_of_magnitude_as_exponential(self):
        """Downtime is distribution-sensitive but should stay within ~2x
        for these shapes (steady-state means dominate)."""
        model = tier(4, 4, 0, [mode(mtbf_days=30, mttr_hours=8)])
        exponential = simulate_tier(model, years=2000, seed=13)
        deterministic = simulate_tier(model, years=2000, seed=13,
                                      deterministic_repairs=True)
        ratio = (deterministic.tier.unavailability
                 / exponential.tier.unavailability)
        assert 0.5 < ratio < 2.0
