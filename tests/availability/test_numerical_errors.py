"""Numerical-failure wrapping in the Markov engine (satellite of the
resilience runtime: these are the errors its retry policy classifies
as transient)."""

import numpy as np
import pytest

from repro.availability import (FailureModeEntry, ModeResult,
                                TierAvailabilityModel)
from repro.availability import markov
from repro.errors import EvaluationError, NumericalError
from repro.units import Duration


def tier_model(name="app", n=3, m=2, s=1):
    return TierAvailabilityModel(
        name, n=n, m=m, s=s,
        modes=(FailureModeEntry("hard", Duration.days(60),
                                Duration.hours(8),
                                Duration.minutes(4)),))


class TestNumericalErrorWrapping:
    def test_linalg_error_wrapped(self, monkeypatch):
        def explode(model, mode, notes=None):
            raise np.linalg.LinAlgError("singular matrix")
        monkeypatch.setattr(markov, "evaluate_mode", explode)
        with pytest.raises(NumericalError) as excinfo:
            markov.evaluate_tier(tier_model())
        error = excinfo.value
        assert error.tier == "app"
        assert error.structure == (3, 2, 1)
        assert "tier 'app'" in str(error)
        assert "(n=3, m=2, s=1)" in str(error)
        assert "singular matrix" in str(error)

    def test_floating_point_error_wrapped(self, monkeypatch):
        def explode(model, mode, notes=None):
            raise FloatingPointError("overflow encountered")
        monkeypatch.setattr(markov, "evaluate_mode", explode)
        with pytest.raises(NumericalError, match="floating-point"):
            markov.evaluate_tier(tier_model())

    def test_out_of_range_mode_result_rejected(self, monkeypatch):
        def garbage(model, mode, notes=None):
            return ModeResult(mode.name, 1.5, 0.1, False)
        monkeypatch.setattr(markov, "evaluate_mode", garbage)
        with pytest.raises(NumericalError, match="outside"):
            markov.evaluate_tier(tier_model())

    def test_nan_mode_result_rejected(self, monkeypatch):
        def garbage(model, mode, notes=None):
            return ModeResult(mode.name, float("nan"), 0.1, False)
        monkeypatch.setattr(markov, "evaluate_mode", garbage)
        with pytest.raises(NumericalError):
            markov.evaluate_tier(tier_model())

    def test_non_finite_failure_rate_rejected(self, monkeypatch):
        def garbage(model, mode, notes=None):
            return ModeResult(mode.name, 1e-4, float("inf"), False)
        monkeypatch.setattr(markov, "evaluate_mode", garbage)
        with pytest.raises(NumericalError, match="failure rate"):
            markov.evaluate_tier(tier_model())

    def test_is_an_evaluation_error(self):
        """Callers catching EvaluationError keep working."""
        assert issubclass(NumericalError, EvaluationError)

    def test_message_without_location(self):
        error = NumericalError("just numbers")
        assert str(error) == "just numbers"
        assert error.tier is None
        assert error.structure is None

    def test_healthy_solve_unaffected(self):
        result = markov.evaluate_tier(tier_model())
        assert 0.0 <= result.unavailability <= 1.0
