"""Tests for reliability-block-diagram composition."""

import math

import pytest

from repro.availability import (k_of_n_availability, k_of_n_identical,
                                parallel_availability, series_availability,
                                series_unavailability)
from repro.errors import EvaluationError


class TestSeries:
    def test_two_blocks(self):
        assert series_availability([0.9, 0.8]) == pytest.approx(0.72)

    def test_unavailability_form(self):
        u = series_unavailability([0.1, 0.2])
        assert u == pytest.approx(1 - 0.9 * 0.8)

    def test_empty_series_is_up(self):
        assert series_availability([]) == 1.0
        assert series_unavailability([]) == 0.0

    def test_perfect_blocks(self):
        assert series_availability([1.0, 1.0, 1.0]) == 1.0

    def test_rejects_non_probability(self):
        with pytest.raises(EvaluationError):
            series_availability([1.5])
        with pytest.raises(EvaluationError):
            series_unavailability([-0.1])

    def test_small_unavailabilities_approximately_add(self):
        u = series_unavailability([1e-6, 2e-6, 3e-6])
        assert u == pytest.approx(6e-6, rel=1e-4)


class TestParallel:
    def test_two_blocks(self):
        assert parallel_availability([0.9, 0.9]) == pytest.approx(0.99)

    def test_any_perfect_block_suffices(self):
        assert parallel_availability([0.2, 1.0]) == 1.0

    def test_empty_rejected(self):
        with pytest.raises(EvaluationError):
            parallel_availability([])


class TestKofN:
    def test_one_of_n_is_parallel(self):
        values = [0.9, 0.8, 0.7]
        assert k_of_n_availability(1, values) == pytest.approx(
            parallel_availability(values))

    def test_n_of_n_is_series(self):
        values = [0.9, 0.8, 0.7]
        assert k_of_n_availability(3, values) == pytest.approx(
            series_availability(values))

    def test_zero_of_n_is_one(self):
        assert k_of_n_availability(0, [0.5, 0.5]) == pytest.approx(1.0)

    def test_heterogeneous_two_of_three(self):
        a, b, c = 0.9, 0.8, 0.7
        expected = (a * b * c
                    + a * b * (1 - c) + a * (1 - b) * c
                    + (1 - a) * b * c)
        assert k_of_n_availability(2, [a, b, c]) == pytest.approx(expected)

    def test_identical_matches_binomial(self):
        n, k, p = 8, 6, 0.95
        expected = sum(math.comb(n, j) * p ** j * (1 - p) ** (n - j)
                       for j in range(k, n + 1))
        assert k_of_n_identical(k, n, p) == pytest.approx(expected)

    def test_identical_matches_general(self):
        assert k_of_n_identical(3, 5, 0.9) == pytest.approx(
            k_of_n_availability(3, [0.9] * 5))

    def test_out_of_range_k_rejected(self):
        with pytest.raises(EvaluationError):
            k_of_n_availability(4, [0.9] * 3)
        with pytest.raises(EvaluationError):
            k_of_n_identical(-1, 3, 0.9)
