"""Scenario tests for the simulator: semantics under controlled models.

Each scenario is built so renewal theory gives a sharp expectation,
letting us verify the event machinery (failover queueing, in-place
returns, spare aging) rather than just distributional agreement.
"""

import pytest

from repro.availability import (FailureModeEntry, TierAvailabilityModel,
                                simulate_tier)
from repro.units import Duration, HOURS_PER_YEAR


def mode(name="hard", mtbf_hours=1000.0, mttr_hours=10.0,
         failover_minutes=5.0, spare_susceptible=False):
    return FailureModeEntry(name, Duration.hours(mtbf_hours),
                            Duration.hours(mttr_hours),
                            Duration.minutes(failover_minutes),
                            spare_susceptible)


class TestRenewalScenarios:
    def test_single_resource_deterministic_repairs(self):
        """n=1, deterministic repairs: alternating renewal process with
        exact unavailability MTTR/(MTBF+MTTR)."""
        m = mode(mtbf_hours=100.0, mttr_hours=5.0)
        model = TierAvailabilityModel("t", n=1, m=1, s=0, modes=(m,))
        result = simulate_tier(model, years=400, seed=2,
                               deterministic_repairs=True)
        assert result.unavailability == pytest.approx(5.0 / 105.0,
                                                      rel=0.03)

    def test_failover_charges_exactly_failover_time(self):
        """n=1 with a spare and fast repair relative to MTBF: each
        failure costs one (deterministic) failover, so downtime ~
        failures x failover time."""
        m = mode(mtbf_hours=500.0, mttr_hours=2.0, failover_minutes=12.0)
        model = TierAvailabilityModel("t", n=1, m=1, s=1, modes=(m,))
        result = simulate_tier(model, years=300, seed=3,
                               deterministic_repairs=True)
        expected_hours = result.failure_events * 12.0 / 60.0
        assert result.downtime_hours == pytest.approx(expected_hours,
                                                      rel=0.02)

    def test_every_failure_triggers_one_failover(self):
        m = mode(mtbf_hours=500.0, mttr_hours=2.0)
        model = TierAvailabilityModel("t", n=2, m=2, s=2, modes=(m,))
        result = simulate_tier(model, years=300, seed=4,
                               deterministic_repairs=True)
        # A handful of failovers may still be queued when the horizon
        # ends (spares busy); otherwise counts match one-to-one.
        assert result.failure_events - 5 <= result.failover_events \
            <= result.failure_events

    def test_failure_count_matches_rate(self):
        m = mode(mtbf_hours=HOURS_PER_YEAR)  # 1 failure/resource-year
        model = TierAvailabilityModel("t", n=10, m=10, s=0, modes=(m,))
        result = simulate_tier(model, years=200, seed=5)
        assert result.failure_events == pytest.approx(2000, rel=0.07)


class TestInPlaceSemantics:
    def test_fast_repair_modes_never_fail_over(self):
        """MTTR < failover time: spares must never be touched."""
        glitch = FailureModeEntry("glitch", Duration.hours(50),
                                  Duration.minutes(2),
                                  Duration.minutes(10))
        model = TierAvailabilityModel("t", n=3, m=3, s=2,
                                      modes=(glitch,))
        result = simulate_tier(model, years=100, seed=6)
        assert result.failover_events == 0
        assert result.failure_events > 0

    def test_inplace_downtime_scales_with_mttr(self):
        def run(minutes):
            glitch = FailureModeEntry("glitch", Duration.hours(200),
                                      Duration.minutes(minutes),
                                      Duration.hours(1))
            model = TierAvailabilityModel("t", n=2, m=2, s=0,
                                          modes=(glitch,))
            return simulate_tier(model, years=300, seed=7,
                                 deterministic_repairs=True)

        short = run(3.0)
        long = run(9.0)
        # Same seed, same failure epochs: downtime scales 3x exactly
        # up to boundary effects.
        assert long.downtime_hours == pytest.approx(
            3 * short.downtime_hours, rel=0.02)


class TestSpareAging:
    def test_hot_spares_fail_and_enter_repair(self):
        hot = mode(mtbf_hours=200.0, mttr_hours=50.0,
                   failover_minutes=1.0, spare_susceptible=True)
        cold = mode(mtbf_hours=200.0, mttr_hours=50.0,
                    failover_minutes=1.0, spare_susceptible=False)
        hot_model = TierAvailabilityModel("t", n=2, m=2, s=2,
                                          modes=(hot,))
        cold_model = TierAvailabilityModel("t", n=2, m=2, s=2,
                                           modes=(cold,))
        hot_result = simulate_tier(hot_model, years=200, seed=8)
        cold_result = simulate_tier(cold_model, years=200, seed=8)
        # With 2 active + up to 2 idle spares aging, the failure count
        # approaches 2x the cold case (minus time spares spend absent).
        ratio = hot_result.failure_events / cold_result.failure_events
        assert 1.5 < ratio < 2.05

    def test_spare_failures_do_not_cause_downtime_directly(self):
        """If only spares can fail (active components immune), the tier
        never goes down."""
        spare_only = FailureModeEntry(
            "sp", Duration.hours(100), Duration.hours(10),
            Duration.minutes(5), spare_susceptible=True)
        # Make actives effectively immortal by huge MTBF on the mode
        # that applies to them... the simulator applies the same mode to
        # actives too, so instead verify downtime stays tiny relative
        # to a model where actives fail at the same rate.
        active_too = TierAvailabilityModel("t", n=2, m=2, s=1,
                                           modes=(spare_only,))
        result = simulate_tier(active_too, years=100, seed=9)
        # Sanity: simulation runs and counts both kinds of failures.
        assert result.failure_events > 100


class TestBatchMechanics:
    def test_batches_partition_the_horizon(self):
        """Batch boundaries resample the memoryless failure race, so
        sample paths differ -- but estimates must agree statistically."""
        m = mode(mtbf_hours=100.0, mttr_hours=5.0)
        model = TierAvailabilityModel("t", n=1, m=1, s=0, modes=(m,))
        few = simulate_tier(model, years=100, seed=10, batches=2)
        many = simulate_tier(model, years=100, seed=10, batches=20)
        assert few.downtime_hours == pytest.approx(many.downtime_hours,
                                                   rel=0.05)
        assert few.failure_events == pytest.approx(many.failure_events,
                                                   rel=0.05)

    def test_state_carries_across_batches(self):
        """A long repair spanning a batch boundary must keep the tier
        down in the next batch (no state reset)."""
        m = mode(mtbf_hours=50.0, mttr_hours=200.0)  # mostly broken
        model = TierAvailabilityModel("t", n=1, m=1, s=0, modes=(m,))
        result = simulate_tier(model, years=50, seed=11, batches=25)
        assert result.unavailability > 0.5


class TestDowntimeDistribution:
    def test_percentiles_monotone(self):
        m = mode(mtbf_hours=200.0, mttr_hours=10.0)
        model = TierAvailabilityModel("t", n=2, m=2, s=0, modes=(m,))
        result = simulate_tier(model, years=200, seed=12, batches=40)
        p50 = result.downtime_percentile(50)
        p90 = result.downtime_percentile(90)
        p99 = result.downtime_percentile(99)
        assert p50 <= p90 <= p99

    def test_mean_between_extremes(self):
        m = mode(mtbf_hours=200.0, mttr_hours=10.0)
        model = TierAvailabilityModel("t", n=2, m=2, s=0, modes=(m,))
        result = simulate_tier(model, years=200, seed=13, batches=40)
        assert result.downtime_percentile(0) <= \
            result.tier.downtime_minutes <= \
            result.downtime_percentile(100)

    def test_rare_events_show_zero_median(self):
        """When outages are rarer than a batch length, most batches see
        none: the median is 0 while the mean is positive."""
        m = mode(mtbf_hours=50_000.0, mttr_hours=100.0)
        model = TierAvailabilityModel("t", n=1, m=1, s=0, modes=(m,))
        result = simulate_tier(model, years=100, seed=14, batches=50)
        if result.failure_events > 0:
            assert result.downtime_percentile(50) == 0.0
            assert result.tier.downtime_minutes > 0.0

    def test_percentile_validation(self):
        from repro.errors import EvaluationError
        m = mode()
        model = TierAvailabilityModel("t", n=1, m=1, s=0, modes=(m,))
        result = simulate_tier(model, years=10, seed=15)
        with pytest.raises(EvaluationError):
            result.downtime_percentile(101)
