"""Golden tests for the Markov chains' state-space structure.

These pin the chain shapes (state counts, reachability) so a refactor
of the transition functions cannot silently change the model being
solved.
"""

import pytest

from repro.availability import (ContinuousTimeMarkovChain,
                                FailureModeEntry, TierAvailabilityModel)
from repro.availability.markov import (_TRUNCATION_MARGIN,
                                       _solve_failover_chain,
                                       _solve_inplace_chain)
from repro.units import Duration


def failover_mode(mtbf_days=100, mttr_hours=24, failover_minutes=5,
                  spare_susceptible=False):
    return FailureModeEntry("hard", Duration.days(mtbf_days),
                            Duration.hours(mttr_hours),
                            Duration.minutes(failover_minutes),
                            spare_susceptible)


def build_failover_chain(n, m, s, mode):
    """Replicate the failover chain's reachable state space."""
    total = n + s
    w_cap = min(n, (n - m + 1) + s + _TRUNCATION_MARGIN)
    spare_fails = mode.spare_susceptible

    def transitions(state):
        r, w = state
        idle = s - r + w
        out = []
        if n - w > 0 and r < total and w < w_cap:
            out.append(((r + 1, w + 1), 1.0))
        if spare_fails and idle > 0:
            out.append(((r + 1, w), 1.0))
        if min(w, idle) > 0:
            out.append(((r, w - 1), 1.0))
        if r > 0:
            out.append(((r - 1, w), 1.0))
        return out

    return ContinuousTimeMarkovChain((0, 0), transitions)


class TestStateSpaceInvariants:
    @pytest.mark.parametrize("n,m,s", [(1, 1, 0), (1, 1, 1), (5, 5, 1),
                                       (5, 4, 2), (10, 8, 3)])
    def test_state_constraints_hold(self, n, m, s):
        chain = build_failover_chain(n, m, s, failover_mode())
        for r, w in chain.states:
            assert 0 <= w <= n
            assert 0 <= r <= n + s
            assert r <= s + w, (r, w)          # bookkeeping identity
            assert s - r + w >= 0              # idle spares >= 0

    def test_cold_spares_cap_r_by_s_plus_w(self):
        """Without spare failures, resources in repair only come from
        active slots (via w) or previously-consumed spares."""
        chain = build_failover_chain(4, 4, 2, failover_mode())
        assert all(r <= 2 + w for r, w in chain.states)

    def test_spare_susceptibility_adds_transitions_not_states(self):
        """Spare failures add (r+1, w) edges between states the active
        failure/failover paths already reach: same states, more edges."""
        cold = build_failover_chain(4, 4, 2, failover_mode())
        hot = build_failover_chain(
            4, 4, 2, failover_mode(spare_susceptible=True))
        assert set(hot.states) == set(cold.states)
        assert len(hot.edges) > len(cold.edges)

    def test_truncation_caps_w(self):
        n, m, s = 200, 200, 2
        chain = build_failover_chain(n, m, s, failover_mode())
        w_cap = (n - m + 1) + s + _TRUNCATION_MARGIN
        assert max(w for _, w in chain.states) <= w_cap
        # Without the cap the space would be ~n*s; with it, bounded.
        assert chain.size < 40 * (w_cap + 2)


class TestSolverOutputsOnGoldenShapes:
    def test_single_resource_single_spare_counts(self):
        """n=1, s=1: the reachable set is exactly the 5 states
        {(0,0), (1,1), (1,0), (0,1), (2,1)}."""
        chain = build_failover_chain(1, 1, 1, failover_mode())
        assert set(chain.states) == {(0, 0), (1, 1), (1, 0), (0, 1),
                                     (2, 1)}

    def test_inplace_chain_size_is_n_plus_one(self):
        model = TierAvailabilityModel(
            "t", n=7, m=7, s=0,
            modes=(FailureModeEntry("glitch", Duration.days(10),
                                    Duration.minutes(2),
                                    Duration.minutes(5)),))
        unavailability, failures = _solve_inplace_chain(
            model, model.modes[0])
        assert 0 < unavailability < 1
        assert failures > 0

    def test_failover_solver_matches_rebuilt_chain(self):
        """The solver's probability of w >= 1 equals the direct
        evaluation on our replicated chain with real rates."""
        mode = failover_mode(mtbf_days=50, mttr_hours=24,
                             failover_minutes=10)
        model = TierAvailabilityModel("t", n=3, m=3, s=1, modes=(mode,))
        unavailability, _ = _solve_failover_chain(model, mode)

        lam = 1.0 / mode.mtbf.as_hours
        mu = 1.0 / mode.mttr.as_hours
        phi = 1.0 / mode.failover_time.as_hours
        n, s = 3, 1

        def transitions(state):
            r, w = state
            idle = s - r + w
            out = []
            if n - w > 0 and r < n + s:
                out.append(((r + 1, w + 1), (n - w) * lam))
            if min(w, idle) > 0:
                out.append(((r, w - 1), min(w, idle) * phi))
            if r > 0:
                out.append(((r - 1, w), r * mu))
            return out

        chain = ContinuousTimeMarkovChain((0, 0), transitions)
        direct = chain.probability_where(lambda state: 3 - state[1] < 3)
        assert unavailability == pytest.approx(direct, rel=1e-9)
