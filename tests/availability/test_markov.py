"""Tests for the Markov tier evaluation (per-mode chains)."""

import pytest

from repro.availability import (FailureModeEntry, TierAvailabilityModel,
                                markov)
from repro.availability.markov import evaluate_mode, evaluate_tier
from repro.units import Duration, MINUTES_PER_YEAR


def mode(name="hard", mtbf_days=100, mttr_hours=24, failover_minutes=5,
         spare_susceptible=False):
    return FailureModeEntry(name, Duration.days(mtbf_days),
                            Duration.hours(mttr_hours),
                            Duration.minutes(failover_minutes),
                            spare_susceptible)


def tier(n, m, s, modes):
    return TierAvailabilityModel("t", n=n, m=m, s=s, modes=tuple(modes))


class TestFailoverRule:
    def test_failover_used_when_repair_slower(self):
        assert mode(mttr_hours=24, failover_minutes=5).uses_failover

    def test_no_failover_when_repair_faster(self):
        fast = FailureModeEntry("glitch", Duration.days(10),
                                Duration.minutes(2), Duration.minutes(5))
        assert not fast.uses_failover

    def test_no_failover_without_spares(self):
        result = evaluate_mode(tier(2, 2, 0, [mode()]), mode())
        assert not result.used_failover

    def test_failover_with_spares(self):
        result = evaluate_mode(tier(2, 2, 1, [mode()]), mode())
        assert result.used_failover


class TestInPlaceChain:
    def test_single_resource_unavailability(self):
        """n=1, m=1: classic MTTR/(MTBF+MTTR)."""
        m = mode(mtbf_days=100, mttr_hours=24)
        result = evaluate_mode(tier(1, 1, 0, [m]), m)
        expected = 24.0 / (100 * 24 + 24)
        assert result.unavailability == pytest.approx(expected, rel=1e-9)

    def test_slack_masks_failures(self):
        """n=2, m=1: down only when both are down (independent)."""
        m = mode(mtbf_days=100, mttr_hours=24)
        q = 24.0 / (100 * 24 + 24)
        result = evaluate_mode(tier(2, 1, 0, [m]), m)
        assert result.unavailability == pytest.approx(q * q, rel=1e-9)

    def test_zero_mttr_means_zero_downtime(self):
        instant = FailureModeEntry("blip", Duration.days(10),
                                   Duration.ZERO, Duration.minutes(5))
        result = evaluate_mode(tier(3, 3, 0, [instant]), instant)
        assert result.unavailability == 0.0
        assert result.failures_per_year == pytest.approx(3 * 36.5)

    def test_failure_rate_scales_with_n(self):
        m = mode(mtbf_days=365, mttr_hours=1)
        small = evaluate_mode(tier(2, 2, 0, [m]), m)
        large = evaluate_mode(tier(10, 10, 0, [m]), m)
        assert large.failures_per_year == pytest.approx(
            5 * small.failures_per_year, rel=1e-2)


class TestFailoverChain:
    def test_failover_reduces_downtime(self):
        m = mode(mtbf_days=100, mttr_hours=38, failover_minutes=6)
        without = evaluate_mode(tier(4, 4, 0, [m]), m)
        with_spare = evaluate_mode(tier(4, 4, 1, [m]), m)
        assert with_spare.unavailability < without.unavailability / 20

    def test_first_order_downtime_estimate(self):
        """With ample spares, downtime ~ failure rate x failover time."""
        m = mode(mtbf_days=365, mttr_hours=4, failover_minutes=10)
        result = evaluate_mode(tier(2, 2, 2, [m]), m)
        failures_per_year = 2 * 1.0  # 2 resources, 1/yr each
        expected_minutes = failures_per_year * 10
        assert result.unavailability * MINUTES_PER_YEAR == pytest.approx(
            expected_minutes, rel=0.05)

    def test_second_spare_helps_when_repair_is_slow(self):
        m = mode(mtbf_days=20, mttr_hours=72, failover_minutes=5)
        one = evaluate_mode(tier(8, 8, 1, [m]), m)
        two = evaluate_mode(tier(8, 8, 2, [m]), m)
        assert two.unavailability < one.unavailability

    def test_spare_susceptibility_increases_downtime(self):
        cold = mode(mtbf_days=50, mttr_hours=24, failover_minutes=5,
                    spare_susceptible=False)
        hot = mode(mtbf_days=50, mttr_hours=24, failover_minutes=5,
                   spare_susceptible=True)
        cold_result = evaluate_mode(tier(4, 4, 1, [cold]), cold)
        hot_result = evaluate_mode(tier(4, 4, 1, [hot]), hot)
        assert hot_result.unavailability > cold_result.unavailability

    def test_hot_spare_failover_faster_than_cold(self):
        """Shorter failover time => less downtime (hot spares win).

        With ample spares the wait-for-repair term vanishes and the
        downtime is proportional to the failover time itself.
        """
        slow = mode(failover_minutes=10)
        fast = mode(failover_minutes=1)
        slow_result = evaluate_mode(tier(3, 3, 3, [slow]), slow)
        fast_result = evaluate_mode(tier(3, 3, 3, [fast]), fast)
        assert fast_result.unavailability == pytest.approx(
            slow_result.unavailability / 10, rel=0.05)

    def test_scarce_spares_queue_on_repair(self):
        """With one spare and slow repairs, downtime is dominated by the
        wait for repair, not the failover time: shrinking the failover
        time 10x must NOT shrink downtime 10x."""
        slow = mode(failover_minutes=10)
        fast = mode(failover_minutes=1)
        slow_result = evaluate_mode(tier(3, 3, 1, [slow]), slow)
        fast_result = evaluate_mode(tier(3, 3, 1, [fast]), fast)
        assert fast_result.unavailability > \
            slow_result.unavailability / 4

    def test_slack_plus_spare_compound(self):
        m = mode(mtbf_days=30, mttr_hours=24, failover_minutes=5)
        tight = evaluate_mode(tier(4, 4, 1, [m]), m)
        slack = evaluate_mode(tier(5, 4, 1, [m]), m)
        assert slack.unavailability < tight.unavailability / 10


class TestTierComposition:
    def test_modes_compose_independently(self):
        a = mode("a", mtbf_days=100, mttr_hours=10)
        b = mode("b", mtbf_days=50, mttr_hours=5)
        result = evaluate_tier(tier(1, 1, 0, [a, b]))
        ua = evaluate_mode(tier(1, 1, 0, [a]), a).unavailability
        ub = evaluate_mode(tier(1, 1, 0, [b]), b).unavailability
        expected = 1 - (1 - ua) * (1 - ub)
        assert result.unavailability == pytest.approx(expected, rel=1e-12)

    def test_mode_results_attached(self):
        a = mode("a")
        b = mode("b")
        result = evaluate_tier(tier(2, 2, 0, [a, b]))
        assert [m.mode for m in result.mode_results] == ["a", "b"]

    def test_downtime_minutes_property(self):
        a = mode("a", mtbf_days=100, mttr_hours=24)
        result = evaluate_tier(tier(1, 1, 0, [a]))
        assert result.downtime_minutes == pytest.approx(
            result.unavailability * MINUTES_PER_YEAR)


class TestTruncation:
    def test_large_n_solvable(self):
        """n=1000 with spares must not explode the state space."""
        m = mode(mtbf_days=650, mttr_hours=38, failover_minutes=7)
        result = evaluate_mode(tier(1000, 1000, 2, [m]), m)
        assert 0.0 < result.unavailability < 1.0

    def test_truncated_close_to_untruncated(self):
        """For a mid-size chain the truncation must be invisible."""
        m = mode(mtbf_days=100, mttr_hours=38, failover_minutes=6)
        model = tier(10, 9, 1, [m])
        result = evaluate_mode(model, m)
        # Untruncated reference computed via generous margin.
        old_margin = markov._TRUNCATION_MARGIN
        markov._TRUNCATION_MARGIN = 10_000
        try:
            reference = evaluate_mode(model, m)
        finally:
            markov._TRUNCATION_MARGIN = old_margin
        assert result.unavailability == pytest.approx(
            reference.unavailability, rel=1e-6)
