"""Tests for the limited-repair-crew extension (Markov + simulation)."""

import pytest

from repro.availability import (FailureModeEntry, MarkovEngine,
                                TierAvailabilityModel, simulate_tier)
from repro.errors import ModelError
from repro.units import Duration


def mode(mtbf_days=30.0, mttr_hours=24.0, failover_minutes=5.0):
    return FailureModeEntry("hard", Duration.days(mtbf_days),
                            Duration.hours(mttr_hours),
                            Duration.minutes(failover_minutes))


def tier(n, m, s, crew=None, **mode_kwargs):
    return TierAvailabilityModel("t", n=n, m=m, s=s,
                                 modes=(mode(**mode_kwargs),),
                                 repair_crew=crew)


class TestModel:
    def test_default_unlimited(self):
        assert tier(2, 2, 0).repair_crew is None

    def test_rejects_zero_crew(self):
        with pytest.raises(ModelError):
            tier(2, 2, 0, crew=0)


class TestMarkovWithCrew:
    def test_large_crew_equals_unlimited(self):
        unlimited = MarkovEngine().evaluate_tier(tier(4, 3, 0))
        sized = MarkovEngine().evaluate_tier(tier(4, 3, 0, crew=4))
        assert sized.unavailability == pytest.approx(
            unlimited.unavailability, rel=1e-12)

    def test_single_crew_worse_than_unlimited(self):
        unlimited = MarkovEngine().evaluate_tier(
            tier(6, 5, 0, mtbf_days=10, mttr_hours=48))
        solo = MarkovEngine().evaluate_tier(
            tier(6, 5, 0, crew=1, mtbf_days=10, mttr_hours=48))
        assert solo.unavailability > unlimited.unavailability * 1.5

    def test_monotone_in_crew_size(self):
        values = [MarkovEngine().evaluate_tier(
            tier(6, 6, 0, crew=crew, mtbf_days=10,
                 mttr_hours=48)).unavailability
            for crew in (1, 2, 3, 6)]
        for worse, better in zip(values, values[1:]):
            assert better <= worse * (1 + 1e-12)

    def test_crew_applies_to_failover_chain(self):
        unlimited = MarkovEngine().evaluate_tier(
            tier(4, 4, 2, mtbf_days=5, mttr_hours=72))
        solo = MarkovEngine().evaluate_tier(
            tier(4, 4, 2, crew=1, mtbf_days=5, mttr_hours=72))
        assert solo.unavailability > unlimited.unavailability

    def test_machine_repairman_closed_form(self):
        """n=2, crew=1, m=2: the classic machine-repairman model.

        States 0,1,2 failed; pi1/pi0 = 2*rho, pi2/pi1 = rho with
        rho = lambda/mu (single repairman).
        """
        lam = 1.0 / (30 * 24.0)
        mu = 1.0 / 24.0
        rho = lam / mu
        pi0 = 1.0 / (1 + 2 * rho + 2 * rho * rho)
        expected_down = 1.0 - pi0  # m=2: down unless everything is up
        result = MarkovEngine().evaluate_tier(tier(2, 2, 0, crew=1))
        assert result.unavailability == pytest.approx(expected_down,
                                                      rel=1e-9)


class TestSimulationWithCrew:
    def test_agrees_with_markov(self):
        model = tier(5, 5, 0, crew=1, mtbf_days=20, mttr_hours=24)
        markov = MarkovEngine().evaluate_tier(model)
        sim = simulate_tier(model, years=600, seed=21)
        tolerance = max(markov.unavailability * 0.12,
                        2.5 * sim.ci_halfwidth)
        assert abs(markov.unavailability - sim.tier.unavailability) \
            <= tolerance

    def test_agrees_with_markov_failover(self):
        model = tier(3, 3, 1, crew=1, mtbf_days=15, mttr_hours=48)
        markov = MarkovEngine().evaluate_tier(model)
        sim = simulate_tier(model, years=800, seed=22)
        tolerance = max(markov.unavailability * 0.12,
                        2.5 * sim.ci_halfwidth)
        assert abs(markov.unavailability - sim.tier.unavailability) \
            <= tolerance

    def test_crew_limit_increases_simulated_downtime(self):
        free = simulate_tier(tier(6, 6, 0, mtbf_days=10,
                                  mttr_hours=48),
                             years=300, seed=23)
        solo = simulate_tier(tier(6, 6, 0, crew=1, mtbf_days=10,
                                  mttr_hours=48),
                             years=300, seed=23)
        assert solo.tier.unavailability > free.tier.unavailability

    def test_queued_repairs_eventually_complete(self):
        result = simulate_tier(tier(8, 8, 0, crew=2, mtbf_days=5,
                                    mttr_hours=24),
                               years=100, seed=24)
        # Sanity: system recovers (not pinned at 100% down) and fails
        # at roughly the expected rate.
        assert 0.0 < result.unavailability < 1.0
        assert result.failure_events > 100
