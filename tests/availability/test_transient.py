"""Tests for transient analysis (uniformization)."""

import math

import pytest

from repro.availability import (ContinuousTimeMarkovChain,
                                availability_curve, interval_availability,
                                point_availability, time_to_steady_state,
                                transient_distribution)
from repro.errors import EvaluationError


def two_state(lam=0.02, mu=1.5):
    return ContinuousTimeMarkovChain(
        "up", lambda s: [("down", lam)] if s == "up" else [("up", mu)])


def closed_form(lam, mu, t):
    steady = mu / (lam + mu)
    return steady + (lam / (lam + mu)) * math.exp(-(lam + mu) * t)


class TestTransientDistribution:
    def test_time_zero_is_initial(self):
        distribution = transient_distribution(two_state(), "up", 0.0)
        assert distribution["up"] == 1.0
        assert distribution["down"] == 0.0

    def test_matches_closed_form(self):
        lam, mu = 0.02, 1.5
        chain = two_state(lam, mu)
        for t in (0.01, 0.5, 2.0, 20.0, 200.0):
            distribution = transient_distribution(chain, "up", t)
            assert distribution["up"] == pytest.approx(
                closed_form(lam, mu, t), abs=1e-9)

    def test_distribution_sums_to_one(self):
        distribution = transient_distribution(two_state(), "up", 3.7)
        assert sum(distribution.values()) == pytest.approx(1.0)

    def test_converges_to_steady_state(self):
        lam, mu = 0.1, 1.0
        chain = two_state(lam, mu)
        late = transient_distribution(chain, "up", 1000.0)
        steady = chain.steady_state()
        for state in ("up", "down"):
            assert late[state] == pytest.approx(steady[state], abs=1e-9)

    def test_large_qt_stable(self):
        """qt ~ 5e4: Poisson weights must not underflow to garbage."""
        chain = two_state(1.0, 50.0)
        distribution = transient_distribution(chain, "up", 1000.0)
        assert distribution["up"] == pytest.approx(50.0 / 51.0, rel=1e-6)

    def test_unknown_initial_state(self):
        with pytest.raises(EvaluationError):
            transient_distribution(two_state(), "ghost", 1.0)

    def test_negative_time(self):
        with pytest.raises(EvaluationError):
            transient_distribution(two_state(), "up", -1.0)

    def test_birth_death_transient(self):
        """3 independent machines: P(all up at t) = (p_up(t))^3."""
        lam, mu = 0.05, 2.0

        def transitions(k):
            out = []
            if k < 3:
                out.append((k + 1, (3 - k) * lam))
            if k > 0:
                out.append((k - 1, k * mu))
            return out

        chain = ContinuousTimeMarkovChain(0, transitions)
        for t in (0.1, 1.0, 10.0):
            distribution = transient_distribution(chain, 0, t)
            single = closed_form(lam, mu, t)
            assert distribution[0] == pytest.approx(single ** 3,
                                                    abs=1e-9)


class TestAvailabilityFunctions:
    def test_point_availability_monotone_from_fresh(self):
        chain = two_state()
        values = availability_curve(chain, "up", lambda s: s == "up",
                                    [0.0, 0.5, 1.0, 5.0, 50.0])
        assert values[0] == 1.0
        assert all(a >= b - 1e-12 for a, b in zip(values, values[1:]))

    def test_interval_availability_between_point_and_one(self):
        lam, mu = 0.02, 1.5
        chain = two_state(lam, mu)
        interval = interval_availability(chain, "up",
                                         lambda s: s == "up", 10.0)
        point = point_availability(chain, "up", lambda s: s == "up",
                                   10.0)
        assert point <= interval <= 1.0

    def test_interval_availability_converges_to_steady(self):
        lam, mu = 0.2, 2.0
        chain = two_state(lam, mu)
        long_run = interval_availability(chain, "up",
                                         lambda s: s == "up", 500.0,
                                         samples=64)
        assert long_run == pytest.approx(mu / (lam + mu), rel=1e-2)

    def test_interval_validation(self):
        chain = two_state()
        with pytest.raises(EvaluationError):
            interval_availability(chain, "up", lambda s: True, 0.0)
        with pytest.raises(EvaluationError):
            interval_availability(chain, "up", lambda s: True, 1.0,
                                  samples=1)

    def test_time_to_steady_state(self):
        lam, mu = 0.02, 1.5
        chain = two_state(lam, mu)
        t = time_to_steady_state(chain, "up", lambda s: s == "up",
                                 tolerance=0.001)
        # Relaxation rate lam+mu ~ 1.52/h: converges within a few hours.
        assert t <= 16.0
        value = point_availability(chain, "up", lambda s: s == "up", t)
        steady = mu / (lam + mu)
        assert value == pytest.approx(steady, rel=0.001)

    def test_time_to_steady_state_never_up_rejected(self):
        chain = ContinuousTimeMarkovChain("down", lambda s: [])
        with pytest.raises(EvaluationError):
            time_to_steady_state(chain, "down", lambda s: s == "up")


class TestOnPaperTierModel:
    def test_fresh_deployment_beats_steady_state(self, paper_infra):
        """A freshly deployed family-6 tier starts fully up; its point
        availability decays toward (and stays above) steady state."""
        from repro.availability import (FailureModeEntry,
                                        TierAvailabilityModel)
        from repro.availability.markov import evaluate_tier
        from repro.units import Duration

        mode = FailureModeEntry("hard", Duration.days(130),
                                Duration.hours(38),
                                Duration.minutes(6.5))
        model = TierAvailabilityModel("app", n=5, m=5, s=1, modes=(mode,))
        steady = 1.0 - evaluate_tier(model).unavailability

        # Rebuild the same chain the Markov engine uses, transiently.
        lam = 1.0 / mode.mtbf.as_hours
        mu = 1.0 / mode.mttr.as_hours
        phi = 1.0 / mode.failover_time.as_hours

        def transitions(state):
            r, w = state
            idle = 1 - r + w
            out = []
            if 5 - w > 0:
                out.append(((r + 1, w + 1), (5 - w) * lam))
            if min(w, idle) > 0:
                out.append(((r, w - 1), min(w, idle) * phi))
            if r > 0:
                out.append(((r - 1, w), r * mu))
            return out

        chain = ContinuousTimeMarkovChain((0, 0), transitions)
        early = point_availability(chain, (0, 0),
                                   lambda s: 5 - s[1] >= 5, 1.0)
        late = point_availability(chain, (0, 0),
                                  lambda s: 5 - s[1] >= 5, 5000.0)
        assert early > late
        assert late == pytest.approx(steady, rel=1e-3)
