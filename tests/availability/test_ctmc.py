"""Tests for the CTMC solver against closed-form queueing results."""

import math

import pytest

from repro.availability import ContinuousTimeMarkovChain
from repro.errors import EvaluationError


def two_state(failure_rate, repair_rate):
    def transitions(state):
        if state == "up":
            return [("down", failure_rate)]
        return [("up", repair_rate)]
    return ContinuousTimeMarkovChain("up", transitions)


class TestTwoState:
    def test_steady_state_matches_closed_form(self):
        lam, mu = 0.01, 2.0
        chain = two_state(lam, mu)
        pi = chain.steady_state()
        assert pi["down"] == pytest.approx(lam / (lam + mu), rel=1e-9)
        assert pi["up"] == pytest.approx(mu / (lam + mu), rel=1e-9)

    def test_probabilities_sum_to_one(self):
        pi = two_state(0.3, 0.7).steady_state()
        assert sum(pi.values()) == pytest.approx(1.0)

    def test_extreme_rate_ratio(self):
        # Stiff chain: rates 9 orders of magnitude apart.
        pi = two_state(1e-6, 1e3).steady_state()
        assert pi["down"] == pytest.approx(1e-9, rel=1e-6)


class TestBirthDeath:
    def n_independent(self, n, lam, mu):
        """n independent machines: state = number failed."""
        def transitions(k):
            out = []
            if k < n:
                out.append((k + 1, (n - k) * lam))
            if k > 0:
                out.append((k - 1, k * mu))
            return out
        return ContinuousTimeMarkovChain(0, transitions)

    def test_binomial_distribution(self):
        n, lam, mu = 4, 0.2, 1.0
        q = lam / (lam + mu)
        pi = self.n_independent(n, lam, mu).steady_state()
        for k in range(n + 1):
            expected = math.comb(n, k) * q ** k * (1 - q) ** (n - k)
            assert pi[k] == pytest.approx(expected, rel=1e-9)

    def test_mm1_queue_truncated(self):
        """M/M/1 with capacity K: geometric steady state."""
        lam, mu, cap = 0.5, 1.0, 20
        rho = lam / mu

        def transitions(k):
            out = []
            if k < cap:
                out.append((k + 1, lam))
            if k > 0:
                out.append((k - 1, mu))
            return out

        pi = ContinuousTimeMarkovChain(0, transitions).steady_state()
        norm = (1 - rho) / (1 - rho ** (cap + 1))
        for k in (0, 1, 5, 20):
            assert pi[k] == pytest.approx(norm * rho ** k, rel=1e-9)


class TestLargeChains:
    def test_sparse_path_agrees_with_dense(self):
        """A chain just above the dense limit must match the same chain
        solved densely (shifted below the limit)."""
        def build(n, lam=0.01, mu=1.0):
            def transitions(k):
                out = []
                if k < n:
                    out.append((k + 1, (n - k) * lam))
                if k > 0:
                    out.append((k - 1, k * mu))
                return out
            return ContinuousTimeMarkovChain(0, transitions)

        big = build(2000)           # 2001 states: sparse path
        pi = big.steady_state()
        q = 0.01 / 1.01
        expected0 = (1 - q) ** 2000
        assert pi[0] == pytest.approx(expected0, rel=1e-6)

    def test_state_limit_enforced(self):
        def transitions(k):
            return [(k + 1, 1.0)]
        with pytest.raises(EvaluationError):
            ContinuousTimeMarkovChain(0, transitions, max_states=100)


class TestAPI:
    def test_expected_value(self):
        chain = two_state(1.0, 1.0)
        value = chain.expected_value(lambda s: 1.0 if s == "down" else 0.0)
        assert value == pytest.approx(0.5)

    def test_probability_where(self):
        chain = two_state(1.0, 3.0)
        assert chain.probability_where(lambda s: s == "down") == \
            pytest.approx(0.25)

    def test_negative_rate_rejected(self):
        def transitions(state):
            return [("x", -1.0)]
        with pytest.raises(EvaluationError):
            ContinuousTimeMarkovChain("a", transitions)

    def test_self_loops_ignored(self):
        def transitions(state):
            if state == 0:
                return [(0, 5.0), (1, 1.0)]
            return [(0, 1.0)]
        pi = ContinuousTimeMarkovChain(0, transitions).steady_state()
        assert pi[0] == pytest.approx(0.5)

    def test_absorbing_chain(self):
        def transitions(state):
            if state == 0:
                return [(1, 1.0)]
            return []
        pi = ContinuousTimeMarkovChain(0, transitions).steady_state()
        assert pi[1] == pytest.approx(1.0)
        assert pi[0] == pytest.approx(0.0, abs=1e-12)

    def test_single_state(self):
        chain = ContinuousTimeMarkovChain("only", lambda s: [])
        assert chain.steady_state() == {"only": 1.0}

    def test_states_and_size(self):
        chain = two_state(1.0, 1.0)
        assert chain.size == 2
        assert set(chain.states) == {"up", "down"}


class TestDotExport:
    def test_dot_structure(self):
        chain = two_state(0.5, 2.0)
        dot = chain.to_dot()
        assert dot.startswith("digraph ctmc {")
        assert dot.endswith("}")
        assert dot.count("->") == 2          # up->down, down->up
        assert "0.5" in dot and "2" in dot   # rates on edges

    def test_custom_labels_and_highlight(self):
        chain = two_state(1.0, 1.0)
        dot = chain.to_dot(label=lambda s: s.upper(),
                           highlight=lambda s: s == "down")
        assert "UP" in dot and "DOWN" in dot
        assert dot.count("style=filled") == 1


class TestDegradedDenseSolve:
    """The lstsq fallback: noted, attributable, and error-chained."""

    def _failing_solve(self, monkeypatch):
        import numpy as np
        calls = {"n": 0}

        def refuse(*args, **kwargs):
            calls["n"] += 1
            raise np.linalg.LinAlgError("Singular matrix")
        monkeypatch.setattr(np.linalg, "solve", refuse)
        return calls

    def test_fallback_is_noted_for_provenance(self, monkeypatch):
        self._failing_solve(monkeypatch)
        chain = two_state(0.01, 2.0)
        pi = chain.steady_state()
        assert pi["down"] == pytest.approx(0.01 / 2.01, rel=1e-9)
        assert len(chain.solve_notes) == 1
        assert "least squares" in chain.solve_notes[0]
        assert "Singular matrix" in chain.solve_notes[0]

    def test_healthy_solve_leaves_no_notes(self):
        chain = two_state(0.01, 2.0)
        chain.steady_state()
        assert chain.solve_notes == []

    def test_failing_lstsq_chains_the_original_error(self, monkeypatch):
        import numpy as np
        self._failing_solve(monkeypatch)

        def lstsq_refuses(*args, **kwargs):
            raise np.linalg.LinAlgError("lstsq did not converge")
        monkeypatch.setattr(np.linalg, "lstsq", lstsq_refuses)
        chain = two_state(0.01, 2.0)
        with pytest.raises(np.linalg.LinAlgError,
                           match="did not converge") as excinfo:
            chain.steady_state()
        # The singular direct solve is the attributable root cause.
        cause = excinfo.value.__cause__
        assert isinstance(cause, np.linalg.LinAlgError)
        assert "Singular matrix" in str(cause)

    def test_markov_attaches_degradation_provenance(self, monkeypatch):
        """A degraded mode solve surfaces as EngineProvenance on the
        TierResult, so outcomes (and the cache) can attribute it."""
        self._failing_solve(monkeypatch)
        from repro.availability import (FailureModeEntry,
                                        TierAvailabilityModel)
        from repro.availability.markov import evaluate_tier
        from repro.units import Duration
        model = TierAvailabilityModel(
            "app", n=2, m=1, s=0,
            modes=(FailureModeEntry("hard", Duration.days(60),
                                    Duration.hours(8),
                                    Duration.minutes(4)),))
        result = evaluate_tier(model)
        assert result.provenance is not None
        assert result.provenance.engine == "markov"
        assert "least squares" in result.provenance.cause
        assert "hard" in result.provenance.cause
