"""Tests for the cost model."""

import pytest

from repro.cost import CostBreakdown, tier_cost
from repro.errors import EvaluationError
from repro.model import MechanismConfig, OperationalMode


def modes_for(resource, prefix):
    return resource.modes_for_prefix(prefix)


class TestCostBreakdown:
    def test_total(self):
        cost = CostBreakdown(100.0, 20.0, 5.0)
        assert cost.total == 125.0

    def test_addition(self):
        total = CostBreakdown(1, 2, 3) + CostBreakdown(10, 20, 30)
        assert total.active_components == 11
        assert total.spare_components == 22
        assert total.mechanisms == 33


class TestTierCost:
    def bronze(self, infra):
        return MechanismConfig(infra.mechanism("maintenanceA"),
                               {"level": "bronze"})

    def test_paper_family9_cost(self, paper_infra):
        """rC x6, bronze, no spares: 6*(2640+1700+380) = 28320."""
        rc = paper_infra.resource("rC")
        cost = tier_cost(paper_infra, rc, 6, 0, modes_for(rc, ()),
                         (self.bronze(paper_infra),))
        assert cost.total == pytest.approx(28320.0)
        assert cost.active_components == pytest.approx(6 * 4340.0)
        assert cost.mechanisms == pytest.approx(6 * 380.0)

    def test_inactive_spare_cheaper(self, paper_infra):
        """A cold rC spare costs 2400 (machine) + 0 + 0; plus contract."""
        rc = paper_infra.resource("rC")
        cost = tier_cost(paper_infra, rc, 5, 1, modes_for(rc, ()),
                         (self.bronze(paper_infra),))
        assert cost.spare_components == pytest.approx(2400.0)
        assert cost.mechanisms == pytest.approx(6 * 380.0)  # spares covered

    def test_hot_spare_costs_like_active(self, paper_infra):
        rc = paper_infra.resource("rC")
        prefix = ("machineA", "linux", "appserverA")
        cost = tier_cost(paper_infra, rc, 5, 1, modes_for(rc, prefix),
                         (self.bronze(paper_infra),))
        assert cost.spare_components == pytest.approx(2640 + 1700)

    def test_warm_spare_partial(self, paper_infra):
        rc = paper_infra.resource("rC")
        prefix = ("machineA", "linux")
        cost = tier_cost(paper_infra, rc, 5, 1, modes_for(rc, prefix),
                         (self.bronze(paper_infra),))
        assert cost.spare_components == pytest.approx(2640.0)

    def test_contract_level_changes_cost(self, paper_infra):
        rc = paper_infra.resource("rC")
        platinum = MechanismConfig(paper_infra.mechanism("maintenanceA"),
                                   {"level": "platinum"})
        cost = tier_cost(paper_infra, rc, 5, 0, modes_for(rc, ()),
                         (platinum,))
        assert cost.mechanisms == pytest.approx(5 * 1500.0)

    def test_tier_level_mechanism_charged_once(self, paper_infra):
        """Checkpoint has no deferring cost multiplier issue: its cost
        is 0, but a hypothetical per-tier mechanism is charged once."""
        rh = paper_infra.resource("rH")
        checkpoint = paper_infra.mechanism("checkpoint")
        interval = checkpoint.parameter("checkpoint_interval") \
            .values.values()[0]
        config = MechanismConfig(checkpoint,
                                 {"storage_location": "central",
                                  "checkpoint_interval": interval})
        bronze = self.bronze(paper_infra)
        cost = tier_cost(paper_infra, rh, 4, 0, modes_for(rh, ()),
                         (bronze, config))
        # mpi defers loss_window to checkpoint: 4 instances x $0 = 0.
        assert cost.mechanisms == pytest.approx(4 * 380.0)

    def test_machineb_resource_cost(self, paper_infra):
        """rE active: 93500 (machineB) + 200 (unix) + 1700 (appserverA)."""
        re = paper_infra.resource("rE")
        bronze_b = MechanismConfig(paper_infra.mechanism("maintenanceB"),
                                   {"level": "bronze"})
        cost = tier_cost(paper_infra, re, 1, 0, modes_for(re, ()),
                         (bronze_b,))
        assert cost.active_components == pytest.approx(95400.0)
        assert cost.mechanisms == pytest.approx(10100.0)

    def test_validation(self, paper_infra):
        rc = paper_infra.resource("rC")
        with pytest.raises(EvaluationError):
            tier_cost(paper_infra, rc, 0, 0, {}, ())
        with pytest.raises(EvaluationError):
            tier_cost(paper_infra, rc, 1, -1, {}, ())

    def test_unknown_spare_mode_defaults_inactive(self, paper_infra):
        rc = paper_infra.resource("rC")
        cost = tier_cost(paper_infra, rc, 1, 1, {}, ())
        assert cost.spare_components == pytest.approx(2400.0)

    def test_zero_mechanisms(self, paper_infra):
        rc = paper_infra.resource("rC")
        cost = tier_cost(paper_infra, rc, 2, 0, modes_for(rc, ()), ())
        assert cost.mechanisms == 0.0
