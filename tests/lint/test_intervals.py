"""Tests for the interval arithmetic behind the expression analyzer."""

import math

import pytest

from repro.lint.intervals import (BOOL, FALSE, TOP, TRUE, Interval, add,
                                  compare, divide, envelope, from_corners,
                                  mul, neg, power, sub)


class TestConstruction:
    def test_point_and_of(self):
        assert Interval.point(3.0) == Interval(3.0, 3.0)
        assert Interval.of(5.0, -1.0, 2.0) == Interval(-1.0, 5.0)

    def test_inverted_bounds_widen_to_top(self):
        assert Interval(2.0, 1.0) == TOP

    def test_nan_widens_to_top(self):
        assert Interval(math.nan, 1.0) == TOP
        assert Interval(0.0, math.nan) == TOP

    def test_from_corners_nan_widens(self):
        assert from_corners([1.0, math.nan]) == TOP
        assert from_corners([]) == TOP
        assert from_corners([3.0, -1.0]) == Interval(-1.0, 3.0)


class TestPredicates:
    def test_point_and_containment(self):
        assert Interval.point(2.0).is_point
        assert not Interval(1.0, 2.0).is_point
        assert Interval(1.0, 3.0).contains(2.0)
        assert not Interval(1.0, 3.0).contains(4.0)

    def test_zero_predicates(self):
        assert Interval(-1.0, 1.0).contains_zero
        assert Interval.point(0.0).is_zero
        assert not Interval(1.0, 2.0).contains_zero
        assert Interval(0.5, 2.0).strictly_positive
        assert Interval(-2.0, -0.5).strictly_negative

    def test_truthiness(self):
        assert Interval(1.0, 2.0).definitely_true
        assert Interval.point(0.0).definitely_false
        mixed = Interval(-1.0, 1.0)
        assert not mixed.definitely_true
        assert not mixed.definitely_false


class TestSetOps:
    def test_intersect(self):
        assert Interval(0.0, 5.0).intersect(Interval(3.0, 8.0)) == \
            Interval(3.0, 5.0)
        assert Interval(0.0, 1.0).intersect(Interval(2.0, 3.0)) is None

    def test_hull_and_envelope(self):
        assert Interval(0.0, 1.0).hull(Interval(4.0, 5.0)) == \
            Interval(0.0, 5.0)
        assert envelope([Interval(0.0, 1.0), Interval(-2.0, 0.5),
                         Interval(3.0, 3.0)]) == Interval(-2.0, 3.0)


class TestArithmetic:
    def test_add_sub_neg(self):
        a, b = Interval(1.0, 2.0), Interval(10.0, 20.0)
        assert add(a, b) == Interval(11.0, 22.0)
        assert sub(b, a) == Interval(8.0, 19.0)
        assert neg(a) == Interval(-2.0, -1.0)

    def test_add_degenerate_inf_widens(self):
        assert add(Interval(-math.inf, 0.0),
                   Interval(0.0, math.inf)) == TOP

    def test_mul_signs(self):
        assert mul(Interval(-2.0, 3.0), Interval(4.0, 5.0)) == \
            Interval(-10.0, 15.0)
        assert mul(Interval(-2.0, -1.0), Interval(-3.0, -2.0)) == \
            Interval(2.0, 6.0)

    def test_mul_zero_times_unbounded_is_zero_corner(self):
        # IEEE 0*inf is NaN; the transfer treats the limit as 0 so a
        # zero-containing factor cannot poison the bound.
        assert mul(Interval.point(0.0), TOP) == Interval.point(0.0)

    def test_divide_nonzero_denominator(self):
        assert divide(Interval(10.0, 20.0), Interval(2.0, 5.0)) == \
            Interval(2.0, 10.0)

    def test_divide_zero_containing_denominator_is_top(self):
        assert divide(Interval(1.0, 2.0), Interval(-1.0, 1.0)) == TOP


class TestPower:
    def test_positive_base_corners(self):
        outcome = power(Interval(2.0, 3.0), Interval(2.0, 2.0))
        assert outcome.error is None
        assert outcome.interval == Interval(4.0, 9.0)

    def test_even_integer_exponent_spanning_zero(self):
        outcome = power(Interval(-3.0, 2.0), Interval.point(2.0))
        assert outcome.error is None
        assert outcome.interval == Interval(0.0, 9.0)

    def test_zero_base_negative_exponent_always_fails(self):
        outcome = power(Interval.point(0.0), Interval.point(-1.0))
        assert outcome.error == "always"

    def test_zero_containing_base_negative_exponent_possible(self):
        outcome = power(Interval(-1.0, 1.0), Interval.point(-2.0))
        assert outcome.error == "possible"

    def test_negative_base_fractional_exponent_always_fails(self):
        outcome = power(Interval(-4.0, -2.0), Interval.point(0.5))
        assert outcome.error == "always"

    def test_maybe_negative_base_unknown_exponent_possible(self):
        outcome = power(Interval(-1.0, 2.0), Interval(0.3, 0.7))
        assert outcome.error == "possible"

    def test_overflowing_corner_possible(self):
        outcome = power(Interval(10.0, 10.0), Interval(1.0, 400.0))
        assert outcome.error == "possible"
        assert outcome.interval == TOP


class TestCompare:
    @pytest.mark.parametrize("op,a,b,expected", [
        ("<", Interval(0.0, 1.0), Interval(2.0, 3.0), TRUE),
        ("<", Interval(3.0, 4.0), Interval(1.0, 3.0), FALSE),
        ("<=", Interval(0.0, 2.0), Interval(2.0, 3.0), TRUE),
        (">", Interval(5.0, 6.0), Interval(1.0, 4.0), TRUE),
        (">=", Interval(0.0, 1.0), Interval(2.0, 3.0), FALSE),
        ("==", Interval.point(2.0), Interval.point(2.0), TRUE),
        ("==", Interval(0.0, 1.0), Interval(2.0, 3.0), FALSE),
        ("!=", Interval(0.0, 1.0), Interval(2.0, 3.0), TRUE),
        ("!=", Interval.point(2.0), Interval.point(2.0), FALSE),
    ])
    def test_decided(self, op, a, b, expected):
        assert compare(op, a, b) == expected

    def test_undecided_is_bool(self):
        assert compare("<", Interval(0.0, 5.0), Interval(3.0, 8.0)) == BOOL
        assert compare("==", Interval(0.0, 2.0), Interval(1.0, 3.0)) == BOOL
