"""The static candidate-space analyzer (:mod:`repro.lint.space`).

Covers the AVD500-series diagnostics, the exact cardinality count, the
certificate structure (probe choice, regime guard), and the strict
exit code.  The *soundness* of certificates against live searches is
pinned in ``tests/core/test_search_pruning.py`` and the property suite.
"""

import pytest

from repro.core import SearchLimits
from repro.lint import analyze_space, build_pruning_certificate
from repro.model import (AvailabilityMechanism, ComponentSlot, ComponentType,
                         CostSchedule, ExpressionPerformance, FailureMode,
                         FailureScope, InfrastructureModel, MechanismParameter,
                         MechanismRef, ResourceOption, ResourceType,
                         ServiceModel, Sizing, TableEffect, Tier)
from repro.units import ArithmeticRange, Duration, EnumeratedRange


def codes(report):
    return [diagnostic.code for diagnostic in report.report]


def build_infra(levels):
    """One-resource infrastructure whose contract mttr table is ``levels``."""
    contract = AvailabilityMechanism(
        "contract",
        parameters=(MechanismParameter(
            "level", EnumeratedRange([name for name, _ in levels])),),
        effects={
            "cost": TableEffect(
                "level", tuple((name, 100.0 * (index + 1))
                               for index, (name, _) in enumerate(levels))),
            "mttr": TableEffect("level", tuple(levels)),
        })
    box = ComponentType(
        "box",
        cost=CostSchedule(inactive=500.0, active=1000.0),
        failure_modes=(
            FailureMode("hard", Duration.days(365),
                        MechanismRef("contract"),
                        detect_time=Duration.minutes(1)),
            FailureMode("glitch", Duration.days(30), Duration.ZERO),
        ))
    resource = ResourceType(
        "node",
        slots=(ComponentSlot("box", None, Duration.minutes(1)),),
        reconfig_time=Duration.seconds(30))
    return InfrastructureModel(components=[box], mechanisms=[contract],
                               resources=[resource])


def build_service():
    option = ResourceOption(
        "node", Sizing.DYNAMIC, FailureScope.RESOURCE,
        ArithmeticRange(1, 100, 1),
        ExpressionPerformance("100*n"))
    return ServiceModel("svc", [Tier("web", [option])])


@pytest.fixture
def infra():
    return build_infra([("basic", Duration.hours(24)),
                        ("fast", Duration.hours(4))])


@pytest.fixture
def service():
    return build_service()


class TestCardinality:
    def test_exact_structure_count(self, infra, service):
        # load 150 -> n_min=2; totals 2 and 3 give the (n,s) splits
        # (2,0), (2,1), (3,0); times 2 contract levels = 6 structures.
        report = analyze_space(infra, service,
                               limits=SearchLimits(max_redundancy=1),
                               load=150.0)
        assert report.structures == 6
        assert "AVD500" in codes(report)
        tier = report.tiers[0]
        assert tier.tier == "web"
        assert tier.options[0].n_min == 2
        assert tier.options[0].combos == 2
        classes = tier.equivalence_classes()
        assert classes is not None and classes <= report.structures

    def test_no_load_uses_smallest_declared_sizing(self, infra, service):
        report = analyze_space(infra, service,
                               limits=SearchLimits(max_redundancy=0))
        assert report.tiers[0].options[0].n_min == 1
        assert report.structures == 2  # (1,0) x 2 levels

    def test_empty_space_is_an_error(self, infra, service):
        report = analyze_space(infra, service, load=2e6)
        assert "AVD501" in codes(report)
        assert report.structures == 0
        assert report.exit_code() == 1

    def test_report_shapes(self, infra, service):
        report = analyze_space(infra, service, load=150.0,
                               max_downtime=Duration.minutes(30))
        data = report.to_dict()
        assert data["structures"] == report.structures
        assert data["load"] == 150.0
        assert data["max_downtime_minutes"] == 30.0
        assert data["tiers"][0]["options"][0]["resource"] == "node"
        text = report.to_text()
        assert "candidate space" in text and "tier web" in text


class TestFeasibilityDiagnostics:
    def test_infeasible_zero_redundancy_region_warns(self, infra, service):
        # Even the fastest contract leaves ~4h repairs on a 365d MTBF:
        # a redundancy-free tier provably exceeds a 30 min/yr budget.
        report = analyze_space(infra, service, load=150.0,
                               max_downtime=Duration.minutes(30))
        assert "AVD502" in codes(report)
        assert report.exit_code() == 0
        assert report.exit_code(strict=True) == 1

    def test_generous_target_does_not_warn(self, infra, service):
        report = analyze_space(infra, service, load=150.0,
                               max_downtime=Duration.hours(200))
        assert "AVD502" not in codes(report)

    def test_redundant_dimension_warns(self, service):
        same = build_infra([("basic", Duration.hours(24)),
                            ("premium", Duration.hours(24))])
        report = analyze_space(same, service, load=150.0)
        assert "AVD503" in codes(report)

    def test_contradictory_fixed_settings_error(self, infra, service):
        limits = SearchLimits(
            fixed_settings={"contract": {"level": "gold"}})
        report = analyze_space(infra, service, limits=limits, load=150.0)
        assert "AVD507" in codes(report)
        assert report.exit_code() == 1

    def test_coverage_diagnostics_present(self, infra, service):
        report = analyze_space(infra, service, load=150.0)
        assert "AVD504" in codes(report)
        assert "AVD505" in codes(report)
        assert report.dominance_covered > 0


class TestCertificates:
    def test_probe_is_the_pointwise_minimal_combo(self, infra, service):
        report = analyze_space(infra, service, load=150.0)
        certificates = report.certificates()
        certificate = certificates["web"]["node"]
        assert certificate.combo_count == 2
        group = certificate.group_for(False, ())
        assert group is not None
        # "fast" (4h) dominates "basic" (24h): one probe, one dominated.
        probe = certificate.combo_keys[group.least_index]
        assert probe in certificate.combo_keys
        assert len(group.dominated) == 1
        assert group.least_index not in group.dominated
        assert group.lemma == "mttr-monotone/in-place"

    def test_spare_group_has_its_own_lemma(self, infra, service):
        report = analyze_space(infra, service, load=150.0)
        certificate = report.certificates()["web"]["node"]
        group = certificate.group_for(True, ())
        assert group is not None
        assert group.lemma == "mttr-monotone/fixed-failover-regime"

    def test_regime_flip_blocks_spare_group_dominance(self, service):
        # failover ~= 32.5 min sits between the two contract MTTRs, so
        # "fast" repairs in place while "basic" fails over: different
        # model structure, no provable order with spares -- but the
        # in-place group is untouched by the failover rule.
        flip = build_infra([("basic", Duration.hours(24)),
                            ("fast", Duration.minutes(5))])
        flip = InfrastructureModel(
            components=list(flip.components),
            mechanisms=list(flip.mechanisms),
            resources=[ResourceType(
                "node",
                slots=(ComponentSlot("box", None, Duration.minutes(1)),),
                reconfig_time=Duration.minutes(30))])
        report = analyze_space(flip, service, load=150.0)
        certificate = report.certificates()["web"]["node"]
        assert certificate.group_for(False, ()) is not None
        assert certificate.group_for(True, ()) is None

    def test_trivial_combo_dimension_has_no_certificate(self, service):
        single = build_infra([("only", Duration.hours(8))])
        report = analyze_space(single, service, load=150.0)
        assert report.certificates() == {}

    def test_build_certificate_needs_two_combos(self, infra, service):
        from repro.core import DesignEvaluator
        evaluator = DesignEvaluator(infra, service)
        option = service.tiers[0].options[0]
        assert build_pruning_certificate(evaluator, "web", option,
                                         [()], [()]) is None
