"""Tests for the diagnostics core: spans, diagnostics, reports."""

import json

import pytest

from repro.lint import (CODES, RUNTIME_ERROR_CODES, Diagnostic, LintReport,
                        Severity, Span, default_severity, title)


class TestCodeRegistry:
    def test_every_code_has_severity_and_title(self):
        for code, info in CODES.items():
            assert code.startswith("AVD") and len(code) == 6
            assert isinstance(info.severity, Severity)
            assert info.title

    def test_runtime_error_codes_are_registered(self):
        assert RUNTIME_ERROR_CODES <= set(CODES)

    def test_default_severity_known_codes(self):
        assert default_severity("AVD104") is Severity.ERROR
        assert default_severity("AVD105") is Severity.WARNING
        assert default_severity("AVD210") is Severity.INFO

    def test_default_severity_unknown_code_is_error(self):
        assert default_severity("AVD999") is Severity.ERROR
        assert title("AVD999") == "unknown diagnostic"

    def test_title_lookup(self):
        assert title("AVD104") == "division by zero"


class TestSpan:
    def test_describe_line_only(self):
        assert Span(line=7).describe() == "line 7"

    def test_describe_offsets_and_excerpt(self):
        span = Span(line=3, start=4, end=9, source="100/(5-n)")
        assert span.describe() == "line 3, col 5-9, in '(5-n)'"

    def test_describe_empty_when_unknown(self):
        assert Span().describe() == ""

    def test_dict_round_trip(self):
        span = Span(line=2, start=1, end=4, source="a+b")
        assert Span.from_dict(span.to_dict()) == span


class TestDiagnostic:
    def test_new_uses_registry_severity(self):
        assert Diagnostic.new("AVD104", "boom").severity is Severity.ERROR
        assert Diagnostic.new("AVD105", "maybe").severity is Severity.WARNING

    def test_new_severity_override(self):
        upgraded = Diagnostic.new("AVD111", "always below 1",
                                  severity=Severity.ERROR)
        assert upgraded.severity is Severity.ERROR

    def test_legacy_text_with_and_without_context(self):
        with_ctx = Diagnostic.new("AVD201", "unknown resource type",
                                  context="tier 'web' option 'rZ'")
        assert with_ctx.legacy_text() == \
            "tier 'web' option 'rZ': unknown resource type"
        assert Diagnostic.new("AVD002", "bad model").legacy_text() == \
            "bad model"

    def test_format_includes_code_severity_span(self):
        diagnostic = Diagnostic.new("AVD104", "division by zero",
                                    span=Span(line=12), context="tier 'a'")
        text = diagnostic.format()
        assert text == ("AVD104 error: tier 'a': division by zero "
                        "[line 12]")

    def test_format_without_span(self):
        assert Diagnostic.new("AVD002", "oops").format() == \
            "AVD002 error: oops"

    def test_dict_round_trip(self):
        diagnostic = Diagnostic.new(
            "AVD105", "possible division by zero",
            span=Span(line=4, start=2, end=7, source="1/(n-2)"),
            context="tier 'web'")
        assert Diagnostic.from_dict(diagnostic.to_dict()) == diagnostic

    def test_dict_round_trip_spanless(self):
        diagnostic = Diagnostic.new("AVD208", "shared name")
        assert Diagnostic.from_dict(diagnostic.to_dict()) == diagnostic


def _report():
    return LintReport([
        Diagnostic.new("AVD210", "unused resource"),
        Diagnostic.new("AVD104", "division by zero", span=Span(line=2)),
        Diagnostic.new("AVD105", "possible division by zero"),
    ])


class TestLintReport:
    def test_counts_and_accessors(self):
        report = _report()
        assert report.counts() == (1, 1, 1)
        assert len(report) == 3
        assert [d.code for d in report.errors] == ["AVD104"]
        assert [d.code for d in report.warnings] == ["AVD105"]
        assert [d.code for d in report.infos] == ["AVD210"]
        assert report.has_errors

    def test_exit_codes(self):
        assert _report().exit_code() == 1
        warnings_only = LintReport([Diagnostic.new("AVD105", "w")])
        assert warnings_only.exit_code() == 0
        assert warnings_only.exit_code(strict=True) == 1
        infos_only = LintReport([Diagnostic.new("AVD210", "i")])
        assert infos_only.exit_code(strict=True) == 0
        assert LintReport().exit_code(strict=True) == 0

    def test_to_text_orders_errors_first(self):
        lines = _report().to_text().splitlines()
        assert lines[0].startswith("AVD104 error")
        assert lines[1].startswith("AVD105 warning")
        assert lines[2].startswith("AVD210 info")
        assert lines[3] == "1 error(s), 1 warning(s), 1 info(s)"

    def test_to_text_empty(self):
        assert LintReport().to_text() == "ok: no problems found"

    def test_json_round_trip(self):
        report = _report()
        payload = json.loads(report.to_json())
        assert payload["summary"] == {"errors": 1, "warnings": 1,
                                      "infos": 1}
        recovered = LintReport.from_json(report.to_json())
        assert recovered.diagnostics == report.diagnostics
        # Serializing again is a fixed point.
        assert recovered.to_json() == report.to_json()

    def test_add_and_extend(self):
        report = LintReport()
        report.add(Diagnostic.new("AVD104", "a"))
        report.extend([Diagnostic.new("AVD105", "b")])
        assert [d.code for d in report] == ["AVD104", "AVD105"]
