"""End-to-end tests for the ``repro lint`` subcommand."""

import io
import json

import pytest

from repro.cli import main
from repro.lint import LintReport


def run(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


INFRA_OK = """
component=cpu cost=3000
 failure=hard mtbf=650d mttr=<maintenanceA> detect_time=1m
mechanism=maintenanceA
 param=level range=[bronze,silver]
 cost(level)=[1000 2000]
 mttr(level)=[38h 15h]
resource=rA reconfig_time=0
 component=cpu depend=null startup=5m
"""

SERVICE_OK = """
application=shop
tier=web
 resource=rA sizing=dynamic failurescope=resource nActive=[1-8,+1]
  performance=expr:200*n
"""

#: mttr defers to a mechanism that does not exist (AVD203, error).
INFRA_DANGLING = INFRA_OK.replace("mttr=<maintenanceA>",
                                  "mttr=<maintenanceX>")

#: Possible division by zero in a piecewise branch (AVD105, warning).
SERVICE_DBZ = SERVICE_OK.replace("expr:200*n",
                                 "expr:n < 5 ? 100/(5-n) : 50")

#: Unbound variable in the performance expression (AVD101, error).
SERVICE_UNBOUND = SERVICE_OK.replace("expr:200*n", "expr:n*k")


@pytest.fixture
def spec_files(tmp_path):
    def write(infra_text, service_text):
        infra = tmp_path / "infra.spec"
        service = tmp_path / "service.spec"
        infra.write_text(infra_text)
        service.write_text(service_text)
        return ["--infrastructure", str(infra), "--service", str(service)]
    return write


class TestExitCodes:
    def test_clean_pair_exits_zero(self, spec_files):
        code, output = run(["lint"] + spec_files(INFRA_OK, SERVICE_OK))
        assert code == 0
        assert "ok: no problems found" in output

    def test_paper_models_are_clean(self):
        code, output = run(["lint", "--paper-ecommerce"])
        assert code == 0
        code, output = run(["lint", "--paper-scientific"])
        assert code == 0

    def test_dangling_mechanism_exits_one(self, spec_files):
        code, output = run(
            ["lint"] + spec_files(INFRA_DANGLING, SERVICE_OK))
        assert code == 1
        assert "AVD203" in output
        assert "'maintenanceX'" in output
        # Both views are reported with spans: the option that needs the
        # mechanism (service line 4) and the component that defers to it
        # (infrastructure line 2).
        assert "option 'rA'" in output and "[line 4]" in output
        assert "component 'cpu'" in output and "[line 2]" in output

    def test_unbound_variable_exits_one(self, spec_files):
        # The spec parser rejects free variables other than n up front,
        # so the finding surfaces as a spanned parse error.
        code, output = run(
            ["lint"] + spec_files(INFRA_OK, SERVICE_UNBOUND))
        assert code == 1
        assert "AVD001" in output
        assert "'k'" in output or "['k']" in output
        assert "[line 5]" in output

    def test_warning_exits_zero_without_strict(self, spec_files):
        code, output = run(["lint"] + spec_files(INFRA_OK, SERVICE_DBZ))
        assert code == 0
        assert "AVD105" in output

    def test_warning_exits_one_with_strict(self, spec_files):
        code, output = run(
            ["lint", "--strict"] + spec_files(INFRA_OK, SERVICE_DBZ))
        assert code == 1


class TestLoaderFailures:
    def test_spec_parse_error_becomes_avd001(self, spec_files):
        code, output = run(["lint"] + spec_files(
            "component=cpu cost=oops\n", SERVICE_OK))
        assert code == 1
        assert "AVD001" in output
        assert "[line 1]" in output

    def test_model_error_becomes_avd002(self, spec_files):
        duplicated = INFRA_OK + INFRA_OK  # duplicate component type
        code, output = run(["lint"] + spec_files(duplicated, SERVICE_OK))
        assert code == 1
        assert "AVD002" in output


class TestJsonOutput:
    def test_json_parses_and_round_trips(self, spec_files):
        code, output = run(
            ["lint", "--format", "json"]
            + spec_files(INFRA_DANGLING, SERVICE_DBZ))
        assert code == 1
        payload = json.loads(output)
        assert payload["summary"]["errors"] >= 1
        assert payload["summary"]["warnings"] >= 1
        report = LintReport.from_json(output)
        assert report.to_json() == output.rstrip("\n")
        assert {d.code for d in report} >= {"AVD203", "AVD105"}

    def test_json_span_fields(self, spec_files):
        code, output = run(
            ["lint", "--format", "json"]
            + spec_files(INFRA_OK, SERVICE_DBZ))
        payload = json.loads(output)
        (dbz,) = [d for d in payload["diagnostics"]
                  if d["code"] == "AVD105"]
        assert dbz["span"]["line"] == 5
        assert dbz["span"]["source"]


class TestSpaceAnalysis:
    def test_space_appends_avd500_series(self):
        code, output = run(["lint", "--paper-ecommerce", "--space",
                            "--load", "1000", "--downtime", "100m"])
        assert code == 0
        assert "AVD500" in output and "AVD505" in output
        assert "candidate space:" in output

    def test_space_json_carries_a_space_member(self):
        code, output = run(["lint", "--paper-ecommerce", "--space",
                            "--load", "1000", "--format", "json"])
        assert code == 0
        payload = json.loads(output)
        assert payload["space"]["structures"] > 0
        tiers = {tier["tier"] for tier in payload["space"]["tiers"]}
        assert tiers == {"web", "application", "database"}

    def test_space_strict_escalates_reachability_warnings(self):
        # The paper models have provably-infeasible zero-redundancy
        # regions at 100 min/yr (AVD502, warnings).
        argv = ["lint", "--paper-ecommerce", "--space",
                "--load", "1000", "--downtime", "100m"]
        code, output = run(argv + ["--strict"])
        assert code == 1
        assert "AVD502" in output

    def test_space_contradictory_fix_fails(self):
        code, output = run(["lint", "--paper-ecommerce", "--space",
                            "--load", "1000",
                            "--fix", "maintenanceA.level=diamond"])
        assert code == 1
        assert "AVD507" in output

    def test_space_skipped_when_models_are_broken(self, spec_files):
        code, output = run(["lint", "--space"]
                           + spec_files(INFRA_DANGLING, SERVICE_OK))
        assert code == 1
        assert "AVD203" in output
        assert "AVD500" not in output
