"""Tests for the model-level lint checks (AVD201-AVD213)."""

import pytest

from repro.lint import Severity, lint_infrastructure, lint_pair
from repro.model import (AvailabilityMechanism, CategoricalOverhead,
                         ComponentSlot, ComponentType, ConstantPerformance,
                         CostSchedule, ExpressionPerformance, FailureMode,
                         FailureScope, InfrastructureModel,
                         MechanismParameter, MechanismRef, MechanismUse,
                         ResourceOption, ResourceType, ServiceModel, Sizing,
                         TableEffect, TabulatedPerformance, Tier)
from repro.spec import DictResolver, parse_infrastructure, parse_service
from repro.units import ArithmeticRange, Duration, EnumeratedRange


def codes(report):
    return [d.code for d in report]


def build_infra(components=(), mechanisms=(), resources=()):
    return InfrastructureModel(components=list(components),
                               mechanisms=list(mechanisms),
                               resources=list(resources))


def simple_component(name="box", mtbf_days=365, mttr=Duration.hours(4)):
    return ComponentType(
        name, cost=CostSchedule.flat(100.0),
        failure_modes=(FailureMode("hard", Duration.days(mtbf_days), mttr,
                                   detect_time=Duration.minutes(1)),))


def node_resource(component="box", name="node"):
    return ResourceType(
        name, slots=(ComponentSlot(component, None, Duration.minutes(1)),),
        reconfig_time=Duration.seconds(30))


def simple_service(resource="node", n_low=1, n_high=4,
                   performance="100*n", mechanisms=()):
    option = ResourceOption(resource, Sizing.DYNAMIC, FailureScope.RESOURCE,
                            ArithmeticRange(n_low, n_high, 1),
                            ExpressionPerformance(performance),
                            mechanisms=tuple(mechanisms))
    return ServiceModel("svc", [Tier("web", [option])])


class TestPairingChecks:
    def test_unknown_resource_avd201_and_avd207(self):
        infra = build_infra([simple_component()], [], [node_resource()])
        report = lint_pair(infra, simple_service(resource="nope"))
        assert "AVD201" in codes(report)
        # Its only option being broken, the tier can never be designed.
        assert "AVD207" in codes(report)

    def test_unknown_mechanism_avd202(self):
        infra = build_infra([simple_component()], [], [node_resource()])
        service = simple_service(
            mechanisms=(MechanismUse("ghost"),))
        assert "AVD202" in codes(lint_pair(infra, service))

    def test_instance_cap_below_minimum_avd205(self):
        capped = ComponentType(
            "box", cost=CostSchedule.flat(100.0),
            failure_modes=(FailureMode("hard", Duration.days(365),
                                       Duration.hours(4)),),
            max_instances=2)
        infra = build_infra([capped], [], [node_resource()])
        report = lint_pair(infra, simple_service(n_low=3, n_high=6))
        assert "AVD205" in codes(report)
        assert "AVD207" in codes(report)

    def test_clean_pair_has_no_gating_findings(self):
        infra = build_infra([simple_component()], [], [node_resource()])
        report = lint_pair(infra, simple_service())
        assert not report.has_errors
        assert report.warnings == []


class TestInfrastructureChecks:
    def test_dangling_mttr_mechanism_avd203(self):
        component = simple_component(mttr=MechanismRef("ghost"))
        report = lint_infrastructure(build_infra([component]))
        assert codes(report) == ["AVD203"]
        assert "'ghost'" in report[0].message

    def test_mechanism_without_effect_avd204(self):
        cost_only = AvailabilityMechanism(
            "contract",
            parameters=(MechanismParameter(
                "level", EnumeratedRange(["a", "b"])),),
            effects={"cost": TableEffect("level",
                                         (("a", 1.0), ("b", 2.0)))})
        component = simple_component(mttr=MechanismRef("contract"))
        report = lint_infrastructure(build_infra([component], [cost_only]))
        assert codes(report) == ["AVD204"]

    def test_every_dangling_reference_reported(self):
        # InfrastructureModel.validate() stops at the first problem; the
        # lint pass reports each one.
        first = simple_component("a", mttr=MechanismRef("ghost1"))
        second = simple_component("b", mttr=MechanismRef("ghost2"))
        report = lint_infrastructure(build_infra([first, second]))
        assert codes(report) == ["AVD203", "AVD203"]

    def test_mttr_not_below_mtbf_avd206(self):
        component = simple_component(mtbf_days=1, mttr=Duration.hours(30))
        report = lint_infrastructure(build_infra([component]))
        assert codes(report) == ["AVD206"]
        assert report[0].severity is Severity.WARNING

    def test_mechanism_range_reaching_mtbf_avd209(self):
        slow = AvailabilityMechanism(
            "contract",
            parameters=(MechanismParameter(
                "level", EnumeratedRange(["slow", "fast"])),),
            effects={"mttr": TableEffect(
                "level", (("slow", Duration.hours(60)),
                          ("fast", Duration.hours(4))))})
        component = simple_component(mtbf_days=2,
                                     mttr=MechanismRef("contract"))
        report = lint_infrastructure(build_infra([component], [slow]))
        # One witness per (mode, mechanism), not one per bad setting.
        assert codes(report) == ["AVD209"]
        assert "'contract'" in report[0].message

    def test_shared_name_avd208(self):
        infra = build_infra([simple_component("node")], [],
                            [node_resource(component="node", name="node")])
        report = lint_infrastructure(infra)
        assert codes(report) == ["AVD208"]
        assert "component" in report[0].message
        assert "resource" in report[0].message


class TestUsageChecks:
    def test_unused_elements_avd210(self):
        spare_mechanism = AvailabilityMechanism(
            "spare_mech",
            parameters=(MechanismParameter(
                "level", EnumeratedRange(["x"])),),
            effects={"mttr": TableEffect("level",
                                         (("x", Duration.hours(1)),))})
        infra = build_infra(
            [simple_component(), simple_component("spare_box")],
            [spare_mechanism],
            [node_resource(), node_resource(name="spare_node")])
        report = lint_pair(infra, simple_service())
        unused = [d for d in report if d.code == "AVD210"]
        assert len(unused) == 3
        assert all(d.severity is Severity.INFO for d in unused)
        messages = " ".join(d.message for d in unused)
        assert "'spare_box'" in messages
        assert "'spare_mech'" in messages
        assert "'spare_node'" in messages

    def test_component_deferred_mechanism_counts_as_used(self):
        contract = AvailabilityMechanism(
            "contract",
            parameters=(MechanismParameter(
                "level", EnumeratedRange(["x"])),),
            effects={"mttr": TableEffect("level",
                                         (("x", Duration.hours(1)),))})
        component = simple_component(mttr=MechanismRef("contract"))
        infra = build_infra([component], [contract], [node_resource()])
        assert "AVD210" not in codes(lint_pair(infra, simple_service()))


class TestExpressionChecks:
    def test_performance_expression_analyzed(self):
        infra = build_infra([simple_component()], [], [node_resource()])
        service = simple_service(performance="100/(n-2)", n_high=4)
        report = lint_pair(infra, service)
        assert "AVD105" in codes(report)
        (finding,) = [d for d in report if d.code == "AVD105"]
        assert "tier 'web'" in finding.context

    def test_tabulated_gap_avd213(self):
        option = ResourceOption(
            "node", Sizing.DYNAMIC, FailureScope.RESOURCE,
            ArithmeticRange(1, 8, 1),
            TabulatedPerformance([(1, 100.0), (4, 400.0)]))
        service = ServiceModel("svc", [Tier("web", [option])])
        infra = build_infra([simple_component()], [], [node_resource()])
        report = lint_pair(infra, service)
        (finding,) = [d for d in report if d.code == "AVD213"]
        assert "[1, 4]" in finding.message

    def test_non_positive_constant_performance_avd110(self):
        option = ResourceOption(
            "node", Sizing.DYNAMIC, FailureScope.RESOURCE,
            ArithmeticRange(1, 4, 1), ConstantPerformance(0.0))
        service = ServiceModel("svc", [Tier("web", [option])])
        infra = build_infra([simple_component()], [], [node_resource()])
        assert "AVD110" in codes(lint_pair(infra, service))


def checkpoint_mechanism(categories=("central", "peer"),
                         with_interval=True):
    parameters = [MechanismParameter(
        "storage_location", EnumeratedRange(list(categories)))]
    if with_interval:
        parameters.append(MechanismParameter(
            "checkpoint_interval",
            EnumeratedRange(["10m", "1h", "4h"])))
    return AvailabilityMechanism("checkpoint", parameters=tuple(parameters),
                                 effects={})


def overhead_service(overhead):
    option = ResourceOption(
        "node", Sizing.DYNAMIC, FailureScope.RESOURCE,
        ArithmeticRange(1, 4, 1), ExpressionPerformance("100*n"),
        mechanisms=(MechanismUse("checkpoint", overhead),))
    return ServiceModel("svc", [Tier("web", [option])])


class TestOverheadChecks:
    def _lint(self, overhead, mechanism=None):
        infra = build_infra([simple_component()],
                            [mechanism or checkpoint_mechanism()],
                            [node_resource()])
        return lint_pair(infra, overhead_service(overhead))

    def test_complete_overhead_clean(self):
        report = self._lint(CategoricalOverhead(
            "storage_location",
            {"central": "max(10/cpi, 1)", "peer": "max(20/cpi, 1)"}))
        assert not report.has_errors
        assert report.warnings == []

    def test_missing_category_avd211(self):
        report = self._lint(CategoricalOverhead(
            "storage_location", {"central": "max(10/cpi, 1)"}))
        (finding,) = [d for d in report if d.code == "AVD211"]
        assert "'peer'" in finding.message
        assert finding.severity is Severity.ERROR

    def test_extra_category_avd212(self):
        report = self._lint(CategoricalOverhead(
            "storage_location",
            {"central": "max(10/cpi, 1)", "peer": "max(20/cpi, 1)",
             "cloud": "max(30/cpi, 1)"}))
        (finding,) = [d for d in report if d.code == "AVD212"]
        assert "'cloud'" in finding.message
        assert finding.severity is Severity.INFO

    def test_unknown_category_parameter_avd211(self):
        report = self._lint(CategoricalOverhead(
            "placement", {"central": "max(10/cpi, 1)"}))
        findings = [d for d in report if d.code == "AVD211"]
        assert any("'placement'" in d.message for d in findings)

    def test_interval_variable_without_parameter_avd211(self):
        report = self._lint(
            CategoricalOverhead(
                "storage_location",
                {"central": "max(10/cpi, 1)", "peer": "1"}),
            mechanism=checkpoint_mechanism(with_interval=False))
        findings = [d for d in report if d.code == "AVD211"]
        assert any("'cpi'" in d.message for d in findings)

    def test_overhead_below_one_avd111(self):
        report = self._lint(CategoricalOverhead(
            "storage_location", {"central": "0.5", "peer": "2"}))
        (finding,) = [d for d in report if d.code == "AVD111"]
        assert "'central'" in finding.context

    def test_unknown_mechanism_skips_overhead_analysis(self):
        infra = build_infra([simple_component()], [], [node_resource()])
        overhead = CategoricalOverhead("storage_location", {"central": "2"})
        report = lint_pair(infra, overhead_service(overhead))
        assert "AVD202" in codes(report)
        assert "AVD211" not in codes(report)


INFRA_SPEC = """
component=cpu cost=3000
 failure=hard mtbf=650d mttr=<maintenanceX> detect_time=1m
mechanism=maintenanceA
 param=level range=[bronze,silver]
 cost(level)=[1000 2000]
 mttr(level)=[38h 15h]
resource=rA reconfig_time=0
 component=cpu depend=null startup=5m
"""

SERVICE_SPEC = """
application=shop
tier=web
 resource=rA sizing=dynamic failurescope=resource nActive=[1-8,+1]
  performance=expr:n < 5 ? 100/(5-n) : 50
"""


class TestSpecProvenance:
    def test_spans_point_into_the_documents(self):
        infra = parse_infrastructure(INFRA_SPEC, validate=False)
        service = parse_service(SERVICE_SPEC, DictResolver())
        report = lint_pair(infra, service)

        danglers = [d for d in report if d.code == "AVD203"]
        assert danglers
        assert any(d.span is not None and d.span.line == 2
                   for d in danglers)

        (possible_dbz,) = [d for d in report if d.code == "AVD105"]
        # Points at the performance= line and carries expression offsets.
        assert possible_dbz.span.line == 5
        source = possible_dbz.span.source
        excerpt = source[possible_dbz.span.start:possible_dbz.span.end]
        assert excerpt == "100/(5-n)"

        (monotone,) = [d for d in report if d.code == "AVD109"]
        assert monotone.span.line == 5

    def test_unused_mechanism_span(self):
        infra = parse_infrastructure(INFRA_SPEC, validate=False)
        service = parse_service(SERVICE_SPEC, DictResolver())
        report = lint_pair(infra, service)
        (unused,) = [d for d in report if d.code == "AVD210"]
        assert "'maintenanceA'" in unused.message
        assert unused.span.line == 4
