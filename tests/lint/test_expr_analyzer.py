"""Tests for the expression static analyzer (AVD100-AVD111)."""

import pytest

from repro.expr import Expression
from repro.lint import (Severity, analyze_expression, analyze_overhead,
                        analyze_performance)
from repro.lint.intervals import Interval


def codes(diagnostics):
    return [d.code for d in diagnostics]


def analyze(source, env=None, **kwargs):
    return analyze_expression(source, env or {}, **kwargs)


class TestSyntaxAndBinding:
    def test_parse_error_avd100(self):
        analysis = analyze("1 +")
        assert codes(analysis.diagnostics) == ["AVD100"]
        assert not analysis.provably_safe

    def test_parse_error_span_points_at_offset(self):
        analysis = analyze("2 * * 3", line=9)
        (diagnostic,) = analysis.diagnostics
        assert diagnostic.code == "AVD100"
        assert diagnostic.span.line == 9
        assert diagnostic.span.start == 4

    def test_unbound_variable_avd101(self):
        analysis = analyze("n + k", {"n": Interval(1.0, 5.0)})
        (diagnostic,) = analysis.diagnostics
        assert diagnostic.code == "AVD101"
        assert "'k'" in diagnostic.message

    def test_bound_variables_clean(self):
        analysis = analyze("n * 100", {"n": Interval(1.0, 5.0)})
        assert analysis.diagnostics == []
        assert analysis.provably_safe
        assert analysis.result == Interval(100.0, 500.0)

    def test_required_variable_unused_avd102(self):
        analysis = analyze("500", {"n": Interval(1.0, 5.0)},
                           require_used=("n",))
        assert codes(analysis.diagnostics) == ["AVD102"]
        # AVD102 is advisory, not a runtime hazard.
        assert analysis.provably_safe

    def test_unknown_function_avd103(self):
        analysis = analyze("foo(1)")
        assert codes(analysis.diagnostics) == ["AVD103"]

    def test_bad_arity_avd103(self):
        analysis = analyze("max()")
        assert codes(analysis.diagnostics) == ["AVD103"]
        assert analyze("sqrt(1, 2)").diagnostics[0].code == "AVD103"


class TestDivision:
    def test_certain_division_by_zero_avd104(self):
        analysis = analyze("1 / (n * 0)", {"n": Interval(1.0, 5.0)})
        assert codes(analysis.diagnostics) == ["AVD104"]
        assert analysis.diagnostics[0].severity is Severity.ERROR

    def test_interval_analysis_is_not_relational(self):
        # n - n is exactly 0 at runtime, but intervals treat the two
        # occurrences independently: [-4, 4], a *possible* zero.
        analysis = analyze("1 / (n - n)", {"n": Interval(1.0, 5.0)})
        assert codes(analysis.diagnostics) == ["AVD105"]

    def test_possible_division_by_zero_avd105(self):
        analysis = analyze("1 / (n - 3)", {"n": Interval(1.0, 5.0)})
        (diagnostic,) = analysis.diagnostics
        assert diagnostic.code == "AVD105"
        assert diagnostic.severity is Severity.WARNING
        assert not analysis.provably_safe

    def test_nonzero_denominator_clean(self):
        analysis = analyze("100 / n", {"n": Interval(1.0, 5.0)})
        assert analysis.diagnostics == []
        assert analysis.result == Interval(20.0, 100.0)

    def test_duplicate_finding_reported_once(self):
        # The conditional analyzes the same division under both refined
        # environments; the dedup key collapses identical findings.
        analysis = analyze("n > 3 ? 1/(n-3) : 2",
                           {"n": Interval(0.0, 10.0)})
        assert codes(analysis.diagnostics).count("AVD105") <= 1


class TestDomainErrors:
    def test_log_never_positive_avd106(self):
        analysis = analyze("log(n - 10)", {"n": Interval(1.0, 5.0)})
        assert codes(analysis.diagnostics) == ["AVD106"]

    def test_log_possibly_non_positive_avd107(self):
        analysis = analyze("log(n - 2)", {"n": Interval(1.0, 5.0)})
        assert codes(analysis.diagnostics) == ["AVD107"]

    def test_log_strictly_positive_clean(self):
        analysis = analyze("log(n)", {"n": Interval(1.0, 5.0)})
        assert analysis.diagnostics == []

    def test_log_base_one_avd106(self):
        assert codes(analyze("log(5, 1)").diagnostics) == ["AVD106"]

    def test_log_base_spanning_one_avd107(self):
        analysis = analyze("log(5, n)", {"n": Interval(0.5, 2.0)})
        assert codes(analysis.diagnostics) == ["AVD107"]

    def test_sqrt_always_negative_avd106(self):
        assert codes(analyze("sqrt(0 - 1)").diagnostics) == ["AVD106"]

    def test_sqrt_possibly_negative_avd107(self):
        analysis = analyze("sqrt(n - 2)", {"n": Interval(1.0, 5.0)})
        assert codes(analysis.diagnostics) == ["AVD107"]

    def test_power_negative_base_fractional_avd106(self):
        assert codes(analyze("(0 - 2) ^ 0.5").diagnostics) == ["AVD106"]

    def test_power_possibly_failing_avd107(self):
        analysis = analyze("n ^ 0.5", {"n": Interval(-1.0, 4.0)})
        assert codes(analysis.diagnostics) == ["AVD107"]

    def test_pow_function_mirrors_operator(self):
        assert codes(analyze("pow(0-2, 0.5)").diagnostics) == ["AVD106"]

    def test_exp_overflow_avd107(self):
        analysis = analyze("exp(n)", {"n": Interval(0.0, 1000.0)})
        assert codes(analysis.diagnostics) == ["AVD107"]

    def test_round_fractional_digits_avd107(self):
        assert codes(analyze("round(2.5, 1.5)").diagnostics) == ["AVD107"]

    def test_round_integral_digits_clean(self):
        assert analyze("round(2.5, 1)").diagnostics == []

    def test_floor_unbounded_avd107(self):
        analysis = analyze("floor(1 / n)", {"n": Interval(-1.0, 1.0)})
        assert "AVD107" in codes(analysis.diagnostics)

    def test_clamp_inverted_bounds_avd106(self):
        assert codes(analyze("clamp(5, 10, 1)").diagnostics) == ["AVD106"]

    def test_clamp_possibly_inverted_avd107(self):
        analysis = analyze("clamp(5, n, 3)", {"n": Interval(1.0, 4.0)})
        assert codes(analysis.diagnostics) == ["AVD107"]


class TestConditionals:
    def test_unreachable_false_branch_avd108(self):
        analysis = analyze("n > 0 ? 10 : 1/0", {"n": Interval(1.0, 5.0)})
        (diagnostic,) = analysis.diagnostics
        assert diagnostic.code == "AVD108"
        # The dead branch's division by zero is *not* reported.
        assert analysis.provably_safe
        assert analysis.result == Interval(10.0, 10.0)

    def test_unreachable_true_branch_avd108(self):
        analysis = analyze("n > 9 ? 1/0 : 10", {"n": Interval(1.0, 5.0)})
        assert codes(analysis.diagnostics) == ["AVD108"]

    def test_guard_refines_branch_domain(self):
        # The undecided guard narrows n to [1, 4] inside the true
        # branch, keeping the denominator away from zero; the paper's
        # piecewise overheads rely on this precision.
        analysis = analyze("n <= 4 ? 100/(5-n) : 50",
                           {"n": Interval(1.0, 8.0)})
        assert analysis.diagnostics == []
        assert analysis.provably_safe

    def test_refinement_is_conservative_across_guard_boundary(self):
        # Widening the domain past the guard makes the closed-bound
        # refinement keep n=5 in the true branch: flagged as possible.
        analysis = analyze("n < 5 ? 100/(5-n) : 50",
                           {"n": Interval(1.0, 8.0)})
        assert codes(analysis.diagnostics) == ["AVD105"]

    def test_infeasible_branch_skipped_without_report(self):
        # "n < 0" cannot hold on [1, 5]: guard decided, branch dead.
        analysis = analyze("n < 0 ? 1/0 : 7", {"n": Interval(1.0, 5.0)})
        assert codes(analysis.diagnostics) == ["AVD108"]
        assert analysis.result == Interval(7.0, 7.0)

    def test_not_guard_refines(self):
        analysis = analyze("not (n > 4) ? 100/(5-n) : 50",
                           {"n": Interval(1.0, 8.0)})
        assert analysis.diagnostics == []

    def test_short_circuit_and_skips_right(self):
        # "false and X" never evaluates X at runtime; the analyzer
        # honors the short circuit rather than flagging X.
        analysis = analyze("(1 > 2 and 1/0 > 1) ? 1 : 2")
        assert "AVD104" not in codes(analysis.diagnostics)


class TestInputForms:
    def test_compiled_expression_reanalyzed_from_source(self):
        # The optimizer folds "2 > 1 ? a : b" down to "a"; analysis must
        # look at the written source, not the folded AST.
        expression = Expression("2 > 1 ? n : 1/0")
        analysis = analyze_expression(expression,
                                      {"n": Interval(1.0, 2.0)})
        assert "AVD108" in codes(analysis.diagnostics)

    def test_result_interval_for_constant(self):
        assert analyze("42").result == Interval(42.0, 42.0)


class TestAnalyzePerformance:
    def test_clean_linear_performance(self):
        assert analyze_performance("200*n", [1, 2, 3, 4]) == []

    def test_non_monotone_avd109(self):
        diagnostics = analyze_performance("n < 5 ? 100*n : 50",
                                          range(1, 9))
        assert "AVD109" in codes(diagnostics)

    def test_non_positive_avd110(self):
        diagnostics = analyze_performance("100*(n-2)", [1, 2, 3])
        assert "AVD110" in codes(diagnostics)

    def test_each_sampling_code_reported_once(self):
        diagnostics = analyze_performance("0 - n", range(1, 30))
        assert codes(diagnostics).count("AVD109") == 1
        assert codes(diagnostics).count("AVD110") == 1

    def test_constant_expression_flags_unused_n(self):
        assert "AVD102" in codes(analyze_performance("500", [1, 2]))

    def test_unbound_variable_flows_through(self):
        diagnostics = analyze_performance("n * k", [1, 2])
        assert "AVD101" in codes(diagnostics)


class TestAnalyzeOverhead:
    def test_clean_overhead(self):
        diagnostics = analyze_overhead("max(10/cpi, 1)", [1, 2, 3],
                                       [1.0, 60.0])
        assert diagnostics == []

    def test_always_below_one_is_error(self):
        diagnostics = analyze_overhead("0.5", [1, 2])
        assert codes(diagnostics) == ["AVD111"]
        assert diagnostics[0].severity is Severity.ERROR

    def test_sampled_witness_below_one_is_warning(self):
        # 10/cpi dips below 1 only for cpi > 10: interval analysis keeps
        # the upper bound above 1, but sampling finds the witness.
        diagnostics = analyze_overhead("10/cpi", [1], [5.0, 20.0])
        assert codes(diagnostics) == ["AVD111"]
        assert diagnostics[0].severity is Severity.WARNING
        assert "cpi=20" in diagnostics[0].message
