"""Canonical keys: equality/inequality, the s==0 collapse, stability.

The contract (:mod:`repro.lint.canonical`): equal canonical keys imply
bit-identical tier availability under every engine, and the key of a
model is a pure function of its canonical form -- stable across
processes, interpreter hash randomization, and unit spellings.  The
differential half of the contract (equal key => equal TierResult) is
exercised by ``tests/properties/test_space_props.py``; this file pins
the key algebra itself.
"""

import json
import os
import subprocess
import sys

from repro.availability import FailureModeEntry, TierAvailabilityModel
from repro.core import DesignEvaluator, SearchLimits, TierSearch
from repro.core.design import TierDesign
from repro.lint import (CANONICAL_VERSION, canonical_form, canonical_json,
                        canonical_key, combo_key, design_canonical_key)
from repro.model import ServiceModel
from repro.units import Duration


def mode(name="box.hard", mtbf_h=1000.0, mttr_h=8.0, failover_m=5.0,
         susceptible=False):
    return FailureModeEntry(name=name,
                            mtbf=Duration.hours(mtbf_h),
                            mttr=Duration.hours(mttr_h),
                            failover_time=Duration.minutes(failover_m),
                            spare_susceptible=susceptible)


def model(n=3, m=2, s=0, modes=None, crew=None):
    return TierAvailabilityModel(name="web", n=n, m=m, s=s,
                                 modes=tuple(modes or (mode(),)),
                                 repair_crew=crew)


class TestKeyEquality:
    def test_identical_models_share_a_key(self):
        assert canonical_key(model()) == canonical_key(model())

    def test_unit_spelling_does_not_matter(self):
        hours = model(modes=[mode(mttr_h=2.0)])
        minutes = model(modes=[FailureModeEntry(
            name="box.hard", mtbf=Duration.minutes(1000.0 * 60.0),
            mttr=Duration.minutes(120.0),
            failover_time=Duration.seconds(300.0))])
        assert canonical_key(hours) == canonical_key(minutes)

    def test_spareless_models_ignore_failover_attributes(self):
        # With s == 0 no engine consults failover_time or
        # spare_susceptible, so the key must collapse over them.
        a = model(s=0, modes=[mode(failover_m=5.0, susceptible=False)])
        b = model(s=0, modes=[mode(failover_m=500.0, susceptible=True)])
        assert canonical_key(a) == canonical_key(b)

    def test_spares_expose_failover_attributes(self):
        a = model(s=1, modes=[mode(failover_m=5.0)])
        b = model(s=1, modes=[mode(failover_m=500.0)])
        assert canonical_key(a) != canonical_key(b)


class TestKeyInequality:
    def test_structure_fields_feed_the_key(self):
        base = canonical_key(model())
        assert canonical_key(model(n=4, m=2)) != base
        assert canonical_key(model(m=3)) != base
        assert canonical_key(model(s=1)) != base
        assert canonical_key(model(crew=1)) != base

    def test_mttr_feeds_the_key(self):
        assert (canonical_key(model(modes=[mode(mttr_h=8.0)]))
                != canonical_key(model(modes=[mode(mttr_h=4.0)])))

    def test_mode_order_is_significant(self):
        # Engines report mode_results in model order, so permuted modes
        # are *not* result-identical and must not collapse.
        first = model(modes=[mode("a"), mode("b", mtbf_h=500.0)])
        second = model(modes=[mode("b", mtbf_h=500.0), mode("a")])
        assert canonical_key(first) != canonical_key(second)


class TestStability:
    def test_canonical_json_is_compact_and_sorted(self):
        text = canonical_json(canonical_form(model()))
        assert ": " not in text and ", " not in text
        parsed = json.loads(text)
        assert parsed["v"] == CANONICAL_VERSION
        assert list(parsed) == sorted(parsed)

    def test_key_is_stable_across_hash_randomization(self):
        # The key must not depend on interpreter hash state: compute it
        # in subprocesses under different PYTHONHASHSEED values and
        # compare with the in-process value.
        script = (
            "from repro.availability import (FailureModeEntry,"
            " TierAvailabilityModel)\n"
            "from repro.lint import canonical_key\n"
            "from repro.units import Duration\n"
            "m = TierAvailabilityModel(name='web', n=3, m=2, s=1,"
            " modes=(FailureModeEntry(name='box.hard',"
            " mtbf=Duration.hours(1000.0), mttr=Duration.hours(8.0),"
            " failover_time=Duration.minutes(5.0)),"
            " FailureModeEntry(name='os.crash',"
            " mtbf=Duration.days(60.0), mttr=Duration.minutes(7.5),"
            " failover_time=Duration.minutes(5.0),"
            " spare_susceptible=True)))\n"
            "print(canonical_key(m))\n")
        keys = []
        for seed in ("0", "4242"):
            env = dict(os.environ, PYTHONHASHSEED=seed)
            env["PYTHONPATH"] = os.pathsep.join(
                [path for path in sys.path if path])
            output = subprocess.run(
                [sys.executable, "-c", script], env=env, check=True,
                capture_output=True, text=True).stdout.strip()
            keys.append(output)
        local = canonical_key(TierAvailabilityModel(
            name="web", n=3, m=2, s=1,
            modes=(FailureModeEntry(
                name="box.hard", mtbf=Duration.hours(1000.0),
                mttr=Duration.hours(8.0),
                failover_time=Duration.minutes(5.0)),
                FailureModeEntry(
                    name="os.crash", mtbf=Duration.days(60.0),
                    mttr=Duration.minutes(7.5),
                    failover_time=Duration.minutes(5.0),
                    spare_susceptible=True))))
        assert keys == [local, local]


class TestComboAndDesignKeys:
    def test_combo_key_ignores_config_order(self, paper_infra):
        first = list(
            paper_infra.mechanism("maintenanceA").configurations())
        second = list(
            paper_infra.mechanism("maintenanceB").configurations())
        a, b = first[0], second[0]
        assert combo_key((a, b)) == combo_key((b, a))
        assert combo_key((a,)) != combo_key((b,))
        assert combo_key((first[0],)) != combo_key((first[-1],))

    def test_design_key_matches_tier_model_key(self, paper_infra,
                                               app_tier_service):
        evaluator = DesignEvaluator(paper_infra, app_tier_service)
        search = TierSearch(evaluator, SearchLimits(max_redundancy=1))
        designs = [candidate.design for candidate in
                   search.enumerate_candidates("application", 1000.0)]
        assert designs
        for design in designs[:8]:
            assert design_canonical_key(evaluator, design, 1000.0) == \
                canonical_key(evaluator.tier_model(design, 1000.0))

    def test_spareless_designs_collapse_over_prefixes(self, paper_infra,
                                                      ecommerce):
        # Same structure, different (meaningless) spare prefix: the
        # design key must collapse because s == 0 drops the prefix's
        # entire influence on the model.
        service = ServiceModel("app-tier", [ecommerce.tier("application")])
        evaluator = DesignEvaluator(paper_infra, service)
        structural, _ = evaluator.required_mechanisms("application", "rC")
        search = TierSearch(evaluator, SearchLimits())
        combo = search._mechanism_combos(structural)[0]
        plain = TierDesign("application", "rC", 6, 0,
                           mechanism_configs=combo)
        decorated = TierDesign("application", "rC", 6, 0,
                               spare_active_prefix=("machineA",),
                               mechanism_configs=combo)
        assert design_canonical_key(evaluator, plain, 1000.0) == \
            design_canonical_key(evaluator, decorated, 1000.0)
