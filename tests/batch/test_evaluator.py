"""Batch planning, grouping, fallbacks and the cache/search hooks."""

import math

import numpy as np
import pytest

from repro.availability import (AnalyticEngine, FailureModeEntry,
                                MarkovEngine, TierAvailabilityModel,
                                TierResult)
from repro.availability.markov import evaluate_tier
from repro.batch import (TierBatcher, batch_target, solve_models,
                         solve_outcomes, transport_shape_key)
from repro.batch import evaluator as evaluator_module
from repro.errors import EvaluationError
from repro.resilience.events import DegradationLog
from repro.units import Duration


def model(name="t", n=3, m=2, s=0, mtbf_days=60.0, mttr_hours=8.0,
          failover_minutes=4.0, susceptible=False, crew=None):
    return TierAvailabilityModel(
        name, n=n, m=m, s=s,
        modes=(FailureModeEntry("hard", Duration.days(mtbf_days),
                                Duration.hours(mttr_hours),
                                Duration.minutes(failover_minutes),
                                spare_susceptible=susceptible),),
        repair_crew=crew)


def canonical(result):
    """Bit-faithful rendering of a TierResult for equality checks."""
    return (result.name, repr(result.unavailability),
            tuple((m.mode, repr(m.unavailability),
                   repr(m.failures_per_year), m.used_failover)
                  for m in result.mode_results))


class TestSolveModels:
    def test_mixed_shapes_match_scalar_bitwise(self):
        models = [
            model("a", n=2, m=1),
            model("b", n=5, m=3, mttr_hours=2.0),
            model("c", n=3, m=2, s=1),
            model("d", n=3, m=2, s=2, susceptible=True),
            model("e", n=2, m=1),        # same shape as "a", new rates
            model("a2", n=2, m=1),       # identical chain to "a"
        ]
        models[4] = model("e", n=2, m=1, mtbf_days=90.0)
        outcomes = solve_models(models)
        for tier_model, outcome in zip(models, outcomes):
            assert isinstance(outcome, TierResult)
            assert canonical(outcome) == \
                canonical(evaluate_tier(tier_model))

    def test_closed_form_members(self):
        """Instant repair without failover takes the closed form, same
        as the scalar path."""
        instant = TierAvailabilityModel(
            "i", n=4, m=2, s=0,
            modes=(FailureModeEntry("glitch", Duration.days(30),
                                    Duration.ZERO, Duration.ZERO),))
        outcome, = solve_models([instant])
        assert canonical(outcome) == canonical(evaluate_tier(instant))
        assert outcome.unavailability == 0.0

    def test_multi_mode_models(self):
        multi = TierAvailabilityModel(
            "mm", n=3, m=2, s=1,
            modes=(FailureModeEntry("hard", Duration.days(60),
                                    Duration.hours(8),
                                    Duration.minutes(4)),
                   FailureModeEntry("glitch", Duration.days(30),
                                    Duration.ZERO, Duration.ZERO),
                   FailureModeEntry("soft", Duration.days(10),
                                    Duration.minutes(20),
                                    Duration.minutes(1)),))
        outcome, = solve_models([multi])
        assert canonical(outcome) == canonical(evaluate_tier(multi))

    def test_anomalous_rates_degrade_to_scalar(self):
        """An infinite MTBF yields a zero failure rate the templates
        cannot represent; the member re-solves scalar, logged AVD803."""
        odd = TierAvailabilityModel(
            "odd", n=3, m=2, s=0,
            modes=(FailureModeEntry("never", Duration(math.inf),
                                    Duration.hours(8),
                                    Duration.minutes(4)),))
        sane = model("sane")
        log = DegradationLog()
        outcomes = solve_models([odd, sane], log=log)
        assert canonical(outcomes[0]) == canonical(evaluate_tier(odd))
        assert canonical(outcomes[1]) == canonical(evaluate_tier(sane))
        events = list(log)
        assert len(events) == 1
        assert events[0].kind == "batch-member-degraded"
        assert events[0].tier == "odd"

    def test_planning_exception_degrades_only_that_member(self,
                                                          monkeypatch):
        """Rate planning blowing up for one member must degrade that
        member to the scalar path, not abort the whole batch."""
        real_plan = evaluator_module._mode_plan

        def fragile_plan(tier_model, mode):
            if tier_model.name == "weird":
                raise ZeroDivisionError("float division by zero")
            return real_plan(tier_model, mode)

        monkeypatch.setattr(evaluator_module, "_mode_plan",
                            fragile_plan)
        weird, sane = model("weird"), model("sane", n=4, m=2)
        outcomes = solve_models([weird, sane])
        assert canonical(outcomes[0]) == canonical(evaluate_tier(weird))
        assert canonical(outcomes[1]) == canonical(evaluate_tier(sane))

    def test_group_fallback_on_singular_stack(self, monkeypatch):
        """When the stacked ladder exhausts (merged and per-group
        solves both singular), members re-solve scalar with AVD802."""
        def singular(*args, **kwargs):
            raise np.linalg.LinAlgError("injected")
        monkeypatch.setattr(evaluator_module, "solve_size_class",
                            singular)
        monkeypatch.setattr(evaluator_module, "solve_stacked", singular)
        models = [model("a"), model("b", n=4, m=2)]
        log = DegradationLog()
        outcomes = solve_models(models, log=log)
        for tier_model, outcome in zip(models, outcomes):
            assert canonical(outcome) == \
                canonical(evaluate_tier(tier_model))
        kinds = {event.kind for event in log}
        assert kinds == {"batch-group-fallback"}

    def test_group_retry_isolates_the_singular_group(self, monkeypatch):
        """The merged size-class solve failing must not degrade groups
        that solve cleanly on the per-group retry."""
        from repro.batch.stacked import solve_size_class as real_solve

        calls = {"n": 0}

        def first_call_fails(groups):
            calls["n"] += 1
            if calls["n"] == 1:
                raise np.linalg.LinAlgError("injected merged failure")
            return real_solve(groups)

        monkeypatch.setattr(evaluator_module, "solve_size_class",
                            first_call_fails)
        models = [model("a"), model("b", n=4, m=2)]
        log = DegradationLog()
        outcomes = solve_models(models, log=log)
        for tier_model, outcome in zip(models, outcomes):
            assert canonical(outcome) == \
                canonical(evaluate_tier(tier_model))
        assert not len(log)          # per-group retry succeeded

    def test_oversized_chain_defers_to_scalar(self):
        """Beyond the dense limit the scalar path switches to the
        sparse solver; the batch must defer rather than diverge."""
        big = model("big", n=2000, m=1500, mttr_hours=1.0)
        log = DegradationLog()
        outcome, = solve_models([big], log=log)
        assert canonical(outcome) == canonical(evaluate_tier(big))
        assert [event.kind for event in log] == ["batch-member-degraded"]

    def test_chain_cache_reuses_solved_chains(self, monkeypatch):
        shared = model("x", n=3, m=2)
        cache: dict = {}
        first = solve_models([shared], chain_cache=cache)
        assert cache                  # the solve populated the memo

        def must_not_solve(*args, **kwargs):   # pragma: no cover
            raise AssertionError("chain memo should have been used")
        monkeypatch.setattr(evaluator_module, "solve_size_class",
                            must_not_solve)
        second = solve_models([model("y", n=3, m=2)],
                              chain_cache=cache)
        # Different tier name, identical chain: identical bits.
        assert repr(first[0].unavailability) == \
            repr(second[0].unavailability)

    def test_duplicate_chains_solved_once_within_a_batch(self):
        models = [model("a"), model("b"), model("c")]
        outcomes = solve_models(models)
        values = {repr(outcome.unavailability) for outcome in outcomes}
        assert len(values) == 1
        assert canonical(outcomes[0])[1:] == canonical(outcomes[1])[1:]


class TestBatchTarget:
    def test_markov_engine_is_supported(self):
        engine = MarkovEngine()
        assert batch_target(engine) is engine

    def test_other_engines_are_not(self):
        assert batch_target(AnalyticEngine()) is None
        from repro.resilience import FallbackEngine
        assert batch_target(FallbackEngine()) is None

    def test_markov_subclass_is_not(self):
        """Exact type check: a subclass may override evaluate_tier."""
        class Tweaked(MarkovEngine):
            pass
        assert batch_target(Tweaked()) is None

    def test_cached_markov_is_supported(self, tmp_path):
        from repro.cache import TierEvaluationStore, attach_cache
        store = TierEvaluationStore(str(tmp_path / "cache"))
        cached = attach_cache(MarkovEngine(), store)
        assert batch_target(cached) is cached

    def test_cached_analytic_is_not(self, tmp_path):
        from repro.cache import TierEvaluationStore, attach_cache
        store = TierEvaluationStore(str(tmp_path / "cache"))
        cached = attach_cache(AnalyticEngine(), store)
        assert batch_target(cached) is None


class TestSolveOutcomes:
    def test_cached_engine_misses_then_hits(self, tmp_path):
        from repro.cache import TierEvaluationStore, attach_cache
        store = TierEvaluationStore(str(tmp_path / "cache"))
        cached = attach_cache(MarkovEngine(), store)
        models = [model("a"), model("b", n=4, m=2)]
        cold = solve_outcomes(cached, models)
        assert store.counters["misses"] == 2
        assert store.counters["hits"] == 0
        warm = solve_outcomes(cached, models)
        assert store.counters["hits"] == 2
        for one, two in zip(cold, warm):
            assert canonical(one) == canonical(two)

    def test_bare_engine_skips_the_store(self):
        engine = MarkovEngine()
        outcomes = solve_outcomes(engine, [model("a")])
        assert isinstance(outcomes[0], TierResult)


class TestTierBatcher:
    def test_solve_tasks_maps_keys_and_omits_errors(self, monkeypatch):
        real_plan = evaluator_module._mode_plan
        real_evaluate = evaluator_module.evaluate_tier

        def fragile_plan(tier_model, mode):
            if tier_model.name == "broken":
                raise ValueError("unplannable")
            return real_plan(tier_model, mode)

        def fragile_evaluate(tier_model):
            if tier_model.name == "broken":
                raise EvaluationError("scalar path rejects it too")
            return real_evaluate(tier_model)

        monkeypatch.setattr(evaluator_module, "_mode_plan",
                            fragile_plan)
        monkeypatch.setattr(evaluator_module, "evaluate_tier",
                            fragile_evaluate)
        batcher = TierBatcher(MarkovEngine())
        tasks = [(("k", 1), model("a")), (("k", 2), model("broken")),
                 (("k", 3), model("b", n=4, m=2))]
        merged = batcher.solve_tasks(tasks)
        assert set(merged) == {("k", 1), ("k", 3)}
        assert repr(merged[("k", 1)]) == \
            repr(evaluate_tier(model("a")).unavailability)

    def test_chain_memo_persists_across_wavefronts(self):
        batcher = TierBatcher(MarkovEngine())
        batcher.solve_tasks([(("w1", 0), model("a"))])
        assert batcher._chains
        memo_size = len(batcher._chains)
        merged = batcher.solve_tasks([(("w2", 0), model("b"))])
        # Identical chain: served from the memo, nothing new stored.
        assert len(batcher._chains) == memo_size
        assert repr(merged[("w2", 0)]) == \
            repr(evaluate_tier(model("b")).unavailability)


class TestTransportShapeKey:
    def test_groups_by_structure(self):
        assert transport_shape_key(model("a")) == \
            transport_shape_key(model("b"))
        assert transport_shape_key(model("a")) != \
            transport_shape_key(model("a", n=4))
        assert transport_shape_key(model("a")) != \
            transport_shape_key(model("a", crew=1))
