"""The ``--batch`` flag and ``REPRO_BATCH`` environment fallback."""

import io

import pytest

from repro.cli import main, resolve_batch
from repro.errors import AvedError


def run(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


BASE = ["design", "--paper-ecommerce", "--app-tier-only",
        "--load", "1000", "--downtime", "100m"]


class _Args:
    def __init__(self, batch=None):
        self.batch = batch


class TestResolveBatch:
    def test_defaults_off(self, monkeypatch):
        monkeypatch.delenv("REPRO_BATCH", raising=False)
        assert resolve_batch(_Args()) is False

    def test_explicit_flag_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_BATCH", "0")
        assert resolve_batch(_Args(batch=True)) is True
        monkeypatch.setenv("REPRO_BATCH", "1")
        assert resolve_batch(_Args(batch=False)) is False

    @pytest.mark.parametrize("value,expected", [
        ("1", True), ("true", True), ("YES", True), ("On", True),
        ("0", False), ("false", False), ("no", False), ("off", False),
        ("", False), ("  ", False),
    ])
    def test_env_values(self, monkeypatch, value, expected):
        monkeypatch.setenv("REPRO_BATCH", value)
        assert resolve_batch(_Args()) is expected

    def test_bad_env_value_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_BATCH", "definitely")
        with pytest.raises(AvedError, match="REPRO_BATCH"):
            resolve_batch(_Args())


class TestDesignBatchFlag:
    def test_batch_flag_reproduces_the_design(self):
        scalar = run(BASE)
        batched = run(BASE + ["--batch"])
        assert scalar[0] == 0 and batched[0] == 0
        # Identical design, cost and downtime lines (the trailing
        # search-statistics line is allowed to mention batching).
        assert scalar[1].splitlines()[:3] == batched[1].splitlines()[:3]

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_BATCH", "1")
        scalar = run(BASE + ["--no-batch"])
        batched = run(BASE)
        assert scalar[0] == 0 and batched[0] == 0
        assert scalar[1].splitlines()[:3] == batched[1].splitlines()[:3]

    def test_bad_env_value_errors(self, monkeypatch):
        monkeypatch.setenv("REPRO_BATCH", "definitely")
        code, output = run(BASE)
        assert code == 1
        assert "REPRO_BATCH" in output

    def test_batch_composes_with_jobs_and_cache(self, tmp_path):
        scalar = run(BASE + ["--jobs", "2"])
        batched = run(BASE + ["--jobs", "2", "--batch",
                              "--cache", str(tmp_path / "store")])
        warm = run(BASE + ["--jobs", "2", "--batch",
                           "--cache", str(tmp_path / "store")])
        assert scalar[0] == batched[0] == warm[0] == 0
        assert scalar[1].splitlines()[:3] == batched[1].splitlines()[:3]
        assert scalar[1].splitlines()[:3] == warm[1].splitlines()[:3]

    def test_frontier_accepts_batch(self):
        scalar = run(["frontier", "--paper-ecommerce", "--tier",
                      "application", "--load", "1000",
                      "--max-redundancy", "4"])
        batched = run(["frontier", "--paper-ecommerce", "--tier",
                       "application", "--load", "1000",
                       "--max-redundancy", "4", "--batch"])
        assert scalar[0] == 0 and batched[0] == 0
        assert scalar[1] == batched[1]
