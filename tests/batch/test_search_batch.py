"""Batched search == scalar search, end to end through Aved.

The acceptance contract for ``repro.batch``: the serialized
DesignOutcome is *identical JSON* with batching on or off, across
serial, supervised (``jobs``), and cached runs; unsupported engines
degrade to the scalar path with an AVD801 on the record, never an
error.
"""

import json

import pytest

from repro.core import Aved
from repro.core.serialize import evaluation_to_dict
from repro.model import ServiceRequirements
from repro.units import Duration

REQUIREMENTS = ServiceRequirements(1000, Duration.minutes(100))


def canonical(outcome):
    return json.dumps(evaluation_to_dict(outcome.evaluation),
                      sort_keys=True)


@pytest.fixture(scope="module")
def scalar_outcome(paper_infra, ecommerce):
    return Aved(paper_infra, ecommerce).design(REQUIREMENTS)


class TestSerialBatchIdentity:
    def test_design_json_identical(self, paper_infra, ecommerce,
                                   scalar_outcome):
        batched = Aved(paper_infra, ecommerce,
                       batch=True).design(REQUIREMENTS)
        assert canonical(batched) == canonical(scalar_outcome)

    def test_batched_stats_are_populated(self, paper_infra, ecommerce):
        batched = Aved(paper_infra, ecommerce,
                       batch=True).design(REQUIREMENTS)
        assert batched.stats.batched_wavefronts > 0
        assert batched.stats.batched_solves > 0
        assert batched.stats.batched_solves <= \
            batched.stats.availability_evaluations

    def test_scalar_stats_stay_zero(self, scalar_outcome):
        assert scalar_outcome.stats.batched_wavefronts == 0
        assert scalar_outcome.stats.batched_solves == 0

    def test_no_degradation_on_the_happy_path(self, paper_infra,
                                              ecommerce):
        batched = Aved(paper_infra, ecommerce,
                       batch=True).design(REQUIREMENTS)
        assert not batched.degraded


class TestSupervisedBatchIdentity:
    def test_jobs_1_batched_identical(self, paper_infra, ecommerce,
                                      scalar_outcome):
        batched = Aved(paper_infra, ecommerce, jobs=1,
                       batch=True).design(REQUIREMENTS)
        assert canonical(batched) == canonical(scalar_outcome)

    def test_jobs_2_batched_identical(self, paper_infra, ecommerce,
                                      scalar_outcome):
        batched = Aved(paper_infra, ecommerce, jobs=2,
                       batch=True).design(REQUIREMENTS)
        assert canonical(batched) == canonical(scalar_outcome)
        assert batched.stats.parallel_batches > 0


class TestCachedBatchIdentity:
    def test_cold_and_warm_identical(self, tmp_path, paper_infra,
                                     ecommerce, scalar_outcome):
        root = str(tmp_path / "store")
        cold = Aved(paper_infra, ecommerce, cache=root,
                    batch=True).design(REQUIREMENTS)
        warm = Aved(paper_infra, ecommerce, cache=root,
                    batch=True).design(REQUIREMENTS)
        assert canonical(cold) == canonical(scalar_outcome)
        assert canonical(warm) == canonical(scalar_outcome)

    def test_batched_store_serves_scalar_runs(self, tmp_path,
                                              paper_infra, ecommerce,
                                              scalar_outcome):
        """A store filled by a batched run must warm a scalar run (and
        vice versa): entries are per-model, not per-path."""
        root = str(tmp_path / "store")
        Aved(paper_infra, ecommerce, cache=root,
             batch=True).design(REQUIREMENTS)
        scalar_warm = Aved(paper_infra, ecommerce,
                           cache=root).design(REQUIREMENTS)
        assert canonical(scalar_warm) == canonical(scalar_outcome)

    def test_warm_hit_counts_match_scalar(self, tmp_path, paper_infra,
                                          ecommerce):
        """The batched warm path performs one store lookup per model,
        exactly like the scalar warm path."""
        from repro.cache import TierEvaluationStore

        def warm_hits(batch):
            root = str(tmp_path / ("store-batch-%s" % batch))
            Aved(paper_infra, ecommerce, cache=root,
                 batch=batch).design(REQUIREMENTS)
            store = TierEvaluationStore(root)
            engine = Aved(paper_infra, ecommerce, cache=store,
                          batch=batch)
            engine.design(REQUIREMENTS)
            return store.counters["hits"]

        assert warm_hits(True) == warm_hits(False)


class TestUnsupportedEngines:
    def test_analytic_engine_degrades_with_avd801(self, paper_infra,
                                                  ecommerce):
        from repro.availability import AnalyticEngine
        scalar = Aved(paper_infra, ecommerce,
                      availability_engine=AnalyticEngine()) \
            .design(REQUIREMENTS)
        batched = Aved(paper_infra, ecommerce,
                       availability_engine=AnalyticEngine(),
                       batch=True).design(REQUIREMENTS)
        assert canonical(batched) == canonical(scalar)
        assert batched.stats.batched_wavefronts == 0
        assert batched.degraded
        assert any(d.code == "AVD801" for d in batched.degradation)

    def test_fallback_engine_degrades_with_avd801(self, paper_infra,
                                                  app_tier_service):
        from repro.resilience import FallbackEngine
        batched = Aved(paper_infra, app_tier_service,
                       availability_engine=FallbackEngine(),
                       batch=True).design(REQUIREMENTS)
        assert any(d.code == "AVD801" for d in batched.degradation)

    def test_avd801_reported_once_not_per_design(self, paper_infra,
                                                 app_tier_service):
        """The log drains into the first outcome's report; a second
        design on the same engine must not re-report it."""
        from repro.availability import AnalyticEngine
        engine = Aved(paper_infra, app_tier_service,
                      availability_engine=AnalyticEngine(), batch=True)
        first = engine.design(REQUIREMENTS)
        second = engine.design(REQUIREMENTS)
        assert any(d.code == "AVD801" for d in first.degradation)
        assert not second.degraded


class TestTable1Regression:
    """Pin the paper's headline numbers on the batched path.

    JSON identity against the scalar run already implies these, but a
    direct pin fails with a number (not a wall of diff) if the batched
    solver ever drifts."""

    def test_app_tier_cost_and_downtime(self, paper_infra,
                                        app_tier_service):
        outcome = Aved(paper_infra, app_tier_service,
                       batch=True).design(REQUIREMENTS)
        assert outcome.annual_cost == pytest.approx(28320.0)
        assert outcome.downtime_minutes == pytest.approx(46.5, abs=0.5)

    def test_ecommerce_availabilities_pin_scalar_values(
            self, paper_infra, ecommerce, scalar_outcome):
        batched = Aved(paper_infra, ecommerce,
                       batch=True).design(REQUIREMENTS)
        scalar_tiers = {r.name: r.unavailability for r in
                        scalar_outcome.evaluation.availability.tiers}
        for result in batched.evaluation.availability.tiers:
            assert repr(result.unavailability) == \
                repr(scalar_tiers[result.name])


class TestFrontierBatchIdentity:
    def test_tier_frontier_identical(self, paper_infra,
                                     app_tier_service):
        from repro.batch import TierBatcher, batch_target
        from repro.core import DesignEvaluator, SearchLimits, TierSearch
        from repro.core.serialize import evaluated_tier_design_to_dict

        def frontier(batcher):
            evaluator = DesignEvaluator(paper_infra, app_tier_service)
            search = TierSearch(evaluator,
                                SearchLimits(max_redundancy=4),
                                batcher=batcher)
            return [evaluated_tier_design_to_dict(entry)
                    for entry in search.tier_frontier("application",
                                                      1000)]

        scalar = frontier(None)
        evaluator = DesignEvaluator(paper_infra, app_tier_service)
        batcher = TierBatcher(batch_target(evaluator.engine))
        batched = frontier(batcher)
        assert json.dumps(batched, sort_keys=True) == \
            json.dumps(scalar, sort_keys=True)
