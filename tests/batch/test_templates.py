"""Chain templates replay the scalar explorer exactly.

The bit-identity contract starts here: a template's state order, edge
order and integer coefficients must match what the scalar solver's
exploration produces for the same shape, because the stacked assembly
replays the scalar float-operation sequence through those arrays.
These tests rebuild the scalar chain with
:class:`~repro.availability.ctmc.ContinuousTimeMarkovChain` and
compare structure element by element.
"""

import pytest

from repro.availability.ctmc import ContinuousTimeMarkovChain
from repro.batch import (TemplateCache, failover_template,
                         inplace_template)
from repro.batch.chains import (DENSE_LIMIT, KIND_FAILOVER, KIND_FAILURE,
                                KIND_REPAIR, KIND_SPARE,
                                _TRUNCATION_MARGIN)

#: Distinct primes so every (kind, coeff) product is unique -- a match
#: of edge rates then implies a match of both kind and coefficient.
RATES = {KIND_FAILURE: 2.0, KIND_SPARE: 3.0, KIND_FAILOVER: 5.0,
         KIND_REPAIR: 7.0}


def scalar_inplace_chain(n, crew, failure_rate, repair_rate):
    def transitions(r):
        out = []
        if r < n:
            out.append((r + 1, (n - r) * failure_rate))
        if r > 0:
            out.append((r - 1, min(r, crew) * repair_rate))
        return out
    return ContinuousTimeMarkovChain(0, transitions)


def scalar_failover_chain(n, m, s, crew, failure_rate, spare_rate,
                          failover_rate, repair_rate):
    total = n + s
    w_cap = min(n, (n - m + 1) + s + _TRUNCATION_MARGIN)

    def transitions(state):
        r, w = state
        idle = s - r + w
        manned = n - w
        out = []
        if manned > 0 and r < total and w < w_cap:
            out.append(((r + 1, w + 1), manned * failure_rate))
        if spare_rate > 0.0 and idle > 0:
            out.append(((r + 1, w), idle * spare_rate))
        in_failover = min(w, idle)
        if in_failover > 0:
            out.append(((r, w - 1), in_failover * failover_rate))
        if r > 0:
            out.append(((r - 1, w), min(r, crew) * repair_rate))
        return out

    return ContinuousTimeMarkovChain((0, 0), transitions)


def template_edge_rates(template):
    """The template's (origin, target, rate) triples in emission order."""
    return [(int(o), int(t), RATES[int(k)] * float(c))
            for o, t, k, c in template.edges]


class TestInplaceTemplate:
    @pytest.mark.parametrize("n,crew", [(1, 1), (3, 3), (5, 2), (8, 1)])
    def test_edges_match_scalar_exploration(self, n, crew):
        template = inplace_template(n, m=1, crew=crew)
        chain = scalar_inplace_chain(n, crew, RATES[KIND_FAILURE],
                                     RATES[KIND_REPAIR])
        assert template.size == chain.size
        assert template_edge_rates(template) == chain.edges

    @pytest.mark.parametrize("n,m", [(3, 1), (3, 2), (4, 4)])
    def test_down_states_and_flux(self, n, m):
        template = inplace_template(n, m, crew=n)
        # State r has n - r manned slots; down while n - r < m.
        assert list(template.down_states) == \
            [r for r in range(n + 1) if n - r < m]
        assert list(template.flux_manned) == \
            [n - r for r in range(n + 1)]
        assert not template.flux_idle.any()


class TestFailoverTemplate:
    @pytest.mark.parametrize("n,m,s,crew,susceptible", [
        (1, 1, 1, 2, False),
        (3, 2, 1, 4, False),
        (3, 2, 2, 5, True),
        (5, 3, 2, 1, True),
        (2, 1, 3, 5, False),
    ])
    def test_edges_match_scalar_exploration(self, n, m, s, crew,
                                            susceptible):
        template = failover_template(n, m, s, crew, susceptible)
        spare_rate = RATES[KIND_SPARE] if susceptible else 0.0
        chain = scalar_failover_chain(
            n, m, s, crew, RATES[KIND_FAILURE], spare_rate,
            RATES[KIND_FAILOVER], RATES[KIND_REPAIR])
        assert template.size == chain.size
        assert template_edge_rates(template) == chain.edges

    def test_down_states_follow_state_discovery_order(self):
        n, m, s, crew = 3, 2, 2, 5
        template = failover_template(n, m, s, crew, True)
        chain = scalar_failover_chain(
            n, m, s, crew, RATES[KIND_FAILURE], RATES[KIND_SPARE],
            RATES[KIND_FAILOVER], RATES[KIND_REPAIR])
        expected_down = [i for i, (_, w) in enumerate(chain.states)
                         if n - w < m]
        assert list(template.down_states) == expected_down
        assert list(template.flux_manned) == \
            [n - w for (_, w) in chain.states]
        assert list(template.flux_idle) == \
            [s - r + w for (r, w) in chain.states]

    def test_susceptibility_changes_the_shape(self):
        """Spare-susceptible chains emit extra idle-failure edges, so
        susceptibility is part of the shape key, not a rate."""
        base = failover_template(3, 2, 2, 5, False)
        susceptible = failover_template(3, 2, 2, 5, True)
        assert len(susceptible.edges) > len(base.edges)
        assert KIND_SPARE in susceptible.edge_kind
        assert KIND_SPARE not in base.edge_kind


class TestTemplateCache:
    def test_memoizes_by_shape_key(self):
        cache = TemplateCache()
        first = cache.get(("inplace", 3, 2, 3))
        again = cache.get(("inplace", 3, 2, 3))
        other = cache.get(("failover", 3, 2, 1, 4, False))
        assert again is first
        assert other is not first
        assert other.kind == "failover"
        assert len(cache) == 2

    def test_dense_limit_mirrors_the_scalar_solver(self):
        from repro.availability.ctmc import _DENSE_LIMIT
        assert DENSE_LIMIT == _DENSE_LIMIT
