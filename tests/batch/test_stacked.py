"""The stacked kernel is bitwise equal to the scalar chain solver.

Every comparison in this file is ``==`` on floats, not ``approx``:
the stacked assembly and reductions are engineered to replay the
scalar float-operation sequence exactly (see ``docs/BATCHING.md``),
and these tests are the contract.
"""

import numpy as np
import pytest

from repro.availability import FailureModeEntry, TierAvailabilityModel
from repro.availability.markov import evaluate_mode
from repro.batch import (assemble_systems, failover_template,
                         inplace_template, reduce_group,
                         solve_size_class, solve_stacked)
from repro.batch.stacked import _ordered_row_sums
from repro.units import Duration


def rates_matrix(columns):
    """Stack (failure, spare, failover, repair) columns into (4, K)."""
    return np.array(columns, dtype=np.float64).T


def inplace_model(n=3, m=2, mtbf_days=60.0, mttr_hours=8.0):
    return TierAvailabilityModel(
        "t", n=n, m=m, s=0,
        modes=(FailureModeEntry("hard", Duration.days(mtbf_days),
                                Duration.hours(mttr_hours),
                                Duration.minutes(4)),))


def failover_model(n=3, m=2, s=1, mtbf_days=60.0, mttr_hours=8.0,
                   failover_minutes=4.0, susceptible=False):
    return TierAvailabilityModel(
        "t", n=n, m=m, s=s,
        modes=(FailureModeEntry("hard", Duration.days(mtbf_days),
                                Duration.hours(mttr_hours),
                                Duration.minutes(failover_minutes),
                                spare_susceptible=susceptible),))


def mode_rates(model):
    mode = model.modes[0]
    failure = 1.0 / mode.mtbf.as_hours
    repair = 1.0 / mode.mttr.as_hours
    if model.s > 0 and mode.uses_failover:
        failover = 1.0 / mode.failover_time.as_hours
        spare = failure if mode.spare_susceptible else 0.0
        return (failure, spare, failover, repair)
    return (failure, 0.0, 0.0, repair)


class TestAssembly:
    def test_systems_match_scalar_transposed_generator(self):
        """Each slice is the scalar generator.T with the last row
        replaced by the normalization constraint."""
        n, m, crew = 4, 2, 4
        template = inplace_template(n, m, crew)
        failure, repair = 1.0 / 1440.0, 1.0 / 8.0
        rates = rates_matrix([(failure, 0.0, 0.0, repair)])
        systems = assemble_systems(template, rates)
        size = template.size
        scalar = np.zeros((size, size))
        for origin, target, kind, coeff in template.edges:
            rate = coeff * (failure if kind == 0 else repair)
            scalar[origin, target] += rate
            scalar[origin, origin] -= rate
        expected = scalar.T.copy()
        expected[-1, :] = 1.0
        assert np.array_equal(systems[0], expected)

    def test_two_members_assemble_independently(self):
        template = inplace_template(3, 1, 3)
        rates = rates_matrix([(0.01, 0.0, 0.0, 0.5),
                              (0.02, 0.0, 0.0, 0.25)])
        stacked = assemble_systems(template, rates)
        solo_a = assemble_systems(template, rates[:, :1])
        solo_b = assemble_systems(template, rates[:, 1:])
        assert np.array_equal(stacked[0], solo_a[0])
        assert np.array_equal(stacked[1], solo_b[0])


class TestStackedSolve:
    @pytest.mark.parametrize("model", [
        inplace_model(n=1, m=1),
        inplace_model(n=5, m=3),
        failover_model(n=3, m=2, s=1),
        failover_model(n=4, m=2, s=2, susceptible=True),
    ], ids=["inplace-1", "inplace-5", "failover", "failover-susc"])
    def test_matches_scalar_mode_evaluation_bitwise(self, model):
        mode = model.modes[0]
        if model.s > 0:
            crew = model.n + model.s
            template = failover_template(model.n, model.m, model.s,
                                         crew, mode.spare_susceptible)
        else:
            template = inplace_template(model.n, model.m, model.n)
        rates = rates_matrix([mode_rates(model)])
        probabilities = solve_stacked(template, rates)
        unavailability, flux = reduce_group(template, rates,
                                            probabilities)
        scalar = evaluate_mode(model, mode)
        # repr-level equality: the floats are the same bits.
        assert repr(float(unavailability[0])) == \
            repr(scalar.unavailability)
        assert repr(float(flux[0])) == repr(scalar.failures_per_year)

    def test_stacked_members_equal_singleton_solves(self):
        template = inplace_template(4, 2, 4)
        columns = [(1.0 / (1000.0 + 17 * k), 0.0, 0.0, 1.0 / (4.0 + k))
                   for k in range(6)]
        rates = rates_matrix(columns)
        stacked = solve_stacked(template, rates)
        for k, column in enumerate(columns):
            solo = solve_stacked(template, rates_matrix([column]))
            assert np.array_equal(stacked[k], solo[0])


class TestSizeClassMerge:
    def test_merged_groups_equal_per_group_solves(self):
        """Same-size shape groups merged into one LAPACK call give the
        same bits as solving each group alone."""
        # Both have 5 states: inplace n=4 and failover (1,1,1) padded?
        # Use two inplace shapes of equal size but different crew.
        a = inplace_template(4, 2, 4)
        b = inplace_template(4, 1, 1)
        assert a.size == b.size
        rates_a = rates_matrix([(0.001, 0.0, 0.0, 0.2),
                                (0.002, 0.0, 0.0, 0.1)])
        rates_b = rates_matrix([(0.003, 0.0, 0.0, 0.4)])
        merged = solve_size_class([(a, rates_a), (b, rates_b)])
        alone_a = solve_stacked(a, rates_a)
        alone_b = solve_stacked(b, rates_b)
        assert len(merged) == 2
        assert np.array_equal(merged[0], alone_a)
        assert np.array_equal(merged[1], alone_b)

    def test_singular_member_raises_linalg_error(self):
        """An all-zero rate column yields a singular system; the caller
        owns the retry ladder, so the kernel must raise, not guess."""
        template = inplace_template(3, 2, 3)
        rates = rates_matrix([(0.0, 0.0, 0.0, 0.0)])
        with pytest.raises(np.linalg.LinAlgError):
            solve_size_class([(template, rates)])


class TestOrderedRowSums:
    def test_equals_left_to_right_accumulation(self):
        rows = np.array([[1e-300, 1.0, -1.0, 3e17, 1.25],
                         [0.1, 0.2, 0.3, 0.4, 0.5]])
        sums = _ordered_row_sums(rows)
        for k in range(rows.shape[0]):
            acc = 0.0
            for value in rows[k]:
                acc += float(value)
            assert repr(float(sums[k])) == repr(acc)

    def test_empty_width(self):
        sums = _ordered_row_sums(np.zeros((3, 0)))
        assert np.array_equal(sums, np.zeros(3))
