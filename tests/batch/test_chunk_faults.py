"""Process chaos against the *chunked* batch transport.

The scalar chaos suite (tests/integration/test_chaos_design.py)
proves crashes, hangs and poison candidates degrade gracefully under
per-candidate dispatch.  These tests re-run that battery with
batching on, where several candidates share one worker submission: a
fault inside a chunk must convict only the poison member (suspicion
-> isolation -> quarantine), never its chunk-mates, and the surviving
search must still produce the fault-free design.
"""

import json

import pytest

from repro.core import Aved
from repro.core.serialize import evaluation_to_dict
from repro.model import ServiceRequirements
from repro.parallel import ParallelEvaluationRuntime, ParallelPolicy
from repro.resilience import FallbackPolicy, WorkerFaultPlan
from repro.units import Duration

REQUIREMENTS = ServiceRequirements(1000, Duration.minutes(100))


def canonical(outcome):
    return json.dumps(evaluation_to_dict(outcome.evaluation),
                      sort_keys=True)


def supervised_batched(infra, service, worker_plan, jobs=2,
                       task_retries=2, task_timeout=None):
    """An Aved with batching AND a fault-injecting supervised pool."""
    probe = Aved(infra, service)
    runtime = ParallelEvaluationRuntime(
        probe.evaluator.engine, jobs=jobs, worker_plan=worker_plan,
        policy=ParallelPolicy(task_retries=task_retries,
                              task_timeout=task_timeout,
                              backoff=FallbackPolicy(backoff_base=0.0)))
    return Aved(infra, service, parallel=runtime, batch=True), runtime


@pytest.fixture(scope="module")
def fault_free(paper_infra, ecommerce):
    return Aved(paper_infra, ecommerce).design(REQUIREMENTS)


class TestChunkedWorkerCrashes:
    def test_thirty_percent_crashes_reproduce_design(
            self, paper_infra, ecommerce, fault_free):
        """30% of submissions crash their worker while candidates ride
        in shape chunks: the batched search still lands on the exact
        fault-free design, with the crashes on the record."""
        plan = WorkerFaultPlan(seed=7, fault_rate=0.3,
                               max_faults_per_task=1)
        engine, runtime = supervised_batched(paper_infra, ecommerce,
                                             plan)
        try:
            outcome = engine.design(REQUIREMENTS)
        finally:
            runtime.close()
        assert canonical(outcome) == canonical(fault_free)
        assert outcome.stats.quarantined == 0
        codes = {d.code for d in outcome.degradation}
        assert "AVD403" in codes      # crashes observed
        assert "AVD402" not in codes  # nobody falsely convicted

    def test_poison_member_quarantined_alone(self, paper_infra,
                                             ecommerce, fault_free):
        """A candidate that kills its worker on every submission is
        convicted in isolation; its chunk-mates are exonerated and the
        rest of the design matches the fault-free run."""
        plan = WorkerFaultPlan(seed=3, poison_tasks=(5,),
                               poison_mode="crash")
        engine, runtime = supervised_batched(paper_infra, ecommerce,
                                             plan, task_retries=1)
        try:
            outcome = engine.design(REQUIREMENTS)
        finally:
            runtime.close()
        assert len(runtime.quarantine) == 1
        assert outcome.stats.quarantined == 1
        quarantines = [d for d in outcome.degradation
                       if d.code == "AVD402"]
        assert len(quarantines) == 1
        assert "worker process crashed" in quarantines[0].message
        # One quarantined candidate must not change the winning design
        # (the paper models admit many same-cost neighbors, but the
        # fault-free winner here is not task 5).
        assert outcome.design.describe() == \
            fault_free.design.describe()
        assert outcome.annual_cost == fault_free.annual_cost

    def test_two_poison_members_both_convicted(self, paper_infra,
                                               ecommerce):
        plan = WorkerFaultPlan(seed=3, poison_tasks=(5, 17),
                               poison_mode="crash")
        engine, runtime = supervised_batched(paper_infra, ecommerce,
                                             plan, task_retries=1)
        try:
            outcome = engine.design(REQUIREMENTS)
        finally:
            runtime.close()
        assert len(runtime.quarantine) == 2
        assert outcome.stats.quarantined == 2
        assert len([d for d in outcome.degradation
                    if d.code == "AVD402"]) == 2


class TestChunkedHangs:
    def test_hanging_poison_member_is_timed_out(self, paper_infra,
                                                app_tier_service):
        """A hanging member inside a chunk burns the chunk's timeout
        budget, is isolated, and is convicted by the solo timeout."""
        plan = WorkerFaultPlan(seed=1, poison_tasks=(2,),
                               poison_mode="hang", hang_seconds=60.0)
        engine, runtime = supervised_batched(
            paper_infra, app_tier_service, plan, task_retries=0,
            task_timeout=0.5)
        try:
            outcome = engine.design(REQUIREMENTS)
        finally:
            runtime.close()
        assert outcome.stats.quarantined >= 1
        codes = {d.code for d in outcome.degradation}
        assert "AVD404" in codes
        assert "AVD402" in codes


class TestChunkedCleanRun:
    def test_fault_free_chunked_run_is_clean_and_identical(
            self, paper_infra, ecommerce, fault_free):
        engine, runtime = supervised_batched(paper_infra, ecommerce,
                                             WorkerFaultPlan())
        try:
            outcome = engine.design(REQUIREMENTS)
        finally:
            runtime.close()
        assert canonical(outcome) == canonical(fault_free)
        assert not outcome.degraded
        assert outcome.stats.parallel_batches > 0
        assert outcome.stats.batched_wavefronts > 0
