"""Tests for durations and parameter ranges (repro.units)."""

import math

import pytest

from repro.errors import UnitError
from repro.units import (ArithmeticRange, Duration, EnumeratedRange,
                         GeometricRange, HOURS_PER_YEAR, MINUTES_PER_YEAR,
                         parse_range, rate_per_hour)


class TestDurationParsing:
    def test_seconds_suffix(self):
        assert Duration.parse("30s").as_seconds == 30.0

    def test_minutes_suffix(self):
        assert Duration.parse("2m").as_seconds == 120.0

    def test_hours_suffix(self):
        assert Duration.parse("38h").as_hours == 38.0

    def test_days_suffix(self):
        assert Duration.parse("650d").as_days == 650.0

    def test_years_suffix(self):
        assert Duration.parse("1y").as_days == 365.0

    def test_bare_number_is_seconds(self):
        assert Duration.parse("0").as_seconds == 0.0
        assert Duration.parse("90").as_seconds == 90.0

    def test_numeric_input_passthrough(self):
        assert Duration.parse(45).as_seconds == 45.0
        assert Duration.parse(1.5).as_seconds == 1.5

    def test_duration_input_passthrough(self):
        original = Duration.minutes(5)
        assert Duration.parse(original) == original

    def test_fractional_value(self):
        assert Duration.parse("1.5h").as_minutes == 90.0

    def test_whitespace_tolerated(self):
        assert Duration.parse(" 2m ").as_seconds == 120.0

    @pytest.mark.parametrize("bad", ["", "abc", "5x", "2 m m", "h", "--3s"])
    def test_rejects_garbage(self, bad):
        with pytest.raises(UnitError):
            Duration.parse(bad)

    def test_rejects_nan(self):
        with pytest.raises(UnitError):
            Duration(float("nan"))


class TestDurationArithmetic:
    def test_addition(self):
        assert (Duration.minutes(2) + Duration.seconds(30)).as_seconds == 150

    def test_subtraction(self):
        assert (Duration.hours(1) - Duration.minutes(30)).as_minutes == 30

    def test_scale_by_number(self):
        assert (Duration.minutes(2) * 3).as_minutes == 6
        assert (3 * Duration.minutes(2)).as_minutes == 6

    def test_divide_by_number(self):
        assert (Duration.hours(1) / 4).as_minutes == 15

    def test_ratio_of_durations_is_float(self):
        ratio = Duration.hours(2) / Duration.minutes(30)
        assert ratio == pytest.approx(4.0)

    def test_ratio_by_zero_duration_raises(self):
        with pytest.raises(ZeroDivisionError):
            Duration.hours(1) / Duration.ZERO

    def test_cannot_multiply_durations(self):
        with pytest.raises(UnitError):
            Duration.hours(1) * Duration.hours(2)

    def test_negation(self):
        assert (-Duration.minutes(5)).as_minutes == -5

    def test_comparison(self):
        assert Duration.minutes(1) < Duration.hours(1)
        assert Duration.days(1) > Duration.hours(23)
        assert Duration.minutes(60) == Duration.hours(1)
        assert Duration.minutes(60) <= Duration.hours(1)

    def test_hash_consistent_with_equality(self):
        assert hash(Duration.minutes(60)) == hash(Duration.hours(1))

    def test_bool_zero_is_false(self):
        assert not Duration.ZERO
        assert Duration.seconds(1)

    def test_is_finite(self):
        assert Duration.hours(5).is_finite()
        assert not Duration(math.inf).is_finite()


class TestDurationFormatting:
    @pytest.mark.parametrize("duration,expected", [
        (Duration.ZERO, "0s"),
        (Duration.seconds(30), "30s"),
        (Duration.minutes(2), "2m"),
        (Duration.hours(38), "38h"),
        (Duration.days(650), "650d"),
        (Duration.days(365), "1y"),
    ])
    def test_round_values(self, duration, expected):
        assert duration.format() == expected

    def test_format_parses_back(self):
        for duration in (Duration.seconds(45), Duration.minutes(90),
                         Duration.hours(4.5), Duration.days(1.586)):
            assert Duration.parse(duration.format()).as_seconds == \
                pytest.approx(duration.as_seconds, rel=1e-3)

    def test_infinite(self):
        assert Duration(math.inf).format() == "inf"


class TestConstants:
    def test_minutes_per_year(self):
        assert MINUTES_PER_YEAR == 365 * 24 * 60

    def test_hours_per_year(self):
        assert HOURS_PER_YEAR == 365 * 24

    def test_rate_per_hour(self):
        assert rate_per_hour(Duration.hours(2)) == pytest.approx(0.5)

    def test_rate_per_hour_rejects_zero(self):
        with pytest.raises(UnitError):
            rate_per_hour(Duration.ZERO)


class TestEnumeratedRange:
    def test_values_preserved_in_order(self):
        r = EnumeratedRange(["bronze", "silver", "gold"])
        assert r.values() == ["bronze", "silver", "gold"]

    def test_len_and_contains(self):
        r = EnumeratedRange(["a", "b"])
        assert len(r) == 2
        assert "a" in r
        assert "c" not in r

    def test_rejects_empty(self):
        with pytest.raises(UnitError):
            EnumeratedRange([])


class TestArithmeticRange:
    def test_values(self):
        assert ArithmeticRange(1, 5, 1).values() == [1, 2, 3, 4, 5]

    def test_step_two(self):
        assert ArithmeticRange(2, 8, 2).values() == [2, 4, 6, 8]

    def test_endpoint_not_on_grid(self):
        assert ArithmeticRange(1, 6, 2).values() == [1, 3, 5]

    def test_len(self):
        assert len(ArithmeticRange(1, 1000, 1)) == 1000

    def test_contains(self):
        r = ArithmeticRange(1, 9, 2)
        assert 5 in r
        assert 4 not in r
        assert 11 not in r

    def test_rejects_bad_step(self):
        with pytest.raises(UnitError):
            ArithmeticRange(1, 10, 0)
        with pytest.raises(UnitError):
            ArithmeticRange(1, 10, -1)

    def test_rejects_reversed(self):
        with pytest.raises(UnitError):
            ArithmeticRange(10, 1, 1)


class TestGeometricRange:
    def test_paper_checkpoint_grid(self):
        r = GeometricRange(Duration.minutes(1), Duration.hours(24), 1.05)
        values = r.values()
        assert values[0] == Duration.minutes(1)
        assert values[-1] == Duration.hours(24)
        # log(1440)/log(1.05) ~ 149 steps, plus endpoints handling.
        assert 148 <= len(values) <= 152

    def test_ratio_between_consecutive(self):
        r = GeometricRange(Duration.seconds(1), Duration.seconds(100), 2.0)
        values = r.values()
        for a, b in zip(values, values[1:-1]):
            assert b / a == pytest.approx(2.0)

    def test_endpoint_always_included(self):
        r = GeometricRange(Duration.seconds(1), Duration.seconds(10), 3.0)
        assert r.values()[-1] == Duration.seconds(10)

    def test_rejects_factor_not_above_one(self):
        with pytest.raises(UnitError):
            GeometricRange(Duration.seconds(1), Duration.seconds(10), 1.0)

    def test_rejects_nonpositive_start(self):
        with pytest.raises(UnitError):
            GeometricRange(Duration.ZERO, Duration.seconds(10), 2.0)


class TestParseRange:
    def test_arithmetic(self):
        r = parse_range("[1-1000,+1]")
        assert isinstance(r, ArithmeticRange)
        assert r.values()[:3] == [1, 2, 3]
        assert r.values()[-1] == 1000

    def test_geometric(self):
        r = parse_range("[1m-24h;*1.05]")
        assert isinstance(r, GeometricRange)
        assert r.start == Duration.minutes(1)
        assert r.stop == Duration.hours(24)

    def test_enumerated_strings(self):
        r = parse_range("[bronze,silver,gold,platinum]")
        assert r.values() == ["bronze", "silver", "gold", "platinum"]

    def test_enumerated_numbers_coerced(self):
        assert parse_range("[1,2,4]").values() == [1, 2, 4]
        assert parse_range("[1.5,2.5]").values() == [1.5, 2.5]

    def test_singleton(self):
        assert parse_range("[1]").values() == [1]

    def test_rejects_unbracketed(self):
        with pytest.raises(UnitError):
            parse_range("1-10,+1")

    def test_rejects_empty(self):
        with pytest.raises(UnitError):
            parse_range("[]")
