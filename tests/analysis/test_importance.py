"""Tests for failure-mode importance analysis."""

import pytest

from repro.analysis import downtime_budget_table, mode_importances
from repro.core import DesignEvaluator, TierDesign
from repro.errors import EvaluationError
from repro.model import MechanismConfig


@pytest.fixture
def evaluator(paper_infra, app_tier_service):
    return DesignEvaluator(paper_infra, app_tier_service)


def bronze(infra):
    return MechanismConfig(infra.mechanism("maintenanceA"),
                           {"level": "bronze"})


@pytest.fixture
def family1(paper_infra):
    """rC x5, bronze, no redundancy: every failure is downtime."""
    return TierDesign("application", "rC", 5, 0, (),
                      (bronze(paper_infra),))


class TestModeImportances:
    def test_sorted_by_downtime(self, evaluator, family1):
        importances = mode_importances(evaluator, family1, 1000)
        downtimes = [item.downtime_minutes for item in importances]
        assert downtimes == sorted(downtimes, reverse=True)

    def test_hard_failures_dominate_without_redundancy(self, evaluator,
                                                       family1):
        importances = mode_importances(evaluator, family1, 1000)
        assert importances[0].mode == "machineA.hard"
        assert importances[0].contribution > 0.9

    def test_contributions_sum_to_about_one(self, evaluator, family1):
        importances = mode_importances(evaluator, family1, 1000)
        total = sum(item.contribution for item in importances)
        assert total == pytest.approx(1.0, abs=0.01)

    def test_improvement_close_to_contribution(self, evaluator, family1):
        """In the rare-failure regime, suppressing a mode removes
        roughly its own contribution."""
        for item in mode_importances(evaluator, family1, 1000):
            assert item.improvement_minutes == pytest.approx(
                item.downtime_minutes, rel=0.05, abs=0.2)

    def test_redundancy_shifts_the_budget(self, evaluator, paper_infra):
        """With one extra active node, hard failures stop dominating as
        absolutely -- soft doubles matter relatively more."""
        family9 = TierDesign("application", "rC", 6, 0, (),
                             (bronze(paper_infra),))
        base = {item.mode: item for item in
                mode_importances(evaluator, family9, 1000)}
        assert base["machineA.hard"].downtime_minutes < 60

    def test_failures_per_year_reported(self, evaluator, family1):
        by_mode = {item.mode: item for item in
                   mode_importances(evaluator, family1, 1000)}
        # 5 machines, MTBF 650d -> ~2.8 hard failures/yr.
        assert by_mode["machineA.hard"].failures_per_year == \
            pytest.approx(5 * 365 / 650, rel=0.05)

    def test_budget_table_renders(self, evaluator, family1):
        table = downtime_budget_table(evaluator, family1, 1000)
        assert "machineA.hard" in table
        assert "total" in table
        assert table.count("\n") >= 5
