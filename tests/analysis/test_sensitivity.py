"""Tests for sensitivity analysis and design switch points."""

import pytest

from repro.analysis import (design_switch_points, downtime_sensitivity,
                            tornado_table)
from repro.core import DesignEvaluator, SearchLimits, TierDesign
from repro.errors import EvaluationError
from repro.model import MechanismConfig
from repro.units import Duration


@pytest.fixture
def evaluator(paper_infra, app_tier_service):
    return DesignEvaluator(paper_infra, app_tier_service)


@pytest.fixture
def design(paper_infra):
    bronze = MechanismConfig(paper_infra.mechanism("maintenanceA"),
                             {"level": "bronze"})
    return TierDesign("application", "rC", 5, 0, (), (bronze,))


class TestDowntimeSensitivity:
    def test_nominal_factor_reproduces_baseline(self, evaluator, design):
        points = downtime_sensitivity(evaluator, design, "machineA.hard",
                                      "mtbf", [1.0], 1000)
        from repro.availability.markov import evaluate_tier
        nominal = evaluate_tier(
            evaluator.tier_model(design, 1000)).downtime_minutes
        assert points[0].downtime_minutes == pytest.approx(nominal)

    def test_better_mtbf_less_downtime(self, evaluator, design):
        points = downtime_sensitivity(evaluator, design, "machineA.hard",
                                      "mtbf", [0.5, 1.0, 2.0, 4.0], 1000)
        downtimes = [point.downtime_minutes for point in points]
        assert downtimes == sorted(downtimes, reverse=True)

    def test_worse_mttr_more_downtime(self, evaluator, design):
        points = downtime_sensitivity(evaluator, design, "machineA.hard",
                                      "mttr", [0.5, 1.0, 2.0], 1000)
        downtimes = [point.downtime_minutes for point in points]
        assert downtimes == sorted(downtimes)

    def test_scaling_dominant_mode_moves_total_proportionally(
            self, evaluator, design):
        """machineA.hard carries ~99% of family 1's downtime; doubling
        its MTTR nearly doubles the total."""
        points = downtime_sensitivity(evaluator, design, "machineA.hard",
                                      "mttr", [1.0, 2.0], 1000)
        ratio = points[1].downtime_minutes / points[0].downtime_minutes
        assert ratio == pytest.approx(2.0, rel=0.05)

    def test_unknown_mode_rejected(self, evaluator, design):
        with pytest.raises(EvaluationError):
            downtime_sensitivity(evaluator, design, "ghost.hard", "mtbf",
                                 [1.0], 1000)

    def test_bad_parameter_rejected(self, evaluator, design):
        with pytest.raises(EvaluationError):
            downtime_sensitivity(evaluator, design, "machineA.hard",
                                 "color", [1.0], 1000)

    def test_nonpositive_factor_rejected(self, evaluator, design):
        with pytest.raises(EvaluationError):
            downtime_sensitivity(evaluator, design, "machineA.hard",
                                 "mtbf", [0.0], 1000)

    def test_tornado_table_renders(self, evaluator, design):
        table = tornado_table(evaluator, design,
                              required_throughput=1000)
        assert "machineA.hard" in table
        assert "mttr" in table


class TestDesignSwitchPoints:
    def test_paper_load_sweep_switches(self, evaluator):
        """The paper: 'the optimal design family may change as the load
        level fluctuates'."""
        loads = [400, 800, 1200, 1600, 2000, 2400]
        trajectory, switches = design_switch_points(
            evaluator, "application", loads, Duration.minutes(100),
            SearchLimits(max_redundancy=4))
        assert len(trajectory) == len(loads)
        assert all(family is not None for _, family in trajectory)
        assert len(switches) >= 1

    def test_infeasible_loads_are_none(self, evaluator):
        trajectory, switches = design_switch_points(
            evaluator, "application", [400, 10_000_000],
            Duration.minutes(100), SearchLimits(max_redundancy=2))
        assert trajectory[0][1] is not None
        assert trajectory[1][1] is None

    def test_constant_family_means_no_switches(self, evaluator):
        trajectory, switches = design_switch_points(
            evaluator, "application", [400, 410], Duration.minutes(100),
            SearchLimits(max_redundancy=3))
        families = {family for _, family in trajectory}
        if len(families) == 1:
            assert switches == []
        else:
            assert len(switches) == 1
