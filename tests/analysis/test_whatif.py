"""Tests for what-if infrastructure improvement analysis."""

import pytest

from repro.analysis import (Improvement, apply_improvement,
                            evaluate_improvements, whatif_table)
from repro.core import SearchLimits
from repro.errors import AvedError, ModelError
from repro.model import ServiceRequirements
from repro.units import Duration


@pytest.fixture
def requirement():
    return ServiceRequirements(1000, Duration.minutes(100))


LIMITS = SearchLimits(max_redundancy=4)


class TestApplyImprovement:
    def test_mtbf_scaled(self, paper_infra):
        improved = apply_improvement(
            paper_infra, Improvement("x", "machineA", "hard",
                                     mtbf_factor=2.0))
        assert improved.component("machineA").failure_mode("hard") \
            .mtbf == Duration.days(1300)
        # Other modes untouched.
        assert improved.component("machineA").failure_mode("soft") \
            .mtbf == Duration.days(75)

    def test_original_not_mutated(self, paper_infra):
        before = paper_infra.component("machineA").failure_mode("hard") \
            .mtbf
        apply_improvement(paper_infra,
                          Improvement("x", "machineA", "hard",
                                      mtbf_factor=10.0))
        assert paper_infra.component("machineA").failure_mode("hard") \
            .mtbf == before

    def test_cost_delta_applied_to_active(self, paper_infra):
        improved = apply_improvement(
            paper_infra, Improvement("x", "machineA",
                                     annual_cost_delta=500.0))
        cost = improved.component("machineA").cost
        assert cost.active == 2640 + 500
        assert cost.inactive == 2400

    def test_all_modes_when_unspecified(self, paper_infra):
        improved = apply_improvement(
            paper_infra, Improvement("x", "linux", mtbf_factor=3.0))
        assert improved.component("linux").failure_mode("soft") \
            .mtbf == Duration.days(180)

    def test_mechanism_mttr_not_scalable(self, paper_infra):
        with pytest.raises(ModelError):
            apply_improvement(paper_infra,
                              Improvement("x", "machineA", "hard",
                                          mttr_factor=0.5))

    def test_concrete_mttr_scalable(self, tiny_infra):
        # box.glitch has a concrete (zero) mttr; os.crash too.
        improved = apply_improvement(
            tiny_infra, Improvement("x", "os", "crash",
                                    mttr_factor=0.5))
        assert improved.component("os").failure_mode("crash").mttr \
            == Duration.ZERO

    def test_unknown_mode_rejected(self, paper_infra):
        with pytest.raises(ModelError):
            apply_improvement(paper_infra,
                              Improvement("x", "machineA", "ghost",
                                          mtbf_factor=2.0))

    def test_invalid_factors_rejected(self):
        with pytest.raises(ModelError):
            Improvement("x", "machineA", mtbf_factor=0.0)


class TestEvaluateImprovements:
    def test_results_sorted_by_saving(self, paper_infra,
                                      app_tier_service, requirement):
        improvements = [
            Improvement("expensive", "machineA", "hard",
                        mtbf_factor=1.2, annual_cost_delta=5000.0),
            Improvement("free", "linux", "soft", mtbf_factor=2.0),
        ]
        results = evaluate_improvements(paper_infra, app_tier_service,
                                        requirement, improvements,
                                        LIMITS)
        savings = [r.annual_saving for r in results]
        assert savings == sorted(savings, reverse=True)

    def test_free_improvement_never_hurts(self, paper_infra,
                                          app_tier_service, requirement):
        results = evaluate_improvements(
            paper_infra, app_tier_service, requirement,
            [Improvement("free 10x hard", "machineA", "hard",
                         mtbf_factor=10.0)], LIMITS)
        assert results[0].annual_saving >= 0

    def test_useful_upgrade_saves_money_at_tight_requirement(
            self, paper_infra, app_tier_service):
        """At 10 min/yr the baseline needs silver + extra; a free 10x
        hard-failure MTBF lets bronze do the job."""
        tight = ServiceRequirements(1000, Duration.minutes(10))
        results = evaluate_improvements(
            paper_infra, app_tier_service, tight,
            [Improvement("free 10x hard", "machineA", "hard",
                         mtbf_factor=10.0)], LIMITS)
        assert results[0].annual_saving > 0

    def test_infeasible_baseline_rejected(self, paper_infra,
                                          app_tier_service):
        impossible = ServiceRequirements(10_000_000,
                                         Duration.minutes(100))
        with pytest.raises(AvedError):
            evaluate_improvements(paper_infra, app_tier_service,
                                  impossible, [], LIMITS)

    def test_table_renders(self, paper_infra, app_tier_service,
                           requirement):
        results = evaluate_improvements(
            paper_infra, app_tier_service, requirement,
            [Improvement("free", "linux", "soft", mtbf_factor=2.0)],
            LIMITS)
        table = whatif_table(results)
        assert "baseline" in table
        assert "free" in table
