"""The cache correctness bar: caching must be *invisible*.

Cache-off, cold-cache, and warm-cache runs must produce byte-identical
serialized evaluations and identical search statistics, under both
serial and pooled execution.  The only observable difference a cache
may make is speed and the counters it reports about itself.
"""

import dataclasses
import json

import pytest

from repro.core import Aved
from repro.core.engine import SearchError
from repro.core.serialize import evaluation_to_dict
from repro.model import ServiceRequirements
from repro.units import Duration

REQUIREMENTS = ServiceRequirements(1000, Duration.minutes(100))


def _canonical(outcome):
    return json.dumps(evaluation_to_dict(outcome.evaluation),
                      sort_keys=True)


def _design(infrastructure, service, cache=None, jobs=None, **kwargs):
    engine = Aved(infrastructure, service, cache=cache, jobs=jobs,
                  **kwargs)
    return engine.design(REQUIREMENTS)


class TestByteIdentity:
    @pytest.fixture(scope="class")
    def runs(self, paper_infra, app_tier_service, tmp_path_factory):
        cache_dir = str(tmp_path_factory.mktemp("tier-cache"))
        off = _design(paper_infra, app_tier_service)
        cold = _design(paper_infra, app_tier_service, cache=cache_dir)
        warm = _design(paper_infra, app_tier_service, cache=cache_dir)
        pooled_warm = _design(paper_infra, app_tier_service,
                              cache=cache_dir, jobs=2)
        pooled_off = _design(paper_infra, app_tier_service, jobs=2)
        return {"off": off, "cold": cold, "warm": warm,
                "pooled_warm": pooled_warm, "pooled_off": pooled_off}

    def test_serialized_evaluations_byte_identical(self, runs):
        reference = _canonical(runs["off"])
        for name, outcome in runs.items():
            assert _canonical(outcome) == reference, \
                "%s run diverged from cache-off" % name

    def test_designs_and_costs_identical(self, runs):
        reference = runs["off"]
        for outcome in runs.values():
            assert outcome.design.describe() \
                == reference.design.describe()
            assert outcome.annual_cost == reference.annual_cost

    def test_search_stats_identical_across_cache_states(self, runs):
        # Stats parity is deliberate: the cache must not even *look*
        # like it changed the search.  Serial runs compare to serial,
        # pooled to pooled (pooling batches prefetches differently).
        assert dataclasses.asdict(runs["cold"].stats) \
            == dataclasses.asdict(runs["off"].stats)
        assert dataclasses.asdict(runs["warm"].stats) \
            == dataclasses.asdict(runs["off"].stats)
        assert dataclasses.asdict(runs["pooled_warm"].stats) \
            == dataclasses.asdict(runs["pooled_off"].stats)

    def test_cold_run_wrote_then_warm_run_hit(self, runs):
        assert runs["off"].cache is None
        assert runs["cold"].cache["writes"] > 0
        assert runs["warm"].cache["hits"] > 0
        assert runs["pooled_warm"].cache["hits"] > 0

    def test_summary_reports_cache_line_only_when_caching(self, runs):
        assert "served from cache" not in runs["off"].summary()
        warm_summary = runs["warm"].summary()
        assert "tier solves served from cache" in warm_summary
        counters = runs["warm"].cache
        expected = "%d/%d tier solves served from cache" % (
            counters["hits"], counters["hits"] + counters["misses"])
        assert expected in warm_summary

    def test_clean_cached_runs_report_no_degradation(self, runs):
        for name in ("cold", "warm", "pooled_warm"):
            assert not runs[name].degraded, name


class TestVerifyMode:
    def test_cache_verify_passes_on_honest_store(self, paper_infra,
                                                 app_tier_service,
                                                 tmp_path):
        cache_dir = str(tmp_path / "cache")
        _design(paper_infra, app_tier_service, cache=cache_dir)
        outcome = _design(paper_infra, app_tier_service,
                          cache=cache_dir, cache_verify=True)
        assert outcome.cache["verify_checked"] > 0
        assert not outcome.degraded

    def test_cache_verify_requires_cache(self, paper_infra,
                                         app_tier_service):
        with pytest.raises(SearchError):
            Aved(paper_infra, app_tier_service, cache_verify=True)
