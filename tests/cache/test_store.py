"""Unit tests for the persistent tier-evaluation store.

The contracts under test, in order: exact round-trips, zero-trust
reads (corruption/staleness is detected and quarantined, never
served), the graceful-degradation ladder (AVD602 -> AVD603), bounded
size with eviction, crash-residue scrubbing, whole-store quarantine,
purge, and pickling into worker pools.
"""

import json
import os
import pickle

import pytest

from repro.availability import (FailureModeEntry, MarkovEngine,
                                TierAvailabilityModel)
from repro.cache import TierEvaluationStore, entry_key
from repro.cache.store import (_encode_entry, tier_result_from_payload,
                               tier_result_to_payload)
from repro.errors import CacheError
from repro.lint.canonical import CANONICAL_VERSION, canonical_json
from repro.lint.canonical import canonical_key
from repro.resilience.events import (CACHE_CORRUPT, CACHE_DISABLED,
                                     CACHE_STALE, CACHE_VERIFY_MISMATCH,
                                     CACHE_WRITE_FAILED)
from repro.units import Duration

ENGINE_ID = "markov@1"


def tier_model(name="web", n=3, m=2, s=1):
    return TierAvailabilityModel(name, n=n, m=m, s=s, modes=(
        FailureModeEntry("hard", Duration.days(300), Duration.hours(10),
                         Duration.minutes(5)),
        FailureModeEntry("soft", Duration.days(20), Duration.minutes(3),
                         Duration.minutes(5), spare_susceptible=True),
    ))


def solve(model):
    return MarkovEngine().evaluate_tier(model)


def entry_file(store, model, engine_id=ENGINE_ID):
    return store.entry_path(entry_key(engine_id, canonical_key(model)))


class TestRoundTrip:
    def test_get_miss_then_put_then_hit(self, tmp_path):
        store = TierEvaluationStore(str(tmp_path / "c"))
        model = tier_model()
        assert store.get(ENGINE_ID, model) is None
        result = solve(model)
        assert store.put(ENGINE_ID, model, result)
        cached = store.get(ENGINE_ID, model)
        assert canonical_json(tier_result_to_payload(cached)) \
            == canonical_json(tier_result_to_payload(result))
        assert store.counters["misses"] == 1
        assert store.counters["hits"] == 1
        assert store.counters["writes"] == 1

    def test_hit_survives_process_restart(self, tmp_path):
        root = str(tmp_path / "c")
        model = tier_model()
        result = solve(model)
        TierEvaluationStore(root).put(ENGINE_ID, model, result)
        fresh = TierEvaluationStore(root)       # a "new process"
        cached = fresh.get(ENGINE_ID, model)
        assert cached is not None
        assert cached.unavailability == result.unavailability

    def test_hits_return_fresh_objects_never_aliases(self, tmp_path):
        # FallbackEngine annotates results in place; a shared cached
        # object would let one run's provenance leak into another's.
        store = TierEvaluationStore(str(tmp_path / "c"))
        model = tier_model()
        store.put(ENGINE_ID, model, solve(model))
        first = store.get(ENGINE_ID, model)
        second = store.get(ENGINE_ID, model)
        assert first is not second
        assert first.mode_results is not second.mode_results

    def test_engine_provenance_round_trips(self, tmp_path):
        """Provenance the engine itself attached (e.g. the Markov
        solver noting a least-squares degradation) is persisted, so a
        warm hit reproduces the cold result exactly."""
        from repro.availability.model import EngineProvenance
        store = TierEvaluationStore(str(tmp_path / "c"))
        model = tier_model()
        result = solve(model)
        object.__setattr__(
            result, "provenance",
            EngineProvenance(engine="markov",
                             cause="dense solve degraded to least "
                                   "squares (Singular matrix)"))
        store.put(ENGINE_ID, model, result)
        cached = store.get(ENGINE_ID, model)
        assert cached.provenance is not None
        assert cached.provenance.engine == "markov"
        assert "least squares" in cached.provenance.cause

    def test_absent_provenance_stays_absent(self, tmp_path):
        store = TierEvaluationStore(str(tmp_path / "c"))
        model = tier_model()
        result = solve(model)
        assert result.provenance is None
        store.put(ENGINE_ID, model, result)
        assert store.get(ENGINE_ID, model).provenance is None

    def test_payload_round_trip_is_canonically_exact(self):
        payload = tier_result_to_payload(solve(tier_model()))
        rebuilt = tier_result_from_payload(
            json.loads(canonical_json(payload)))
        assert canonical_json(tier_result_to_payload(rebuilt)) \
            == canonical_json(payload)

    def test_engine_id_partitions_the_keyspace(self, tmp_path):
        store = TierEvaluationStore(str(tmp_path / "c"))
        model = tier_model()
        store.put(ENGINE_ID, model, solve(model))
        assert store.get("analytic@1", model) is None

    def test_memory_lru_is_bounded(self, tmp_path):
        store = TierEvaluationStore(str(tmp_path / "c"),
                                    memory_entries=2)
        for index in range(4):
            model = tier_model(name="t%d" % index)
            store.put(ENGINE_ID, model, solve(model))
        assert len(store._memory) == 2


class TestZeroTrustReads:
    def test_truncated_entry_is_quarantined_not_served(self, tmp_path):
        store = TierEvaluationStore(str(tmp_path / "c"))
        model = tier_model()
        store.put(ENGINE_ID, model, solve(model))
        path = entry_file(store, model)
        data = open(path, "rb").read()
        open(path, "wb").write(data[:len(data) // 2])
        fresh = TierEvaluationStore(store.root)
        assert fresh.get(ENGINE_ID, model) is None
        assert fresh.counters["corrupt"] == 1
        assert not os.path.exists(path)
        assert fresh.stats()["quarantined_entries"] == 1
        assert [e.kind for e in fresh.drain_log()] == [CACHE_CORRUPT]

    def test_every_single_byte_flip_is_detected(self, tmp_path):
        store = TierEvaluationStore(str(tmp_path / "c"))
        model = tier_model()
        store.put(ENGINE_ID, model, solve(model))
        path = entry_file(store, model)
        data = open(path, "rb").read()
        for position in range(len(data)):
            for bit in (0x01, 0x80):
                open(path, "wb").write(
                    data[:position]
                    + bytes([data[position] ^ bit])
                    + data[position + 1:])
                fresh = TierEvaluationStore(store.root, scrub=False)
                assert fresh.get(ENGINE_ID, model) is None, \
                    "flip at byte %d (bit %#x) was served" \
                    % (position, bit)
                os.makedirs(os.path.dirname(path), exist_ok=True)
                open(path, "wb").write(data)

    def test_stale_version_entry_is_ignored_with_avd605(self, tmp_path):
        store = TierEvaluationStore(str(tmp_path / "c"))
        model = tier_model()
        result = solve(model)
        store.put(ENGINE_ID, model, result)
        path = entry_file(store, model)
        # Re-encode the same payload under an older canonical version
        # with a *valid* checksum: only the version gate can catch it.
        stale = _encode_entry(ENGINE_ID, canonical_key(model),
                              tier_result_to_payload(result),
                              version=CANONICAL_VERSION - 1)
        open(path, "wb").write(stale)
        fresh = TierEvaluationStore(store.root)
        assert fresh.get(ENGINE_ID, model) is None
        assert fresh.counters["stale"] == 1
        assert fresh.counters["corrupt"] == 0
        assert [e.kind for e in fresh.drain_log()] == [CACHE_STALE]

    def test_swapped_entries_are_rejected(self, tmp_path):
        # Valid checksum, wrong address: entry A's bytes copied over
        # entry B must not be served as B.
        store = TierEvaluationStore(str(tmp_path / "c"))
        model_a, model_b = tier_model("a"), tier_model("b", n=4, m=3)
        store.put(ENGINE_ID, model_a, solve(model_a))
        store.put(ENGINE_ID, model_b, solve(model_b))
        data_a = open(entry_file(store, model_a), "rb").read()
        open(entry_file(store, model_b), "wb").write(data_a)
        fresh = TierEvaluationStore(store.root)
        assert fresh.get(ENGINE_ID, model_b) is None
        assert fresh.counters["corrupt"] == 1

    def test_corruption_storm_disables_the_store(self, tmp_path):
        store = TierEvaluationStore(str(tmp_path / "c"))
        models = [tier_model("t%d" % index) for index in range(4)]
        for model in models:
            store.put(ENGINE_ID, model, solve(model))
        for model in models:
            path = entry_file(store, model)
            open(path, "wb").write(b"not json at all")
        fresh = TierEvaluationStore(store.root, corrupt_limit=3,
                                    scrub=False)
        for model in models:
            fresh.get(ENGINE_ID, model)
        assert not fresh.enabled
        kinds = [event.kind for event in fresh.drain_log()]
        assert CACHE_DISABLED in kinds


class TestDegradationLadder:
    def test_unwritable_objects_dir_degrades_not_raises(self, tmp_path,
                                                        monkeypatch):
        store = TierEvaluationStore(str(tmp_path / "c"), fail_limit=2)

        def enospc(*args, **kwargs):
            raise OSError(28, "No space left on device")

        from repro.cache import store as store_module
        monkeypatch.setattr(store_module, "atomic_write_bytes", enospc)
        model_a, model_b = tier_model("a"), tier_model("b")
        assert store.put(ENGINE_ID, model_a, solve(model_a)) is False
        assert store.enabled          # one fault: degraded, still on
        assert store.put(ENGINE_ID, model_b, solve(model_b)) is False
        assert not store.enabled      # fail_limit reached: off
        kinds = [event.kind for event in store.drain_log()]
        assert kinds.count(CACHE_WRITE_FAILED) == 2
        assert kinds.count(CACHE_DISABLED) == 1
        # Off means off: no further reads or writes.
        assert store.get(ENGINE_ID, model_a) is None

    def test_open_failure_raises_cache_error(self, tmp_path):
        blocker = tmp_path / "flat"
        blocker.write_text("a file, not a directory")
        with pytest.raises(CacheError):
            TierEvaluationStore(str(blocker / "c"))

    def test_bad_limits_raise_cache_error(self, tmp_path):
        with pytest.raises(CacheError):
            TierEvaluationStore(str(tmp_path / "c"), max_entries=0)
        with pytest.raises(CacheError):
            TierEvaluationStore(str(tmp_path / "c"), fail_limit=0)


class TestBoundsAndScrub:
    def test_eviction_keeps_store_bounded(self, tmp_path):
        store = TierEvaluationStore(str(tmp_path / "c"), max_entries=3)
        for index in range(6):
            model = tier_model("t%d" % index)
            store.put(ENGINE_ID, model, solve(model))
            entry = entry_file(store, model)
            os.utime(entry, (index, index))   # deterministic age order
        assert store.stats()["entries"] <= 3
        assert store.counters["evicted"] >= 3

    def test_scrub_removes_crash_residue(self, tmp_path):
        root = str(tmp_path / "c")
        store = TierEvaluationStore(root)
        model = tier_model()
        store.put(ENGINE_ID, model, solve(model))
        # A killed writer leaves a temp file and a dead-pid lock.
        orphan = os.path.join(store.objects_dir, ".cache-dead.tmp")
        open(orphan, "wb").write(b"half an entry")
        dead_lock = entry_file(store, model) + ".lock"
        open(dead_lock, "w").write("999999999\n")
        report = TierEvaluationStore(root).scrub()
        assert not os.path.exists(orphan)
        assert not os.path.exists(dead_lock)
        assert report["entries"] == 1

    def test_startup_scrub_enforces_max_entries(self, tmp_path):
        root = str(tmp_path / "c")
        store = TierEvaluationStore(root)
        for index in range(5):
            model = tier_model("t%d" % index)
            store.put(ENGINE_ID, model, solve(model))
            os.utime(entry_file(store, model), (index, index))
        shrunk = TierEvaluationStore(root, max_entries=2)
        assert shrunk.stats()["entries"] == 2


class TestQuarantineAndPurge:
    def test_store_quarantine_blocks_future_opens(self, tmp_path):
        root = str(tmp_path / "c")
        store = TierEvaluationStore(root)
        model = tier_model()
        store.put(ENGINE_ID, model, solve(model))
        store.quarantine_store("test says so")
        assert not store.enabled
        assert os.path.exists(store.marker_path)
        reopened = TierEvaluationStore(root)
        assert not reopened.enabled
        assert reopened.get(ENGINE_ID, model) is None
        assert [e.kind for e in reopened.drain_log()] \
            == [CACHE_VERIFY_MISMATCH]

    def test_purge_wipes_and_reenables(self, tmp_path):
        root = str(tmp_path / "c")
        store = TierEvaluationStore(root)
        model = tier_model()
        store.put(ENGINE_ID, model, solve(model))
        store.quarantine_store("tainted")
        removed = store.purge()
        assert removed >= 1
        assert store.enabled
        assert not os.path.exists(store.marker_path)
        assert store.stats()["entries"] == 0
        reopened = TierEvaluationStore(root)
        assert reopened.enabled

    def test_verify_all_quarantines_and_tallies(self, tmp_path):
        store = TierEvaluationStore(str(tmp_path / "c"))
        good, bad = tier_model("good"), tier_model("bad", n=4, m=2)
        store.put(ENGINE_ID, good, solve(good))
        store.put(ENGINE_ID, bad, solve(bad))
        open(entry_file(store, bad), "wb").write(b"garbage")
        tally = store.verify_all()
        assert tally == {"checked": 2, "ok": 1, "corrupt": 1, "stale": 0}
        assert store.stats()["quarantined_entries"] == 1
        # The good entry is untouched and still serves.
        assert store.get(ENGINE_ID, good) is not None


class TestConcurrencyAndPickling:
    def test_pickled_store_reopens_same_directory(self, tmp_path):
        store = TierEvaluationStore(str(tmp_path / "c"),
                                    max_entries=123, durable=False)
        model = tier_model()
        store.put(ENGINE_ID, model, solve(model))
        clone = pickle.loads(pickle.dumps(store))
        assert clone.root == store.root
        assert clone.max_entries == 123
        assert clone.durable is False
        assert clone.get(ENGINE_ID, model) is not None

    def test_live_contention_on_one_entry_skips_silently(self, tmp_path):
        store = TierEvaluationStore(str(tmp_path / "c"))
        model = tier_model()
        path = entry_file(store, model)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        open(path + ".lock", "w").write("%d\n" % os.getpid())
        try:
            # Own pid counts as stale (a previous run of *this*
            # process), so use a live foreign pid: pid 1 is always up.
            open(path + ".lock", "w").write("1\n")
            assert store.put(ENGINE_ID, model, solve(model)) is False
            assert store.counters["write_failures"] == 0
            assert store.enabled
        finally:
            os.unlink(path + ".lock")

    def test_concurrent_writers_from_threads(self, tmp_path):
        import threading
        store = TierEvaluationStore(str(tmp_path / "c"))
        models = [tier_model("t%d" % index) for index in range(8)]
        results = {model.name: solve(model) for model in models}
        errors = []

        def hammer():
            try:
                for model in models:
                    store.put(ENGINE_ID, model, results[model.name])
                    assert store.get(ENGINE_ID, model) is not None
            except Exception as exc:   # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert store.stats()["entries"] == len(models)
