"""Fault-injected durability: storms never change the designed system.

The paper-level invariant under test: every injected storage fault is
*detected* (quarantine + AVD6xx diagnostics) and *survived* (the store
degrades, the search completes), and the design that comes out is
byte-identical to a cache-off run.  Corruption may cost speed, never
correctness.
"""

import json
import os

import pytest

from repro.availability import (FailureModeEntry, MarkovEngine,
                                TierAvailabilityModel)
from repro.cache import (CacheFaultPlan, CacheKilled, TierEvaluationStore)
from repro.core import Aved
from repro.core.serialize import evaluation_to_dict
from repro.model import ServiceRequirements
from repro.units import Duration

REQUIREMENTS = ServiceRequirements(1000, Duration.minutes(100))
ENGINE_ID = "markov@1"


def tier_model(name="web"):
    return TierAvailabilityModel(name, n=2, m=2, s=0, modes=(
        FailureModeEntry("hard", Duration.days(50), Duration.hours(12),
                         Duration.minutes(5)),
    ))


def _canonical(outcome):
    return json.dumps(evaluation_to_dict(outcome.evaluation),
                      sort_keys=True)


class TestFaultPlan:
    def test_rates_validated(self):
        with pytest.raises(ValueError):
            CacheFaultPlan(torn_write_rate=-0.1)
        with pytest.raises(ValueError):
            CacheFaultPlan(kill_rate=1.5)

    def test_decisions_are_pure_and_seeded(self):
        plan = CacheFaultPlan(seed=11, torn_write_rate=0.3,
                              flip_byte_rate=0.3, enospc_rate=0.2)
        schedule = [plan.decide(op) for op in range(64)]
        assert schedule == [plan.decide(op) for op in range(64)]
        other = CacheFaultPlan(seed=12, torn_write_rate=0.3,
                               flip_byte_rate=0.3, enospc_rate=0.2)
        assert schedule != [other.decide(op) for op in range(64)]
        fired = [action for action in schedule if action is not None]
        assert fired, "storm rates produced no faults in 64 ops"

    def test_at_most_one_fault_per_op(self):
        plan = CacheFaultPlan(seed=5, torn_write_rate=0.5,
                              flip_byte_rate=0.5)
        for op in range(128):
            assert plan.decide(op) in ("torn", "flip")


class TestSingleFaults:
    def _store(self, tmp_path, **plan_kwargs):
        plan = CacheFaultPlan(seed=1, **plan_kwargs)
        return TierEvaluationStore(str(tmp_path / "c"), fault_plan=plan,
                                   memory_entries=0)

    def test_torn_writes_detected_on_read(self, tmp_path):
        store = self._store(tmp_path, torn_write_rate=1.0)
        model = tier_model()
        store.put(ENGINE_ID, model, MarkovEngine().evaluate_tier(model))
        assert store.get(ENGINE_ID, model) is None
        assert store.counters["corrupt"] == 1
        assert store.stats()["quarantined_entries"] == 1

    def test_flipped_bytes_detected_on_read(self, tmp_path):
        store = self._store(tmp_path, flip_byte_rate=1.0)
        model = tier_model()
        store.put(ENGINE_ID, model, MarkovEngine().evaluate_tier(model))
        assert store.get(ENGINE_ID, model) is None
        assert store.counters["corrupt"] == 1

    def test_stale_version_entries_ignored(self, tmp_path):
        store = self._store(tmp_path, stale_version_rate=1.0)
        model = tier_model()
        store.put(ENGINE_ID, model, MarkovEngine().evaluate_tier(model))
        assert store.get(ENGINE_ID, model) is None
        assert store.counters["stale"] == 1
        assert store.counters["corrupt"] == 0

    def test_enospc_degrades_and_disables(self, tmp_path):
        plan = CacheFaultPlan(seed=1, enospc_rate=1.0)
        store = TierEvaluationStore(str(tmp_path / "c"), fault_plan=plan,
                                    memory_entries=0, fail_limit=3)
        result = MarkovEngine().evaluate_tier(tier_model())
        for index in range(5):
            store.put(ENGINE_ID, tier_model("t%d" % index), result)
        assert not store.enabled
        assert store.counters["write_failures"] == 3

    def test_mid_write_kill_is_uncatchable_and_leaves_no_entry(self,
                                                               tmp_path):
        store = self._store(tmp_path, kill_rate=1.0)
        model = tier_model()
        result = MarkovEngine().evaluate_tier(model)
        with pytest.raises(CacheKilled):
            store.put(ENGINE_ID, model, result)
        assert not issubclass(CacheKilled, Exception)
        # The "dead writer" left a temp file but no trusted entry ...
        survivor = TierEvaluationStore(store.root)
        assert survivor.get(ENGINE_ID, model) is None
        # ... and the startup scrub removed the residue.
        residue = [name for _, _, names in os.walk(survivor.objects_dir)
                   for name in names if name.endswith(".tmp")]
        assert residue == []


class TestStormDesignIdentity:
    @pytest.fixture(scope="class")
    def storm_plan(self):
        return CacheFaultPlan(seed=1905, torn_write_rate=0.15,
                              flip_byte_rate=0.15, enospc_rate=0.1,
                              stale_version_rate=0.1)

    def test_design_survives_storm_byte_identical(self, paper_infra,
                                                  app_tier_service,
                                                  tmp_path,
                                                  storm_plan):
        baseline = Aved(paper_infra,
                        app_tier_service).design(REQUIREMENTS)
        cache_dir = str(tmp_path / "stormy")
        store = TierEvaluationStore(cache_dir, fault_plan=storm_plan,
                                    memory_entries=0)
        stormy = Aved(paper_infra, app_tier_service,
                      cache=store).design(REQUIREMENTS)
        assert _canonical(stormy) == _canonical(baseline)
        counters = stormy.cache
        assert counters["writes"] + counters["write_failures"] > 0
        # A second run over the tainted directory still matches.
        rerun_store = TierEvaluationStore(cache_dir, memory_entries=0)
        rerun = Aved(paper_infra, app_tier_service,
                     cache=rerun_store).design(REQUIREMENTS)
        assert _canonical(rerun) == _canonical(baseline)

    def test_storm_faults_surface_as_avd_diagnostics(self, paper_infra,
                                                     app_tier_service,
                                                     tmp_path):
        plan = CacheFaultPlan(seed=7, enospc_rate=1.0)
        store = TierEvaluationStore(str(tmp_path / "dying"),
                                    fault_plan=plan, memory_entries=0,
                                    fail_limit=2)
        outcome = Aved(paper_infra, app_tier_service,
                       cache=store).design(REQUIREMENTS)
        assert outcome.degraded
        summary = outcome.summary()
        assert "AVD602" in summary
        assert "AVD603" in summary
        assert "degraded to off" in summary

    def test_mid_run_scribbling_never_changes_the_design(self,
                                                         paper_infra,
                                                         app_tier_service,
                                                         tmp_path):
        baseline = Aved(paper_infra,
                        app_tier_service).design(REQUIREMENTS)
        cache_dir = str(tmp_path / "scribbled")
        warmup = TierEvaluationStore(cache_dir)
        Aved(paper_infra, app_tier_service,
             cache=warmup).design(REQUIREMENTS)
        # Vandalize every warm entry on disk, then run warm.
        for directory, _, names in os.walk(warmup.objects_dir):
            for name in names:
                if name.endswith(".json"):
                    path = os.path.join(directory, name)
                    data = open(path, "rb").read()
                    open(path, "wb").write(data[:-7] + b"7" * 7)
        tainted = TierEvaluationStore(cache_dir, memory_entries=0)
        outcome = Aved(paper_infra, app_tier_service,
                       cache=tainted).design(REQUIREMENTS)
        assert _canonical(outcome) == _canonical(baseline)
        assert outcome.cache["corrupt"] > 0
        assert "AVD601" in outcome.summary()
