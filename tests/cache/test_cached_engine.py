"""Tests for the cache<->engine wiring layer.

Covers the soundness rules of :func:`engine_cache_id` (exact-type
identity, seeded-only simulation), in-place rung wrapping of fallback
chains, idempotent re-attachment, paranoid hit verification, and that
hits flow back through the fallback chain's provenance machinery
exactly like fresh solves.
"""

import pytest

from repro.availability import (AnalyticEngine, FailureModeEntry,
                                MarkovEngine, SimulationEngine,
                                TierAvailabilityModel)
from repro.cache import (CachedEngine, TierEvaluationStore, attach_cache,
                         engine_cache_id, iter_cached_engines,
                         verify_sampled_hits)
from repro.cache.store import tier_result_to_payload
from repro.lint.canonical import canonical_json
from repro.resilience import ChaosEngine, FallbackEngine, FaultPlan
from repro.units import Duration


def tier_model(name="web"):
    return TierAvailabilityModel(name, n=2, m=2, s=0, modes=(
        FailureModeEntry("hard", Duration.days(50), Duration.hours(12),
                         Duration.minutes(5)),
    ))


@pytest.fixture
def store(tmp_path):
    return TierEvaluationStore(str(tmp_path / "cache"))


class TestEngineCacheId:
    def test_markov_and_analytic_are_cacheable(self):
        assert engine_cache_id(MarkovEngine()) == "markov@1"
        assert engine_cache_id(AnalyticEngine()) == "analytic@1"

    def test_seeded_simulation_identity_names_parameters(self):
        engine = SimulationEngine(years=50, seed=7)
        cache_id = engine_cache_id(engine)
        assert cache_id is not None
        assert "seed=7" in cache_id
        other = engine_cache_id(SimulationEngine(years=50, seed=8))
        assert other != cache_id

    def test_unseeded_simulation_is_never_cacheable(self):
        assert engine_cache_id(SimulationEngine(years=10)) is None

    def test_identity_is_by_exact_type_not_name(self):
        # ChaosEngine mirrors the wrapped engine's name; caching its
        # fault-injected answers would poison the store.
        chaos = ChaosEngine(MarkovEngine(), FaultPlan(seed=3))
        assert engine_cache_id(chaos) is None

    def test_wrapped_engine_is_not_rewrapped(self, store):
        wrapped = CachedEngine(MarkovEngine(), store, "markov@1")
        assert engine_cache_id(wrapped) is None


class TestAttachCache:
    def test_plain_engine_gets_wrapped(self, store):
        engine = attach_cache(MarkovEngine(), store)
        assert isinstance(engine, CachedEngine)
        assert engine.name == MarkovEngine().name

    def test_uncacheable_engine_passes_through(self, store):
        engine = SimulationEngine(years=10)
        assert attach_cache(engine, store) is engine

    def test_fallback_rungs_wrapped_in_place(self, store):
        chain = FallbackEngine()
        attached = attach_cache(chain, store)
        assert attached is chain
        cached = list(iter_cached_engines(chain))
        assert cached, "no fallback rung was wrapped"
        for wrapper in cached:
            assert wrapper.name == wrapper.inner.name

    def test_attach_is_idempotent(self, store):
        chain = FallbackEngine()
        attach_cache(chain, store)
        once = list(chain.engines)
        attach_cache(chain, store)
        assert chain.engines == once     # no double wrapping

    def test_unseeded_sim_rung_stays_unwrapped(self, store):
        chain = FallbackEngine()
        attach_cache(chain, store)
        for rung in chain.engines:
            inner = rung.inner if isinstance(rung, CachedEngine) else rung
            if type(inner) is SimulationEngine and inner.seed is None:
                assert not isinstance(rung, CachedEngine)


class TestCachedEngineBehavior:
    def test_miss_solves_and_populates(self, store):
        engine = attach_cache(MarkovEngine(), store)
        model = tier_model()
        result = engine.evaluate_tier(model)
        assert store.counters["misses"] == 1
        assert store.counters["writes"] == 1
        again = engine.evaluate_tier(model)
        assert store.counters["hits"] == 1
        assert again is not result
        assert canonical_json(tier_result_to_payload(again)) \
            == canonical_json(tier_result_to_payload(result))

    def test_hit_equals_fresh_solve_exactly(self, store):
        model = tier_model()
        fresh = MarkovEngine().evaluate_tier(model)
        engine = attach_cache(MarkovEngine(), store)
        engine.evaluate_tier(model)               # populate
        warm = engine.evaluate_tier(model)        # serve from store
        assert canonical_json(tier_result_to_payload(warm)) \
            == canonical_json(tier_result_to_payload(fresh))

    def test_cache_probe_never_solves_or_writes(self, store):
        engine = attach_cache(MarkovEngine(), store)
        model = tier_model()
        assert engine.cache_probe(model) is None
        assert store.counters["writes"] == 0
        engine.evaluate_tier(model)
        assert engine.cache_probe(model) is not None

    def test_fallback_chain_serves_hits_with_provenance(self, store):
        chain = FallbackEngine()
        attach_cache(chain, store)
        model = tier_model()
        cold = chain.evaluate_tier(model)
        warm = chain.evaluate_tier(model)
        assert store.counters["hits"] >= 1
        # Provenance is runtime bookkeeping: present on both paths,
        # identical, and never persisted into the store.
        assert warm.provenance == cold.provenance
        assert warm.unavailability == cold.unavailability

    def test_drain_log_forwards_inner_not_store(self, store):
        chain = FallbackEngine()
        attach_cache(chain, store)
        wrapper = next(iter_cached_engines(chain))
        assert list(wrapper.drain_log()) == []


class TestVerifySampledHits:
    def _warm_store(self, store, model):
        store.verify_sample = 4
        engine = attach_cache(MarkovEngine(), store)
        engine.evaluate_tier(model)    # miss + write
        engine.evaluate_tier(model)    # sampled hit
        return engine

    def test_clean_store_verifies_true(self, store):
        model = tier_model()
        engine = self._warm_store(store, model)
        assert verify_sampled_hits(store, engine) is True
        assert store.counters["verify_checked"] >= 1
        assert store.enabled

    def test_forged_entry_quarantines_whole_store(self, store, tmp_path):
        # A wrong payload *re-checksummed* passes every read-time
        # integrity check; only re-solving can catch it.
        model, decoy = tier_model("web"), tier_model("decoy")
        engine = self._warm_store(store, model)
        from repro.cache.store import _encode_entry, entry_key
        from repro.lint.canonical import canonical_key
        forged = tier_result_to_payload(
            MarkovEngine().evaluate_tier(decoy))
        forged["unavailability"] = 0.25
        path = store.entry_path(entry_key("markov@1",
                                          canonical_key(model)))
        with open(path, "wb") as handle:
            handle.write(_encode_entry("markov@1", canonical_key(model),
                                       forged))
        # Re-read so the sampled payload is the forged one.
        fresh_store = TierEvaluationStore(store.root, verify_sample=4)
        fresh_engine = attach_cache(MarkovEngine(), fresh_store)
        assert fresh_engine.evaluate_tier(model).unavailability == 0.25
        assert verify_sampled_hits(fresh_store, fresh_engine) is False
        assert not fresh_store.enabled
        import os
        assert os.path.exists(fresh_store.marker_path)
        # ... and the quarantine sticks across reopens.
        assert not TierEvaluationStore(store.root).enabled

    def test_verify_with_no_samples_is_trivially_true(self, store):
        engine = attach_cache(MarkovEngine(), store)
        assert verify_sampled_hits(store, engine) is True
