"""Tests for the infrastructure/service specification parser."""

import pytest

from repro.errors import SpecError
from repro.model import (ConstantPerformance, ExpressionPerformance,
                         FailureScope, MechanismRef, Sizing)
from repro.spec import DictResolver, parse_infrastructure, parse_service
from repro.units import Duration

MINIMAL_INFRA = """
component=box cost([inactive,active])=[10 20]
 failure=hard mtbf=100d mttr=<contract> detect_time=1m
 failure=soft mtbf=10d mttr=0 detect_time=0
component=os cost=0
 failure=crash mtbf=30d mttr=0 detect_time=0

mechanism=contract
 param=level range=[basic,fast]
 cost(level)=[100 400]
 mttr(level)=[24h 4h]

resource=node reconfig_time=30s
 component=box depend=null startup=1m
 component=os depend=box startup=2m
"""


class TestInfrastructureParsing:
    def test_components(self):
        infra = parse_infrastructure(MINIMAL_INFRA)
        box = infra.component("box")
        assert box.cost.inactive == 10
        assert box.cost.active == 20
        assert box.failure_mode("hard").mttr == MechanismRef("contract")
        assert box.failure_mode("hard").detect_time == Duration.minutes(1)
        assert box.failure_mode("soft").mttr == Duration.ZERO

    def test_mechanism(self):
        infra = parse_infrastructure(MINIMAL_INFRA)
        contract = infra.mechanism("contract")
        assert contract.parameter("level").values.values() == \
            ["basic", "fast"]
        from repro.model import MechanismConfig
        fast = MechanismConfig(contract, {"level": "fast"})
        assert fast.cost() == 400
        assert fast.duration_attribute("mttr") == Duration.hours(4)

    def test_resource(self):
        infra = parse_infrastructure(MINIMAL_INFRA)
        node = infra.resource("node")
        assert node.reconfig_time == Duration.seconds(30)
        assert node.component_names == ("box", "os")
        assert node.slot("os").depends_on == "box"
        assert node.slot("box").depends_on is None

    def test_loss_window_component(self):
        text = MINIMAL_INFRA + """
component=app cost=0 loss_window=<cp>
 failure=soft mtbf=60d mttr=0 detect_time=0
mechanism=cp
 param=interval range=[1m-1h;*2]
 cost=0
 loss_window=interval
"""
        infra = parse_infrastructure(text)
        assert infra.component("app").loss_window_mechanism == "cp"
        cp = infra.mechanism("cp")
        from repro.model import MechanismConfig
        interval = cp.parameter("interval").values.values()[2]
        config = MechanismConfig(cp, {"interval": interval})
        assert config.duration_attribute("loss_window") == interval

    def test_max_instances(self):
        text = """
component=box cost=0 max_instances=4
 failure=soft mtbf=10d mttr=0 detect_time=0
"""
        infra = parse_infrastructure(text)
        assert infra.component("box").max_instances == 4

    def test_failure_outside_component_rejected(self):
        with pytest.raises(SpecError):
            parse_infrastructure("failure=hard mtbf=1d mttr=0")

    def test_param_outside_mechanism_rejected(self):
        with pytest.raises(SpecError):
            parse_infrastructure("param=level range=[a,b]")

    def test_missing_mtbf_rejected(self):
        with pytest.raises(SpecError):
            parse_infrastructure(
                "component=x cost=0\n failure=soft mttr=0")

    def test_unknown_attribute_rejected(self):
        with pytest.raises(SpecError):
            parse_infrastructure("component=x cost=0 color=red")

    def test_dangling_mechanism_ref_rejected(self):
        with pytest.raises(Exception):
            parse_infrastructure("""
component=x cost=0
 failure=hard mtbf=1d mttr=<ghost> detect_time=0
""")

    def test_table_effect_wrong_length_rejected(self):
        with pytest.raises(SpecError):
            parse_infrastructure("""
mechanism=m
 param=level range=[a,b]
 cost(level)=[1 2 3]
""")

    def test_effect_keyed_by_unknown_param_rejected(self):
        with pytest.raises(SpecError):
            parse_infrastructure("""
mechanism=m
 param=level range=[a,b]
 cost(ghost)=[1 2]
""")


MINIMAL_SERVICE = """
application=shop
tier=web
 resource=node sizing=dynamic failurescope=resource
  nActive=[1-50,+1] performance=expr:100*n
tier=db
 resource=dbnode sizing=static failurescope=resource
  nActive=[1] performance=5000
"""


class TestServiceParsing:
    def test_structure(self):
        service = parse_service(MINIMAL_SERVICE)
        assert service.name == "shop"
        assert not service.is_finite_job
        assert [tier.name for tier in service.tiers] == ["web", "db"]

    def test_option_attributes(self):
        service = parse_service(MINIMAL_SERVICE)
        web = service.tier("web").option_for("node")
        assert web.sizing is Sizing.DYNAMIC
        assert web.failure_scope is FailureScope.RESOURCE
        assert isinstance(web.performance, ExpressionPerformance)
        assert web.performance.throughput(3) == 300.0
        assert web.active_counts()[:3] == [1, 2, 3]

    def test_constant_performance(self):
        service = parse_service(MINIMAL_SERVICE)
        db = service.tier("db").option_for("dbnode")
        assert isinstance(db.performance, ConstantPerformance)
        assert db.performance.throughput(1) == 5000.0

    def test_jobsize(self):
        service = parse_service("""
application=science jobsize=10000
tier=compute
 resource=n sizing=static failurescope=tier
  nActive=[1-10,+1] performance=expr:10*n
""")
        assert service.job_size == 10000
        assert service.is_finite_job

    def test_mechanism_use_with_resolver(self):
        from repro.model import CategoricalOverhead
        resolver = DictResolver(overhead={
            "ov.dat": CategoricalOverhead("loc", {"a": "max(1/cpi,100%)"})})
        service = parse_service("""
application=science jobsize=100
tier=compute
 resource=n sizing=static failurescope=tier
  nActive=[1-10,+1] performance=expr:10*n
  mechanism=cp mperformance(loc,cpi,n)=ov.dat
""", resolver)
        option = service.tier("compute").option_for("n")
        assert option.uses_mechanism("cp")
        assert isinstance(option.mechanism_use("cp").overhead,
                          CategoricalOverhead)

    def test_dat_reference_without_resolver_rejected(self):
        with pytest.raises(SpecError):
            parse_service("""
application=x
tier=t
 resource=r sizing=dynamic failurescope=resource
  nActive=[1-5,+1] performance(nActive)=perf.dat
""")

    def test_missing_required_attribute_rejected(self):
        with pytest.raises(SpecError, match="sizing"):
            parse_service("""
application=x
tier=t
 resource=r failurescope=resource nActive=[1] performance=10
""")

    def test_bad_enum_rejected(self):
        with pytest.raises(SpecError):
            parse_service("""
application=x
tier=t
 resource=r sizing=elastic failurescope=resource nActive=[1] performance=1
""")

    def test_resource_outside_tier_rejected(self):
        with pytest.raises(SpecError):
            parse_service("""
application=x
resource=r sizing=dynamic failurescope=resource nActive=[1] performance=1
""")

    def test_mperformance_before_mechanism_rejected(self):
        with pytest.raises(SpecError):
            parse_service("""
application=x
tier=t
 resource=r sizing=dynamic failurescope=resource nActive=[1] performance=1
  mperformance(a,b,n)=x.dat
""")

    def test_duplicate_application_rejected(self):
        with pytest.raises(SpecError):
            parse_service("application=a\napplication=b")

    def test_missing_application_rejected(self):
        with pytest.raises(SpecError):
            parse_service("tier=t\n resource=r sizing=dynamic "
                          "failurescope=resource nActive=[1] performance=1")


class TestFileResolver:
    def test_performance_file(self, tmp_path):
        from repro.spec import FileResolver
        (tmp_path / "perf.dat").write_text("1 100\n2 190\n4 350\n")
        resolver = FileResolver(str(tmp_path))
        perf = resolver.performance("perf.dat")
        assert perf.throughput(2) == 190.0
        assert perf.throughput(3) == pytest.approx(270.0)

    def test_overhead_file(self, tmp_path):
        from repro.spec import FileResolver
        (tmp_path / "ov.dat").write_text(
            "central: max(10/cpi, 100%)\npeer: max(20/cpi, 100%)\n")
        resolver = FileResolver(str(tmp_path))
        overhead = resolver.overhead("ov.dat")
        factor = overhead.factor(
            {"storage_location": "peer",
             "checkpoint_interval": Duration.minutes(5)}, 3)
        assert factor == 4.0

    def test_missing_file_raises(self, tmp_path):
        from repro.spec import FileResolver
        with pytest.raises(SpecError):
            FileResolver(str(tmp_path)).performance("nope.dat")

    def test_malformed_performance_file_raises(self, tmp_path):
        from repro.spec import FileResolver
        (tmp_path / "bad.dat").write_text("1 2 3\n")
        with pytest.raises(SpecError):
            FileResolver(str(tmp_path)).performance("bad.dat")
