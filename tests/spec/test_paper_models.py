"""Tests for the embedded paper models (Fig. 3-5, Table 1).

These pin the exact numbers the benchmarks depend on, so a model edit
that would silently change the reproduced figures fails here first.
"""

import pytest

from repro.model import FailureScope, Sizing
from repro.spec.paper import (TABLE1_OVERHEAD, TABLE1_PERFORMANCE,
                              table1_resolver)
from repro.units import Duration


class TestEcommerceService:
    def test_tiers_and_options(self, ecommerce):
        assert ecommerce.name == "ecommerce"
        web = ecommerce.tier("web")
        assert [o.resource for o in web.options] == ["rA", "rB"]
        app = ecommerce.tier("application")
        assert [o.resource for o in app.options] == ["rC", "rD", "rE",
                                                     "rF"]
        db = ecommerce.tier("database")
        assert [o.resource for o in db.options] == ["rG"]

    def test_app_tier_parallelism_model(self, ecommerce):
        option = ecommerce.tier("application").option_for("rC")
        assert option.sizing is Sizing.DYNAMIC
        assert option.failure_scope is FailureScope.RESOURCE
        assert option.active_counts()[0] == 1
        assert option.active_counts()[-1] == 1000

    def test_database_tier_static_single(self, ecommerce):
        option = ecommerce.tier("database").option_for("rG")
        assert option.sizing is Sizing.STATIC
        assert option.active_counts() == [1]
        assert option.performance.throughput(1) == 10000

    def test_table1_app_tier_performance(self, ecommerce):
        app = ecommerce.tier("application")
        assert app.option_for("rC").performance.throughput(5) == 1000
        assert app.option_for("rD").performance.throughput(5) == 1000
        assert app.option_for("rE").performance.throughput(1) == 1600
        assert app.option_for("rF").performance.throughput(1) == 1600


class TestScientificService:
    def test_job_size(self, scientific):
        assert scientific.job_size == 10000
        assert scientific.is_finite_job

    def test_computation_tier(self, scientific):
        tier = scientific.tier("computation")
        assert [o.resource for o in tier.options] == ["rH", "rI"]
        for option in tier.options:
            assert option.sizing is Sizing.STATIC
            assert option.failure_scope is FailureScope.TIER
            assert option.uses_mechanism("checkpoint")

    def test_table1_computation_performance(self, scientific):
        tier = scientific.tier("computation")
        rh = tier.option_for("rH").performance
        ri = tier.option_for("rI").performance
        assert rh.throughput(100) == pytest.approx(714.2857, rel=1e-4)
        assert ri.throughput(100) == pytest.approx(7142.857, rel=1e-4)
        # machineB is 10x machineA per node here.
        assert ri.throughput(50) == pytest.approx(10 * rh.throughput(50))

    def test_table1_overhead_functions(self, scientific):
        tier = scientific.tier("computation")
        rh = tier.option_for("rH").mechanism_use("checkpoint").overhead
        ri = tier.option_for("rI").mechanism_use("checkpoint").overhead

        def settings(loc, minutes):
            return {"storage_location": loc,
                    "checkpoint_interval": Duration.minutes(minutes)}

        # Table 1 rows, spot checks.
        assert rh.factor(settings("central", 5), 10) == 2.0
        assert rh.factor(settings("central", 5), 60) == 4.0
        assert rh.factor(settings("peer", 5), 60) == 4.0
        assert ri.factor(settings("central", 5), 10) == 1.0
        assert ri.factor(settings("central", 5), 60) == 2.0
        assert ri.factor(settings("peer", 50), 60) == 2.0

    def test_overhead_continuous_at_n30(self, scientific):
        tier = scientific.tier("computation")
        rh = tier.option_for("rH").mechanism_use("checkpoint").overhead

        def factor(n):
            return rh.factor({"storage_location": "central",
                              "checkpoint_interval": Duration.minutes(2)},
                             n)

        assert factor(29) == pytest.approx(5.0)       # 10/2
        assert factor(30) == pytest.approx(5.0)       # 30/(3*2)

    def test_checkpoint_grid_matches_fig3(self, paper_infra):
        grid = paper_infra.mechanism("checkpoint") \
            .parameter("checkpoint_interval").values
        values = grid.values()
        assert values[0] == Duration.minutes(1)
        assert values[-1] == Duration.hours(24)


class TestTable1Data:
    def test_all_references_resolvable(self):
        resolver = table1_resolver()
        for ref in TABLE1_PERFORMANCE:
            assert resolver.performance(ref) is not None
        for ref in TABLE1_OVERHEAD:
            assert resolver.overhead(ref) is not None

    def test_fixed_dependency_typos(self, paper_infra):
        """Fig. 3's rB/rF/rG print machineA/linux parents for machineB
        resources; the embedded spec uses the corrected parents."""
        for name in ("rB", "rF", "rG"):
            resource = paper_infra.resource(name)
            assert resource.slot("unix").depends_on == "machineB"
