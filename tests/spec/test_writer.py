"""Tests for spec serialization: write -> parse round trips."""

import pytest

from repro.errors import ModelError
from repro.spec import (parse_infrastructure, parse_service,
                        write_infrastructure, write_service)
from repro.spec.paper import (ECOMMERCE_SPEC, INFRASTRUCTURE_SPEC,
                              paper_infrastructure, table1_resolver)


class TestInfrastructureRoundTrip:
    def test_writer_is_fixed_point(self, paper_infra):
        text = write_infrastructure(paper_infra)
        again = write_infrastructure(parse_infrastructure(text))
        assert text == again

    def test_reparse_preserves_counts(self, paper_infra):
        reparsed = parse_infrastructure(write_infrastructure(paper_infra))
        assert len(reparsed.components) == len(paper_infra.components)
        assert len(reparsed.mechanisms) == len(paper_infra.mechanisms)
        assert len(reparsed.resources) == len(paper_infra.resources)

    def test_reparse_preserves_failure_modes(self, paper_infra):
        reparsed = parse_infrastructure(write_infrastructure(paper_infra))
        for component in paper_infra.components:
            other = reparsed.component(component.name)
            assert len(other.failure_modes) == len(component.failure_modes)
            for mode in component.failure_modes:
                twin = other.failure_mode(mode.name)
                assert twin.mtbf == mode.mtbf
                assert twin.detect_time == mode.detect_time
                assert twin.mttr == mode.mttr

    def test_reparse_preserves_mechanism_tables(self, paper_infra):
        from repro.model import MechanismConfig
        reparsed = parse_infrastructure(write_infrastructure(paper_infra))
        for name in ("maintenanceA", "maintenanceB"):
            original = paper_infra.mechanism(name)
            twin = reparsed.mechanism(name)
            for config in original.configurations():
                other = MechanismConfig(twin, config.settings)
                assert other.cost() == config.cost()
                assert other.duration_attribute("mttr") == \
                    config.duration_attribute("mttr")

    def test_reparse_preserves_resources(self, paper_infra):
        reparsed = parse_infrastructure(write_infrastructure(paper_infra))
        for resource in paper_infra.resources:
            twin = reparsed.resource(resource.name)
            assert twin.component_names == resource.component_names
            assert twin.reconfig_time == resource.reconfig_time
            for slot in resource.slots:
                other = twin.slot(slot.component)
                assert other.depends_on == slot.depends_on
                assert other.startup == slot.startup


class TestServiceRoundTrip:
    def test_inline_service_round_trips(self):
        source = """
application=shop
tier=web
 resource=node sizing=dynamic failurescope=resource
  nActive=[1-50,+1] performance=expr:100*n
"""
        service = parse_service(source)
        text = write_service(service)
        again = write_service(parse_service(text))
        assert text == again

    def test_jobsize_preserved(self):
        source = """
application=sci jobsize=10000
tier=compute
 resource=r sizing=static failurescope=tier
  nActive=[1-10,+1] performance=expr:10*n
"""
        text = write_service(parse_service(source))
        assert "jobsize=10000" in text
        assert parse_service(text).job_size == 10000

    def test_tabulated_performance_not_inlinable(self):
        from repro.model import (FailureScope, ResourceOption, ServiceModel,
                                 Sizing, TabulatedPerformance, Tier)
        from repro.units import EnumeratedRange
        option = ResourceOption("r", Sizing.STATIC, FailureScope.TIER,
                                EnumeratedRange([1]),
                                TabulatedPerformance([(1, 10.0)]))
        service = ServiceModel("s", [Tier("t", [option])])
        with pytest.raises(ModelError):
            write_service(service)


class TestAgainstPaperText:
    def test_paper_infrastructure_spec_parses(self):
        infra = parse_infrastructure(INFRASTRUCTURE_SPEC)
        assert infra.has_resource("rA")
        assert infra.has_resource("rI")

    def test_paper_service_specs_parse(self):
        service = parse_service(ECOMMERCE_SPEC, table1_resolver())
        assert [tier.name for tier in service.tiers] == \
            ["web", "application", "database"]
