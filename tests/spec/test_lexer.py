"""Tests for the specification DSL line lexer."""

import pytest

from repro.errors import SpecError
from repro.spec import lex
from repro.spec.lexer import maybe_mechanism_ref


def single_line(text):
    lines = lex(text)
    assert len(lines) == 1
    return lines[0]


class TestBasics:
    def test_simple_pair(self):
        line = single_line("component=machineA")
        assert line.head.key == "component"
        assert line.head.scalar() == "machineA"

    def test_multiple_pairs_on_line(self):
        line = single_line("failure=hard mtbf=650d mttr=0 detect_time=2m")
        assert [pair.key for pair in line.pairs] == \
            ["failure", "mtbf", "mttr", "detect_time"]

    def test_comments_stripped(self):
        assert lex("\\\\ a comment\ncomponent=x \\\\ trailing")[0] \
            .head.scalar() == "x"

    def test_hash_comments(self):
        assert lex("# comment\ncomponent=x # trailing")[0] \
            .head.scalar() == "x"

    def test_blank_lines_skipped(self):
        lines = lex("\n\ncomponent=x\n\n\ncomponent=y\n")
        assert len(lines) == 2

    def test_line_numbers_recorded(self):
        lines = lex("\ncomponent=x\n\ncomponent=y")
        assert lines[0].number == 2
        assert lines[1].number == 4


class TestValues:
    def test_mechanism_ref_value(self):
        line = single_line("mttr=<maintenanceA>")
        assert line.head.scalar() == "<maintenanceA>"
        assert maybe_mechanism_ref(line.head.scalar()) == "maintenanceA"

    def test_maybe_mechanism_ref_negative(self):
        assert maybe_mechanism_ref("38h") is None

    def test_bracketed_space_list(self):
        line = single_line("cost(level)=[380 580 760 1500]")
        assert line.head.list_value() == ["380", "580", "760", "1500"]
        assert line.head.args == ("level",)

    def test_bracketed_comma_list(self):
        line = single_line("range=[bronze,silver,gold]")
        assert line.head.list_value() == ["bronze", "silver", "gold"]

    def test_geometric_range_kept_raw(self):
        line = single_line("range=[1m-24h;*1.05]")
        assert line.head.scalar() == "[1m-24h;*1.05]"

    def test_arithmetic_range_kept_raw(self):
        line = single_line("nActive=[1-1000,+1]")
        assert line.head.scalar() == "[1-1000,+1]"

    def test_bracketed_args(self):
        line = single_line("cost([inactive,active])=[2400 2640]")
        assert line.head.args == ("inactive", "active")
        assert line.head.list_value() == ["2400", "2640"]

    def test_function_style_args(self):
        line = single_line(
            "mperformance(storage_location,checkpoint_interval,nActive)"
            "=mperfH.dat")
        assert line.head.args == ("storage_location", "checkpoint_interval",
                                  "nActive")
        assert line.head.scalar() == "mperfH.dat"

    def test_scalar_on_list_accessor_raises(self):
        line = single_line("cost(level)=[1 2]")
        with pytest.raises(SpecError):
            line.head.scalar()

    def test_list_on_scalar_accessor_raises(self):
        line = single_line("cost=5")
        with pytest.raises(SpecError):
            line.head.list_value()


class TestErrors:
    def test_missing_equals(self):
        with pytest.raises(SpecError):
            lex("component machineA")

    def test_missing_value(self):
        with pytest.raises(SpecError):
            lex("component=")

    def test_unbalanced_bracket(self):
        with pytest.raises(SpecError):
            lex("cost=[1 2")

    def test_unterminated_ref(self):
        with pytest.raises(SpecError):
            lex("mttr=<maintenanceA")

    def test_error_carries_line_number(self):
        with pytest.raises(SpecError) as info:
            lex("component=x\ncost=[1")
        assert info.value.line == 2
