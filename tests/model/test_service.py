"""Tests for service models: tiers, options, sizing, failure scopes."""

import pytest

from repro.errors import ModelError
from repro.model import (ExpressionPerformance, FailureScope, MechanismUse,
                         ResourceOption, ServiceModel, Sizing, Tier,
                         UnityOverhead)
from repro.units import ArithmeticRange, EnumeratedRange


def make_option(resource="rC", n_max=100):
    return ResourceOption(resource, Sizing.DYNAMIC, FailureScope.RESOURCE,
                          ArithmeticRange(1, n_max, 1),
                          ExpressionPerformance("200*n"))


class TestResourceOption:
    def test_active_counts_sorted(self):
        option = ResourceOption("r", Sizing.STATIC, FailureScope.TIER,
                                EnumeratedRange([8, 2, 4]),
                                ExpressionPerformance("10*n"))
        assert option.active_counts() == [2, 4, 8]

    def test_min_active_for(self):
        assert make_option().min_active_for(1000) == 5
        assert make_option().min_active_for(1) == 1

    def test_min_active_for_unreachable(self):
        assert make_option(n_max=3).min_active_for(1000) is None

    def test_restricted_counts(self):
        option = ResourceOption("r", Sizing.STATIC, FailureScope.TIER,
                                EnumeratedRange([1, 2, 4, 8]),
                                ExpressionPerformance("200*n"))
        # 1000/200 = 5, but only powers of two are allowed.
        assert option.min_active_for(1000) == 8

    def test_rejects_nonpositive_counts(self):
        with pytest.raises(ModelError):
            ResourceOption("r", Sizing.STATIC, FailureScope.TIER,
                           EnumeratedRange([0, 1]),
                           ExpressionPerformance("n"))

    def test_rejects_fractional_counts(self):
        with pytest.raises(ModelError):
            ResourceOption("r", Sizing.STATIC, FailureScope.TIER,
                           EnumeratedRange([1.5]),
                           ExpressionPerformance("n"))

    def test_duplicate_mechanisms_rejected(self):
        with pytest.raises(ModelError):
            ResourceOption("r", Sizing.STATIC, FailureScope.TIER,
                           EnumeratedRange([1]),
                           ExpressionPerformance("n"),
                           mechanisms=[MechanismUse("cp"),
                                       MechanismUse("cp")])

    def test_mechanism_lookup(self):
        option = ResourceOption("r", Sizing.STATIC, FailureScope.TIER,
                                EnumeratedRange([1]),
                                ExpressionPerformance("n"),
                                mechanisms=[MechanismUse("cp")])
        assert option.uses_mechanism("cp")
        assert isinstance(option.mechanism_use("cp").overhead,
                          UnityOverhead)
        with pytest.raises(ModelError):
            option.mechanism_use("other")


class TestTier:
    def test_option_lookup(self):
        tier = Tier("web", [make_option("rA"), make_option("rB")])
        assert tier.option_for("rB").resource == "rB"
        with pytest.raises(ModelError):
            tier.option_for("rZ")

    def test_duplicate_resources_rejected(self):
        with pytest.raises(ModelError):
            Tier("web", [make_option("rA"), make_option("rA")])

    def test_empty_rejected(self):
        with pytest.raises(ModelError):
            Tier("web", [])


class TestServiceModel:
    def test_tier_lookup(self):
        service = ServiceModel("svc", [Tier("web", [make_option()])])
        assert service.tier("web").name == "web"
        with pytest.raises(ModelError):
            service.tier("db")

    def test_finite_job_flag(self):
        tiers = [Tier("compute", [make_option()])]
        assert not ServiceModel("svc", tiers).is_finite_job
        assert ServiceModel("job", tiers, job_size=1000).is_finite_job

    def test_rejects_nonpositive_job_size(self):
        with pytest.raises(ModelError):
            ServiceModel("job", [Tier("t", [make_option()])], job_size=0)

    def test_duplicate_tiers_rejected(self):
        tier = Tier("web", [make_option()])
        with pytest.raises(ModelError):
            ServiceModel("svc", [tier, Tier("web", [make_option()])])

    def test_no_tiers_rejected(self):
        with pytest.raises(ModelError):
            ServiceModel("svc", [])


class TestEnums:
    def test_str_forms(self):
        assert str(Sizing.DYNAMIC) == "dynamic"
        assert str(Sizing.STATIC) == "static"
        assert str(FailureScope.RESOURCE) == "resource"
        assert str(FailureScope.TIER) == "tier"
