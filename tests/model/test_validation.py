"""Tests for infrastructure/service cross validation."""

import pytest

from repro.errors import ModelError
from repro.model import (ComponentType, ExpressionPerformance, FailureMode,
                         FailureScope, InfrastructureModel, MechanismUse,
                         ResourceOption, ServiceModel, Sizing, Tier,
                         collect_problems, validate_pair)
from repro.units import ArithmeticRange, Duration, EnumeratedRange


def option_for(resource, **kwargs):
    defaults = dict(sizing=Sizing.DYNAMIC,
                    failure_scope=FailureScope.RESOURCE,
                    n_active=ArithmeticRange(1, 10, 1),
                    performance=ExpressionPerformance("100*n"))
    defaults.update(kwargs)
    return ResourceOption(resource, defaults["sizing"],
                          defaults["failure_scope"], defaults["n_active"],
                          defaults["performance"],
                          defaults.get("mechanisms", ()))


class TestValidatePair:
    def test_clean_pair(self, tiny_infra, tiny_service):
        validate_pair(tiny_infra, tiny_service)

    def test_paper_pairs(self, paper_infra, ecommerce, scientific):
        validate_pair(paper_infra, ecommerce)
        validate_pair(paper_infra, scientific)

    def test_unknown_resource_flagged(self, tiny_infra):
        service = ServiceModel("svc", [Tier("t", [option_for("ghost")])])
        problems = collect_problems(tiny_infra, service)
        assert any("unknown resource" in problem for problem in problems)
        with pytest.raises(ModelError):
            validate_pair(tiny_infra, service)

    def test_unknown_mechanism_use_flagged(self, tiny_infra):
        service = ServiceModel("svc", [Tier("t", [option_for(
            "node", mechanisms=(MechanismUse("ghost"),))])])
        problems = collect_problems(tiny_infra, service)
        assert any("unknown mechanism" in problem for problem in problems)

    def test_max_instances_conflict_flagged(self):
        from repro.model import ComponentSlot, ResourceType
        box = ComponentType("box", max_instances=2, failure_modes=(
            FailureMode("soft", Duration.days(10), Duration.ZERO),))
        infra = InfrastructureModel(
            components=[box],
            resources=[ResourceType("node",
                                    slots=(ComponentSlot("box", None),))])
        service = ServiceModel("svc", [Tier("t", [option_for(
            "node", n_active=EnumeratedRange([5]))])])
        problems = collect_problems(infra, service)
        assert any("at most 2 instances" in problem for problem in problems)

    def test_multiple_problems_reported_together(self, tiny_infra):
        service = ServiceModel("svc", [
            Tier("a", [option_for("ghost1")]),
            Tier("b", [option_for("ghost2")]),
        ])
        problems = collect_problems(tiny_infra, service)
        assert len(problems) == 2
