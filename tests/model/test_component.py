"""Tests for component types, failure modes, and cost schedules."""

import pytest

from repro.errors import ModelError
from repro.model import (ComponentType, CostSchedule, FailureMode,
                         MechanismRef, OperationalMode)
from repro.units import Duration


class TestFailureMode:
    def test_concrete_mttr(self):
        mode = FailureMode("hard", Duration.days(650), Duration.hours(38),
                           detect_time=Duration.minutes(2))
        assert mode.mttr_mechanism is None
        assert mode.mtbf.as_days == 650

    def test_mechanism_deferred_mttr(self):
        mode = FailureMode("hard", Duration.days(650),
                           MechanismRef("maintenanceA"))
        assert mode.mttr_mechanism == "maintenanceA"

    def test_default_detect_time_zero(self):
        mode = FailureMode("soft", Duration.days(60), Duration.ZERO)
        assert mode.detect_time == Duration.ZERO

    def test_rejects_nonpositive_mtbf(self):
        with pytest.raises(ModelError):
            FailureMode("bad", Duration.ZERO, Duration.ZERO)

    def test_rejects_negative_mttr(self):
        with pytest.raises(ModelError):
            FailureMode("bad", Duration.days(1), Duration.seconds(-1))

    def test_rejects_negative_detect(self):
        with pytest.raises(ModelError):
            FailureMode("bad", Duration.days(1), Duration.ZERO,
                        detect_time=Duration.seconds(-1))


class TestCostSchedule:
    def test_flat(self):
        cost = CostSchedule.flat(100.0)
        assert cost.for_mode(OperationalMode.ACTIVE) == 100.0
        assert cost.for_mode(OperationalMode.INACTIVE) == 100.0

    def test_mode_dependent(self):
        cost = CostSchedule(inactive=2400.0, active=2640.0)
        assert cost.for_mode(OperationalMode.ACTIVE) == 2640.0
        assert cost.for_mode(OperationalMode.INACTIVE) == 2400.0

    def test_rejects_negative(self):
        with pytest.raises(ModelError):
            CostSchedule(inactive=-1.0, active=0.0)


class TestComponentType:
    def test_basic(self):
        component = ComponentType(
            "machineA",
            cost=CostSchedule(2400, 2640),
            failure_modes=(
                FailureMode("hard", Duration.days(650),
                            MechanismRef("maintenanceA")),
                FailureMode("soft", Duration.days(75), Duration.ZERO),
            ))
        assert component.failure_mode("hard").mtbf.as_days == 650
        assert component.loss_window is None

    def test_duplicate_failure_modes_rejected(self):
        with pytest.raises(ModelError):
            ComponentType("x", failure_modes=(
                FailureMode("soft", Duration.days(1), Duration.ZERO),
                FailureMode("soft", Duration.days(2), Duration.ZERO)))

    def test_unknown_failure_mode_lookup(self):
        component = ComponentType("x")
        with pytest.raises(ModelError):
            component.failure_mode("nope")

    def test_loss_window_mechanism(self):
        component = ComponentType("mpi",
                                  loss_window=MechanismRef("checkpoint"))
        assert component.loss_window_mechanism == "checkpoint"

    def test_concrete_loss_window(self):
        component = ComponentType("app", loss_window=Duration.hours(1))
        assert component.loss_window_mechanism is None
        assert component.loss_window == Duration.hours(1)

    def test_mechanism_references_collects_all(self):
        component = ComponentType(
            "x",
            failure_modes=(FailureMode("hard", Duration.days(1),
                                       MechanismRef("contract")),),
            loss_window=MechanismRef("checkpoint"))
        assert component.mechanism_references() == ["contract",
                                                    "checkpoint"]

    def test_rejects_empty_name(self):
        with pytest.raises(ModelError):
            ComponentType("")

    def test_rejects_bad_max_instances(self):
        with pytest.raises(ModelError):
            ComponentType("x", max_instances=0)

    def test_default_cost_is_zero(self):
        component = ComponentType("free")
        assert component.cost.for_mode(OperationalMode.ACTIVE) == 0.0
