"""Tests for performance models and mechanism overhead models."""

import pytest

from repro.errors import EvaluationError, ModelError
from repro.model import (CategoricalOverhead, ConstantPerformance,
                         ExpressionPerformance, TabulatedPerformance,
                         UnityOverhead)
from repro.units import Duration


class TestExpressionPerformance:
    def test_linear(self):
        perf = ExpressionPerformance("200*n")
        assert perf.throughput(5) == 1000.0

    def test_zero_resources_zero_throughput(self):
        assert ExpressionPerformance("200*n").throughput(0) == 0.0

    def test_negative_count_rejected(self):
        with pytest.raises(EvaluationError):
            ExpressionPerformance("200*n").throughput(-1)

    def test_extra_variables_rejected(self):
        with pytest.raises(ModelError):
            ExpressionPerformance("200*n*cpi")

    def test_min_resources(self):
        perf = ExpressionPerformance("200*n")
        assert perf.min_resources(1000, range(1, 100)) == 5
        assert perf.min_resources(1001, range(1, 100)) == 6

    def test_min_resources_unreachable(self):
        perf = ExpressionPerformance("200*n")
        assert perf.min_resources(10_000, range(1, 10)) is None

    def test_min_resources_sublinear_saturation(self):
        # (10n)/(1+0.004n) saturates at 2500: loads above are unreachable.
        perf = ExpressionPerformance("(10*n)/(1+0.004*n)")
        assert perf.min_resources(2600, range(1, 1001)) is None


class TestTabulatedPerformance:
    def test_exact_sample(self):
        perf = TabulatedPerformance([(1, 100.0), (2, 190.0), (4, 350.0)])
        assert perf.throughput(2) == 190.0

    def test_interpolation(self):
        perf = TabulatedPerformance([(1, 100.0), (3, 300.0)])
        assert perf.throughput(2) == 200.0

    def test_zero_is_zero(self):
        perf = TabulatedPerformance([(1, 100.0)])
        assert perf.throughput(0) == 0.0

    def test_extrapolation_refused(self):
        perf = TabulatedPerformance([(2, 100.0), (4, 200.0)])
        with pytest.raises(EvaluationError):
            perf.throughput(5)
        with pytest.raises(EvaluationError):
            perf.throughput(1)

    def test_duplicate_counts_rejected(self):
        with pytest.raises(ModelError):
            TabulatedPerformance([(1, 100.0), (1, 200.0)])

    def test_empty_rejected(self):
        with pytest.raises(ModelError):
            TabulatedPerformance([])

    def test_unsorted_input_accepted(self):
        perf = TabulatedPerformance([(4, 400.0), (1, 100.0), (2, 200.0)])
        assert perf.throughput(2) == 200.0


class TestConstantPerformance:
    def test_capacity(self):
        perf = ConstantPerformance(10000)
        assert perf.throughput(1) == 10000
        assert perf.throughput(7) == 10000

    def test_zero_resources(self):
        assert ConstantPerformance(10000).throughput(0) == 0.0

    def test_min_resources(self):
        perf = ConstantPerformance(10000)
        assert perf.min_resources(500, [1]) == 1
        assert perf.min_resources(20000, [1]) is None

    def test_rejects_negative(self):
        with pytest.raises(ModelError):
            ConstantPerformance(-1)


class TestUnityOverhead:
    def test_always_one(self):
        assert UnityOverhead().factor({}, 10) == 1.0


class TestCategoricalOverhead:
    @pytest.fixture
    def overhead(self):
        return CategoricalOverhead(
            "storage_location",
            {"central": "n < 30 ? max(10/cpi, 100%) : max(n/(3*cpi), 100%)",
             "peer": "max(20/cpi, 100%)"})

    def settings(self, location, minutes):
        return {"storage_location": location,
                "checkpoint_interval": Duration.minutes(minutes)}

    def test_central_small_n(self, overhead):
        assert overhead.factor(self.settings("central", 5), 10) == 2.0

    def test_central_saturates(self, overhead):
        assert overhead.factor(self.settings("central", 60), 10) == 1.0

    def test_central_large_n_scales(self, overhead):
        assert overhead.factor(self.settings("central", 5), 60) == 4.0

    def test_peer_independent_of_n(self, overhead):
        assert overhead.factor(self.settings("peer", 5), 10) == \
            overhead.factor(self.settings("peer", 5), 500) == 4.0

    def test_unknown_category_rejected(self, overhead):
        with pytest.raises(EvaluationError):
            overhead.factor(self.settings("cloud", 5), 10)

    def test_missing_parameters_rejected(self, overhead):
        with pytest.raises(EvaluationError):
            overhead.factor({}, 10)
        with pytest.raises(EvaluationError):
            overhead.factor({"storage_location": "peer"}, 10)

    def test_factor_below_one_rejected(self):
        broken = CategoricalOverhead("loc", {"a": "0.5"})
        with pytest.raises(EvaluationError):
            broken.factor({"loc": "a"}, 1)

    def test_unexpected_variables_rejected(self):
        with pytest.raises(ModelError):
            CategoricalOverhead("loc", {"a": "zz*2"})

    def test_empty_rejected(self):
        with pytest.raises(ModelError):
            CategoricalOverhead("loc", {})
