"""Tests for resource types: dependencies, restart and activation times."""

import pytest

from repro.errors import ModelError
from repro.model import ComponentSlot, OperationalMode, ResourceType
from repro.units import Duration


@pytest.fixture
def stack():
    """machine -> os -> app chain, like the paper's rC."""
    return ResourceType(
        "rC",
        slots=(
            ComponentSlot("machine", None, Duration.seconds(30)),
            ComponentSlot("os", "machine", Duration.minutes(2)),
            ComponentSlot("app", "os", Duration.minutes(2)),
        ))


@pytest.fixture
def diamond():
    """machine with two independent services on the OS."""
    return ResourceType(
        "d",
        slots=(
            ComponentSlot("machine", None, Duration.seconds(10)),
            ComponentSlot("os", "machine", Duration.seconds(20)),
            ComponentSlot("svc1", "os", Duration.seconds(5)),
            ComponentSlot("svc2", "os", Duration.seconds(7)),
        ))


class TestConstruction:
    def test_component_names(self, stack):
        assert stack.component_names == ("machine", "os", "app")

    def test_duplicate_component_rejected(self):
        with pytest.raises(ModelError):
            ResourceType("r", slots=(
                ComponentSlot("a", None), ComponentSlot("a", None)))

    def test_unknown_dependency_rejected(self):
        with pytest.raises(ModelError):
            ResourceType("r", slots=(ComponentSlot("a", "ghost"),))

    def test_self_dependency_rejected(self):
        with pytest.raises(ModelError):
            ComponentSlot("a", "a")

    def test_cycle_rejected(self):
        with pytest.raises(ModelError):
            ResourceType("r", slots=(
                ComponentSlot("a", "b"), ComponentSlot("b", "a")))

    def test_empty_rejected(self):
        with pytest.raises(ModelError):
            ResourceType("r", slots=())

    def test_negative_reconfig_rejected(self):
        with pytest.raises(ModelError):
            ResourceType("r", slots=(ComponentSlot("a", None),),
                         reconfig_time=Duration.seconds(-1))


class TestDependencyAnalysis:
    def test_dependents_chain(self, stack):
        assert stack.dependents_of("machine") == {"os", "app"}
        assert stack.dependents_of("os") == {"app"}
        assert stack.dependents_of("app") == frozenset()

    def test_affected_includes_self(self, stack):
        assert stack.affected_by("os") == {"os", "app"}

    def test_dependents_diamond(self, diamond):
        assert diamond.dependents_of("os") == {"svc1", "svc2"}
        assert diamond.dependents_of("svc1") == frozenset()

    def test_unknown_component_raises(self, stack):
        with pytest.raises(ModelError):
            stack.dependents_of("ghost")

    def test_startup_order_respects_dependencies(self, diamond):
        order = diamond.startup_order
        assert order.index("machine") < order.index("os")
        assert order.index("os") < order.index("svc1")
        assert order.index("os") < order.index("svc2")


class TestRestartTimes:
    def test_root_failure_restarts_everything(self, stack):
        # 30s + 2m + 2m = 4.5m
        assert stack.restart_time("machine") == Duration.minutes(4.5)

    def test_mid_failure_restarts_dependents(self, stack):
        assert stack.restart_time("os") == Duration.minutes(4)

    def test_leaf_failure_restarts_itself(self, stack):
        assert stack.restart_time("app") == Duration.minutes(2)

    def test_full_startup(self, stack):
        assert stack.full_startup_time() == Duration.minutes(4.5)


class TestActivation:
    def test_cold_spare_activation_is_full_startup(self, stack):
        modes = stack.modes_for_prefix(())
        assert stack.activation_time(modes) == stack.full_startup_time()

    def test_hot_spare_activation_is_zero(self, stack):
        modes = stack.modes_for_prefix(("machine", "os", "app"))
        assert stack.activation_time(modes) == Duration.ZERO

    def test_warm_spare_partial(self, stack):
        modes = stack.modes_for_prefix(("machine",))
        assert stack.activation_time(modes) == Duration.minutes(4)

    def test_prefixes_enumerated(self, stack):
        assert stack.activation_prefixes() == [
            (), ("machine",), ("machine", "os"), ("machine", "os", "app")]

    def test_prefix_modes(self, stack):
        modes = stack.modes_for_prefix(("machine", "os"))
        assert modes["machine"] is OperationalMode.ACTIVE
        assert modes["os"] is OperationalMode.ACTIVE
        assert modes["app"] is OperationalMode.INACTIVE

    def test_prefix_violating_dependency_rejected(self, stack):
        with pytest.raises(ModelError):
            stack.modes_for_prefix(("os",))  # os active, machine off

    def test_prefix_with_unknown_component_rejected(self, stack):
        with pytest.raises(ModelError):
            stack.modes_for_prefix(("ghost",))
