"""Tests for the starter catalog of building blocks."""

import pytest

from repro.model import catalog
from repro.model import (ExpressionPerformance, FailureScope,
                         MechanismConfig, ResourceOption, ServiceModel,
                         Sizing, Tier)
from repro.units import ArithmeticRange, Duration


class TestTemplates:
    def test_maintenance_contract_levels(self):
        contract = catalog.maintenance_contract()
        assert [p.name for p in contract.parameters] == ["level"]
        nbd = MechanismConfig(contract, {"level": "nbd"})
        fast = MechanismConfig(contract, {"level": "four-hour"})
        assert nbd.duration_attribute("mttr") == Duration.hours(30)
        assert fast.duration_attribute("mttr") == Duration.hours(4)
        assert fast.cost() > nbd.cost()

    def test_contract_cost_count_mismatch(self):
        with pytest.raises(ValueError):
            catalog.maintenance_contract(annual_costs=[1.0])

    def test_checkpointing_grid(self):
        mechanism = catalog.checkpointing(
            min_interval=Duration.minutes(5),
            max_interval=Duration.hours(2), grid_factor=2.0)
        grid = mechanism.parameter("checkpoint_interval").values.values()
        assert grid[0] == Duration.minutes(5)
        assert grid[-1] == Duration.hours(2)
        assert mechanism.provides("loss_window")

    def test_commodity_server_defers_to_contract(self):
        server = catalog.commodity_server(maintenance="maint")
        assert server.failure_mode("hard").mttr_mechanism == "maint"
        assert server.failure_mode("soft").mttr == Duration.ZERO
        assert server.cost.active > server.cost.inactive

    def test_application_with_loss_window(self):
        app = catalog.application_software(
            "worker", loss_window_mechanism="checkpoint")
        assert app.loss_window_mechanism == "checkpoint"
        plain = catalog.application_software("api")
        assert plain.loss_window is None

    def test_server_stack_dependencies(self):
        server = catalog.commodity_server()
        os = catalog.operating_system()
        app = catalog.application_software("api")
        stack = catalog.server_stack("node", server, os, app)
        assert stack.component_names == ("server", "os", "api")
        assert stack.slot("os").depends_on == "server"
        assert stack.slot("api").depends_on == "os"


class TestStarterInfrastructure:
    def test_validates(self):
        infra = catalog.starter_infrastructure()
        infra.validate()
        assert infra.has_resource("node")

    def test_checkpointed_variant(self):
        infra = catalog.starter_infrastructure(checkpointed=True)
        infra.validate()
        assert infra.component("app").loss_window_mechanism == \
            "checkpoint"
        assert infra.mechanism("checkpoint").provides("loss_window")

    def test_designable_end_to_end(self):
        """The catalog's output drives the full engine."""
        from repro import Aved, Duration, SearchLimits, \
            ServiceRequirements
        infra = catalog.starter_infrastructure()
        option = ResourceOption("node", Sizing.DYNAMIC,
                                FailureScope.RESOURCE,
                                ArithmeticRange(1, 40, 1),
                                ExpressionPerformance("75*n"))
        service = ServiceModel("svc", [Tier("web", [option])])
        engine = Aved(infra, service,
                      limits=SearchLimits(max_redundancy=4))
        outcome = engine.design(ServiceRequirements(
            500, Duration.minutes(200)))
        assert outcome.downtime_minutes <= 200
        assert outcome.design.tiers[0].resource == "node"

    def test_job_designable_with_checkpointing(self):
        from repro import Aved, Duration, JobRequirements, SearchLimits
        from repro.model import MechanismUse, UnityOverhead
        infra = catalog.starter_infrastructure(checkpointed=True)
        option = ResourceOption(
            "node", Sizing.STATIC, FailureScope.TIER,
            ArithmeticRange(1, 40, 1),
            ExpressionPerformance("50*n"),
            mechanisms=(MechanismUse("checkpoint", UnityOverhead()),))
        service = ServiceModel("batch", [Tier("farm", [option])],
                               job_size=1000)
        engine = Aved(infra, service,
                      limits=SearchLimits(max_redundancy=4))
        outcome = engine.design(JobRequirements(Duration.hours(24)))
        tier = outcome.design.tiers[0]
        assert tier.has_mechanism("checkpoint")
        assert outcome.evaluation.job_time.expected_time <= \
            Duration.hours(24)
