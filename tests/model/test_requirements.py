"""Tests for requirement objects."""

import pytest

from repro.errors import ModelError
from repro.model import JobRequirements, ServiceRequirements
from repro.units import Duration


class TestServiceRequirements:
    def test_basic(self):
        req = ServiceRequirements(throughput=1000,
                                  max_annual_downtime=Duration.minutes(100))
        assert req.max_downtime_minutes == 100.0
        assert "1000" in req.describe()

    def test_zero_downtime_allowed(self):
        ServiceRequirements(throughput=1,
                            max_annual_downtime=Duration.ZERO)

    def test_rejects_nonpositive_throughput(self):
        with pytest.raises(ModelError):
            ServiceRequirements(throughput=0,
                                max_annual_downtime=Duration.minutes(1))

    def test_rejects_infinite_throughput(self):
        with pytest.raises(ModelError):
            ServiceRequirements(throughput=float("inf"),
                                max_annual_downtime=Duration.minutes(1))

    def test_rejects_negative_downtime(self):
        with pytest.raises(ModelError):
            ServiceRequirements(throughput=1,
                                max_annual_downtime=Duration.minutes(-1))


class TestJobRequirements:
    def test_basic(self):
        req = JobRequirements(Duration.hours(20))
        assert req.max_execution_time.as_hours == 20
        assert "20h" in req.describe()

    def test_rejects_nonpositive(self):
        with pytest.raises(ModelError):
            JobRequirements(Duration.ZERO)
