"""Tests for availability mechanisms and their configurations."""

import pytest

from repro.errors import ModelError
from repro.model import (AvailabilityMechanism, ConstantEffect,
                         MechanismConfig, MechanismParameter,
                         ParameterEffect, TableEffect)
from repro.units import Duration, EnumeratedRange, GeometricRange


@pytest.fixture
def maintenance():
    level = MechanismParameter(
        "level", EnumeratedRange(["bronze", "silver", "gold", "platinum"]))
    return AvailabilityMechanism(
        "maintenanceA",
        parameters=(level,),
        effects={
            "cost": TableEffect.from_values(level, [380, 580, 760, 1500]),
            "mttr": TableEffect.from_values(
                level, [Duration.hours(h) for h in (38, 15, 8, 6)]),
        })


@pytest.fixture
def checkpoint():
    return AvailabilityMechanism(
        "checkpoint",
        parameters=(
            MechanismParameter("storage_location",
                               EnumeratedRange(["central", "peer"])),
            MechanismParameter("checkpoint_interval",
                               GeometricRange(Duration.minutes(1),
                                              Duration.hours(24), 1.05)),
        ),
        effects={
            "cost": ConstantEffect(0.0),
            "loss_window": ParameterEffect("checkpoint_interval"),
        })


class TestMechanismDefinition:
    def test_parameter_lookup(self, maintenance):
        assert maintenance.parameter("level").name == "level"
        with pytest.raises(ModelError):
            maintenance.parameter("nope")

    def test_provides(self, maintenance):
        assert maintenance.provides("mttr")
        assert maintenance.provides("cost")
        assert not maintenance.provides("loss_window")

    def test_duplicate_parameters_rejected(self):
        p = MechanismParameter("x", EnumeratedRange([1]))
        with pytest.raises(ModelError):
            AvailabilityMechanism("m", parameters=(p, p))

    def test_effect_referencing_unknown_parameter_rejected(self):
        with pytest.raises(ModelError):
            AvailabilityMechanism(
                "m", parameters=(),
                effects={"mttr": ParameterEffect("ghost")})

    def test_table_effect_length_mismatch_rejected(self):
        level = MechanismParameter("level", EnumeratedRange(["a", "b"]))
        with pytest.raises(ModelError):
            TableEffect.from_values(level, [1.0])

    def test_configuration_count(self, maintenance, checkpoint):
        assert maintenance.configuration_count() == 4
        grid = checkpoint.parameter("checkpoint_interval").values
        assert checkpoint.configuration_count() == 2 * len(grid)

    def test_configurations_enumerated(self, maintenance):
        configs = list(maintenance.configurations())
        assert len(configs) == 4
        levels = [config.settings["level"] for config in configs]
        assert levels == ["bronze", "silver", "gold", "platinum"]

    def test_parameterless_mechanism_has_one_config(self):
        mechanism = AvailabilityMechanism("plain",
                                          effects={"cost":
                                                   ConstantEffect(5.0)})
        configs = list(mechanism.configurations())
        assert len(configs) == 1
        assert configs[0].cost() == 5.0


class TestMechanismConfig:
    def test_table_resolution(self, maintenance):
        config = MechanismConfig(maintenance, {"level": "gold"})
        assert config.cost() == 760.0
        assert config.duration_attribute("mttr") == Duration.hours(8)

    def test_parameter_effect_resolution(self, checkpoint):
        interval = checkpoint.parameter("checkpoint_interval") \
            .values.values()[0]
        config = MechanismConfig(checkpoint,
                                 {"storage_location": "peer",
                                  "checkpoint_interval": interval})
        assert config.duration_attribute("loss_window") == interval
        assert config.cost() == 0.0

    def test_missing_parameter_rejected(self, maintenance):
        with pytest.raises(ModelError):
            MechanismConfig(maintenance, {})

    def test_out_of_range_value_rejected(self, maintenance):
        with pytest.raises(ModelError):
            MechanismConfig(maintenance, {"level": "diamond"})

    def test_unknown_parameter_rejected(self, maintenance):
        with pytest.raises(ModelError):
            MechanismConfig(maintenance, {"level": "gold", "extra": 1})

    def test_unprovided_attribute_rejected(self, maintenance):
        config = MechanismConfig(maintenance, {"level": "bronze"})
        with pytest.raises(ModelError):
            config.attribute("loss_window")

    def test_equality_and_hash(self, maintenance):
        a = MechanismConfig(maintenance, {"level": "gold"})
        b = MechanismConfig(maintenance, {"level": "gold"})
        c = MechanismConfig(maintenance, {"level": "bronze"})
        assert a == b
        assert hash(a) == hash(b)
        assert a != c

    def test_describe(self, maintenance):
        config = MechanismConfig(maintenance, {"level": "silver"})
        assert config.describe() == "maintenanceA(level=silver)"
