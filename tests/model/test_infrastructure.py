"""Tests for the infrastructure registry and cross validation."""

import pytest

from repro.errors import ModelError
from repro.model import (AvailabilityMechanism, ComponentSlot, ComponentType,
                         ConstantEffect, FailureMode, InfrastructureModel,
                         MechanismRef, ResourceType)
from repro.units import Duration


def simple_component(name="box"):
    return ComponentType(name, failure_modes=(
        FailureMode("soft", Duration.days(30), Duration.ZERO),))


class TestRegistry:
    def test_lookup(self, tiny_infra):
        assert tiny_infra.component("box").name == "box"
        assert tiny_infra.mechanism("contract").name == "contract"
        assert tiny_infra.resource("node").name == "node"

    def test_unknown_lookups_raise(self, tiny_infra):
        with pytest.raises(ModelError):
            tiny_infra.component("ghost")
        with pytest.raises(ModelError):
            tiny_infra.mechanism("ghost")
        with pytest.raises(ModelError):
            tiny_infra.resource("ghost")

    def test_has_resource(self, tiny_infra):
        assert tiny_infra.has_resource("node")
        assert not tiny_infra.has_resource("ghost")

    def test_duplicates_rejected(self):
        infra = InfrastructureModel(components=[simple_component()])
        with pytest.raises(ModelError):
            infra.add_component(simple_component())

    def test_resource_with_unknown_component_rejected(self):
        infra = InfrastructureModel()
        with pytest.raises(ModelError):
            infra.add_resource(ResourceType(
                "r", slots=(ComponentSlot("ghost", None),)))

    def test_listing_properties(self, tiny_infra):
        assert len(tiny_infra.components) == 2
        assert len(tiny_infra.mechanisms) == 1
        assert len(tiny_infra.resources) == 1


class TestValidation:
    def test_valid_model_passes(self, tiny_infra):
        tiny_infra.validate()

    def test_dangling_mttr_mechanism_caught(self):
        component = ComponentType("box", failure_modes=(
            FailureMode("hard", Duration.days(1),
                        MechanismRef("ghost")),))
        infra = InfrastructureModel(components=[component])
        with pytest.raises(ModelError, match="ghost"):
            infra.validate()

    def test_mechanism_not_providing_mttr_caught(self):
        component = ComponentType("box", failure_modes=(
            FailureMode("hard", Duration.days(1),
                        MechanismRef("contract")),))
        mechanism = AvailabilityMechanism(
            "contract", effects={"cost": ConstantEffect(1.0)})
        infra = InfrastructureModel(components=[component],
                                    mechanisms=[mechanism])
        with pytest.raises(ModelError, match="mttr"):
            infra.validate()

    def test_dangling_loss_window_mechanism_caught(self):
        component = ComponentType("mpi", loss_window=MechanismRef("cp"))
        infra = InfrastructureModel(components=[component])
        with pytest.raises(ModelError, match="cp"):
            infra.validate()

    def test_resource_mechanisms_listed(self, tiny_infra):
        assert tiny_infra.resource_mechanisms("node") == ["contract"]


class TestPaperModel:
    def test_counts(self, paper_infra):
        assert len(paper_infra.components) == 9
        assert len(paper_infra.mechanisms) == 3
        assert len(paper_infra.resources) == 9

    def test_validates(self, paper_infra):
        paper_infra.validate()

    def test_machine_costs(self, paper_infra):
        from repro.model import OperationalMode
        machine_a = paper_infra.component("machineA")
        assert machine_a.cost.for_mode(OperationalMode.ACTIVE) == 2640
        assert machine_a.cost.for_mode(OperationalMode.INACTIVE) == 2400
        machine_b = paper_infra.component("machineB")
        assert machine_b.cost.for_mode(OperationalMode.ACTIVE) == 93500

    def test_machine_failure_modes(self, paper_infra):
        hard = paper_infra.component("machineA").failure_mode("hard")
        assert hard.mtbf == Duration.days(650)
        assert hard.detect_time == Duration.minutes(2)
        assert hard.mttr_mechanism == "maintenanceA"
        soft = paper_infra.component("machineA").failure_mode("soft")
        assert soft.mtbf == Duration.days(75)
        assert soft.mttr == Duration.ZERO

    def test_mpi_loss_window_deferred_to_checkpoint(self, paper_infra):
        mpi = paper_infra.component("mpi")
        assert mpi.loss_window_mechanism == "checkpoint"

    def test_maintenance_tables(self, paper_infra):
        from repro.model import MechanismConfig
        mech = paper_infra.mechanism("maintenanceA")
        bronze = MechanismConfig(mech, {"level": "bronze"})
        platinum = MechanismConfig(mech, {"level": "platinum"})
        assert bronze.duration_attribute("mttr") == Duration.hours(38)
        assert bronze.cost() == 380
        assert platinum.duration_attribute("mttr") == Duration.hours(6)
        assert platinum.cost() == 1500

    def test_resource_composition(self, paper_infra):
        rc = paper_infra.resource("rC")
        assert rc.component_names == ("machineA", "linux", "appserverA")
        assert rc.restart_time("machineA") == Duration.minutes(4.5)
        ri = paper_infra.resource("rI")
        assert ri.component_names == ("machineB", "unix", "mpi")
