"""Unit tests for the span tree recorder."""

import json

import pytest

from repro.obs import Span, Tracer


def test_nested_spans_build_a_tree():
    tracer = Tracer()
    with tracer.span("design", service="svc"):
        with tracer.span("tier-search", tier="web"):
            with tracer.span("tier-solve", n=2):
                pass
            with tracer.span("tier-solve", n=3):
                pass
    assert len(tracer.roots) == 1
    root = tracer.roots[0]
    assert root.name == "design"
    assert root.attributes == {"service": "svc"}
    (search,) = root.children
    assert search.name == "tier-search"
    assert [child.attributes["n"] for child in search.children] == [2, 3]


def test_span_timing_is_monotone():
    ticks = iter(range(100))
    tracer = Tracer(clock=lambda: float(next(ticks)))
    with tracer.span("outer"):
        with tracer.span("inner"):
            pass
    outer = tracer.roots[0]
    inner = outer.children[0]
    assert outer.duration_ms >= inner.duration_ms > 0
    assert inner.start_ms >= outer.start_ms


def test_exception_marks_span_and_unwinds():
    tracer = Tracer()
    with pytest.raises(ValueError):
        with tracer.span("outer"):
            with tracer.span("inner"):
                raise ValueError("boom")
    assert tracer.depth == 0
    inner = tracer.roots[0].children[0]
    assert inner.attributes["error"] == "ValueError"


def test_attributes_are_cleaned_to_json_scalars():
    tracer = Tracer()
    with tracer.span("s", ok=True, n=3, x=1.5, tier="t",
                     missing=None, weird=object()):
        pass
    attrs = tracer.roots[0].attributes
    assert attrs["ok"] is True and attrs["n"] == 3
    assert attrs["missing"] is None
    assert isinstance(attrs["weird"], str)


def test_to_json_is_deterministic_modulo_timestamps():
    def record():
        tracer = Tracer()
        with tracer.span("design", b=2, a=1):
            with tracer.span("child"):
                pass
        return json.loads(tracer.to_json())

    def strip(span):
        span.pop("start_ms"), span.pop("duration_ms")
        for child in span["children"]:
            strip(child)

    first, second = record(), record()
    for doc in (first, second):
        for span in doc["spans"]:
            strip(span)
    assert first == second
    # attribute keys serialize sorted
    text = Tracer().to_json()
    assert json.loads(text) == {"spans": []}


def test_round_trip_through_dicts():
    tracer = Tracer()
    with tracer.span("a", k="v"):
        with tracer.span("b"):
            pass
    (data,) = tracer.to_dicts()
    clone = Span.from_dict(data)
    assert clone.to_dict() == data
    assert [span.name for span in clone.walk()] == ["a", "b"]
    assert [span.name for span in clone.find("b")] == ["b"]


def test_attach_reparents_serialized_subtree():
    worker = Tracer()
    with worker.span("engine-solve", engine="markov"):
        pass
    (shipped,) = worker.to_dicts()

    parent = Tracer()
    with parent.span("parallel-batch"):
        span = parent.attach(shipped, worker=True)
    batch = parent.roots[0]
    assert batch.children == [span]
    assert span.attributes["worker"] is True
    assert span.attributes["engine"] == "markov"


def test_attach_without_open_span_becomes_root():
    tracer = Tracer()
    tracer.attach({"name": "orphan"})
    assert [root.name for root in tracer.roots] == ["orphan"]


def test_find_across_forest():
    tracer = Tracer()
    for _ in range(2):
        with tracer.span("root"):
            with tracer.span("leaf"):
                pass
    assert len(tracer.find("leaf")) == 2
    assert tracer.find("nope") == []
