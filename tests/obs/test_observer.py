"""The observer install/scoping contract and the no-op guarantees."""

import pytest

from repro.availability import (FailureModeEntry, MarkovEngine,
                                TierAvailabilityModel)
from repro.obs import (NullObserver, Observer, current, disabled, install,
                       observing, snapshot_metrics)
from repro.units import Duration


def test_default_is_disabled():
    obs = current()
    assert obs.enabled is False
    assert isinstance(obs, NullObserver)


def test_null_observer_operations_are_noops():
    null = NullObserver()
    with null.span("anything", key="value"):
        pass
    with null.engine_span("markov", object()):
        pass
    null.inc("counter")
    assert snapshot_metrics(null) is None


def test_observing_scopes_installation():
    assert current().enabled is False
    with observing() as obs:
        assert current() is obs
        assert obs.enabled is True
        with obs.span("unit-test"):
            pass
    assert current().enabled is False
    assert [root.name for root in obs.tracer.roots] == ["unit-test"]


def test_observing_accepts_prebuilt_observer_and_nests():
    mine = Observer()
    with observing(mine) as outer:
        assert outer is mine
        with observing() as inner:
            assert current() is inner
        assert current() is mine
    assert current().enabled is False


def test_disabled_scope_suppresses_recording():
    with observing() as obs:
        with disabled():
            assert current().enabled is False
        assert current() is obs


def test_install_returns_previous():
    mine = Observer()
    previous = install(mine)
    try:
        assert current() is mine
    finally:
        install(previous)
    assert current().enabled is False


def test_install_none_restores_disabled_default():
    install(Observer())
    install(None)
    assert current().enabled is False


def _model():
    mode = FailureModeEntry("hard", Duration.days(100),
                            Duration.hours(8), Duration.minutes(5))
    return TierAvailabilityModel("web", n=2, m=1, s=0, modes=(mode,))


def test_engine_span_records_span_histogram_and_counter():
    with observing() as obs:
        MarkovEngine().evaluate_tier(_model())
    (span,) = obs.tracer.find("engine-solve")
    assert span.attributes["engine"] == "markov"
    assert span.attributes["tier"] == "web"
    assert span.attributes["n"] == 2
    snapshot = obs.metrics.snapshot()
    assert snapshot["counters"]["engine_solves.markov"] == 1
    assert snapshot["histograms"]["engine_solve_seconds.markov"][
        "count"] == 1
    assert "engine_errors.markov" not in snapshot["counters"]


def test_engine_span_counts_errors():
    class Exploding:
        name = "web"
        n, m, s = 1, 1, 0

    obs = Observer()
    with pytest.raises(ZeroDivisionError):
        with obs.engine_span("markov", Exploding()):
            raise ZeroDivisionError
    counters = obs.metrics.snapshot()["counters"]
    assert counters["engine_errors.markov"] == 1
    assert counters["engine_solves.markov"] == 1


def test_engines_do_not_record_when_disabled():
    MarkovEngine().evaluate_tier(_model())
    # nothing global leaked: a fresh observer starts empty
    with observing() as obs:
        pass
    assert obs.tracer.roots == []
    assert obs.metrics.snapshot()["counters"] == {}
