"""Phase profiling and the BENCH record envelope."""

import json

from repro.obs import (BENCH_FORMAT, Span, Tracer, bench_record,
                       profile_bench_record, profile_spans, profile_table,
                       write_bench_record)


def _forest():
    """design(10ms) -> search(8ms) -> two solves(3ms each)."""
    design = Span("design", start_ms=0.0, duration_ms=10.0)
    search = Span("tier-search", start_ms=1.0, duration_ms=8.0)
    solve_a = Span("tier-solve", start_ms=2.0, duration_ms=3.0)
    solve_b = Span("tier-solve", start_ms=5.0, duration_ms=3.0)
    search.children = [solve_a, solve_b]
    design.children = [search]
    return [design]


def test_profile_self_and_cumulative_times():
    phases = {phase.name: phase for phase in profile_spans(_forest())}
    assert phases["design"].self_ms == 2.0          # 10 - 8
    assert phases["design"].cumulative_ms == 10.0
    assert phases["tier-search"].self_ms == 2.0     # 8 - 6
    assert phases["tier-search"].cumulative_ms == 8.0
    assert phases["tier-solve"].count == 2
    assert phases["tier-solve"].self_ms == 6.0
    assert phases["tier-solve"].cumulative_ms == 6.0


def test_profile_accepts_serialized_dicts():
    dicts = [span.to_dict() for span in _forest()]
    by_dict = [phase.to_dict() for phase in profile_spans(dicts)]
    by_span = [phase.to_dict() for phase in profile_spans(_forest())]
    assert by_dict == by_span


def test_recursion_does_not_double_count_cumulative():
    outer = Span("combine", duration_ms=10.0)
    inner = Span("combine", duration_ms=6.0)
    outer.children = [inner]
    (phase,) = profile_spans([outer])
    assert phase.count == 2
    assert phase.cumulative_ms == 10.0              # counted once
    assert phase.self_ms == 4.0 + 6.0


def test_profile_sorted_by_self_time_then_name():
    names = [phase.name for phase in profile_spans(_forest())]
    assert names == ["tier-solve", "design", "tier-search"]


def test_profile_table_renders_and_truncates():
    table = profile_table(_forest())
    assert "tier-solve" in table and "self%" in table
    top = profile_table(_forest(), top=1)
    assert "tier-solve" in top and "design" not in top


def test_negative_self_time_clamps_to_zero():
    parent = Span("p", duration_ms=1.0)
    child = Span("c", duration_ms=5.0)  # clock skew artifact
    parent.children = [child]
    phases = {phase.name: phase for phase in profile_spans([parent])}
    assert phases["p"].self_ms == 0.0


def test_bench_record_envelope():
    record = bench_record("obs", {"x": 1}, meta={"seed": 1})
    assert record == {"bench": "obs", "format": BENCH_FORMAT,
                      "results": {"x": 1}, "meta": {"seed": 1}}
    assert "meta" not in bench_record("obs", {})


def test_write_bench_record_is_deterministic_json(tmp_path):
    path = str(tmp_path / "BENCH_obs.json")
    write_bench_record(path, bench_record("obs", {"b": 2, "a": 1}))
    text = open(path).read()
    assert text.endswith("\n")
    assert text.index('"a"') < text.index('"b"')  # sort_keys
    assert json.loads(text)["results"] == {"a": 1, "b": 2}


def test_profile_bench_record_includes_phases_and_counters():
    tracer = Tracer()
    with tracer.span("design"):
        pass
    record = profile_bench_record(
        tracer.roots, {"counters": {"search.cache_hits": 2},
                       "gauges": {}, "histograms": {}},
        meta={"service": "svc"})
    assert record["bench"] == "obs"
    assert record["results"]["counters"] == {"search.cache_hits": 2}
    assert [phase["name"] for phase in record["results"]["phases"]] \
        == ["design"]
    assert record["meta"]["service"] == "svc"
