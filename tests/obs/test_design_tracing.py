"""End-to-end observability: a traced design run, serial and parallel.

These pin the ISSUE's acceptance criteria: the span tree covers
search -> evaluation -> engine, worker spans re-parent under the
parallel batch span, the outcome's metrics equal its ``SearchStats``
field for field, and traces are deterministic modulo timestamps.
"""

import dataclasses
import json

from repro.core import Aved, SearchLimits
from repro.model import ServiceRequirements
from repro.obs import observing
from repro.units import Duration

REQ = ServiceRequirements(throughput=1000,
                          max_annual_downtime=Duration.minutes(100))
LIMITS = SearchLimits(max_redundancy=2)


def _span_names(roots):
    names = set()

    def walk(span):
        names.add(span["name"])
        for child in span.get("children", []):
            walk(child)

    for root in roots:
        walk(root)
    return names


def _strip_times(span):
    return {
        "name": span["name"],
        "attributes": span["attributes"],
        "children": [_strip_times(child)
                     for child in span["children"]],
    }


def test_traced_design_covers_search_evaluation_engine(paper_infra,
                                                       app_tier_service):
    with observing() as obs:
        outcome = Aved(paper_infra, app_tier_service,
                       limits=LIMITS).design(REQ)
    roots = obs.tracer.to_dicts()
    assert [root["name"] for root in roots] == ["design"]
    names = _span_names(roots)
    assert {"design", "tier-search", "tier-solve", "model-gen",
            "engine-solve", "verify-design"} <= names
    # engine-solve sits under tier-solve which sits under tier-search
    (design,) = roots
    searches = [c for c in design["children"]
                if c["name"] == "tier-search"]
    assert searches
    solves = [c for c in searches[0]["children"]
              if c["name"] == "tier-solve"]
    assert solves
    assert any(g["name"] == "engine-solve"
               for s in solves for g in s["children"])
    assert outcome.metrics is not None


def test_multi_tier_design_has_combine_span(paper_infra, ecommerce):
    with observing() as obs:
        Aved(paper_infra, ecommerce, limits=LIMITS).design(REQ)
    names = _span_names(obs.tracer.to_dicts())
    assert "combine-frontiers" in names


def test_outcome_metrics_equal_search_stats(paper_infra,
                                            app_tier_service):
    with observing():
        outcome = Aved(paper_infra, app_tier_service,
                       limits=LIMITS).design(REQ)
    counters = outcome.metrics["counters"]
    for field in dataclasses.fields(outcome.stats):
        assert counters["search.%s" % field.name] \
            == getattr(outcome.stats, field.name), field.name
    # engine solves happened and were counted
    assert counters["engine_solves.markov"] > 0


def test_untraced_design_has_no_metrics(paper_infra, app_tier_service):
    outcome = Aved(paper_infra, app_tier_service,
                   limits=LIMITS).design(REQ)
    assert outcome.metrics is None


def test_trace_is_deterministic_modulo_timestamps(paper_infra,
                                                  app_tier_service):
    def run():
        with observing() as obs:
            Aved(paper_infra, app_tier_service,
                 limits=LIMITS).design(REQ)
        return [_strip_times(root)
                for root in json.loads(obs.tracer.to_json())["spans"]]

    assert run() == run()


def test_degradation_events_become_counters(paper_infra,
                                            app_tier_service):
    from repro.availability import AnalyticEngine, MarkovEngine
    from repro.resilience import (ChaosEngine, FallbackEngine,
                                  FallbackPolicy, FaultPlan)

    flaky_markov = ChaosEngine(MarkovEngine(),
                               FaultPlan(error_rate=1.0))
    engine = FallbackEngine(
        engines=[flaky_markov, AnalyticEngine()],
        policy=FallbackPolicy(chain=("markov", "analytic"),
                              backoff_base=0.0))
    with observing() as obs:
        outcome = Aved(paper_infra, app_tier_service, limits=LIMITS,
                       availability_engine=engine).design(REQ)
    counters = obs.metrics.snapshot()["counters"]
    assert counters.get("degradation_events.fallback", 0) > 0
    assert outcome.degraded
    assert "fallback-solve" in _span_names(obs.tracer.to_dicts())


def test_parallel_run_reparents_worker_spans(paper_infra,
                                             app_tier_service):
    with observing() as obs:
        outcome = Aved(paper_infra, app_tier_service, limits=LIMITS,
                       jobs=2).design(REQ)
    roots = obs.tracer.to_dicts()
    batches = []

    def collect(span):
        if span["name"] == "parallel-batch":
            batches.append(span)
        for child in span.get("children", []):
            collect(child)

    for root in roots:
        collect(root)
    assert batches, "no parallel-batch span recorded"
    workers = [child for batch in batches
               for child in batch["children"]]
    assert workers, "worker spans were not re-parented"
    assert all(child["attributes"].get("worker") is True
               for child in workers)
    assert all(child["name"] == "engine-solve" for child in workers)
    counters = outcome.metrics["counters"]
    assert counters["parallel.batches"] == len(batches)
    assert counters["search.parallel_batches"] \
        == outcome.stats.parallel_batches


def test_parallel_design_matches_serial_under_tracing(paper_infra,
                                                      app_tier_service):
    serial = Aved(paper_infra, app_tier_service,
                  limits=LIMITS).design(REQ)
    with observing():
        traced = Aved(paper_infra, app_tier_service, limits=LIMITS,
                      jobs=2).design(REQ)
    assert traced.design == serial.design
    assert traced.annual_cost == serial.annual_cost
