"""Unit tests for the metrics registry."""

from repro.core import SearchStats
from repro.obs import DEFAULT_BUCKETS, Histogram, MetricsRegistry


def test_counters_create_on_first_use_and_accumulate():
    registry = MetricsRegistry()
    registry.inc("search.cache_hits")
    registry.inc("search.cache_hits", 4)
    assert registry.counter_value("search.cache_hits") == 5
    assert registry.counter_value("never.touched") == 0
    # same name returns the same instrument
    assert registry.counter("search.cache_hits") \
        is registry.counter("search.cache_hits")


def test_gauge_is_last_write_wins():
    registry = MetricsRegistry()
    registry.gauge("pool.workers").set(4)
    registry.gauge("pool.workers").set(2)
    assert registry.snapshot()["gauges"]["pool.workers"] == 2


def test_histogram_buckets_and_stats():
    histogram = Histogram()
    for value in (0.00005, 0.002, 0.002, 50.0, 1000.0):
        histogram.observe(value)
    data = histogram.to_dict()
    assert data["count"] == 5
    assert data["min_seconds"] == 0.00005
    assert data["max_seconds"] == 1000.0
    assert data["buckets"]["le_0.0001"] == 1
    assert data["buckets"]["le_0.003"] == 2
    assert data["buckets"]["le_100"] == 1
    assert data["buckets"]["le_inf"] == 1    # overflow bucket
    assert sum(data["buckets"].values()) == 5
    assert abs(histogram.mean - (0.00005 + 0.004 + 1050.0) / 5) < 1e-12


def test_empty_histogram_snapshot_has_null_extremes():
    data = Histogram().to_dict()
    assert data["count"] == 0
    assert data["min_seconds"] is None
    assert data["max_seconds"] is None
    assert data["buckets"] == {}


def test_default_buckets_are_increasing():
    assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)
    assert len(set(DEFAULT_BUCKETS)) == len(DEFAULT_BUCKETS)


def test_publish_search_stats_mirrors_every_field():
    stats = SearchStats(structures_enumerated=10,
                        availability_evaluations=7, cost_pruned=3,
                        cache_hits=2)
    registry = MetricsRegistry()
    registry.publish_search_stats(stats)
    counters = registry.snapshot()["counters"]
    assert counters["search.structures_enumerated"] == 10
    assert counters["search.availability_evaluations"] == 7
    assert counters["search.cost_pruned"] == 3
    assert counters["search.cache_hits"] == 2
    # every dataclass field is present, none invented
    import dataclasses
    expected = {"search.%s" % field.name
                for field in dataclasses.fields(stats)}
    assert set(counters) == expected


def test_snapshot_is_sorted_and_plain():
    registry = MetricsRegistry()
    registry.inc("b"), registry.inc("a")
    registry.observe("z.time", 0.5)
    snapshot = registry.snapshot()
    assert list(snapshot) == ["counters", "gauges", "histograms"]
    assert list(snapshot["counters"]) == ["a", "b"]
    import json
    json.dumps(snapshot)  # JSON-serializable throughout


def test_summary_lines_skip_empty_histograms():
    registry = MetricsRegistry()
    registry.inc("hits", 3)
    registry.histogram("empty.h")
    registry.observe("busy.h", 0.001)
    lines = registry.summary_lines()
    assert any(line.startswith("hits") for line in lines)
    assert any(line.startswith("busy.h") for line in lines)
    assert not any(line.startswith("empty.h") for line in lines)
