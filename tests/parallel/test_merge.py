"""Unit tests for the deterministic merge layer."""

from types import SimpleNamespace

import pytest

from repro.errors import SearchError
from repro.parallel import merge_results


def _task(task_id, key):
    return SimpleNamespace(task_id=task_id, key=key)


class TestMergeResults:
    def test_orders_by_submission_not_completion(self):
        tasks = [_task(2, ("c",)), _task(0, ("a",)), _task(1, ("b",))]
        # Results arrive in arbitrary (dict) order; merge is by task_id.
        results = {1: 0.2, 2: 0.3, 0: 0.1}
        assert merge_results(tasks, results) == [
            (("a",), 0.1), (("b",), 0.2), (("c",), 0.3)]

    def test_missing_results_are_skipped(self):
        tasks = [_task(0, ("a",)), _task(1, ("b",))]
        assert merge_results(tasks, {1: 0.5}) == [(("b",), 0.5)]

    def test_duplicate_keys_collapse_to_first(self):
        tasks = [_task(0, ("a",)), _task(1, ("a",))]
        merged = merge_results(tasks, {0: 0.25, 1: 0.25})
        assert merged == [(("a",), 0.25)]

    def test_zero_is_a_legitimate_value(self):
        tasks = [_task(0, ("a",)), _task(1, ("a",))]
        assert merge_results(tasks, {0: 0.0, 1: 0.0}) == [(("a",), 0.0)]

    def test_conflicting_duplicates_raise(self):
        tasks = [_task(0, ("a",)), _task(1, ("a",))]
        with pytest.raises(SearchError):
            merge_results(tasks, {0: 0.25, 1: 0.35})

    def test_empty_batch(self):
        assert merge_results([], {}) == []
