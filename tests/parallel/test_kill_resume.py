"""Crash-safe checkpointing under the parallel runtime.

A parallel search autosaves after every merged prefetch batch.  These
tests kill a ``jobs=2`` search mid-batch (the autosave itself raises,
as a hard kill between write and return would), verify the on-disk
checkpoint is still a torn-free valid snapshot, and resume it under a
*different* ``--jobs`` value to the same minimum-cost design.
"""

import json

import pytest

from repro.core import Aved
from repro.model import ServiceRequirements
from repro.resilience import SearchCheckpoint
from repro.units import Duration

REQUIREMENTS = ServiceRequirements(1000, Duration.minutes(100))


class _KillingCheckpoint(SearchCheckpoint):
    """Raises (simulating a hard kill) on the Nth prefetch batch.

    The kill fires *before* the batch is recorded, so the batch in
    flight is lost -- exactly what a SIGKILL between merge and
    autosave would leave behind.
    """

    def __init__(self, path, kill_on_batch):
        super().__init__(path)
        self.kill_on_batch = kill_on_batch
        self.batches = 0

    def record_batch(self, pairs):
        self.batches += 1
        if self.batches == self.kill_on_batch:
            raise KeyboardInterrupt("simulated kill mid-batch")
        super().record_batch(pairs)


class TestKillAndResume:
    @pytest.fixture(scope="class")
    def clean_outcome(self, paper_infra, app_tier_service):
        return Aved(paper_infra, app_tier_service).design(REQUIREMENTS)

    def test_killed_parallel_search_resumes_under_other_jobs(
            self, paper_infra, app_tier_service, clean_outcome,
            tmp_path_factory):
        path = str(tmp_path_factory.mktemp("ck") / "parallel.json")
        checkpoint = _KillingCheckpoint(path, kill_on_batch=3)
        engine = Aved(paper_infra, app_tier_service,
                      checkpoint=checkpoint, jobs=2)
        with pytest.raises(KeyboardInterrupt):
            engine.design(REQUIREMENTS)
        assert checkpoint.batches == 3

        # Atomic replace: whatever the kill interrupted, the file on
        # disk is a complete, valid snapshot of the prior batches.
        with open(path) as handle:
            snapshot = json.load(handle)
        assert snapshot["availability_cache"]

        # Resume under a different worker count (and again serially).
        for jobs in (4, None):
            resumed = SearchCheckpoint.load(path)
            outcome = Aved(paper_infra, app_tier_service,
                           checkpoint=resumed, jobs=jobs) \
                .design(REQUIREMENTS)
            assert outcome.annual_cost == clean_outcome.annual_cost
            assert outcome.design.describe() == \
                clean_outcome.design.describe()
            assert outcome.stats.resumed_evaluations > 0

    def test_resumed_run_notes_avd308(self, paper_infra,
                                      app_tier_service, tmp_path):
        path = str(tmp_path / "ck.json")
        engine = Aved(paper_infra, app_tier_service,
                      checkpoint=SearchCheckpoint(path), jobs=2)
        engine.design(REQUIREMENTS)
        outcome = Aved(paper_infra, app_tier_service,
                       checkpoint=SearchCheckpoint.load(path),
                       jobs=2).design(REQUIREMENTS)
        codes = [diag.code for diag in (outcome.degradation or [])]
        assert "AVD308" in codes
