"""The determinism guarantee: ``--jobs N`` equals ``--jobs 1``.

Parallel mode only *prefetches* availability solves; the decision
logic that consumes them is the same serial code.  These tests pin the
guarantee the docs make: identical design, cost, engine provenance,
and diagnostics -- not just a design of equal cost.
"""

import json

import pytest

from repro.core import Aved
from repro.core.serialize import evaluation_to_dict
from repro.model import JobRequirements, ServiceRequirements
from repro.units import Duration


def _design(infrastructure, service, requirements, jobs):
    engine = Aved(infrastructure, service, jobs=jobs)
    return engine.design(requirements)


def _canonical(outcome):
    return json.dumps(evaluation_to_dict(outcome.evaluation),
                      sort_keys=True)


class TestServiceDesignDeterminism:
    @pytest.fixture(scope="class")
    def outcomes(self, paper_infra, ecommerce):
        requirements = ServiceRequirements(
            1000, Duration.minutes(100))
        return [_design(paper_infra, ecommerce, requirements, jobs)
                for jobs in (None, 1, 4)]

    def test_designs_bit_identical(self, outcomes):
        serialized = [_canonical(outcome) for outcome in outcomes]
        assert serialized[0] == serialized[1] == serialized[2]

    def test_described_designs_identical(self, outcomes):
        described = [outcome.design.describe() for outcome in outcomes]
        assert described[0] == described[1] == described[2]

    def test_costs_identical(self, outcomes):
        costs = [outcome.annual_cost for outcome in outcomes]
        assert costs[0] == costs[1] == costs[2]

    def test_engine_provenance_identical(self, outcomes):
        used = [outcome.evaluation.engines_used()
                for outcome in outcomes]
        assert used[0] == used[1] == used[2]

    def test_clean_runs_report_no_degradation(self, outcomes):
        # jobs=None has no runtime (degradation None); supervised runs
        # attach a runtime but, fault-free, it must have nothing to say.
        assert outcomes[0].degradation is None
        for outcome in outcomes[1:]:
            assert not outcome.degraded

    def test_parallel_run_actually_used_the_pool(self, outcomes):
        assert outcomes[2].stats.parallel_batches > 0
        assert outcomes[1].stats.parallel_batches == 0


class TestJobDesignDeterminism:
    def test_scientific_design_identical_across_jobs(self, paper_infra,
                                                     scientific):
        requirements = JobRequirements(Duration.hours(96))
        serial = _design(paper_infra, scientific, requirements, None)
        pooled = _design(paper_infra, scientific, requirements, 3)
        assert _canonical(serial) == _canonical(pooled)
        assert serial.design.describe() == pooled.design.describe()
