"""Unit tests for the poison-candidate quarantine."""

from repro.parallel import PoisonQuarantine


class TestPoisonQuarantine:
    def test_membership_and_order(self):
        quarantine = PoisonQuarantine()
        quarantine.add(("b",), tier="app", attempts=3, reason="crash")
        quarantine.add(("a",), tier="web", attempts=2, reason="hang")
        assert ("b",) in quarantine
        assert ("a",) in quarantine
        assert ("c",) not in quarantine
        assert len(quarantine) == 2
        assert quarantine.keys == (("b",), ("a",))  # insertion order

    def test_first_record_wins(self):
        quarantine = PoisonQuarantine()
        first = quarantine.add(("a",), attempts=3, reason="crash")
        second = quarantine.add(("a",), attempts=9, reason="other")
        assert second is first
        assert len(quarantine) == 1
        assert next(iter(quarantine)).attempts == 3

    def test_renders_as_avd402(self):
        quarantine = PoisonQuarantine()
        quarantine.add(("a",), tier="app", attempts=3,
                       reason="worker process crashed")
        diagnostics = quarantine.to_diagnostics()
        assert len(diagnostics) == 1
        assert diagnostics[0].code == "AVD402"
        assert "3 fault(s)" in diagnostics[0].message
        assert "worker process crashed" in diagnostics[0].message
        assert "app" in diagnostics[0].context

    def test_describe_without_reason(self):
        quarantine = PoisonQuarantine()
        record = quarantine.add(("a",), attempts=1)
        assert record.describe() == \
            "candidate quarantined after 1 fault(s)"
