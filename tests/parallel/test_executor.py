"""Unit tests for the supervised executor (inline and pooled).

The fake engines/models live at module level so they pickle across
the worker-pool boundary.
"""

import time

import pytest

from repro.errors import SearchError
from repro.parallel import ParallelPolicy, SupervisedExecutor
from repro.resilience import FallbackPolicy, WorkerFaultPlan
from repro.resilience.events import (POOL_DEGRADED, QUARANTINE,
                                     TASK_TIMEOUT, WORKER_CRASH)

#: A retry policy with no sleeping, so fault-path tests stay fast.
FAST = FallbackPolicy(backoff_base=0.0)


class FakeModel:
    def __init__(self, name, value):
        self.name = name
        self.value = value


class FakeResult:
    def __init__(self, unavailability):
        self.unavailability = unavailability


class FakeEngine:
    """Returns the model's own value; special values misbehave."""

    def evaluate_tier(self, model):
        if model.value == "raise":
            raise ValueError("engine exploded")
        if model.value == "nan":
            return FakeResult(float("nan"))
        if model.value == "garbage":
            return FakeResult(5.0)
        if isinstance(model.value, tuple) and model.value[0] == "sleep":
            time.sleep(model.value[1])
            return FakeResult(0.01)
        return FakeResult(model.value)


class FlakyEngine:
    """Raises on the first ``failures`` calls, then works.

    Only meaningful inline: worker processes would each get their own
    fresh copy of the counter.
    """

    def __init__(self, failures):
        self.failures = failures
        self.calls = 0

    def evaluate_tier(self, model):
        self.calls += 1
        if self.calls <= self.failures:
            raise ValueError("transient fault %d" % self.calls)
        return FakeResult(model.value)


def _model(key, value):
    return FakeModel(key[0], value)


class TestInlineSupervision:
    def test_success_returns_value(self):
        executor = SupervisedExecutor(FakeEngine(), jobs=1)
        assert executor.evaluate_inline(("a",), _model(("a",), 0.25)) \
            == 0.25

    def test_transient_fault_recovers_within_retries(self):
        executor = SupervisedExecutor(
            FlakyEngine(failures=2), jobs=1,
            policy=ParallelPolicy(task_retries=2, backoff=FAST))
        assert executor.evaluate_inline(("a",), _model(("a",), 0.5)) \
            == 0.5
        assert len(executor.quarantine) == 0

    def test_persistent_fault_quarantines(self):
        executor = SupervisedExecutor(
            FakeEngine(), jobs=1,
            policy=ParallelPolicy(task_retries=1, backoff=FAST))
        assert executor.evaluate_inline(("a",),
                                        _model(("a",), "raise")) is None
        assert ("a",) in executor.quarantine
        record = next(iter(executor.quarantine))
        assert record.attempts == 2  # task_retries + 1
        assert "engine exploded" in record.reason
        assert len(executor.log.of_kind(QUARANTINE)) == 1

    def test_quarantined_key_short_circuits(self):
        executor = SupervisedExecutor(
            FakeEngine(), jobs=1,
            policy=ParallelPolicy(task_retries=0, backoff=FAST))
        executor.evaluate_inline(("a",), _model(("a",), "raise"))
        # A later call must not re-run the engine at all.
        assert executor.evaluate_inline(("a",),
                                        _model(("a",), 0.5)) is None

    @pytest.mark.parametrize("value", ["nan", "garbage"])
    def test_garbage_results_are_faults(self, value):
        executor = SupervisedExecutor(
            FakeEngine(), jobs=1,
            policy=ParallelPolicy(task_retries=0, backoff=FAST))
        assert executor.evaluate_inline(("a",),
                                        _model(("a",), value)) is None
        assert ("a",) in executor.quarantine
        assert executor.counters.get("garbage") == 1

    def test_cooperative_timeout_discards_late_result(self):
        executor = SupervisedExecutor(
            FakeEngine(), jobs=1,
            policy=ParallelPolicy(task_retries=0, task_timeout=0.01,
                                  backoff=FAST))
        value = executor.evaluate_inline(("a",),
                                         _model(("a",), ("sleep", 0.05)))
        assert value is None
        assert len(executor.log.of_kind(TASK_TIMEOUT)) == 1
        assert ("a",) in executor.quarantine

    def test_run_batch_without_pool_runs_inline(self):
        executor = SupervisedExecutor(FakeEngine(), jobs=1)
        merged = executor.run_batch([(("a",), _model(("a",), 0.1)),
                                     (("b",), _model(("b",), 0.2))])
        assert merged == [(("a",), 0.1), (("b",), 0.2)]


class TestPolicyValidation:
    @pytest.mark.parametrize("kwargs", [
        {"task_retries": -1},
        {"task_timeout": 0.0},
        {"isolate_after": 0},
        {"max_pool_restarts": -1},
        {"poll_interval": 0.0},
        {"startup_timeout": 0.0},
    ])
    def test_bad_policy_rejected(self, kwargs):
        with pytest.raises(SearchError):
            ParallelPolicy(**kwargs)

    def test_bad_jobs_rejected(self):
        with pytest.raises(SearchError):
            SupervisedExecutor(FakeEngine(), jobs=0)


class TestPooledSupervision:
    def test_batch_merges_in_submission_order(self):
        executor = SupervisedExecutor(FakeEngine(), jobs=2)
        try:
            merged = executor.run_batch(
                [(("k%d" % i,), _model(("k%d" % i,), i / 10.0))
                 for i in range(6)])
        finally:
            executor.close()
        assert merged == [(("k%d" % i,), i / 10.0) for i in range(6)]

    def test_worker_error_is_attributed_and_quarantined(self):
        executor = SupervisedExecutor(
            FakeEngine(), jobs=2,
            policy=ParallelPolicy(task_retries=1, backoff=FAST))
        try:
            merged = executor.run_batch(
                [(("good",), _model(("good",), 0.1)),
                 (("bad",), _model(("bad",), "raise"))])
        finally:
            executor.close()
        assert merged == [(("good",), 0.1)]
        assert ("bad",) in executor.quarantine
        assert "engine exploded" in next(iter(executor.quarantine)).reason
        # An in-worker exception must not have broken the pool.
        assert executor.counters.get("pool-break") is None

    def test_poison_crash_quarantined_innocents_survive(self):
        # Task ids are assigned in submission order starting at 0, so
        # poisoning task 1 crashes the second candidate every time.
        plan = WorkerFaultPlan(poison_tasks=(1,), poison_mode="crash")
        executor = SupervisedExecutor(
            FakeEngine(), jobs=2, worker_plan=plan,
            policy=ParallelPolicy(task_retries=1, backoff=FAST))
        try:
            merged = executor.run_batch(
                [(("a",), _model(("a",), 0.1)),
                 (("poison",), _model(("poison",), 0.2)),
                 (("c",), _model(("c",), 0.3))])
        finally:
            executor.close()
        assert merged == [(("a",), 0.1), (("c",), 0.3)]
        assert executor.quarantine.keys == (("poison",),)
        assert len(executor.log.of_kind(WORKER_CRASH)) >= 1
        assert len(executor.log.of_kind(QUARANTINE)) == 1

    def test_single_crash_recovers_without_quarantine(self):
        # Every task may crash at most once: bounded retry must
        # recover all of them with no quarantine.
        plan = WorkerFaultPlan(seed=11, fault_rate=1.0,
                               max_faults_per_task=1)
        executor = SupervisedExecutor(
            FakeEngine(), jobs=2, worker_plan=plan,
            policy=ParallelPolicy(task_retries=2, backoff=FAST))
        try:
            merged = executor.run_batch(
                [(("k%d" % i,), _model(("k%d" % i,), i / 10.0))
                 for i in range(4)])
        finally:
            executor.close()
        assert merged == [(("k%d" % i,), i / 10.0) for i in range(4)]
        assert len(executor.quarantine) == 0

    def test_hung_worker_times_out_and_is_quarantined(self):
        plan = WorkerFaultPlan(poison_tasks=(0,), poison_mode="hang",
                               hang_seconds=30.0)
        executor = SupervisedExecutor(
            FakeEngine(), jobs=2, worker_plan=plan,
            policy=ParallelPolicy(task_retries=0, task_timeout=0.3,
                                  backoff=FAST))
        try:
            merged = executor.run_batch(
                [(("hang",), _model(("hang",), 0.1)),
                 (("b",), _model(("b",), 0.2))])
        finally:
            executor.close()
        assert (("b",), 0.2) in merged
        assert ("hang",) in executor.quarantine
        assert len(executor.log.of_kind(TASK_TIMEOUT)) == 1

    def test_unstartable_pool_degrades_to_inline(self):
        def broken_factory(jobs, initializer, initargs):
            raise OSError("no processes for you")

        executor = SupervisedExecutor(FakeEngine(), jobs=2,
                                      pool_factory=broken_factory)
        try:
            merged = executor.run_batch([(("a",), _model(("a",), 0.1))])
            degraded = not executor.parallel
        finally:
            executor.close()  # resets degradation for the next search
        assert merged == [(("a",), 0.1)]
        assert degraded
        events = executor.log.of_kind(POOL_DEGRADED)
        assert len(events) == 1
        assert "no processes for you" in events[0].detail
