"""CancelToken and the per-candidate cancel check."""

import pytest

from repro.serve.deadline import (REASON_CLIENT, REASON_DEADLINE,
                                  REASON_DRAIN, CancelToken,
                                  JobCancelled, make_cancel_check,
                                  remaining_budget)


class TestCancelToken:
    def test_first_cancel_wins(self):
        token = CancelToken()
        assert not token.cancelled
        assert token.reason is None
        token.cancel(REASON_DRAIN)
        token.cancel(REASON_CLIENT)
        assert token.cancelled
        assert token.reason == REASON_DRAIN

    def test_wait_returns_once_cancelled(self):
        token = CancelToken()
        assert not token.wait(timeout=0.01)
        token.cancel(REASON_CLIENT)
        assert token.wait(timeout=0.01)


class TestCancelCheck:
    def test_noop_while_alive(self):
        check = make_cancel_check(CancelToken())
        check()    # must not raise

    def test_raises_with_token_reason(self):
        token = CancelToken()
        token.cancel(REASON_CLIENT)
        check = make_cancel_check(token)
        with pytest.raises(JobCancelled) as excinfo:
            check()
        assert excinfo.value.reason == REASON_CLIENT

    def test_deadline_fires_the_token(self):
        clock_now = [0.0]
        token = CancelToken()
        check = make_cancel_check(token, deadline_at=5.0,
                                  clock=lambda: clock_now[0])
        check()                       # t=0: fine
        clock_now[0] = 5.0
        with pytest.raises(JobCancelled) as excinfo:
            check()
        assert excinfo.value.reason == REASON_DEADLINE
        # Everything else watching the job sees the same cancellation.
        assert token.cancelled
        assert token.reason == REASON_DEADLINE

    def test_jobcancelled_message_carries_reason(self):
        error = JobCancelled(REASON_DRAIN)
        assert "drain" in str(error)


class TestRemainingBudget:
    def test_none_without_deadline(self):
        assert remaining_budget(None) is None

    def test_counts_down_on_the_given_clock(self):
        clock_now = [10.0]
        clock = lambda: clock_now[0]   # noqa: E731
        assert remaining_budget(12.5, clock) == 2.5
        clock_now[0] = 13.0
        assert remaining_budget(12.5, clock) == -0.5
