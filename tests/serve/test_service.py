"""DesignService: the full job lifecycle, in-process.

Real designs on the tiny model (markov engine) run in well under a
second, so these tests exercise the genuine submit -> worker ->
journal path rather than mocks.
"""

import json
import os

import pytest

from repro.errors import ServeError
from repro.serve.jobstore import (CANCELLED, COMPLETED, FAILED, QUEUED,
                                  RUNNING)
from repro.serve.service import parse_requirements
from repro.model import JobRequirements, ServiceRequirements

from .conftest import wait_until


def payload_with(tiny_payload, **extra):
    payload = dict(tiny_payload)
    payload.update(extra)
    return payload


def counters(service):
    return service.metrics.snapshot()["counters"]


class TestParseRequirements:
    def test_service_kind(self):
        parsed = parse_requirements({
            "kind": "service", "throughput": 100.0,
            "max_annual_downtime_minutes": 500.0})
        assert isinstance(parsed, ServiceRequirements)

    def test_job_kind(self):
        parsed = parse_requirements({
            "kind": "job", "max_execution_minutes": 90.0})
        assert isinstance(parsed, JobRequirements)

    @pytest.mark.parametrize("data", [
        None,
        "not a dict",
        {"kind": "service"},                        # missing fields
        {"kind": "service", "throughput": "x",
         "max_annual_downtime_minutes": 1.0},       # bad value
        {"kind": "batch"},                          # unknown kind
    ])
    def test_rejects_bad_requirements(self, data):
        with pytest.raises(ServeError):
            parse_requirements(data)


class TestValidation:
    def test_rejects_non_object_body(self, make_service):
        service = make_service()
        with pytest.raises(ServeError):
            service.submit(["not", "an", "object"])

    def test_rejects_missing_specs(self, make_service, tiny_payload):
        service = make_service()
        for key in ("infrastructure", "service"):
            broken = dict(tiny_payload)
            broken[key] = "   "
            with pytest.raises(ServeError, match=key):
                service.submit(broken)

    def test_rejects_unparseable_spec(self, make_service, tiny_payload):
        service = make_service()
        broken = payload_with(tiny_payload,
                              infrastructure="this is not a spec")
        with pytest.raises(ServeError, match="bad model spec"):
            service.submit(broken)

    @pytest.mark.parametrize("deadline", [0, -5, "soon"])
    def test_rejects_bad_deadline(self, make_service, tiny_payload,
                                  deadline):
        service = make_service()
        with pytest.raises(ServeError, match="deadline_seconds"):
            service.submit(payload_with(tiny_payload,
                                        deadline_seconds=deadline))

    def test_deadline_clamped_to_max(self, make_service, tiny_payload):
        service = make_service(max_deadline=50.0,
                               default_deadline=30.0)
        job, shed = service.submit(
            payload_with(tiny_payload, deadline_seconds=1e9))
        assert shed is None
        assert job.payload["deadline_seconds"] == 50.0

    def test_test_fault_is_gated(self, make_service, tiny_payload):
        service = make_service(allow_test_faults=False)
        with pytest.raises(ServeError, match="test_fault"):
            service.submit(payload_with(
                tiny_payload, test_fault={"delay_seconds": 1}))


class TestExecution:
    def test_submit_to_completion(self, make_service, tiny_payload):
        service = make_service()
        service.start()
        job, shed = service.submit(dict(tiny_payload))
        assert shed is None
        finished = service.wait(job.id, timeout=30.0)
        assert finished.state == COMPLETED
        result = finished.result
        assert result["annual_cost"] > 0
        assert result["downtime_minutes"] >= 0
        assert result["evaluation"]["design"]["tiers"]
        assert result["degraded"] is False
        # The per-job checkpoint is discarded on success (just after
        # the terminal notify, so poll briefly).
        assert wait_until(lambda: not os.path.exists(
            service.config.checkpoint_path(job.id)))
        snap = counters(service)
        assert snap["serve.accepted"] == 1
        assert snap["serve.completed"] == 1
        health = service.health()
        assert health["breakers"].get("markov") == "closed"
        assert health["pool"] is not None

    def test_infeasible_job_fails_cleanly(self, make_service,
                                          tiny_payload):
        service = make_service()
        service.start()
        impossible = dict(tiny_payload)
        impossible["requirements"] = {
            "kind": "service", "throughput": 1e9,
            "max_annual_downtime_minutes": 1000.0}
        job, _ = service.submit(impossible)
        finished = service.wait(job.id, timeout=30.0)
        assert finished.state == FAILED
        assert finished.error["kind"] == "infeasible"
        assert counters(service)["serve.failed"] == 1

    def test_deadline_miss_fails_the_job(self, make_service,
                                         tiny_payload):
        service = make_service()
        service.start()
        job, _ = service.submit(payload_with(
            tiny_payload, deadline_seconds=0.3,
            test_fault={"delay_seconds": 30}))
        finished = service.wait(job.id, timeout=15.0)
        assert finished.state == FAILED
        assert finished.error["kind"] == "deadline"
        snap = counters(service)
        assert snap["serve.deadline_misses"] == 1
        assert snap["serve.failed"] == 1

    def test_cancel_running_and_queued(self, make_service,
                                       tiny_payload):
        service = make_service(workers=1)
        service.start()
        slow = payload_with(tiny_payload,
                            test_fault={"delay_seconds": 30})
        running, _ = service.submit(slow)
        assert wait_until(
            lambda: service.get(running.id).state == RUNNING)
        queued, _ = service.submit(slow)

        assert service.cancel("job-999999") == "unknown"
        assert service.cancel(queued.id) == "cancelled"
        assert service.get(queued.id).state == CANCELLED
        assert service.cancel(queued.id) == "terminal"

        assert service.cancel(running.id) == "cancelling"
        finished = service.wait(running.id, timeout=15.0)
        assert finished.state == CANCELLED
        assert finished.cancel_reason == "client-cancel"
        assert counters(service)["serve.cancelled"] == 2


class TestShedding:
    def test_queue_full_sheds(self, make_service, tiny_payload):
        service = make_service(queue_limit=1)    # workers never started
        first, shed = service.submit(dict(tiny_payload))
        assert first is not None and shed is None
        second, shed = service.submit(dict(tiny_payload))
        assert second is None
        assert shed.reason == "queue-full"
        snap = counters(service)
        assert snap["serve.shed"] == 1
        assert snap["serve.shed.queue-full"] == 1
        assert snap["serve.accepted"] == 1

    def test_over_budget_sheds(self, make_service, tiny_payload):
        service = make_service(wait_budget=0.001,
                               initial_service_estimate=5.0)
        job, shed = service.submit(dict(tiny_payload))
        assert job is None
        assert shed.reason == "over-budget"


class TestDrainAndRecovery:
    def test_drain_requeues_then_restart_completes(self, make_service,
                                                   tiny_payload):
        service = make_service(workers=1)
        service.start()
        job, _ = service.submit(payload_with(
            tiny_payload, test_fault={"delay_seconds": 1.0}))
        assert wait_until(lambda: service.get(job.id).state == RUNNING)
        assert service.drain(grace=15.0)
        parked = service.get(job.id)
        assert parked.state == QUEUED
        assert counters(service)["serve.requeued"] == 1
        journal = [json.loads(line) for line in
                   open(service.config.journal_path, encoding="utf-8")]
        assert any(event["event"] == "requeued" for event in journal)

        # A fresh boot over the same data dir finishes the job.
        revived = make_service(workers=1)
        assert [j.id for j in revived.store.recoverable()] == [job.id]
        revived.start()
        assert counters(revived)["serve.recovered"] == 1
        finished = revived.wait(job.id, timeout=30.0)
        assert finished.state == COMPLETED
        assert finished.attempts == 2

    def test_drain_is_idempotent(self, make_service):
        service = make_service()
        service.start()
        assert service.drain(grace=5.0)
        assert service.drain(grace=5.0)
        assert counters(service)["serve.drains"] == 1

    def test_submissions_shed_while_draining(self, make_service,
                                             tiny_payload):
        # The journal is closed after drain, but admission sheds
        # before the factory would ever touch it.
        service = make_service()
        service.start()
        service.drain(grace=5.0)
        job, shed = service.submit(dict(tiny_payload))
        assert job is None
        assert shed.reason == "draining"


class TestHealth:
    def test_health_and_ready(self, make_service, tiny_payload):
        service = make_service()
        health = service.health()
        assert health["status"] == "ok"
        assert health["accepting"] is True
        assert health["queue_depth"] == 0
        assert health["workers"] == 1
        assert service.ready() is True

        service.drain(grace=5.0)
        assert service.ready() is False
        assert service.health()["status"] == "draining"

    def test_full_queue_is_not_ready(self, make_service, tiny_payload):
        service = make_service(queue_limit=1)    # workers not started
        service.submit(dict(tiny_payload))
        assert service.ready() is False

    def test_torn_journal_is_counted(self, tmp_path, tiny_payload):
        from repro.serve.service import DesignService
        from .conftest import make_config
        config = make_config(tmp_path)
        os.makedirs(config.data_dir, exist_ok=True)
        with open(config.journal_path, "w", encoding="utf-8") as fh:
            fh.write(json.dumps({"event": "accepted",
                                 "id": "job-000000",
                                 "payload": dict(tiny_payload),
                                 "attempts": 0}) + "\n")
            fh.write('{"event": "comp')     # the crash tear
        service = DesignService(config)
        try:
            assert counters(service)["serve.journal_torn_lines"] == 1
            assert service.store.get("job-000000").state == QUEUED
        finally:
            service.drain(grace=5.0)
