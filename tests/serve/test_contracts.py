"""The serve API's wire contracts, validated against live payloads.

Mirrors ``tests/core/test_cli_contracts.py``: schemas are plain dicts
in :mod:`repro.contracts`; validation uses ``jsonschema`` when
installed and skips cleanly otherwise.
"""

import pytest

from repro.contracts import (CLI_SCHEMAS, SERVE_HEALTH_SCHEMA,
                             SERVE_JOB_SCHEMA, SERVE_SHED_SCHEMA)


def validate(instance, schema):
    jsonschema = pytest.importorskip("jsonschema")
    jsonschema.validate(instance=instance, schema=schema)


def test_cli_schema_registry_covers_serve():
    for key in ("serve-job", "serve-health", "serve-shed"):
        assert key in CLI_SCHEMAS


class TestLivePayloads:
    @pytest.fixture(scope="class")
    def service(self, tmp_path_factory, tiny_payload):
        """One service, one completed job, one deadline-failed job."""
        from .conftest import make_config
        from repro.serve.service import DesignService
        config = make_config(tmp_path_factory.mktemp("contracts"))
        service = DesignService(config)
        service.start()
        good, _ = service.submit(dict(tiny_payload))
        late = dict(tiny_payload)
        late["deadline_seconds"] = 0.2
        late["test_fault"] = {"delay_seconds": 30}
        bad, _ = service.submit(late)
        service.wait(good.id, timeout=30.0)
        service.wait(bad.id, timeout=30.0)
        yield service
        service.drain(grace=10.0)

    def test_completed_job_view(self, service):
        job = [j for j in service.jobs()
               if j.state == "completed"][0]
        validate(job.to_dict(), SERVE_JOB_SCHEMA)

    def test_failed_job_view(self, service):
        job = [j for j in service.jobs() if j.state == "failed"][0]
        view = job.to_dict()
        assert view["error"]["kind"] == "deadline"
        validate(view, SERVE_JOB_SCHEMA)

    def test_health_view(self, service):
        validate(service.health(), SERVE_HEALTH_SCHEMA)

    def test_readyz_view(self, service):
        payload = {"ready": service.ready()}
        payload.update(service.health())
        validate(payload, SERVE_HEALTH_SCHEMA)

    def test_shed_view(self, service, tiny_payload):
        from repro.serve.admission import AdmissionController
        controller = AdmissionController(queue_limit=0,
                                         wait_budget=1.0,
                                         initial_estimate=1.0)
        _, shed = controller.offer(lambda: None)
        validate(shed.to_dict(), SERVE_SHED_SCHEMA)
