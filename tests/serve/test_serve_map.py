"""GET /v1/map: the precomputed-map lookup endpoint.

The daemon mounts a :class:`repro.grid.MapService` when configured
with ``map_path``; the endpoint answers from the file without ever
running a search, 503s honestly when the queried region is unbuilt,
and reports the map's coverage in ``/healthz``.
"""

import json
import os
import time
import urllib.error
import urllib.request

import jsonschema
import pytest

from repro.availability import get_engine
from repro.contracts import MAP_STATUS_SCHEMA
from repro.core import DesignEvaluator
from repro.core.frontier import build_requirement_map
from repro.core.serialize import requirement_map_to_json
from repro.serve.loadgen import tiny_specs
from repro.spec import parse_infrastructure, parse_service

MAP_LOADS = (100.0, 200.0, 300.0)


def get(daemon, path):
    try:
        with urllib.request.urlopen(daemon.url + path,
                                    timeout=10) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


@pytest.fixture(scope="module")
def map_evaluator():
    infrastructure_text, service_text = tiny_specs()
    return DesignEvaluator(parse_infrastructure(infrastructure_text),
                           parse_service(service_text),
                           get_engine("markov"))


@pytest.fixture
def map_file(map_evaluator, tmp_path):
    space_map = build_requirement_map(map_evaluator, "web", MAP_LOADS)
    path = tmp_path / "map.json"
    path.write_text(requirement_map_to_json(space_map))
    return str(path)


class TestMapEndpoint:
    def test_ok_lookup_answers_without_search(self, make_daemon,
                                              map_file):
        daemon = make_daemon(map_path=map_file)
        status, body = get(daemon,
                           "/v1/map?load=150&downtime_minutes=5000")
        assert status == 200
        assert body["answer"] == "ok"
        assert body["grid_load"] == 200.0
        assert body["coverage"] == 1.0
        assert body["design"]["downtime_minutes"] <= 5000
        # No design job ran: the lookup path never searches.
        assert daemon.service.store.counts() == {}

    def test_infeasible_is_a_definitive_200(self, make_daemon,
                                            map_file):
        daemon = make_daemon(map_path=map_file)
        status, body = get(
            daemon, "/v1/map?load=150&downtime_minutes=1e-15")
        assert status == 200
        assert body["answer"] == "infeasible"

    def test_unbuilt_region_is_503_with_coverage(self, make_daemon,
                                                 map_file):
        daemon = make_daemon(map_path=map_file)
        status, body = get(daemon,
                           "/v1/map?load=9999&downtime_minutes=100")
        assert status == 503
        assert body["answer"] == "unbuilt"
        assert body["coverage"] == 1.0
        assert "beyond the grid" in body["detail"]

    def test_missing_map_file_is_503_not_500(self, make_daemon,
                                             tmp_path):
        daemon = make_daemon(
            map_path=str(tmp_path / "never-built.json"))
        status, body = get(daemon,
                           "/v1/map?load=100&downtime_minutes=100")
        assert status == 503
        assert body["answer"] == "unbuilt"

    @pytest.mark.parametrize("query", [
        "", "load=100", "downtime_minutes=5",
        "load=abc&downtime_minutes=5",
        "load=-3&downtime_minutes=5",
        "load=100&downtime_minutes=0",
    ])
    def test_bad_parameters_are_400(self, make_daemon, map_file,
                                    query):
        daemon = make_daemon(map_path=map_file)
        status, body = get(daemon, "/v1/map?" + query)
        assert status == 400
        assert "error" in body

    def test_no_map_configured_is_404(self, make_daemon):
        daemon = make_daemon()
        status, body = get(daemon,
                           "/v1/map?load=100&downtime_minutes=5")
        assert status == 404

    def test_rebuilt_map_is_served_without_restart(
            self, make_daemon, map_evaluator, map_file):
        daemon = make_daemon(map_path=map_file)
        status, _ = get(daemon,
                        "/v1/map?load=500&downtime_minutes=5000")
        assert status == 503
        bigger = build_requirement_map(map_evaluator, "web",
                                       MAP_LOADS + (500.0,))
        with open(map_file, "w") as handle:
            handle.write(requirement_map_to_json(bigger))
        os.utime(map_file, (time.time() + 5, time.time() + 5))
        status, body = get(daemon,
                           "/v1/map?load=500&downtime_minutes=5000")
        assert status == 200
        assert body["answer"] == "ok"


class TestHealthz:
    def test_healthz_reports_map_state(self, make_daemon, map_file):
        daemon = make_daemon(map_path=map_file)
        status, body = get(daemon, "/healthz")
        assert status == 200
        jsonschema.validate(body["map"], MAP_STATUS_SCHEMA)
        assert body["map"]["state"] == "complete"
        assert body["map"]["coverage"] == 1.0

    def test_healthz_map_is_null_when_unconfigured(self, make_daemon):
        daemon = make_daemon()
        _, body = get(daemon, "/healthz")
        assert body["map"] is None

    def test_corrupt_map_degrades_health_not_the_daemon(
            self, make_daemon, tmp_path):
        path = tmp_path / "map.json"
        path.write_text("{}")   # parses, but wrong version
        daemon = make_daemon(map_path=str(path))
        status, body = get(daemon, "/healthz")
        assert status == 200
        jsonschema.validate(body["map"], MAP_STATUS_SCHEMA)
        assert body["map"]["state"] == "missing"
        assert "error" in body["map"]
        status, _ = get(daemon,
                        "/v1/map?load=100&downtime_minutes=5")
        assert status == 503
