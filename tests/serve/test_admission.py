"""AdmissionController: shedding, honest Retry-After, drain semantics."""

from repro.serve.admission import (SHED_DRAINING, SHED_OVER_BUDGET,
                                   SHED_QUEUE_FULL, AdmissionController)


def controller(**overrides):
    defaults = dict(queue_limit=2, wait_budget=100.0,
                    initial_estimate=0.5, workers=1)
    defaults.update(overrides)
    return AdmissionController(**defaults)


class TestShedding:
    def test_admits_until_queue_full(self):
        ctl = controller(queue_limit=2)
        assert ctl.offer(lambda: "a")[0] == "a"
        assert ctl.offer(lambda: "b")[0] == "b"
        job, shed = ctl.offer(lambda: "c")
        assert job is None
        assert shed.reason == SHED_QUEUE_FULL
        assert shed.queue_depth == 2
        assert shed.retry_after >= 1
        assert ctl.depth == 2

    def test_sheds_over_wait_budget(self):
        ctl = controller(queue_limit=10, wait_budget=1.0,
                         initial_estimate=10.0)
        job, shed = ctl.offer(lambda: "a")
        assert job is None
        assert shed.reason == SHED_OVER_BUDGET
        assert shed.estimated_wait == 10.0

    def test_factory_not_called_on_shed(self):
        ctl = controller(queue_limit=1)
        calls = []
        ctl.offer(lambda: calls.append(1) or "a")
        ctl.offer(lambda: calls.append(2) or "b")
        assert calls == [1]    # the shed request was never journaled

    def test_workers_divide_the_wait_estimate(self):
        ctl = controller(queue_limit=10, wait_budget=3.0,
                         initial_estimate=10.0, workers=4)
        job, shed = ctl.offer(lambda: "a")    # 10/4 = 2.5s < 3s budget
        assert job == "a"
        assert shed is None

    def test_retry_after_is_clamped(self):
        slow = controller(queue_limit=0, initial_estimate=1e6)
        assert slow.offer(lambda: "x")[1].retry_after == 120
        fast = controller(queue_limit=0, initial_estimate=0.001)
        assert fast.offer(lambda: "x")[1].retry_after == 1

    def test_shed_decision_to_dict(self):
        ctl = controller(queue_limit=0)
        _, shed = ctl.offer(lambda: "x")
        view = shed.to_dict()
        assert view["shed"] is True
        assert view["reason"] == SHED_QUEUE_FULL
        assert view["retry_after"] >= 1
        assert view["estimated_wait_seconds"] >= 0


class TestEstimate:
    def test_ewma_moves_toward_observations(self):
        ctl = controller(initial_estimate=2.0)
        ctl.record_service_time(10.0)
        assert abs(ctl.service_estimate - 4.4) < 1e-9   # 0.7*2 + 0.3*10

    def test_bogus_observations_ignored(self):
        ctl = controller(initial_estimate=2.0)
        ctl.record_service_time(-1.0)
        ctl.record_service_time(float("inf"))
        ctl.record_service_time(float("nan"))
        assert ctl.service_estimate == 2.0


class TestTakeAndDrain:
    def test_take_is_fifo(self):
        ctl = controller()
        ctl.offer(lambda: "a")
        ctl.offer(lambda: "b")
        assert ctl.take(timeout=0.01) == "a"
        assert ctl.take(timeout=0.01) == "b"
        assert ctl.take(timeout=0.01) is None

    def test_requeue_bypasses_shedding(self):
        ctl = controller(queue_limit=1)
        ctl.offer(lambda: "a")
        ctl.requeue("recovered")              # already journaled: no shed
        ctl.requeue("urgent", front=True)
        assert ctl.take(timeout=0.01) == "urgent"
        assert ctl.take(timeout=0.01) == "a"
        assert ctl.take(timeout=0.01) == "recovered"

    def test_closed_controller_sheds_as_draining(self):
        ctl = controller()
        ctl.close()
        job, shed = ctl.offer(lambda: "a")
        assert job is None
        assert shed.reason == SHED_DRAINING

    def test_take_refuses_queued_work_after_close(self):
        # Drain must never *start* work: whatever is still queued is
        # collected by drain_pending() and re-journaled instead.
        ctl = controller()
        ctl.offer(lambda: "a")
        ctl.close()
        assert ctl.closed
        assert ctl.take(timeout=0.01) is None
        assert ctl.drain_pending() == ["a"]
        assert ctl.depth == 0
