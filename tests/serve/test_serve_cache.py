"""The serving daemon with a shared tier-evaluation cache attached.

In-process tests cover the service wiring (one shared store across
jobs, counters in results and /healthz, identical evaluations with
the cache on and off).  The subprocess test covers the ISSUE's crash
bar: ``kill -9`` of a cache-backed daemon mid-workload, restart over
the same cache directory, and every accepted job completing with the
evaluation a cache-off daemon would have produced.
"""

import json

import pytest

from repro.serve.config import ServeConfig
from repro.serve.jobstore import COMPLETED

from .test_soak import get_json, start_daemon, stop_daemon


def _cache_overrides(tmp_path, **extra):
    overrides = dict(cache_dir=str(tmp_path / "tier-cache"))
    overrides.update(extra)
    return overrides


class TestServiceCacheWiring:
    def test_config_rejects_verify_without_dir(self, tmp_path):
        from repro.errors import ServeError
        with pytest.raises(ServeError, match="cache_verify"):
            ServeConfig(data_dir=str(tmp_path / "d"), cache_verify=True)

    def test_repeat_jobs_hit_the_shared_store(self, make_service,
                                              tiny_payload, tmp_path):
        service = make_service(**_cache_overrides(tmp_path))
        service.start()
        first, _ = service.submit(dict(tiny_payload))
        done = service.wait(first.id, timeout=30.0)
        assert done.state == COMPLETED
        assert done.result["cache"]["writes"] > 0
        second, _ = service.submit(dict(tiny_payload))
        done = service.wait(second.id, timeout=30.0)
        assert done.state == COMPLETED
        assert done.result["cache"]["hits"] > 0

    def test_cached_evaluation_identical_to_uncached(self, make_service,
                                                     tiny_payload,
                                                     tmp_path):
        plain = make_service(data_dir=str(tmp_path / "plain-data"))
        plain.start()
        job, _ = plain.submit(dict(tiny_payload))
        baseline = plain.wait(job.id, timeout=30.0).result

        cached = make_service(**_cache_overrides(
            tmp_path, data_dir=str(tmp_path / "cached-data")))
        cached.start()
        for _ in range(2):          # cold, then warm
            job, _ = cached.submit(dict(tiny_payload))
            finished = cached.wait(job.id, timeout=30.0)
            assert finished.state == COMPLETED
            result = finished.result
            assert json.dumps(result["evaluation"], sort_keys=True) \
                == json.dumps(baseline["evaluation"], sort_keys=True)
            assert result["annual_cost"] == baseline["annual_cost"]

    def test_health_reports_cache_counters(self, make_service,
                                           tiny_payload, tmp_path):
        service = make_service(**_cache_overrides(tmp_path))
        service.start()
        job, _ = service.submit(dict(tiny_payload))
        service.wait(job.id, timeout=30.0)
        health = service.health()
        assert health["cache"]["writes"] > 0
        assert health["cache"]["enabled"] is True

    def test_uncached_service_reports_no_cache(self, make_service,
                                               tiny_payload):
        service = make_service()
        service.start()
        job, _ = service.submit(dict(tiny_payload))
        finished = service.wait(job.id, timeout=30.0)
        assert "cache" not in finished.result
        assert service.health()["cache"] is None

    def test_verify_mode_completes_clean_jobs(self, make_service,
                                              tiny_payload, tmp_path):
        service = make_service(**_cache_overrides(tmp_path,
                                                  cache_verify=True))
        service.start()
        for _ in range(2):
            job, _ = service.submit(dict(tiny_payload))
            finished = service.wait(job.id, timeout=30.0)
            assert finished.state == COMPLETED
        assert finished.result["cache"]["verify_checked"] > 0


def _submit_job(url, payload):
    import http.client
    parts = url.split("://", 1)[1]
    host, port = parts.split(":")
    connection = http.client.HTTPConnection(host, int(port), timeout=30)
    try:
        connection.request("POST", "/v1/jobs", body=json.dumps(payload),
                           headers={"Content-Type": "application/json"})
        response = connection.getresponse()
        return response.status, json.loads(response.read())
    finally:
        connection.close()


class TestDaemonCrashWithSharedCache:
    def test_kill9_and_restart_over_shared_cache(self, tmp_path,
                                                 tiny_payload):
        cache_dir = str(tmp_path / "shared-cache")
        data_dir = tmp_path / "serve-data"

        # The expected evaluation, from a cache-off daemon.
        plain_dir = tmp_path / "plain-data"
        process, url = start_daemon(plain_dir)
        try:
            status, job = _submit_job(url, dict(tiny_payload))
            assert status == 202
            status, done = get_json(
                url, "/v1/jobs/%s?wait=30" % job["id"])
            assert done["state"] == "completed"
            expected = json.dumps(done["result"]["evaluation"],
                                  sort_keys=True)
        finally:
            stop_daemon(process)

        # Boot cache-backed, accept a few jobs, kill -9 mid-workload.
        process, url = start_daemon(data_dir, "--cache", cache_dir)
        accepted = []
        for _ in range(3):
            status, job = _submit_job(url, dict(tiny_payload))
            if status == 202:
                accepted.append(job["id"])
        assert accepted
        process.kill()              # SIGKILL: no drain, no goodbye
        process.wait(timeout=30)

        # Restart over the same data dir *and* cache dir: recovery
        # must finish every accepted job, and a scribbled cache must
        # never change what the jobs compute.
        process, url = start_daemon(data_dir, "--cache", cache_dir)
        try:
            for job_id in accepted:
                status, done = get_json(
                    url, "/v1/jobs/%s?wait=60" % job_id)
                assert status == 200
                assert done["state"] == "completed", done
                assert json.dumps(done["result"]["evaluation"],
                                  sort_keys=True) == expected
            status, health = get_json(url, "/healthz")
            assert status == 200
            assert health["cache"] is not None
        finally:
            stop_daemon(process)
