"""The HTTP front end, against an in-process daemon."""

import http.client
import json

from repro.serve.jobstore import RUNNING

from .conftest import wait_until


def request(daemon, method, path, body=None, headers=None):
    """One HTTP round trip; returns (status, headers-dict, json-body)."""
    connection = http.client.HTTPConnection(daemon.host, daemon.port,
                                            timeout=30)
    try:
        raw = None if body is None else json.dumps(body).encode()
        connection.request(method, path, body=raw,
                           headers=headers or {})
        response = connection.getresponse()
        payload = json.loads(response.read())
        return response.status, dict(response.getheaders()), payload
    finally:
        connection.close()


class TestJobsApi:
    def test_submit_poll_complete(self, make_daemon, tiny_payload):
        daemon = make_daemon()
        status, _, body = request(daemon, "POST", "/v1/jobs",
                                  dict(tiny_payload))
        assert status == 202
        job_id = body["id"]
        assert job_id.startswith("job-")

        status, _, job = request(daemon, "GET",
                                 "/v1/jobs/%s?wait=30" % job_id)
        assert status == 200
        assert job["state"] == "completed"
        assert job["result"]["annual_cost"] > 0

        status, _, listing = request(daemon, "GET", "/v1/jobs")
        assert status == 200
        assert [item["id"] for item in listing["jobs"]] == [job_id]

    def test_unknown_job_is_404(self, make_daemon):
        daemon = make_daemon()
        status, _, body = request(daemon, "GET", "/v1/jobs/job-404404")
        assert status == 404
        assert "unknown job" in body["error"]
        status, _, _ = request(daemon, "DELETE", "/v1/jobs/job-404404")
        assert status == 404

    def test_bad_payload_is_400(self, make_daemon, tiny_payload):
        daemon = make_daemon()
        status, _, body = request(daemon, "POST", "/v1/jobs",
                                  {"infrastructure": "nope"})
        assert status == 400
        assert "error" in body

    def test_bad_json_is_400(self, make_daemon):
        daemon = make_daemon()
        connection = http.client.HTTPConnection(daemon.host,
                                                daemon.port, timeout=30)
        try:
            connection.request("POST", "/v1/jobs", body=b"{not json",
                               headers={"Content-Type":
                                        "application/json"})
            response = connection.getresponse()
            assert response.status == 400
        finally:
            connection.close()

    def test_bad_wait_param_is_400(self, make_daemon, tiny_payload):
        daemon = make_daemon()
        _, _, body = request(daemon, "POST", "/v1/jobs",
                             dict(tiny_payload))
        status, _, _ = request(daemon, "GET",
                               "/v1/jobs/%s?wait=soon" % body["id"])
        assert status == 400

    def test_oversized_body_is_413(self, make_daemon):
        daemon = make_daemon()
        connection = http.client.HTTPConnection(daemon.host,
                                                daemon.port, timeout=30)
        try:
            connection.putrequest("POST", "/v1/jobs")
            connection.putheader("Content-Length", str(64 << 20))
            connection.endheaders()
            response = connection.getresponse()
            assert response.status == 413
        finally:
            connection.close()

    def test_unknown_endpoint_is_404(self, make_daemon):
        daemon = make_daemon()
        for method, path in (("GET", "/nope"), ("POST", "/nope"),
                             ("DELETE", "/nope")):
            status, _, _ = request(daemon, method, path)
            assert status == 404

    def test_delete_cancels_running_job(self, make_daemon,
                                        tiny_payload):
        daemon = make_daemon()
        slow = dict(tiny_payload)
        slow["test_fault"] = {"delay_seconds": 30}
        _, _, body = request(daemon, "POST", "/v1/jobs", slow)
        job_id = body["id"]
        assert wait_until(lambda: daemon.service.get(job_id).state
                          == RUNNING)
        status, _, body = request(daemon, "DELETE",
                                  "/v1/jobs/%s" % job_id)
        assert status == 202
        assert body["status"] == "cancelling"
        _, _, job = request(daemon, "GET",
                            "/v1/jobs/%s?wait=15" % job_id)
        assert job["state"] == "cancelled"
        status, _, _ = request(daemon, "DELETE", "/v1/jobs/%s" % job_id)
        assert status == 409    # already terminal


class TestOverload:
    def test_storm_gets_429_with_retry_after(self, make_daemon,
                                             tiny_payload):
        daemon = make_daemon(workers=1, queue_limit=1)
        slow = dict(tiny_payload)
        slow["test_fault"] = {"delay_seconds": 30}
        sheds = []
        for _ in range(4):
            status, headers, body = request(daemon, "POST", "/v1/jobs",
                                            slow)
            if status == 429:
                sheds.append((headers, body))
            else:
                assert status == 202
        # Capacity is 1 running + 1 queued: the 4-burst must shed.
        assert sheds
        headers, body = sheds[0]
        assert int(headers["Retry-After"]) >= 1
        assert body["shed"] is True
        assert body["reason"] in ("queue-full", "over-budget")


class TestHealthEndpoints:
    def test_healthz_readyz_metricz(self, make_daemon, tiny_payload):
        daemon = make_daemon()
        status, _, health = request(daemon, "GET", "/healthz")
        assert status == 200
        assert health["status"] == "ok"

        status, _, ready = request(daemon, "GET", "/readyz")
        assert status == 200
        assert ready["ready"] is True

        request(daemon, "POST", "/v1/jobs", dict(tiny_payload))
        status, _, metrics = request(daemon, "GET", "/metricz")
        assert status == 200
        assert metrics["counters"]["serve.accepted"] == 1

    def test_drain_endpoint_requests_stop(self, make_daemon):
        daemon = make_daemon()
        status, _, body = request(daemon, "POST", "/v1/drain")
        assert status == 202
        assert body["draining"] is True
        assert daemon._stop.is_set()


class TestDiscovery:
    def test_endpoint_file_lifecycle(self, make_daemon):
        daemon = make_daemon()
        with open(daemon.config.endpoint_path,
                  encoding="utf-8") as handle:
            record = json.load(handle)
        assert record["url"] == daemon.url
        assert record["port"] == daemon.port
        daemon.shutdown()
        import os
        assert not os.path.exists(daemon.config.endpoint_path)

    def test_readyz_503_while_draining(self, tmp_path, tiny_payload):
        from repro.serve.httpd import DesignDaemon
        from .conftest import make_config
        daemon = DesignDaemon(make_config(tmp_path))
        daemon.start()
        try:
            daemon.service.drain(grace=5.0)
            status, _, body = request(daemon, "GET", "/readyz")
            assert status == 503
            assert body["ready"] is False
        finally:
            daemon.shutdown()
