"""The serve-embedded watch reconciler: health, drift, and drain."""

import pytest

from repro.contracts import SERVE_HEALTH_SCHEMA
from repro.errors import ServeError
from repro.serve.config import ServeConfig

from ..watch.conftest import load_events, write_jsonl
from .conftest import make_config, wait_until


def validate(instance, schema):
    jsonschema = pytest.importorskip("jsonschema")
    jsonschema.validate(instance=instance, schema=schema)


def watch_overrides(stream, **extra):
    overrides = dict(
        watch_telemetry=(stream,),
        watch_tier="application",
        watch_load=800.0,
        watch_downtime_minutes=100.0,
        watch_interval=0.1,
        watch_paper=True,
    )
    overrides.update(extra)
    return overrides


def write_stream(tmp_path, value, count):
    path = str(tmp_path / "telemetry.jsonl")
    write_jsonl(path, load_events(value, count, tier="application"))
    return path


class TestConfigValidation:
    def test_telemetry_requires_a_tier(self, tmp_path):
        with pytest.raises(ServeError):
            ServeConfig(data_dir=str(tmp_path / "d"),
                        watch_telemetry=("stream.jsonl",))

    def test_telemetry_requires_a_model(self, tmp_path):
        with pytest.raises(ServeError):
            ServeConfig(data_dir=str(tmp_path / "d"),
                        watch_telemetry=("stream.jsonl",),
                        watch_tier="application", watch_load=800.0,
                        watch_downtime_minutes=100.0)

    def test_no_watch_by_default(self, tmp_path, make_service):
        service = make_service()
        service.start()
        assert service.watcher is None
        assert service.health()["watch"] is None


class TestReconciler:
    def test_stationary_watch_reports_on_healthz(
            self, tmp_path, make_service):
        stream = write_stream(tmp_path, 800.0, 10)
        service = make_service(**watch_overrides(stream))
        service.start()
        assert wait_until(
            lambda: (service.health()["watch"] or {}).get("polls", 0)
            >= 2)
        health = service.health()
        validate(health, SERVE_HEALTH_SCHEMA)
        watch = health["watch"]
        assert watch["tier"] == "application"
        assert watch["reconfigurations"] == 0
        assert watch["incumbent"]["n_active"] == 5
        assert service.metrics.counter_value("serve.watch_polls") >= 2
        assert service.drain(grace=10.0)
        # The status snapshot survives the drain.
        assert service.health()["watch"]["incumbent"] is not None

    def test_drifted_stream_redesigns_in_background(
            self, tmp_path, make_service):
        stream = write_stream(tmp_path, 2400.0, 40)
        service = make_service(**watch_overrides(stream))
        service.start()
        assert wait_until(
            lambda: (service.health()["watch"] or {}).get("epoch", 0)
            == 1, timeout=30.0)
        watch = service.health()["watch"]
        assert watch["reconfigurations"] == 1
        assert watch["incumbent"]["n_active"] == 14
        assert watch["spec"]["load"] == pytest.approx(
            800.0 * 1.25 ** 5)
        # Its durable state landed inside the serve data directory.
        assert service.config.watch_journal_path.endswith(
            "watch-journal.jsonl")
        assert service.drain(grace=10.0)

    def test_unreadable_model_fails_fast_at_construction(
            self, tmp_path, make_service):
        # A misconfigured reconciler must surface at boot, not as a
        # silently dead background thread.
        stream = write_stream(tmp_path, 800.0, 5)
        with pytest.raises(OSError):
            make_service(**watch_overrides(
                stream, watch_paper=False,
                watch_infrastructure=str(tmp_path / "absent.yaml"),
                watch_service=str(tmp_path / "absent-too.yaml")))
