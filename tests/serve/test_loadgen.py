"""The seeded load/chaos client: determinism, faults, CLI."""

import json

import pytest

from repro.errors import ServeError
from repro.serve import loadgen
from repro.serve.loadgen import (ClientFaultPlan, LoadPlan,
                                 default_payload, tiny_specs)


class TestPlans:
    def test_schedule_is_seed_deterministic(self):
        plan = LoadPlan(requests=20, seed=7, storm_at=5, storm_size=4)
        faults = ClientFaultPlan(slow_rate=0.3, kill_rate=0.3)
        assert (loadgen._schedule(plan, faults)
                == loadgen._schedule(plan, faults))

    def test_storm_requests_have_no_gap(self):
        plan = LoadPlan(requests=10, interval=0.25, storm_at=3,
                        storm_size=4)
        schedule = loadgen._schedule(plan, ClientFaultPlan())
        gaps = [entry["gap"] for entry in schedule]
        assert gaps[3:7] == [0.0] * 4
        assert all(gap == 0.25 for gap in gaps[:3] + gaps[7:])

    @pytest.mark.parametrize("kwargs", [
        {"requests": 0},
        {"interval": -1.0},
        {"storm_size": -1},
    ])
    def test_load_plan_validation(self, kwargs):
        with pytest.raises(ServeError):
            LoadPlan(**kwargs)

    @pytest.mark.parametrize("kwargs", [
        {"slow_rate": 1.5},
        {"kill_rate": -0.1},
        {"slow_seconds": -1.0},
    ])
    def test_fault_plan_validation(self, kwargs):
        with pytest.raises(ServeError):
            ClientFaultPlan(**kwargs)


class TestTinyModel:
    def test_tiny_specs_round_trip(self):
        from repro.model import validate_pair
        from repro.spec import parse_infrastructure, parse_service
        infrastructure_text, service_text = tiny_specs()
        infrastructure = parse_infrastructure(infrastructure_text)
        service = parse_service(service_text)
        validate_pair(infrastructure, service)

    def test_default_payload_knobs(self):
        plan = LoadPlan(deadline_seconds=9.0, delay_seconds=0.5)
        payload = default_payload(plan)
        assert payload["deadline_seconds"] == 9.0
        assert payload["test_fault"] == {"delay_seconds": 0.5}
        bare = default_payload(LoadPlan())
        assert "deadline_seconds" not in bare
        assert "test_fault" not in bare


class TestAgainstDaemon:
    def test_plain_run_completes_everything(self, make_daemon):
        daemon = make_daemon(workers=2)
        plan = LoadPlan(requests=4, interval=0.0, wait_seconds=60.0)
        report = loadgen.run(daemon.url, plan)
        assert report.sent == 4
        assert len(report.accepted) == 4
        assert report.shed == 0
        assert report.killed == 0
        assert set(report.outcomes.values()) == {"completed"}
        view = report.to_dict()
        assert view["accepted"] == 4
        assert view["outcomes"] == report.outcomes

    def test_killed_requests_admit_nothing(self, make_daemon):
        daemon = make_daemon()
        plan = LoadPlan(requests=3, interval=0.0)
        faults = ClientFaultPlan(kill_rate=1.0)
        report = loadgen.run(daemon.url, plan, faults)
        assert report.killed == 3
        assert report.accepted == []
        # Half-sent bodies never become jobs; the daemon stays healthy.
        assert daemon.service.jobs() == []
        assert daemon.service.health()["status"] == "ok"

    def test_slow_clients_still_admit(self, make_daemon):
        daemon = make_daemon()
        plan = LoadPlan(requests=2, interval=0.0, wait_seconds=60.0)
        faults = ClientFaultPlan(slow_rate=1.0, slow_seconds=0.2)
        report = loadgen.run(daemon.url, plan, faults)
        assert report.slowed == 2
        assert len(report.accepted) == 2
        assert set(report.outcomes.values()) == {"completed"}

    def test_cli_main(self, make_daemon, capsys):
        daemon = make_daemon()
        code = loadgen.main(["--url", daemon.url, "--requests", "2",
                             "--interval", "0", "--wait", "60"])
        assert code == 0
        report = json.loads(capsys.readouterr().out)
        assert report["sent"] == 2
        assert report["accepted"] == 2

    def test_cli_endpoint_file(self, make_daemon, capsys):
        daemon = make_daemon()
        code = loadgen.main(["--endpoint-file",
                             daemon.config.endpoint_path,
                             "--requests", "1", "--interval", "0"])
        assert code == 0
        assert json.loads(capsys.readouterr().out)["accepted"] == 1

    def test_cli_requires_a_target(self, capsys):
        assert loadgen.main(["--requests", "1"]) == 1
        assert "loadgen:" in capsys.readouterr().err
