"""JobStore: journal replay, torn tails, compaction, exactly-once."""

import json
import threading

import pytest

from repro.errors import ServeError
from repro.serve.jobstore import (CANCELLED, COMPLETED, FAILED, QUEUED,
                                  RUNNING, Job, JobStore)


def make_store(tmp_path):
    return JobStore(str(tmp_path / "jobs.jsonl"), fsync=False)


def journal_events(tmp_path):
    events = []
    with open(tmp_path / "jobs.jsonl", encoding="utf-8") as handle:
        for line in handle:
            if line.strip():
                events.append(json.loads(line))
    return events


class TestLifecycle:
    def test_submit_assigns_sequential_ids(self, tmp_path):
        store = make_store(tmp_path)
        first = store.submit({"n": 1})
        second = store.submit({"n": 2})
        assert first.id == "job-000000"
        assert second.id == "job-000001"
        assert first.state == QUEUED
        store.close()

    def test_started_completed_roundtrip(self, tmp_path):
        store = make_store(tmp_path)
        job = store.submit({})
        assert store.mark_started(job.id)
        assert job.state == RUNNING
        assert job.attempts == 1
        assert store.mark_completed(job.id, {"annual_cost": 1.0})
        assert job.state == COMPLETED
        assert job.result == {"annual_cost": 1.0}
        view = job.to_dict()
        assert view["state"] == COMPLETED
        assert view["result"] == {"annual_cost": 1.0}
        assert "payload" not in view
        store.close()

    def test_first_terminal_wins(self, tmp_path):
        store = make_store(tmp_path)
        job = store.submit({})
        store.mark_started(job.id)
        assert store.mark_completed(job.id, {"ok": True})
        # A second terminal event is refused at the API...
        assert not store.mark_failed(job.id, {"kind": "error"})
        assert not store.mark_cancelled(job.id, "client-cancel")
        assert job.state == COMPLETED
        store.close()
        # ...and never journaled.
        terminal = [event for event in journal_events(tmp_path)
                    if event["event"] in ("completed", "failed",
                                          "cancelled")]
        assert len(terminal) == 1
        assert terminal[0]["event"] == "completed"

    def test_started_and_requeue_refused_after_terminal(self, tmp_path):
        store = make_store(tmp_path)
        job = store.submit({})
        store.mark_cancelled(job.id, "client-cancel")
        assert not store.mark_started(job.id)
        assert not store.mark_requeued(job.id, "drain")
        assert job.cancel_reason == "client-cancel"
        store.close()

    def test_unknown_job_raises(self, tmp_path):
        store = make_store(tmp_path)
        with pytest.raises(ServeError):
            store.mark_started("job-999999")
        assert store.get("job-999999") is None
        store.close()


class TestReplay:
    def test_states_survive_restart(self, tmp_path):
        store = make_store(tmp_path)
        done = store.submit({"n": 0})
        failed = store.submit({"n": 1})
        queued = store.submit({"n": 2})
        running = store.submit({"n": 3})
        store.mark_started(done.id)
        store.mark_completed(done.id, {"ok": True})
        store.mark_started(failed.id)
        store.mark_failed(failed.id, {"kind": "error", "message": "x"})
        store.mark_started(running.id)
        store.close()

        reopened = make_store(tmp_path)
        assert reopened.get(done.id).state == COMPLETED
        assert reopened.get(done.id).result == {"ok": True}
        assert reopened.get(failed.id).state == FAILED
        assert reopened.get(queued.id).state == QUEUED
        # A running job whose daemon died replays as recoverable.
        recoverable = [job.id for job in reopened.recoverable()]
        assert recoverable == [queued.id, running.id]
        # Attempts survive so operators can see retries.
        assert reopened.get(running.id).attempts == 1
        # New ids continue after the replayed sequence.
        assert reopened.submit({}).id == "job-000004"
        reopened.close()

    def test_torn_tail_is_dropped(self, tmp_path):
        store = make_store(tmp_path)
        job = store.submit({"n": 1})
        store.mark_started(job.id)
        store.mark_completed(job.id, {"ok": True})
        store.close()
        with open(tmp_path / "jobs.jsonl", "a", encoding="utf-8") as fh:
            fh.write('{"event": "fail')    # crash mid-append

        reopened = make_store(tmp_path)
        assert reopened.torn_lines == 1
        assert reopened.get(job.id).state == COMPLETED
        reopened.close()

    def test_everything_after_first_torn_line_is_untrusted(self,
                                                           tmp_path):
        store = make_store(tmp_path)
        job = store.submit({"n": 1})
        store.close()
        with open(tmp_path / "jobs.jsonl", "a", encoding="utf-8") as fh:
            fh.write("garbage line\n")
            fh.write(json.dumps({"event": "completed", "id": job.id,
                                 "result": {}}) + "\n")

        reopened = make_store(tmp_path)
        assert reopened.get(job.id).state == QUEUED
        reopened.close()

    def test_compaction_bounds_the_journal(self, tmp_path):
        store = make_store(tmp_path)
        job = store.submit({"n": 1})
        for _ in range(5):
            store.mark_started(job.id)
            store.mark_requeued(job.id, "drain")
        store.mark_started(job.id)
        store.mark_completed(job.id, {"ok": True})
        open_job = store.submit({"n": 2})
        store.mark_started(open_job.id)
        store.close()
        assert len(journal_events(tmp_path)) > 4

        reopened = make_store(tmp_path)
        reopened.close()
        events = journal_events(tmp_path)
        # One accepted line per job plus the single terminal line; the
        # interrupted RUNNING job compacts back to accepted-only.
        assert [event["event"] for event in events] == [
            "accepted", "completed", "accepted"]
        assert events[0]["attempts"] == 6
        assert events[2]["attempts"] == 1


class TestWait:
    def test_wait_returns_on_completion(self, tmp_path):
        store = make_store(tmp_path)
        job = store.submit({})

        def complete():
            store.mark_started(job.id)
            store.mark_completed(job.id, {"ok": True})

        timer = threading.Timer(0.1, complete)
        timer.start()
        try:
            waited = store.wait(job.id, timeout=5.0)
        finally:
            timer.join()
        assert waited is job
        assert waited.terminal
        store.close()

    def test_wait_times_out_nonterminal(self, tmp_path):
        store = make_store(tmp_path)
        job = store.submit({})
        waited = store.wait(job.id, timeout=0.05)
        assert waited is job
        assert not waited.terminal
        assert store.wait("job-999999", timeout=0.01) is None
        store.close()

    def test_counts(self, tmp_path):
        store = make_store(tmp_path)
        a = store.submit({})
        store.submit({})
        store.mark_started(a.id)
        store.mark_failed(a.id, {"kind": "error"})
        assert store.counts() == {FAILED: 1, QUEUED: 1}
        store.close()


class TestJobView:
    def test_error_and_cancel_fields(self):
        job = Job("job-000007", {"x": 1})
        job.state = CANCELLED
        job.cancel_reason = "drain"
        view = job.to_dict(include_payload=True)
        assert view["cancel_reason"] == "drain"
        assert view["payload"] == {"x": 1}
        assert "result" not in view and "error" not in view
