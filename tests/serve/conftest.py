"""Shared fixtures for the serve suite.

Everything runs against the tiny model from
:func:`repro.serve.loadgen.tiny_specs` with the markov engine and
``fsync`` off -- fast enough that full submit-to-completion round
trips are unit-test material.  ``test_soak.py`` is the only module
that boots real subprocesses.
"""

import time

import pytest

from repro.serve.config import ServeConfig
from repro.serve.httpd import DesignDaemon
from repro.serve.loadgen import tiny_specs
from repro.serve.service import DesignService


@pytest.fixture(scope="session")
def tiny_payload():
    """A valid POST /v1/jobs body (fresh copy per use via dict())."""
    infrastructure, service = tiny_specs()
    return {
        "infrastructure": infrastructure,
        "service": service,
        "requirements": {
            "kind": "service",
            "throughput": 150.0,
            "max_annual_downtime_minutes": 1000.0,
        },
    }


def make_config(tmp_path, **overrides):
    defaults = dict(
        data_dir=str(tmp_path / "data"),
        workers=1,
        queue_limit=4,
        engine="markov",
        fsync=False,
        allow_test_faults=True,
        wait_budget=60.0,
        drain_grace=15.0,
    )
    defaults.update(overrides)
    return ServeConfig(**defaults)


@pytest.fixture
def make_service(tmp_path):
    """Factory for DesignService instances; drains them on teardown."""
    services = []

    def factory(**overrides):
        service = DesignService(make_config(tmp_path, **overrides))
        services.append(service)
        return service

    yield factory
    for service in services:
        service.drain(grace=10.0)


@pytest.fixture
def make_daemon(tmp_path):
    """Factory for started in-process daemons; shut down on teardown."""
    daemons = []

    def factory(**overrides):
        daemon = DesignDaemon(make_config(tmp_path, **overrides))
        daemon.start()
        daemons.append(daemon)
        return daemon

    yield factory
    for daemon in daemons:
        daemon.shutdown()


def wait_until(predicate, timeout=10.0, interval=0.02):
    """Poll until ``predicate()`` is truthy; returns its last value."""
    deadline = time.monotonic() + timeout
    value = predicate()
    while not value and time.monotonic() < deadline:
        time.sleep(interval)
        value = predicate()
    return value
