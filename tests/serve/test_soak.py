"""Soak: the daemon as a real subprocess under overload and crashes.

Three scenarios, each against ``repro serve`` booted with
``subprocess.Popen``:

* a 3x-overload storm must shed (429) without corrupting state, and
  every *accepted* job must still complete;
* ``kill -9`` mid-job followed by a restart must finish every
  accepted job exactly once (one terminal journal line per id);
* SIGTERM must drain gracefully and exit 0.

Set ``SERVE_SOAK_SECONDS`` to scale the storm up in CI; the default
keeps the module in unit-test time.
"""

import http.client
import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.serve.loadgen import ClientFaultPlan, LoadPlan, run

SRC = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                   os.pardir, os.pardir, "src")

#: Scale knob for CI soaks; the default is a smoke-sized run.
SOAK_SECONDS = float(os.environ.get("SERVE_SOAK_SECONDS", "0"))


def start_daemon(data_dir, *extra):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.abspath(SRC)
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve",
         "--data-dir", str(data_dir), "--port", "0",
         "--engine", "markov", "--no-fsync",
         "--allow-test-faults"] + list(extra),
        stdout=subprocess.PIPE, stderr=subprocess.PIPE,
        env=env, text=True)
    endpoint_path = os.path.join(str(data_dir), "endpoint.json")
    deadline = time.monotonic() + 30.0
    while time.monotonic() < deadline:
        if process.poll() is not None:
            raise AssertionError(
                "daemon died during boot:\n%s" % process.stderr.read())
        try:
            with open(endpoint_path, encoding="utf-8") as handle:
                record = json.load(handle)
            # A crashed daemon leaves its stale advertisement behind;
            # only trust the file once *this* process wrote it.
            if record.get("pid") == process.pid:
                return process, record["url"]
        except (OSError, ValueError, KeyError):
            pass
        time.sleep(0.05)
    process.kill()
    raise AssertionError("daemon never advertised its endpoint")


def stop_daemon(process, expect_code=0, grace=30.0):
    process.send_signal(signal.SIGTERM)
    try:
        stdout, stderr = process.communicate(timeout=grace)
    except subprocess.TimeoutExpired:
        process.kill()
        raise AssertionError("daemon ignored SIGTERM")
    assert process.returncode == expect_code, \
        "exit %d != %d\nstdout: %s\nstderr: %s" % (
            process.returncode, expect_code, stdout, stderr)
    return stdout


def get_json(url, path):
    parts = url.split("://", 1)[1]
    host, port = parts.split(":")
    connection = http.client.HTTPConnection(host, int(port),
                                            timeout=30)
    try:
        connection.request("GET", path)
        response = connection.getresponse()
        return response.status, json.loads(response.read())
    finally:
        connection.close()


def journal_events(data_dir):
    events = []
    with open(os.path.join(str(data_dir), "jobs.jsonl"),
              encoding="utf-8") as handle:
        for line in handle:
            if line.strip():
                events.append(json.loads(line))
    return events


@pytest.fixture
def data_dir(tmp_path):
    return tmp_path / "serve-data"


class TestOverloadBurst:
    def test_storm_sheds_and_accepted_jobs_complete(self, data_dir):
        # Capacity: 1 worker + 2 queue slots.  The storm is 3x that.
        process, url = start_daemon(data_dir, "--workers", "1",
                                    "--queue-limit", "2")
        try:
            requests = 9 + int(SOAK_SECONDS * 4)
            plan = LoadPlan(requests=requests, interval=0.0,
                            storm_at=0, storm_size=requests,
                            delay_seconds=0.4, wait_seconds=120.0,
                            seed=11)
            report = run(url, plan, ClientFaultPlan())
            assert report.sent == requests
            assert report.shed >= 1, report.to_dict()
            assert report.accepted, report.to_dict()
            assert report.client_errors == 0
            assert (len(report.accepted) + report.shed
                    == report.sent)
            # Exactly the accepted jobs reached a terminal state --
            # all completed, none lost in the storm.
            assert set(report.outcomes) == set(report.accepted)
            assert set(report.outcomes.values()) == {"completed"}

            status, health = get_json(url, "/healthz")
            assert status == 200
            assert health["status"] == "ok"
            assert health["jobs"].get("completed") \
                == len(report.accepted)
            status, metrics = get_json(url, "/metricz")
            assert metrics["counters"]["serve.shed"] == report.shed
        finally:
            stdout = stop_daemon(process)
        assert "drained; exiting 0" in stdout


class TestCrashRecovery:
    def test_kill9_then_restart_is_exactly_once(self, data_dir):
        process, url = start_daemon(data_dir, "--workers", "1")
        accepted = []
        try:
            plan = LoadPlan(requests=3, interval=0.0,
                            delay_seconds=1.5, seed=5)
            report = run(url, plan, ClientFaultPlan())
            accepted = list(report.accepted)
            assert len(accepted) == 3
            # Wait until the first job is actually mid-flight.
            deadline = time.monotonic() + 15.0
            while time.monotonic() < deadline:
                _, listing = get_json(url, "/v1/jobs")
                states = {job["id"]: job["state"]
                          for job in listing["jobs"]}
                if "running" in states.values():
                    break
                time.sleep(0.05)
            assert "running" in states.values()
        finally:
            process.kill()          # SIGKILL: no drain, no journal fix
            process.wait(timeout=30)

        # The torn daemon journaled accepts (and maybe a start), but
        # no terminal events.
        events = journal_events(data_dir)
        assert {e["event"] for e in events} <= {"accepted", "started"}

        process, url = start_daemon(data_dir, "--workers", "1")
        try:
            _, metrics = get_json(url, "/metricz")
            assert metrics["counters"]["serve.recovered"] == 3
            for job_id in accepted:
                status, job = get_json(
                    url, "/v1/jobs/%s?wait=60" % job_id)
                assert status == 200
                assert job["state"] == "completed", job
            # The job that was mid-flight when the daemon died shows
            # its second attempt.
            _, listing = get_json(url, "/v1/jobs")
            assert max(job["attempts"]
                       for job in listing["jobs"]) == 2
        finally:
            stop_daemon(process)

        # Exactly-once: one terminal journal line per accepted id.
        terminal = {}
        for event in journal_events(data_dir):
            if event["event"] in ("completed", "failed", "cancelled"):
                terminal[event["id"]] = \
                    terminal.get(event["id"], 0) + 1
        assert terminal == {job_id: 1 for job_id in accepted}


class TestGracefulDrain:
    def test_sigterm_drains_and_exits_zero(self, data_dir):
        process, url = start_daemon(data_dir)
        status, body = get_json(url, "/readyz")
        assert status == 200 and body["ready"] is True
        stdout = stop_daemon(process)
        assert "drained; exiting 0" in stdout
        # The endpoint advertisement is withdrawn on the way out.
        assert not os.path.exists(
            os.path.join(str(data_dir), "endpoint.json"))

    def test_sigterm_requeues_running_job(self, data_dir):
        process, url = start_daemon(data_dir, "--workers", "1")
        try:
            plan = LoadPlan(requests=1, delay_seconds=30.0, seed=3)
            report = run(url, plan, ClientFaultPlan())
            job_id = report.accepted[0]
            deadline = time.monotonic() + 15.0
            while time.monotonic() < deadline:
                _, job = get_json(url, "/v1/jobs/%s" % job_id)
                if job["state"] == "running":
                    break
                time.sleep(0.05)
            assert job["state"] == "running"
        finally:
            stdout = stop_daemon(process)
        assert "drained; exiting 0" in stdout
        # The running search was parked, not lost: it replays queued.
        events = journal_events(data_dir)
        assert any(event["event"] == "requeued" for event in events)
