"""The grid chaos soak: the convergence guarantee, enforced.

Acceptance bar (ISSUE 10): a seeded 30% shard-fault storm -- worker
crashes, hangs, torn journal tails, and a kill + restart mid-build --
must produce a map whose serialized JSON is byte-identical to a
fault-free single-process build, with zero false poison convictions
and every completed shard reused exactly once after the restart.

``test_kill9_subprocess_resume`` is the real thing: an actual
``kill -9`` of a ``repro map build`` subprocess mid-build, resumed by
re-running the identical command.
"""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.core.frontier import build_requirement_map
from repro.core.serialize import requirement_map_to_json
from repro.grid import (GridBuildInterrupted, GridBuilder, GridFaultPlan,
                        GridJournal, GridSpec, loads_key)

from .conftest import FAST_POLICY, no_sleep

STORM_LOADS = tuple(float(load) for load in range(100, 700, 50))


def build_under_storm(evaluator, spec, journal_path, plan,
                      max_restarts=12):
    """Run the build the way an operator would: restart after kills.

    Returns ``(map, restarts, builders)``.  Bounded because the
    journaled attempt counter rises monotonically past the storm's
    ``max_faulty_attempts``.
    """
    builders = []
    restarts = 0
    for _ in range(max_restarts):
        builder = GridBuilder(evaluator, spec,
                              journal_path=journal_path,
                              policy=FAST_POLICY, fault_plan=plan,
                              sleep=no_sleep)
        builders.append(builder)
        try:
            return builder.build(), restarts, builders
        except GridBuildInterrupted:
            restarts += 1
            # The kill fired (or a torn-kill fault hit); subsequent
            # runs must not re-kill on completion count.
            plan = GridFaultPlan(
                seed=plan.seed, fault_rate=plan.fault_rate,
                kinds=plan.kinds,
                max_faulty_attempts=plan.max_faulty_attempts,
                poison_loads=plan.poison_loads,
                kill_after_shards=None)
    pytest.fail("storm did not converge within %d restarts"
                % max_restarts)


def shard_done_counts(journal_path, grid_key):
    counts = {}
    with open(journal_path, "rb") as handle:
        for raw in handle.read().split(b"\n"):
            if not raw.strip():
                continue
            try:
                record = json.loads(raw)
            except ValueError:
                continue
            if record.get("grid") == grid_key \
                    and record.get("entry") == "shard-done":
                counts[record["loads"]] = \
                    counts.get(record["loads"], 0) + 1
    return counts


class TestStormConvergence:
    def test_30pct_storm_with_kill_is_byte_identical(
            self, evaluator, tmp_path):
        fault_free = requirement_map_to_json(
            build_requirement_map(evaluator, "web", STORM_LOADS))
        spec = GridSpec("web", STORM_LOADS, shard_size=2)
        # Seed 0's storm injects crashes, hangs, AND torn-kill tails
        # across the 6 shards (verified by enumeration); the plan's
        # kill fires on top after 2 completed shards.
        plan = GridFaultPlan(seed=0, fault_rate=0.3,
                             max_faulty_attempts=2,
                             kill_after_shards=2)
        journal_path = str(tmp_path / "grid.jsonl")
        built, restarts, builders = build_under_storm(
            evaluator, spec, journal_path, plan)

        # 1. Byte-identical to the fault-free single-process build.
        assert requirement_map_to_json(built) == fault_free

        # 2. The storm actually happened, and the kill fired.
        total_faults = sum(b.counters["shard_faults"]
                           for b in builders)
        assert total_faults >= 2
        assert restarts >= 1

        # 3. Zero false poison convictions: every fault was transient.
        assert all(b.convicted == {} for b in builders)

        # 4. Every completed shard was journaled exactly once -- a
        # resumed build reused finished shards instead of rebuilding.
        counts = shard_done_counts(journal_path, spec.key())
        assert counts == {loads_key(shard.loads): 1
                          for shard in spec.shards()}
        final = builders[-1]
        assert final.resumed is True
        assert final.counters["shards_reused"] >= 1

    def test_storm_with_one_poison_cell_convicts_it_alone(
            self, evaluator, tmp_path):
        spec = GridSpec("web", STORM_LOADS, shard_size=3)
        poison = STORM_LOADS[4]
        plan = GridFaultPlan(seed=11, fault_rate=0.3,
                             max_faulty_attempts=2,
                             poison_loads=frozenset([poison]))
        journal_path = str(tmp_path / "grid.jsonl")
        built, _, builders = build_under_storm(
            evaluator, spec, journal_path, plan)
        final = builders[-1]
        # Exactly the injected poison convicted, nothing else.
        convicted = {}
        for builder in builders:
            convicted.update(builder.convicted)
        assert set(convicted) == {poison}
        built_loads = {point.load for point in built.points}
        assert built_loads == set(STORM_LOADS) - {poison}
        status = final.status()
        assert status["state"] == "partial"
        assert status["loads_built"] == len(STORM_LOADS) - 1


class TestKill9Subprocess:
    def test_kill9_mid_build_resumes_each_shard_at_most_once(
            self, tmp_path):
        """A real SIGKILL mid-build; the re-run resumes from the
        journal and every shard is built exactly once overall."""
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [os.path.abspath("src")]
            + env.get("PYTHONPATH", "").split(os.pathsep))
        journal = str(tmp_path / "grid.jsonl")
        out = str(tmp_path / "map.json")
        command = [
            sys.executable, "-m", "repro", "map", "build",
            "--paper-ecommerce", "--app-tier-only",
            "--tier", "application", "--loads", "500:2000:500",
            "--shard-size", "1",
            "--journal", journal, "--out", out,
        ]
        victim = subprocess.Popen(command, env=env,
                                  stdout=subprocess.DEVNULL,
                                  stderr=subprocess.DEVNULL)
        try:
            # Wait for at least one durable shard completion, then
            # kill -9 mid-build.
            deadline = time.monotonic() + 120.0
            while time.monotonic() < deadline:
                if victim.poll() is not None:
                    pytest.fail("build finished before the kill; "
                                "slow the grid down")
                try:
                    with open(journal, "rb") as handle:
                        if handle.read().count(b'"shard-done"') >= 1:
                            break
                except OSError:
                    pass
                time.sleep(0.05)
            else:
                pytest.fail("no shard completed within the deadline")
            os.kill(victim.pid, signal.SIGKILL)
            victim.wait(timeout=30)
        finally:
            if victim.poll() is None:
                victim.kill()
                victim.wait(timeout=30)
        assert victim.returncode == -signal.SIGKILL

        # Same command again: resume, finish, exit 0 (complete map).
        rerun = subprocess.run(command, env=env, capture_output=True,
                               text=True, timeout=300)
        assert rerun.returncode == 0, rerun.stdout + rerun.stderr

        spec = GridSpec("application",
                        (500.0, 1000.0, 1500.0, 2000.0), shard_size=1)
        counts = shard_done_counts(journal, spec.key())
        assert counts == {loads_key(shard.loads): 1
                          for shard in spec.shards()}
        state = GridJournal.replay(journal, spec.key())
        assert len(state.done) == 4

        # And the resumed map is byte-identical to a fault-free build.
        fresh = str(tmp_path / "fresh.json")
        clean = subprocess.run(
            [sys.executable, "-m", "repro", "map", "build",
             "--paper-ecommerce", "--app-tier-only",
             "--tier", "application", "--loads", "500:2000:500",
             "--shard-size", "4", "--out", fresh],
            env=env, capture_output=True, text=True, timeout=300)
        assert clean.returncode == 0, clean.stdout + clean.stderr
        with open(out, "rb") as resumed_file:
            resumed_bytes = resumed_file.read()
        with open(fresh, "rb") as fresh_file:
            assert resumed_bytes == fresh_file.read()
