"""GridSpec / partitioning invariants."""

import pytest

from repro.errors import GridError
from repro.grid import GridSpec, partition_loads


class TestPartition:
    def test_covers_every_load_exactly_once_in_order(self):
        shards = partition_loads("web", (1.0, 2.0, 3.0, 4.0, 5.0), 2)
        assert [shard.loads for shard in shards] == \
            [(1.0, 2.0), (3.0, 4.0), (5.0,)]
        assert [shard.shard_id for shard in shards] == [0, 1, 2]
        assert all(shard.tier == "web" for shard in shards)

    def test_singleton_shards(self):
        shards = partition_loads("web", (1.0, 2.0, 3.0), 1)
        assert [shard.loads for shard in shards] == \
            [(1.0,), (2.0,), (3.0,)]

    def test_one_big_shard(self):
        shards = partition_loads("web", (1.0, 2.0), 99)
        assert [shard.loads for shard in shards] == [(1.0, 2.0)]


class TestGridSpec:
    def test_shards_honor_shard_size(self):
        spec = GridSpec("web", (1.0, 2.0, 3.0), shard_size=2)
        assert [shard.loads for shard in spec.shards()] == \
            [(1.0, 2.0), (3.0,)]

    @pytest.mark.parametrize("loads", [(), (0.0,), (-1.0,),
                                       (1.0, 1.0)])
    def test_bad_loads_rejected(self, loads):
        with pytest.raises(GridError):
            GridSpec("web", loads)

    def test_bad_shard_size_rejected(self):
        with pytest.raises(GridError):
            GridSpec("web", (1.0,), shard_size=0)

    def test_key_identifies_the_grid_not_the_partition(self):
        base = GridSpec("web", (1.0, 2.0), shard_size=1)
        assert base.key() == GridSpec("web", (1.0, 2.0),
                                      shard_size=2).key()
        assert base.key() != GridSpec("web", (1.0, 3.0)).key()
        assert base.key() != GridSpec("db", (1.0, 2.0)).key()

    def test_key_is_stable_across_int_float_spellings(self):
        assert GridSpec("web", (1, 2)).key() == \
            GridSpec("web", (1.0, 2.0)).key()
