"""MapService: sub-millisecond lookups, honest partial coverage."""

import json
import os
import time

import jsonschema
import pytest

from repro.contracts import MAP_STATUS_SCHEMA
from repro.core.frontier import build_requirement_map
from repro.core.serialize import requirement_map_to_json
from repro.errors import GridError
from repro.grid import (GridBuilder, GridFaultPlan, GridSpec,
                        MapService, served_status)
from repro.units import Duration

from .conftest import FAST_POLICY, LOADS, no_sleep


@pytest.fixture
def map_path(evaluator, tmp_path):
    space_map = build_requirement_map(evaluator, "web", LOADS)
    path = str(tmp_path / "map.json")
    with open(path, "w") as handle:
        handle.write(requirement_map_to_json(space_map))
    return path


@pytest.fixture
def partial_map_path(evaluator, tmp_path):
    """A map with the 250.0 cell convicted (unbuilt mid-grid)."""
    plan = GridFaultPlan(seed=0, fault_rate=0.0,
                         poison_loads=frozenset([250.0]))
    builder = GridBuilder(evaluator, GridSpec("web", LOADS,
                                              shard_size=2),
                          policy=FAST_POLICY, fault_plan=plan,
                          sleep=no_sleep)
    path = str(tmp_path / "partial.json")
    with open(path, "w") as handle:
        handle.write(requirement_map_to_json(builder.build()))
    return path


class TestLookup:
    def test_ok_answers_round_load_up_to_the_covering_grid_line(
            self, map_path):
        service = MapService(map_path)
        answer = service.lookup(180.0, Duration.minutes(5000))
        assert answer["answer"] == "ok"
        assert answer["grid_load"] == 250.0
        assert answer["coverage"] == 1.0
        assert answer["map_age_seconds"] >= 0.0
        design = answer["design"]
        assert design["downtime_minutes"] <= 5000
        # Cheapest qualifying frontier point, not just any.
        cheaper = [point for point
                   in service._frontiers[250.0]
                   if point["downtime_minutes"] <= 5000]
        assert design["annual_cost"] == min(
            point["annual_cost"] for point in cheaper)

    def test_infeasible_is_a_definitive_200_class_answer(
            self, map_path):
        service = MapService(map_path)
        best = min(point["downtime_minutes"]
                   for point in service._frontiers[100.0])
        answer = service.lookup(100.0,
                                Duration.minutes(best / 2.0))
        assert answer["answer"] == "infeasible"
        assert "detail" in answer

    def test_beyond_grid_is_unbuilt(self, map_path):
        answer = MapService(map_path).lookup(
            LOADS[-1] * 10, Duration.minutes(5000))
        assert answer["answer"] == "unbuilt"
        assert "beyond the grid" in answer["detail"]

    def test_unbuilt_mid_grid_cell_is_never_papered_over(
            self, partial_map_path):
        service = MapService(partial_map_path)
        # 200.0 would round up to the convicted 250.0 cell; answering
        # from 400.0 would silently skip a declared grid line.
        answer = service.lookup(200.0, Duration.minutes(5000))
        assert answer["answer"] == "unbuilt"
        assert "250" in answer["detail"]
        assert answer["coverage"] == pytest.approx(0.75)
        # Above the hole, answers resume.
        assert service.lookup(300.0,
                              Duration.minutes(5000))["answer"] == "ok"

    def test_missing_file_is_unbuilt_not_an_error(self, tmp_path):
        service = MapService(str(tmp_path / "nope.json"))
        answer = service.lookup(100.0, Duration.minutes(100))
        assert answer["answer"] == "unbuilt"
        assert service.coverage() == 0.0

    def test_nonpositive_load_is_rejected(self, map_path):
        with pytest.raises(GridError):
            MapService(map_path).lookup(0.0, Duration.minutes(1))

    def test_corrupt_map_raises_on_use_not_on_boot(self, tmp_path):
        path = str(tmp_path / "bad.json")
        with open(path, "w") as handle:
            handle.write("{not json")
        service = MapService(path)   # a daemon still boots
        with pytest.raises(GridError, match="not valid JSON"):
            service.lookup(100.0, Duration.minutes(5))
        with pytest.raises(GridError, match="not valid JSON"):
            service.status()

    def test_unsupported_version_raises(self, tmp_path):
        path = str(tmp_path / "v99.json")
        with open(path, "w") as handle:
            json.dump({"version": 99, "tier": "web", "loads": [],
                       "points": []}, handle)
        with pytest.raises(GridError, match="unsupported version"):
            MapService(path).lookup(100.0, Duration.minutes(5))


class TestReload:
    def test_rebuilt_file_is_picked_up_by_mtime(self, evaluator,
                                                map_path):
        service = MapService(map_path)
        assert service.lookup(LOADS[-1] * 2,
                              Duration.minutes(5000))["answer"] \
            == "unbuilt"
        bigger = build_requirement_map(
            evaluator, "web", LOADS + (LOADS[-1] * 2,))
        with open(map_path, "w") as handle:
            handle.write(requirement_map_to_json(bigger))
        os.utime(map_path, (time.time() + 5, time.time() + 5))
        answer = service.lookup(LOADS[-1] * 2,
                                Duration.minutes(5000))
        assert answer["answer"] == "ok"

    def test_lookup_is_submillisecond(self, map_path):
        service = MapService(map_path)
        service.lookup(180.0, Duration.minutes(5000))   # warm
        started = time.perf_counter()
        rounds = 200
        for _ in range(rounds):
            service.lookup(180.0, Duration.minutes(5000))
        mean = (time.perf_counter() - started) / rounds
        assert mean < 0.001, "mean lookup %.6fs" % mean


class TestStatus:
    def test_status_matches_the_contract(self, map_path):
        status = MapService(map_path).status()
        jsonschema.validate(status, MAP_STATUS_SCHEMA)
        assert status["state"] == "complete"
        assert status["coverage"] == 1.0

    def test_partial_and_missing_states(self, partial_map_path,
                                        tmp_path):
        partial = MapService(partial_map_path).status()
        jsonschema.validate(partial, MAP_STATUS_SCHEMA)
        assert partial["state"] == "partial"
        missing = MapService(str(tmp_path / "nope.json")).status()
        jsonschema.validate(missing, MAP_STATUS_SCHEMA)
        assert missing["state"] == "missing"

    def test_served_status_merges_the_journal(self, evaluator,
                                              tmp_path):
        spec = GridSpec("web", LOADS, shard_size=2)
        journal = str(tmp_path / "grid.jsonl")
        builder = GridBuilder(evaluator, spec, journal_path=journal,
                              policy=FAST_POLICY, sleep=no_sleep)
        space_map = builder.build()
        path = str(tmp_path / "map.json")
        with open(path, "w") as handle:
            handle.write(requirement_map_to_json(space_map))
        status, code = served_status(path, journal, spec.key())
        jsonschema.validate(status, MAP_STATUS_SCHEMA)
        assert code == 0
        assert status["journal"]["enabled"] is True
        assert status["shards"]["done"] == 2

    def test_served_status_exit_code_2_when_incomplete(self, tmp_path):
        _, code = served_status(str(tmp_path / "nope.json"))
        assert code == 2
