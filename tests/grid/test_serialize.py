"""The versioned canonical map JSON (repro.core.serialize)."""

import json

import pytest

from repro.core.frontier import build_requirement_map
from repro.core.serialize import (MAP_FORMAT_VERSION,
                                  requirement_map_from_json,
                                  requirement_map_to_dict,
                                  requirement_map_to_json)
from repro.errors import ModelError

from .conftest import LOADS


@pytest.fixture
def space_map(evaluator):
    return build_requirement_map(evaluator, "web", LOADS)


class TestCanonicalJson:
    def test_roundtrip_reserializes_byte_identically(
            self, evaluator, space_map, tiny_infra):
        text = requirement_map_to_json(space_map)
        recovered = requirement_map_from_json(text, tiny_infra)
        assert requirement_map_to_json(recovered) == text
        assert recovered.tier == space_map.tier
        assert recovered.loads == space_map.loads
        assert len(recovered.points) == len(space_map.points)

    def test_canonical_form_is_versioned_sorted_and_compact(
            self, space_map):
        text = requirement_map_to_json(space_map)
        data = json.loads(text)
        assert data["version"] == MAP_FORMAT_VERSION
        assert ": " not in text and ", " not in text
        keys = [(point["load"], -point["downtime_minutes"],
                 point["annual_cost"]) for point in data["points"]]
        assert keys == sorted(keys)

    def test_point_order_in_memory_does_not_change_the_bytes(
            self, space_map):
        from repro.core.frontier import RequirementSpaceMap
        shuffled = RequirementSpaceMap(
            space_map.tier, space_map.loads,
            tuple(reversed(space_map.points)))
        assert requirement_map_to_json(shuffled) == \
            requirement_map_to_json(space_map)

    def test_unknown_version_is_rejected(self, space_map, tiny_infra):
        data = requirement_map_to_dict(space_map)
        data["version"] = MAP_FORMAT_VERSION + 1
        with pytest.raises(ModelError, match="version"):
            requirement_map_from_json(json.dumps(data), tiny_infra)

    def test_designs_survive_the_roundtrip(self, space_map,
                                           tiny_infra):
        text = requirement_map_to_json(space_map)
        recovered = requirement_map_from_json(text, tiny_infra)
        for original, back in zip(
                sorted(space_map.points,
                       key=lambda p: (p.load, -p.downtime_minutes,
                                      p.annual_cost)),
                sorted(recovered.points,
                       key=lambda p: (p.load, -p.downtime_minutes,
                                      p.annual_cost))):
            assert back.load == original.load
            assert back.family == original.family
            assert back.annual_cost == original.annual_cost
            assert back.design.design.resource == \
                original.design.design.resource
            assert back.design.design.n_active == \
                original.design.design.n_active
