"""Grid journal durability and replay semantics."""

import json
import os

import pytest

from repro.grid import (GridJournal, lease_abandoned, loads_key)
from repro.resilience.events import GRID_JOURNAL_FAULT, DegradationLog

KEY = "grid-abc"


@pytest.fixture
def journal(tmp_path):
    return GridJournal(str(tmp_path / "grid.jsonl"), KEY)


def replay(journal):
    return GridJournal.replay(journal.path, journal.grid_key)


class TestRoundtrip:
    def test_done_shard_replays_with_its_points(self, journal):
        points = [{"load": 1.0, "annual_cost": 5.0}]
        assert journal.shard_start(0, (1.0, 2.0), 1, os.getpid(),
                                   300.0, now=100.0)
        assert journal.shard_done(0, (1.0, 2.0), points)
        state = replay(journal)
        assert state.done == {loads_key((1.0, 2.0)): points}
        assert state.abandoned == {}
        assert state.entries == 2
        assert state.skipped == 0

    def test_start_without_done_is_an_abandoned_lease(self, journal):
        journal.shard_start(3, (9.0,), 2, 4242, 60.0, now=100.0)
        state = replay(journal)
        assert state.done == {}
        record = state.abandoned[loads_key((9.0,))]
        assert record["holder"] == 4242
        assert record["attempt"] == 2
        assert record["deadline"] == 160.0

    def test_convictions_replay(self, journal):
        journal.cell_convicted(7.0, "poison")
        assert replay(journal).convicted == {7.0: "poison"}

    def test_missing_file_replays_empty(self, tmp_path):
        state = GridJournal.replay(str(tmp_path / "nope.jsonl"), KEY)
        assert state.done == {} and state.entries == 0


class TestFaultTolerance:
    def test_torn_tail_is_skipped_without_losing_prior_records(
            self, journal):
        journal.shard_done(0, (1.0,), [{"load": 1.0}])
        journal.tear_tail()
        state = replay(journal)
        assert loads_key((1.0,)) in state.done
        assert state.skipped == 1

    def test_foreign_grid_records_are_counted_not_merged(
            self, journal, tmp_path):
        other = GridJournal(journal.path, "other-grid")
        other.shard_done(0, (1.0,), [{"load": 1.0}])
        journal.shard_done(1, (2.0,), [{"load": 2.0}])
        state = replay(journal)
        assert list(state.done) == [loads_key((2.0,))]
        assert state.foreign == 1

    def test_garbage_lines_are_skipped(self, journal):
        journal.shard_done(0, (1.0,), [])
        with open(journal.path, "a") as handle:
            handle.write("not json at all\n")
            handle.write(json.dumps({"entry": "shard-done"}) + "\n")
        state = replay(journal)
        assert loads_key((1.0,)) in state.done
        assert state.skipped == 2

    def test_unwritable_journal_degrades_with_avd905(self, tmp_path):
        log = DegradationLog()
        journal = GridJournal(str(tmp_path / "no" / "dir" / "j.jsonl"),
                              KEY, log)
        assert journal.append("shard-start", shard=0) is False
        assert journal.degraded is True
        assert journal.status() == {"enabled": True, "degraded": True,
                                    "appends": 0}
        assert log.counts().get(GRID_JOURNAL_FAULT) == 1


class TestLeaseAbandoned:
    def record(self, **overrides):
        base = {"holder": 999999999, "deadline": 200.0, "attempt": 1}
        base.update(overrides)
        return base

    def test_dead_holder_is_reclaimed(self):
        abandoned, why = lease_abandoned(self.record(), now=100.0,
                                         pid_alive=lambda pid: False)
        assert abandoned and "dead" in why

    def test_live_holder_inside_deadline_is_respected(self):
        abandoned, why = lease_abandoned(self.record(), now=100.0,
                                         pid_alive=lambda pid: True)
        assert not abandoned and "still held" in why

    def test_live_holder_past_deadline_is_reclaimed(self):
        abandoned, why = lease_abandoned(self.record(), now=300.0,
                                         pid_alive=lambda pid: True)
        assert abandoned and "overran" in why

    def test_own_pid_is_an_in_process_retry(self):
        abandoned, why = lease_abandoned(
            self.record(holder=os.getpid()), now=100.0,
            pid_alive=lambda pid: True)
        assert abandoned and "own" in why

    @pytest.mark.parametrize("overrides", [{"holder": None},
                                           {"holder": "junk"},
                                           {"deadline": None},
                                           {"deadline": "junk"}])
    def test_malformed_leases_are_reclaimed(self, overrides):
        abandoned, _ = lease_abandoned(self.record(**overrides),
                                       now=100.0,
                                       pid_alive=lambda pid: True)
        assert abandoned
