"""GridBuilder: equivalence, the fault ladder, and crash-safe resume."""

import json
import os
import time

import jsonschema
import pytest

from repro.contracts import MAP_STATUS_SCHEMA
from repro.core.serialize import requirement_map_to_json
from repro.errors import GridError
from repro.grid import (GridBuildInterrupted, GridBuilder, GridFaultPlan,
                        GridPolicy, GridSpec, GridJournal, loads_key)
from repro.resilience.events import (GRID_CELL_CONVICTED,
                                     GRID_JOURNAL_FAULT,
                                     GRID_LEASE_RECLAIMED, GRID_RESUMED,
                                     GRID_SHARD_FAULT,
                                     GRID_SHARD_ISOLATED)

from .conftest import FAST_POLICY, LOADS, no_sleep


def make_builder(evaluator, tmp_path=None, loads=LOADS, shard_size=2,
                 **kwargs):
    spec = GridSpec("web", loads, shard_size=shard_size)
    journal = (str(tmp_path / "grid.jsonl") if tmp_path is not None
               else None)
    kwargs.setdefault("policy", FAST_POLICY)
    return GridBuilder(evaluator, spec, journal_path=journal,
                       sleep=no_sleep, **kwargs)


def done_counts(journal_path, grid_key):
    """shard-done records per loads-key: the reuse-exactly-once proof."""
    state = GridJournal.replay(journal_path, grid_key)
    counts = {}
    with open(journal_path, "rb") as handle:
        for raw in handle.read().split(b"\n"):
            if not raw.strip():
                continue
            try:
                record = json.loads(raw)
            except ValueError:
                continue
            if record.get("grid") == grid_key \
                    and record.get("entry") == "shard-done":
                key = record["loads"]
                counts[key] = counts.get(key, 0) + 1
    assert set(counts) >= set(state.done)
    return counts


class TestEquivalence:
    @pytest.mark.parametrize("shard_size", [1, 2, len(LOADS)])
    def test_any_shard_size_matches_the_unsharded_map(
            self, evaluator, baseline_json, shard_size):
        built = make_builder(evaluator, shard_size=shard_size).build()
        assert requirement_map_to_json(built) == baseline_json

    def test_journaled_build_is_identical_too(self, evaluator,
                                              baseline_json, tmp_path):
        built = make_builder(evaluator, tmp_path).build()
        assert requirement_map_to_json(built) == baseline_json


class TestFaultLadder:
    def test_transient_storm_retries_and_converges(
            self, evaluator, baseline_json):
        plan = GridFaultPlan(seed=0, fault_rate=1.0, kinds=("crash",),
                             max_faulty_attempts=1)
        builder = make_builder(evaluator, fault_plan=plan)
        built = builder.build()
        assert requirement_map_to_json(built) == baseline_json
        assert builder.counters["shard_faults"] == 2  # one per shard
        assert builder.convicted == {}
        assert builder.log.counts()[GRID_SHARD_FAULT] == 2

    def test_storm_never_convicts_a_healthy_cell(self, evaluator,
                                                 baseline_json):
        # Every attempt up to the shard-retry budget faults; isolation
        # then re-runs cells individually, where they succeed.
        plan = GridFaultPlan(seed=0, fault_rate=1.0, kinds=("crash",),
                             max_faulty_attempts=FAST_POLICY
                             .shard_retries + 1)
        builder = make_builder(evaluator, fault_plan=plan)
        built = builder.build()
        assert requirement_map_to_json(built) == baseline_json
        assert builder.convicted == {}
        assert builder.counters["shards_isolated"] == 2
        assert builder.log.counts()[GRID_SHARD_ISOLATED] == 2

    def test_poison_cell_is_convicted_alone(self, evaluator):
        plan = GridFaultPlan(seed=0, fault_rate=0.0,
                             poison_loads=frozenset([250.0]))
        builder = make_builder(evaluator, fault_plan=plan)
        built = builder.build()
        assert sorted(builder.convicted) == [250.0]
        built_loads = {point.load for point in built.points}
        # Shard-mate 100.0 (and every other load) survives.
        assert built_loads == {100.0, 400.0, 550.0}
        counts = builder.log.counts()
        assert counts[GRID_CELL_CONVICTED] == 1
        assert builder.counters["shards_isolated"] == 1
        status = builder.status()
        assert status["state"] == "partial"
        assert status["coverage"] == pytest.approx(0.75)
        assert status["convicted_cells"][0]["load"] == 250.0

    def test_status_is_schema_valid_in_every_state(self, evaluator):
        builder = make_builder(evaluator)
        jsonschema.validate(builder.status(), MAP_STATUS_SCHEMA)
        builder.build()
        status = builder.status()
        jsonschema.validate(status, MAP_STATUS_SCHEMA)
        assert status["state"] == "complete"
        assert status["coverage"] == 1.0


class TestResume:
    def test_kill_and_restart_reuses_each_finished_shard_once(
            self, evaluator, baseline_json, tmp_path):
        plan = GridFaultPlan(seed=0, fault_rate=0.0,
                             kill_after_shards=1)
        first = make_builder(evaluator, tmp_path, fault_plan=plan)
        with pytest.raises(GridBuildInterrupted):
            first.build()
        second = make_builder(evaluator, tmp_path)
        built = second.build()
        assert requirement_map_to_json(built) == baseline_json
        assert second.resumed is True
        assert second.counters["shards_reused"] == 1
        assert GRID_RESUMED in second.log.counts()
        counts = done_counts(str(tmp_path / "grid.jsonl"),
                             second.spec.key())
        assert counts == {loads_key(shard.loads): 1
                          for shard in second.spec.shards()}

    def test_torn_tail_kill_resumes_clean(self, evaluator,
                                          baseline_json, tmp_path):
        plan = GridFaultPlan(seed=3, fault_rate=1.0,
                             kinds=("torn-kill",),
                             max_faulty_attempts=1)
        # Every shard's first attempt tears the tail and kills the
        # build; each restart resumes, reclaims the abandoned lease,
        # and gets one shard further.  The storm provably dies out
        # because the journaled attempt counter keeps rising.
        built = None
        restarts = 0
        reclaimed = 0
        for _ in range(8):
            builder = make_builder(evaluator, tmp_path,
                                   fault_plan=plan)
            try:
                built = builder.build()
                break
            except GridBuildInterrupted:
                restarts += 1
        else:
            pytest.fail("torn-kill storm did not die out")
        reclaimed = builder.counters["leases_reclaimed"]
        assert requirement_map_to_json(built) == baseline_json
        assert restarts == 2    # one per shard
        assert reclaimed >= 1
        assert GRID_LEASE_RECLAIMED in builder.log.counts()

    def test_live_foreign_lease_is_not_stolen(self, evaluator,
                                              tmp_path):
        journal = GridJournal(str(tmp_path / "grid.jsonl"),
                              GridSpec("web", LOADS,
                                       shard_size=2).key())
        # A lease held by a live pid that is not us, far from expiry.
        journal.shard_start(0, LOADS[:2], 1, holder=os.getppid(),
                            lease_seconds=3600.0, now=time.time())
        builder = make_builder(evaluator, tmp_path)
        with pytest.raises(GridError, match="still leased"):
            builder.build()

    def test_resharding_rebuilds_moved_shards(self, evaluator,
                                              baseline_json, tmp_path):
        make_builder(evaluator, tmp_path, shard_size=3).build()
        rebuilt = make_builder(evaluator, tmp_path, shard_size=2)
        built = rebuilt.build()
        assert requirement_map_to_json(built) == baseline_json
        assert rebuilt.counters["shards_reused"] == 0

    def test_convictions_are_honored_across_restarts(
            self, evaluator, tmp_path):
        plan = GridFaultPlan(seed=0, fault_rate=0.0,
                             poison_loads=frozenset([250.0]))
        make_builder(evaluator, tmp_path, fault_plan=plan).build()
        second = make_builder(evaluator, tmp_path)
        built = second.build()
        assert 250.0 in second.convicted
        assert 250.0 not in {point.load for point in built.points}
        assert second.counters["shards_reused"] >= 1


class TestDegradedJournal:
    def test_unwritable_journal_degrades_but_the_build_finishes(
            self, evaluator, baseline_json, tmp_path):
        spec = GridSpec("web", LOADS, shard_size=2)
        builder = GridBuilder(
            evaluator, spec, policy=FAST_POLICY, sleep=no_sleep,
            journal_path=str(tmp_path / "no" / "dir" / "grid.jsonl"))
        built = builder.build()
        assert requirement_map_to_json(built) == baseline_json
        assert builder.journal.degraded is True
        assert builder.log.counts()[GRID_JOURNAL_FAULT] >= 1
        assert builder.status()["journal"]["degraded"] is True
