"""Shared fixtures for the grid suite: the tiny model, fast builds.

Everything runs on the synthetic one-tier model from the top-level
conftest (markov engine), where a full requirement-space map over a
handful of loads takes well under a second -- so the chaos storms in
``test_chaos.py`` are unit-test material.  ``no_sleep`` keeps the
backoff schedule deterministic without wall-clock pauses.
"""

import pytest

from repro.availability import get_engine
from repro.core import DesignEvaluator
from repro.core.frontier import build_requirement_map
from repro.core.serialize import requirement_map_to_json
from repro.grid import GridPolicy

#: The default load grid the suite builds over.
LOADS = (100.0, 250.0, 400.0, 550.0)

#: Retry knobs for tests: real ladder, no wall-clock backoff pauses.
FAST_POLICY = GridPolicy(lease_seconds=300.0, shard_retries=2,
                         cell_retries=2)


def no_sleep(_seconds: float) -> None:
    pass


@pytest.fixture
def evaluator(tiny_infra, tiny_service):
    return DesignEvaluator(tiny_infra, tiny_service,
                           get_engine("markov"))


@pytest.fixture
def baseline_json(evaluator):
    """The unsharded, fault-free map's canonical JSON (the oracle)."""
    return requirement_map_to_json(
        build_requirement_map(evaluator, "web", LOADS))
