"""Tests for the expression tokenizer."""

import pytest

from repro.errors import ExpressionError
from repro.expr.lexer import tokenize


def kinds(source):
    return [token.kind for token in tokenize(source)]


def texts(source):
    return [token.text for token in tokenize(source)][:-1]  # drop end


class TestNumbers:
    def test_integer(self):
        tokens = tokenize("42")
        assert tokens[0].kind == "number"
        assert tokens[0].value == 42.0

    def test_float(self):
        assert tokenize("0.004")[0].value == 0.004

    def test_leading_dot(self):
        assert tokenize(".5")[0].value == 0.5

    def test_exponent(self):
        assert tokenize("1e3")[0].value == 1000.0
        assert tokenize("2.5E-2")[0].value == 0.025

    def test_percent_literal(self):
        token = tokenize("100%")[0]
        assert token.value == 1.0
        assert token.text == "100%"

    def test_percent_fraction(self):
        assert tokenize("2.5%")[0].value == pytest.approx(0.025)


class TestNamesAndKeywords:
    def test_identifier(self):
        token = tokenize("cpi")[0]
        assert token.kind == "name"
        assert token.text == "cpi"

    def test_underscore_names(self):
        assert tokenize("storage_location")[0].text == "storage_location"

    def test_keywords(self):
        assert tokenize("and")[0].kind == "keyword"
        assert tokenize("or")[0].kind == "keyword"
        assert tokenize("not")[0].kind == "keyword"
        assert tokenize("if")[0].kind == "keyword"
        assert tokenize("else")[0].kind == "keyword"

    def test_name_with_digits(self):
        assert tokenize("x2")[0].text == "x2"


class TestOperators:
    @pytest.mark.parametrize("op", ["+", "-", "*", "/", "^", "(", ")", ",",
                                    "?", ":", "<", ">", "<=", ">=", "==",
                                    "!=", "&&", "||", "!"])
    def test_single_operator(self, op):
        tokens = tokenize(op)
        assert tokens[0].kind == "op"
        assert tokens[0].text == op

    def test_two_char_ops_not_split(self):
        assert texts("a<=b") == ["a", "<=", "b"]
        assert texts("a>=b") == ["a", ">=", "b"]
        assert texts("a!=b") == ["a", "!=", "b"]

    def test_expression_stream(self):
        assert texts("max(10/cpi,100%)") == \
            ["max", "(", "10", "/", "cpi", ",", "100%", ")"]


class TestStructure:
    def test_end_sentinel(self):
        assert kinds("1 + 2")[-1] == "end"

    def test_whitespace_ignored(self):
        assert texts("  1   +\t2 ") == ["1", "+", "2"]

    def test_positions_recorded(self):
        tokens = tokenize("ab + cd")
        assert tokens[0].position == 0
        assert tokens[1].position == 3
        assert tokens[2].position == 5

    def test_rejects_unknown_character(self):
        with pytest.raises(ExpressionError):
            tokenize("a @ b")

    def test_empty_source(self):
        tokens = tokenize("")
        assert len(tokens) == 1
        assert tokens[0].kind == "end"
