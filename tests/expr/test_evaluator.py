"""Tests for expression evaluation semantics."""

import pytest

from repro.errors import ExpressionError
from repro.expr import Expression


def ev(source, **env):
    return Expression(source)(**env)


class TestArithmetic:
    def test_basic_operations(self):
        assert ev("1+2") == 3.0
        assert ev("7-2") == 5.0
        assert ev("3*4") == 12.0
        assert ev("10/4") == 2.5
        assert ev("2^10") == 1024.0

    def test_unary_minus(self):
        assert ev("-5") == -5.0
        assert ev("--5") == 5.0
        assert ev("3 - -2") == 5.0

    def test_percent(self):
        assert ev("100%") == 1.0
        assert ev("250%") == 2.5

    def test_division_by_zero_raises(self):
        with pytest.raises(ExpressionError):
            ev("1/0")

    def test_variables_bound(self):
        assert ev("200*n", n=5) == 1000.0

    def test_unbound_variable_raises(self):
        with pytest.raises(ExpressionError):
            ev("n + 1")


class TestComparisonsAndLogic:
    def test_comparisons(self):
        assert ev("1 < 2") == 1.0
        assert ev("2 < 1") == 0.0
        assert ev("2 <= 2") == 1.0
        assert ev("3 > 2") == 1.0
        assert ev("2 >= 3") == 0.0
        assert ev("2 == 2") == 1.0
        assert ev("2 != 2") == 0.0

    def test_and_or_not(self):
        assert ev("1 and 1") == 1.0
        assert ev("1 and 0") == 0.0
        assert ev("0 or 1") == 1.0
        assert ev("not 0") == 1.0
        assert ev("not 3") == 0.0

    def test_symbolic_forms(self):
        assert ev("1 && 1") == 1.0
        assert ev("0 || 1") == 1.0
        assert ev("!0") == 1.0

    def test_short_circuit_guards_division(self):
        # The right side would divide by zero; 'and' must not evaluate it.
        assert ev("x != 0 and 1/x > 0", x=0) == 0.0
        assert ev("x == 0 or 1/x > 0", x=0) == 1.0


class TestConditionals:
    def test_ternary_selects_branch(self):
        assert ev("n < 30 ? 1 : 2", n=10) == 1.0
        assert ev("n < 30 ? 1 : 2", n=30) == 2.0

    def test_untaken_branch_not_evaluated(self):
        assert ev("x == 0 ? 99 : 1/x", x=0) == 99.0

    def test_python_style(self):
        assert ev("1 if n < 30 else 2", n=29) == 1.0


class TestFunctions:
    def test_max_min(self):
        assert ev("max(1, 5, 3)") == 5.0
        assert ev("min(4, 2)") == 2.0

    def test_math_functions(self):
        assert ev("sqrt(16)") == 4.0
        assert ev("exp(0)") == 1.0
        assert ev("log(exp(1))") == pytest.approx(1.0)
        assert ev("log2(8)") == 3.0
        assert ev("floor(2.7)") == 2.0
        assert ev("ceil(2.2)") == 3.0
        assert ev("abs(-4)") == 4.0
        assert ev("clamp(5, 0, 3)") == 3.0

    def test_unknown_function_rejected_at_compile(self):
        with pytest.raises(ExpressionError):
            Expression("frobnicate(1)")

    def test_arity_checked_at_compile(self):
        with pytest.raises(ExpressionError):
            Expression("sqrt(1, 2)")
        with pytest.raises(ExpressionError):
            Expression("pow(1)")

    def test_domain_errors_wrapped(self):
        with pytest.raises(ExpressionError):
            ev("sqrt(-1)")
        with pytest.raises(ExpressionError):
            ev("log(0)")


class TestTable1Forms:
    """The exact expressions used for the paper's Table 1."""

    def test_linear_tier_performance(self):
        assert ev("200*n", n=5) == 1000.0
        assert ev("1600*n", n=1) == 1600.0

    def test_sublinear_compute_performance(self):
        assert ev("(10*n)/(1+0.004*n)", n=100) == pytest.approx(714.2857,
                                                                rel=1e-4)
        assert ev("(100*n)/(1+0.004*n)", n=10) == pytest.approx(961.538,
                                                                rel=1e-4)

    def test_checkpoint_overhead_central_small_n(self):
        source = "n < 30 ? max(10/cpi, 100%) : max(n/(3*cpi), 100%)"
        assert ev(source, n=10, cpi=5) == 2.0       # 10/5
        assert ev(source, n=10, cpi=60) == 1.0       # saturates at 100%

    def test_checkpoint_overhead_central_large_n(self):
        source = "n < 30 ? max(10/cpi, 100%) : max(n/(3*cpi), 100%)"
        assert ev(source, n=60, cpi=5) == 4.0        # 60/(3*5)
        assert ev(source, n=30, cpi=10) == 1.0       # continuous at n=30

    def test_checkpoint_overhead_peer(self):
        assert ev("max(20/cpi, 100%)", cpi=5) == 4.0
        assert ev("max(20/cpi, 100%)", cpi=40) == 1.0


class TestExpressionObject:
    def test_variables_reported(self):
        assert Expression("a*b + max(c, 1)").variables == {"a", "b", "c"}

    def test_partial_binding(self):
        expression = Expression("a + b")
        bound = expression.partial(a=10)
        assert bound.variables == {"b"}
        assert bound(b=5) == 15.0

    def test_partial_can_be_overridden(self):
        bound = Expression("a + b").partial(a=10)
        assert bound(a=1, b=1) == 2.0

    def test_evaluate_with_mapping(self):
        assert Expression("x*2").evaluate({"x": 3}) == 6.0

    def test_repr_mentions_source(self):
        assert "200*n" in repr(Expression("200*n"))
