"""Tests for the expression parser (grammar and precedence)."""

import pytest

from repro.errors import ExpressionError
from repro.expr import (Binary, Call, Conditional, Number, Unary, Variable,
                        free_variables, parse)


class TestPrimaries:
    def test_number(self):
        assert parse("3.5") == Number(3.5)

    def test_variable(self):
        assert parse("n") == Variable("n")

    def test_true_false(self):
        assert parse("true") == Number(1.0)
        assert parse("false") == Number(0.0)

    def test_parenthesized(self):
        assert parse("(n)") == Variable("n")

    def test_call_no_args_rejected_by_arity(self):
        # max() parses but fails the compile-time arity check in
        # Expression; raw parse() allows it structurally.
        node = parse("max(1)")
        assert isinstance(node, Call)

    def test_call_multiple_args(self):
        node = parse("max(a, b, c)")
        assert node == Call("max", (Variable("a"), Variable("b"),
                                    Variable("c")))


class TestPrecedence:
    def test_multiplication_binds_tighter_than_addition(self):
        assert parse("1+2*3") == Binary(
            "+", Number(1.0), Binary("*", Number(2.0), Number(3.0)))

    def test_left_associativity_subtraction(self):
        assert parse("10-3-2") == Binary(
            "-", Binary("-", Number(10.0), Number(3.0)), Number(2.0))

    def test_division_left_associative(self):
        assert parse("8/4/2") == Binary(
            "/", Binary("/", Number(8.0), Number(4.0)), Number(2.0))

    def test_power_right_associative(self):
        assert parse("2^3^2") == Binary(
            "^", Number(2.0), Binary("^", Number(3.0), Number(2.0)))

    def test_power_binds_tighter_than_unary_minus(self):
        # -2^2 parses as -(2^2)
        assert parse("-2^2") == Unary(
            "-", Binary("^", Number(2.0), Number(2.0)))

    def test_parentheses_override(self):
        assert parse("(1+2)*3") == Binary(
            "*", Binary("+", Number(1.0), Number(2.0)), Number(3.0))

    def test_comparison_binds_looser_than_arithmetic(self):
        node = parse("n+1 < 30")
        assert node == Binary("<", Binary("+", Variable("n"), Number(1.0)),
                              Number(30.0))

    def test_and_binds_tighter_than_or(self):
        node = parse("a or b and c")
        assert node == Binary("or", Variable("a"),
                              Binary("and", Variable("b"), Variable("c")))


class TestConditionals:
    def test_c_style_ternary(self):
        node = parse("n < 30 ? 1 : 2")
        assert isinstance(node, Conditional)
        assert node.if_true == Number(1.0)
        assert node.if_false == Number(2.0)

    def test_python_style_conditional(self):
        node = parse("1 if n < 30 else 2")
        assert isinstance(node, Conditional)
        assert node.if_true == Number(1.0)
        assert node.if_false == Number(2.0)

    def test_nested_ternary_right_associative(self):
        node = parse("a ? 1 : b ? 2 : 3")
        assert isinstance(node.if_false, Conditional)

    def test_table1_expression_parses(self):
        parse("n < 30 ? max(10/cpi, 100%) : max(n/(3*cpi), 100%)")


class TestErrors:
    @pytest.mark.parametrize("bad", [
        "", "   ", "1 +", "* 2", "max(1,", "(1", "1)", "a ? 1",
        "a ? 1 : ", "1 if a", "1 2", "+",
    ])
    def test_rejects_malformed(self, bad):
        with pytest.raises(ExpressionError):
            parse(bad)

    def test_error_carries_position(self):
        with pytest.raises(ExpressionError) as info:
            parse("1 + + 2")
        assert info.value.position >= 0


class TestFreeVariables:
    def test_simple(self):
        assert free_variables(parse("a + b*c")) == {"a", "b", "c"}

    def test_none(self):
        assert free_variables(parse("1 + 2")) == frozenset()

    def test_inside_calls_and_conditionals(self):
        node = parse("x < 1 ? max(y, 2) : z")
        assert free_variables(node) == {"x", "y", "z"}

    def test_function_names_not_variables(self):
        assert free_variables(parse("max(1, 2)")) == frozenset()
