"""Tests for compile-time constant folding."""

import pytest

from repro.errors import ExpressionError
from repro.expr import Expression, Number, parse
from repro.expr.optimizer import fold_constants


def folded(source):
    return fold_constants(parse(source))


class TestFolding:
    def test_arithmetic_folds(self):
        assert folded("1 + 2 * 3") == Number(7.0)
        assert folded("2^10") == Number(1024.0)
        assert folded("-(4/2)") == Number(-2.0)

    def test_function_calls_fold(self):
        assert folded("max(10/5, 100%)") == Number(2.0)
        assert folded("sqrt(16) + min(1, 2)") == Number(5.0)

    def test_variables_block_folding(self):
        node = folded("n * 2")
        assert node != Number(2.0)
        assert Expression("n * 2")(n=3) == 6.0

    def test_partial_folding_inside(self):
        """Constant subtrees fold even when the whole tree cannot."""
        node = folded("n + (2 * 3)")
        # The right child is now a literal 6.
        assert Number(6.0) in node.children()

    def test_constant_conditional_picks_branch(self):
        assert folded("1 < 2 ? 10 : n") == Number(10.0)
        assert folded("1 > 2 ? n : 20") == Number(20.0)

    def test_variable_conditional_kept(self):
        node = folded("n < 30 ? 1 : 2")
        assert node != Number(1.0)
        assert node != Number(2.0)

    def test_short_circuit_left_constant(self):
        assert folded("0 and n") == Number(0.0)
        assert folded("1 or n") == Number(1.0)

    def test_short_circuit_preserves_truthiness(self):
        expression = Expression("1 and n")
        assert expression(n=0) == 0.0
        assert expression(n=7) == 1.0
        expression = Expression("0 or n")
        assert expression(n=0) == 0.0
        assert expression(n=7) == 1.0

    def test_division_by_zero_not_folded(self):
        """A folding that would raise is left to raise at run time."""
        node = folded("1/0")
        assert not isinstance(node, Number)
        with pytest.raises(ExpressionError):
            Expression("1/0")()

    def test_guarded_division_stays_guarded(self):
        expression = Expression("x == 0 ? 99 : 1/x")
        assert expression(x=0) == 99.0
        assert expression(x=4) == 0.25


class TestSemanticsPreserved:
    TABLE1 = [
        "200*n",
        "(10*n)/(1+0.004*n)",
        "n < 30 ? max(10/cpi, 100%) : max(n/(3*cpi), 100%)",
        "max(20/cpi, 100%)",
    ]

    @pytest.mark.parametrize("source", TABLE1)
    def test_optimized_matches_unoptimized(self, source):
        optimized = Expression(source, optimize=True)
        plain = Expression(source, optimize=False)
        for n in (1, 10, 29, 30, 31, 100):
            for cpi in (0.5, 5.0, 60.0):
                env = {name: {"n": n, "cpi": cpi}[name]
                       for name in plain.variables}
                assert optimized.evaluate(env) == plain.evaluate(env)

    def test_variables_never_grow(self):
        for source in self.TABLE1:
            optimized = Expression(source, optimize=True)
            plain = Expression(source, optimize=False)
            assert optimized.variables <= plain.variables

    def test_fully_constant_expression(self):
        expression = Expression("max(1, 2) * 3 + 100%")
        assert expression.variables == frozenset()
        assert expression() == 7.0
