"""Tests for the expression pretty-printer (parse round trips)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.expr import parse
from repro.expr.printer import to_source


def roundtrips(source):
    node = parse(source)
    printed = to_source(node)
    assert parse(printed) == node, (source, printed)
    return printed


class TestBasics:
    @pytest.mark.parametrize("source", [
        "1", "1.5", "n", "200*n", "1+2*3", "(1+2)*3",
        "10-3-2", "8/4/2", "2^3^2", "-x", "--x", "-2^2",
        "max(10/cpi, 100%)", "min(a, b, c)",
        "n < 30", "a <= b", "a == b", "a != b",
        "a and b or c", "not a", "not (a and b)",
        "n < 30 ? 1 : 2",
        "n < 30 ? max(10/cpi, 100%) : max(n/(3*cpi), 100%)",
        "a ? 1 : b ? 2 : 3",
        "(a ? 1 : 2) + 3",
        "sqrt(x) + exp(-x)",
    ])
    def test_named_cases_roundtrip(self, source):
        roundtrips(source)

    def test_integers_printed_clean(self):
        assert to_source(parse("2.0 * n")) == "2 * n"

    def test_percent_folds_to_fraction(self):
        # 100% lexes to 1.0; the printer has no percent syntax.
        assert to_source(parse("100%")) == "1"

    def test_associativity_preserved(self):
        # (10-3)-2 vs 10-(3-2) must print differently.
        left = to_source(parse("10-3-2"))
        import repro.expr as expr
        right_tree = expr.Binary("-", expr.Number(10.0),
                                 expr.Binary("-", expr.Number(3.0),
                                             expr.Number(2.0)))
        right = to_source(right_tree)
        assert left != right
        assert parse(right) == right_tree

    def test_power_right_assoc_preserved(self):
        import repro.expr as expr
        left_tree = expr.Binary("^", expr.Binary("^", expr.Number(2.0),
                                                 expr.Number(3.0)),
                                expr.Number(2.0))
        printed = to_source(left_tree)
        assert parse(printed) == left_tree


@st.composite
def random_trees(draw, depth=0):
    import repro.expr as expr
    if depth >= 4 or draw(st.integers(0, 2)) == 0:
        if draw(st.booleans()):
            # The parser never yields negative literals (it builds a
            # unary minus instead), so the structural round-trip
            # property is over non-negative leaves; negative literals
            # (from constant folding) round-trip semantically -- see
            # test_negative_literal_semantic_roundtrip.
            return expr.Number(float(draw(st.integers(0, 50))))
        return expr.Variable(draw(st.sampled_from(["a", "b", "n",
                                                   "cpi"])))
    kind = draw(st.integers(0, 4))
    if kind == 0:
        op = draw(st.sampled_from(["+", "-", "*", "/", "^", "<", "<=",
                                   ">", ">=", "==", "!=", "and", "or"]))
        return expr.Binary(op, draw(random_trees(depth=depth + 1)),
                           draw(random_trees(depth=depth + 1)))
    if kind == 1:
        op = draw(st.sampled_from(["-", "not"]))
        return expr.Unary(op, draw(random_trees(depth=depth + 1)))
    if kind == 2:
        name = draw(st.sampled_from(["max", "min"]))
        count = draw(st.integers(1, 3))
        return expr.Call(name, tuple(
            draw(random_trees(depth=depth + 1)) for _ in range(count)))
    return expr.Conditional(draw(random_trees(depth=depth + 1)),
                            draw(random_trees(depth=depth + 1)),
                            draw(random_trees(depth=depth + 1)))


class TestPropertyRoundTrip:
    @given(random_trees())
    @settings(max_examples=300, deadline=None)
    def test_print_parse_identity(self, tree):
        assert parse(to_source(tree)) == tree

    def test_negative_literal_semantic_roundtrip(self):
        from repro.expr import Number, evaluate
        for value in (-1.0, -2.5, -100.0):
            printed = to_source(Number(value))
            assert evaluate(parse(printed), {}) == value

    def test_folded_expression_roundtrips_semantically(self):
        from repro.expr import Expression
        optimized = Expression("0 - 1 + n")  # folds to a negative leaf
        printed = to_source(optimized.node)
        again = Expression(printed, optimize=False)
        for n in (-3.0, 0.0, 7.5):
            assert again(n=n) == optimized(n=n)
