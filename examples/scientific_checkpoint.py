#!/usr/bin/env python3
"""The paper's scientific-application example (Fig. 7).

For a sweep of job-execution-time requirements, find the optimal
design: resource type (cheap machineA cluster vs big machineB nodes),
resource and spare counts, checkpoint interval, and checkpoint storage
location (central file server vs peer nodes).

Run:  python examples/scientific_checkpoint.py
"""

from repro import Aved, Duration, JobRequirements, SearchLimits
from repro.core.families import checkpoint_settings
from repro.errors import InfeasibleError
from repro.spec.paper import paper_infrastructure, scientific_service

REQUIREMENTS_HOURS = [2, 5, 10, 20, 50, 100, 200, 500, 1000]


def main():
    # The paper fixes the maintenance contract at bronze for this
    # example "to avoid overloading the graphs"; we do the same.
    limits = SearchLimits(
        spare_policy="cold", max_redundancy=12,
        fixed_settings={"maintenanceA": {"level": "bronze"},
                        "maintenanceB": {"level": "bronze"}})
    engine = Aved(paper_infrastructure(), scientific_service(),
                  limits=limits)

    header = ("%9s  %-8s %7s %6s  %-10s %-8s %12s %12s"
              % ("deadline", "resource", "active", "spares",
                 "cpi", "storage", "job time", "annual cost"))
    print(header)
    print("-" * len(header))

    for hours in REQUIREMENTS_HOURS:
        try:
            outcome = engine.design(JobRequirements(Duration.hours(hours)))
        except InfeasibleError:
            print("%8dh  no feasible design in the modeled space" % hours)
            continue
        tier = outcome.design.tiers[0]
        checkpoint = checkpoint_settings(tier)
        print("%8dh  %-8s %7d %6d  %-10s %-8s %11.1fh %12s"
              % (hours, tier.resource, tier.n_active, tier.n_spare,
                 checkpoint.settings["checkpoint_interval"].format(),
                 checkpoint.settings["storage_location"],
                 outcome.evaluation.job_time.expected_time.as_hours,
                 "$" + format(round(outcome.annual_cost), ",d")))

    print()
    print("trends to compare with the paper's Fig. 7:")
    print("  * machineB (rI) at tight deadlines, machineA (rH) when "
          "more time is tolerated;")
    print("  * the resource count falls as the deadline relaxes;")
    print("  * spares appear once bronze-contract repairs (38h) would "
          "otherwise idle the whole tier;")
    print("  * checkpoint storage flips from peer to central as the "
          "cluster shrinks (central bottleneck).")


if __name__ == "__main__":
    main()
