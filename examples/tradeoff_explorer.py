#!/usr/bin/env python3
"""Cost/availability/performance tradeoffs (the paper's Fig. 8).

For several load levels, plot (as text) the *extra* annual cost of
meeting a downtime requirement, relative to the cheapest design that
merely carries the load.  The paper's point: sometimes a big downtime
improvement is nearly free; sometimes relaxing the requirement slightly
saves a lot of money.

Run:  python examples/tradeoff_explorer.py
"""

from repro import SearchLimits
from repro.core import DesignEvaluator, build_requirement_map
from repro.model import ServiceModel
from repro.spec.paper import ecommerce_service, paper_infrastructure

LOADS = [400, 800, 1600, 3200]
DOWNTIME_MINUTES = [1000, 300, 100, 30, 10, 3, 1, 0.3, 0.1]


def main():
    infrastructure = paper_infrastructure()
    service = ServiceModel(
        "app-tier", [ecommerce_service().tier("application")])
    evaluator = DesignEvaluator(infrastructure, service)
    req_map = build_requirement_map(
        evaluator, "application", loads=LOADS,
        limits=SearchLimits(max_redundancy=4))

    print("extra annual cost to reach a downtime level "
          "(vs the cheapest load-carrying design)")
    header = "%10s" + "%12s" * len(LOADS)
    print(header % (("downtime",) + tuple("load %d" % l for l in LOADS)))
    curves = {load: dict(req_map.extra_cost_curve(load, DOWNTIME_MINUTES))
              for load in LOADS}
    for minutes in DOWNTIME_MINUTES:
        row = ["%8.4g m" % minutes]
        for load in LOADS:
            extra = curves[load][minutes]
            row.append("%12s" % ("-" if extra is None
                                 else "$" + format(round(extra), ",d")))
        print("".join(row))

    print()
    print("baseline (no availability requirement) costs:")
    for load in LOADS:
        print("  load %5d: $%s/yr"
              % (load, format(round(req_map.baseline_cost(load)), ",d")))

    # The dual question: what does a fixed budget buy?
    from repro.core import TierSearch
    search = TierSearch(evaluator, SearchLimits(max_redundancy=4))
    print()
    print("best availability a budget buys (load 1600):")
    for budget in (38_000, 42_000, 48_000, 60_000):
        best = search.best_within_budget("application", 1600,
                                         float(budget))
        if best is None:
            print("  $%s: cannot even carry the load"
                  % format(budget, ",d"))
            continue
        print("  $%s buys %-52s %8.2f min/yr"
              % (format(budget, ",d"), best.design.describe()[:52],
                 best.downtime_minutes))

    # A cheap ASCII rendering of the Fig. 8 curves.
    print()
    print("extra cost vs downtime (columns: looser -> tighter):")
    peak = max(extra for curve in curves.values()
               for extra in curve.values() if extra is not None)
    for load in LOADS:
        bars = []
        for minutes in DOWNTIME_MINUTES:
            extra = curves[load][minutes]
            if extra is None:
                bars.append("x")
            else:
                bars.append(str(min(9, int(10 * extra / (peak + 1e-9)))))
        print("  load %5d: %s" % (load, " ".join(bars)))


if __name__ == "__main__":
    main()
