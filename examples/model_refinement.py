#!/usr/bin/env python3
"""Closing the monitoring loop: refine guessed MTBFs from observation.

The paper admits its software failure rates "were estimated based on
the authors' intuition" and proposes (section 7) integrating Aved with
online monitoring to refine its models.  This example plays that loop
end to end:

1. the operator *declares* a model with a wrong software MTBF;
2. reality (played by the discrete-event simulator running the *true*
   model) produces a year's worth of failure observations;
3. MTBF estimates with confidence intervals are fitted from the
   observations, the declared model is refined, and the design engine
   re-runs -- showing how the optimal design shifts once the model
   matches reality.

Run:  python examples/model_refinement.py
"""

from repro.availability import (MarkovEngine, estimates_from_simulation,
                                refine_modes, simulate_tier)
from repro.core import DesignEvaluator, SearchLimits, TierDesign, TierSearch
from repro.model import MechanismConfig, ServiceModel
from repro.spec.paper import ecommerce_service, paper_infrastructure
from repro.units import Duration


def main():
    infrastructure = paper_infrastructure()
    service = ServiceModel(
        "app-tier", [ecommerce_service().tier("application")])
    evaluator = DesignEvaluator(infrastructure, service)
    bronze = MechanismConfig(infrastructure.mechanism("maintenanceA"),
                             {"level": "bronze"})

    # The declared model: the paper's Fig. 3 numbers (linux MTBF 60d).
    declared_design = TierDesign("application", "rC", 6, 0, (), (bronze,))
    declared = evaluator.tier_model(declared_design, 1000)

    # Reality: linux actually crashes 4x as often (15d MTBF).
    true_modes = tuple(
        mode if mode.name != "linux.soft" else
        type(mode)(mode.name, Duration.days(15), mode.mttr,
                   mode.failover_time, mode.spare_susceptible)
        for mode in declared.modes)
    truth = type(declared)(declared.name, n=declared.n, m=declared.m,
                           s=declared.s, modes=true_modes)

    engine = MarkovEngine()
    print("declared model downtime estimate: %7.2f min/yr"
          % engine.evaluate_tier(declared).downtime_minutes)
    print("true model downtime:              %7.2f min/yr"
          % engine.evaluate_tier(truth).downtime_minutes)

    # Observe "production" (the simulator running the truth).
    print()
    print("observing 25 simulated service-years of production ...")
    observed = simulate_tier(truth, years=25, seed=2004)
    estimates = estimates_from_simulation(truth, observed)
    print("%-18s %10s %14s %26s" % ("mode", "failures", "MTBF est.",
                                    "95% CI"))
    for name, estimate in sorted(estimates.items()):
        mtbf = estimate.mtbf.format() if estimate.mtbf else "-"
        upper = estimate.upper.format() if estimate.upper else "inf"
        print("%-18s %10d %14s %12s .. %11s"
              % (name, estimate.failures, mtbf,
                 estimate.lower.format(), upper))

    refined = refine_modes(declared, estimates, min_failures=10)
    print()
    print("refined model downtime estimate:  %7.2f min/yr"
          % engine.evaluate_tier(refined).downtime_minutes)

    # Would the optimal design change under the refined failure rates?
    # (Patch the component model and re-run the search.)
    from repro.model import ComponentType, FailureMode
    linux = infrastructure.component("linux")
    estimate = estimates["linux.soft"]
    patched = ComponentType(
        "linux", cost=linux.cost,
        failure_modes=(FailureMode("soft", estimate.mtbf,
                                   Duration.ZERO),))
    patched_infra = paper_infrastructure()
    patched_infra.replace_component(patched)  # a what-if clone
    patched_evaluator = DesignEvaluator(patched_infra, service)

    for label, search_evaluator in (("declared", evaluator),
                                    ("refined", patched_evaluator)):
        search = TierSearch(search_evaluator,
                            SearchLimits(max_redundancy=4))
        best = search.best_tier_design("application", 1000,
                                       Duration.minutes(100))
        print("optimal design under %-8s model: %-50s %6.1f min/yr"
              % (label, best.design.describe(), best.downtime_minutes))


if __name__ == "__main__":
    main()
