#!/usr/bin/env python3
"""Quickstart: design an application tier with Aved.

Uses the paper's own infrastructure model (Fig. 3) and e-commerce
service model (Fig. 4, performance from Table 1) to answer the worked
example from the paper: "what is the cheapest design that carries 1000
load units with at most 100 minutes of downtime per year?"

Run:  python examples/quickstart.py
"""

from repro import Aved, Duration, ServiceRequirements
from repro.model import ServiceModel
from repro.spec.paper import ecommerce_service, paper_infrastructure


def main():
    infrastructure = paper_infrastructure()
    # The paper's first example designs the application tier in
    # isolation; slice it out of the full e-commerce service.
    ecommerce = ecommerce_service()
    app_tier = ServiceModel("app-tier", [ecommerce.tier("application")])

    engine = Aved(infrastructure, app_tier)

    requirements = ServiceRequirements(
        throughput=1000,                          # load units
        max_annual_downtime=Duration.minutes(100))

    print("requirements:", requirements.describe())
    print()

    outcome = engine.design(requirements)
    print(outcome.summary())
    print()

    # The same design family the paper reports (family 9): one extra
    # active machineA/linux/appserverA on a bronze contract.
    tier = outcome.design.tiers[0]
    print("resource type:      ", tier.resource)
    print("active resources:   ", tier.n_active)
    print("spare resources:    ", tier.n_spare)
    print("maintenance level:  ",
          tier.mechanism_config("maintenanceA").settings["level"])

    # Tighten the requirement and watch the design (and cost) change.
    print()
    print("tightening the downtime requirement:")
    for minutes in (1000, 100, 10, 1):
        outcome = engine.design(ServiceRequirements(
            1000, Duration.minutes(minutes)))
        tier = outcome.design.tiers[0]
        print("  <= %6g min/yr: %-42s  $%s/yr"
              % (minutes, tier.describe(),
                 format(round(outcome.annual_cost), ",d")))


if __name__ == "__main__":
    main()
