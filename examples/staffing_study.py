#!/usr/bin/env python3
"""Staffing study: how many repair technicians does the SLO need?

The paper's availability model implicitly assumes repairs never queue
(unlimited maintenance staff).  This example relaxes that with the
``repair_crew`` extension: for crew sizes 1, 2 and unlimited, it
re-runs the paper's application-tier design at several requirement
points and reports how the optimal design and its cost move -- turning
"how many techs should be on call?" into a designable quantity.

Run:  python examples/staffing_study.py
"""

from repro import Aved, Duration, SearchLimits, ServiceRequirements
from repro.errors import InfeasibleError
from repro.model import ServiceModel
from repro.spec.paper import ecommerce_service, paper_infrastructure

CREWS = (1, 2, None)
POINTS = [(1000, 100), (1600, 30), (3200, 10)]


def main():
    infrastructure = paper_infrastructure()
    service = ServiceModel(
        "app-tier", [ecommerce_service().tier("application")])
    limits = SearchLimits(max_redundancy=5)

    header = ("%6s %10s %6s  %-52s %12s %12s"
              % ("load", "SLO", "crew", "optimal design", "cost",
                 "downtime"))
    print(header)
    print("-" * len(header))
    for load, minutes in POINTS:
        for crew in CREWS:
            engine = Aved(infrastructure, service, limits=limits,
                          repair_crew=crew)
            try:
                outcome = engine.design(ServiceRequirements(
                    load, Duration.minutes(minutes)))
            except InfeasibleError:
                print("%6d %8gm %6s  %-52s %12s %12s"
                      % (load, minutes, crew or "inf", "INFEASIBLE",
                         "-", "-"))
                continue
            tier = outcome.design.tiers[0]
            print("%6d %8gm %6s  %-52s %12s %9.1f m"
                  % (load, minutes, crew or "inf",
                     tier.describe()[:52],
                     "$" + format(round(outcome.annual_cost), ",d"),
                     outcome.downtime_minutes))
        print()

    print("reading the table: a single on-call technician queues "
          "concurrent repairs, so tight")
    print("SLOs need extra redundancy (or faster contracts) compared "
          "to the unlimited-staff")
    print("assumption the paper makes implicitly; two technicians "
          "recover most of the gap.")


if __name__ == "__main__":
    main()
