#!/usr/bin/env python3
"""Utility-computing scenario: continuous redesign as demand moves.

The paper's introduction motivates Aved with self-managing computing
utilities that "dynamically re-evaluate and change designs as
conditions change" (section 5.1).  This example walks a demand
trajectory for the e-commerce application tier, re-runs the design
engine at each level, and reports exactly where the optimal design
family switches -- the points where the utility controller would
reconfigure.  It then inspects the final design: which failure modes
spend the downtime budget, and how sensitive the estimate is to the
guessed software failure rates.

Run:  python examples/utility_computing.py
"""

from repro import Duration, SearchLimits
from repro.analysis import (design_switch_points, downtime_budget_table,
                            tornado_table)
from repro.core import DesignEvaluator, TierSearch
from repro.model import ServiceModel
from repro.spec.paper import ecommerce_service, paper_infrastructure

# A day in the life of the service: overnight lull, morning ramp,
# lunchtime peak, evening spike (load units, paper scale).
DEMAND_TRAJECTORY = [400, 400, 600, 900, 1300, 1800, 2400, 3000,
                     3400, 3000, 2200, 1400, 800, 500]
SLO = Duration.minutes(100)


def main():
    infrastructure = paper_infrastructure()
    service = ServiceModel(
        "app-tier", [ecommerce_service().tier("application")])
    evaluator = DesignEvaluator(infrastructure, service)
    limits = SearchLimits(max_redundancy=4)

    print("demand trajectory (SLO: downtime <= %s/yr):"
          % SLO.format())
    trajectory, switches = design_switch_points(
        evaluator, "application", DEMAND_TRAJECTORY, SLO, limits)
    for (load, family), hour in zip(trajectory,
                                    range(len(trajectory))):
        label = family.label() if family else "INFEASIBLE"
        print("  t=%02d:00  load %5d -> %s" % (hour, load, label))

    print()
    print("%d redesign points the utility controller would act on:"
          % len(switches))
    for switch in switches:
        print("  at load %5g: %s  ->  %s"
              % (switch.load, switch.previous.label(),
                 switch.current.label()))

    # Inspect the peak-load design.
    peak = max(DEMAND_TRAJECTORY)
    search = TierSearch(evaluator, limits)
    best = search.best_tier_design("application", peak, SLO)
    print()
    print("peak-load design: %s ($%s/yr, %.1f min/yr)"
          % (best.design.describe(),
             format(round(best.annual_cost), ",d"),
             best.downtime_minutes))
    print()
    print(downtime_budget_table(evaluator, best.design, peak))

    # How much do the guessed software MTBFs matter?  (The paper:
    # "software failures rates were estimated based on the authors'
    # intuition".)
    print()
    print(tornado_table(evaluator, best.design, factors=(0.25, 1.0, 4.0),
                        required_throughput=peak))


if __name__ == "__main__":
    main()
